"""Hierarchical spans with workflow-wide trace propagation.

A *span* is a named, timed operation; spans form a tree via
``parent_id`` and share one ``trace_id`` per workflow run, so a single
trace correlates PyCOMPSs task submission, scheduler queueing, worker
execution, shared-filesystem I/O, Ophidia operators and HPCWaaS
lifecycle steps.

Propagation uses a :mod:`contextvars` variable, which follows the
caller within a thread.  The runtimes in this repo hand work to
long-lived worker threads, where the submitting context is *not*
inherited automatically — instrumented layers therefore capture
:func:`current_context` at submission and re-enter it on the worker via
:func:`activate` (the COMPSs runtime, the LSF scheduler and the Ophidia
executor all do this).

Two entry points create spans:

* :func:`span` — always records; starts a new trace when no parent is
  active.  Used at workflow roots (``workflow.run``, HPCWaaS invoke).
* :func:`maybe_span` — records only when a trace is already active.
  Used by high-frequency layers (filesystem ops, Ophidia operators,
  per-task execution) so unit tests and ad-hoc calls don't flood the
  collector.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanContext",
    "SpanHandle",
    "TraceCollector",
    "activate",
    "current_context",
    "get_collector",
    "set_collector",
    "maybe_span",
    "new_context",
    "record_span",
    "span",
]


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class SpanContext:
    """The (trace, span) coordinates propagated to child operations."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One finished operation in a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    layer: str
    start: float                 # time.monotonic()
    end: float
    status: str = "OK"
    attrs: Dict[str, Any] = field(default_factory=dict)
    thread_id: int = 0
    thread_name: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanHandle:
    """Mutable view of an in-flight span, yielded by :func:`span`."""

    __slots__ = ("context", "_attrs", "_status", "recording")

    def __init__(self, context: SpanContext, attrs: Dict[str, Any],
                 recording: bool = True) -> None:
        self.context = context
        self._attrs = attrs
        self._status = "OK"
        self.recording = recording

    def set_attr(self, key: str, value: Any) -> None:
        self._attrs[key] = value

    def set_status(self, status: str) -> None:
        self._status = status


class TraceCollector:
    """Thread-safe store of finished spans.

    Bounded: beyond *max_spans* new spans are counted but dropped, so a
    long-lived process cannot grow without limit.
    """

    def __init__(self, max_spans: int = 200_000) -> None:
        self.max_spans = max_spans
        self._spans: List[Span] = []
        self._dropped = 0
        self._lock = threading.Lock()

    def record(self, span_: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self._dropped += 1
                first_drop = self._dropped == 1
            else:
                self._spans.append(span_)
                return
        self._on_drop(1, first_drop)

    def note_dropped(self, n: int) -> None:
        """Account spans dropped elsewhere (e.g. inside a worker)."""
        if n <= 0:
            return
        with self._lock:
            first_drop = self._dropped == 0
            self._dropped += n
        self._on_drop(n, first_drop)

    def _on_drop(self, n: int, first_drop: bool) -> None:
        # Outside the collector lock: the metrics registry and event log
        # take their own locks (and event subscribers run arbitrary
        # code).  Lazy imports avoid a module cycle — events.py imports
        # this module at load time.  Best-effort: telemetry about lost
        # telemetry must never break the traced workload.
        try:
            from repro.observability.metrics import get_registry

            get_registry().counter(
                "trace_spans_dropped_total",
                "Spans discarded past TraceCollector.max_spans",
            ).inc(n)
        except Exception:
            pass
        if not first_drop:
            return
        try:
            from repro.observability.events import emit_event

            emit_event(
                "WARNING", "observability", "trace_spans_dropped",
                message=(
                    f"trace collector full (max_spans={self.max_spans}); "
                    "dropping further spans"
                ),
                max_spans=self.max_spans,
            )
        except Exception:
            pass

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def for_trace(self, trace_id: str) -> List[Span]:
        return [s for s in self.spans() if s.trace_id == trace_id]

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# ---------------------------------------------------------------------------
# Context propagation
# ---------------------------------------------------------------------------

_context: "contextvars.ContextVar[Optional[SpanContext]]" = contextvars.ContextVar(
    "repro_observability_context", default=None
)


def current_context() -> Optional[SpanContext]:
    """The active span context of this thread of execution (or None)."""
    return _context.get()


def new_context() -> SpanContext:
    """A fresh root context (new trace) without recording a span."""
    return SpanContext(_new_id(), _new_id())


@contextmanager
def activate(context: Optional[SpanContext]) -> Iterator[Optional[SpanContext]]:
    """Re-enter *context* on this thread (cross-thread propagation).

    ``activate(None)`` explicitly clears the context, which detaches the
    enclosed work from any trace.
    """
    token = _context.set(context)
    try:
        yield context
    finally:
        _context.reset(token)


# ---------------------------------------------------------------------------
# Span creation
# ---------------------------------------------------------------------------

@contextmanager
def span(
    name: str,
    layer: str = "app",
    attrs: Optional[Dict[str, Any]] = None,
    new_trace: bool = False,
    collector: Optional[TraceCollector] = None,
) -> Iterator[SpanHandle]:
    """Record a span around the enclosed block; propagates context.

    The span parents to the active context unless *new_trace* forces a
    fresh trace; with no active context a new trace starts either way.
    An exception escaping the block marks the span ``ERROR`` (and
    propagates).
    """
    parent = None if new_trace else _context.get()
    if parent is None:
        trace_id, parent_id = _new_id(), None
    else:
        trace_id, parent_id = parent.trace_id, parent.span_id
    context = SpanContext(trace_id, _new_id())
    handle = SpanHandle(context, dict(attrs or {}))
    token = _context.set(context)
    thread = threading.current_thread()
    start = time.monotonic()
    try:
        yield handle
    except BaseException:
        handle.set_status("ERROR")
        raise
    finally:
        end = time.monotonic()
        _context.reset(token)
        # Not ``or``: an empty TraceCollector is falsy via __len__.
        sink = collector if collector is not None else get_collector()
        sink.record(Span(
            name=name, trace_id=trace_id, span_id=context.span_id,
            parent_id=parent_id, layer=layer, start=start, end=end,
            status=handle._status, attrs=handle._attrs,
            thread_id=thread.ident or 0, thread_name=thread.name,
        ))


@contextmanager
def maybe_span(
    name: str,
    layer: str = "app",
    attrs: Optional[Dict[str, Any]] = None,
) -> Iterator[SpanHandle]:
    """Like :func:`span`, but a no-op when no trace is active.

    Instrumented hot paths use this so only correlated (in-trace) work
    is recorded.
    """
    if _context.get() is None:
        yield SpanHandle(SpanContext("", ""), {}, recording=False)
        return
    with span(name, layer=layer, attrs=attrs) as handle:
        yield handle


def record_span(
    name: str,
    layer: str,
    start: float,
    end: float,
    parent: Optional[SpanContext] = None,
    attrs: Optional[Dict[str, Any]] = None,
    status: str = "OK",
    collector: Optional[TraceCollector] = None,
) -> Optional[Span]:
    """Record a retroactive span from already-measured timestamps.

    Used for phases observed after the fact (e.g. ready-queue waiting
    time, which is only known once the task is dispatched).  Returns
    ``None`` — and records nothing — when no parent context is given,
    keeping uncorrelated noise out of the collector.
    """
    if parent is None:
        return None
    thread = threading.current_thread()
    span_ = Span(
        name=name, trace_id=parent.trace_id, span_id=_new_id(),
        parent_id=parent.span_id, layer=layer, start=start, end=end,
        status=status, attrs=dict(attrs or {}),
        thread_id=thread.ident or 0, thread_name=thread.name,
    )
    sink = collector if collector is not None else get_collector()
    sink.record(span_)
    return span_


# ---------------------------------------------------------------------------
# Process-wide default collector
# ---------------------------------------------------------------------------

_default_collector = TraceCollector()
_collector_lock = threading.Lock()


def get_collector() -> TraceCollector:
    """The process-wide collector all instrumented layers record into."""
    return _default_collector


def set_collector(collector: Optional[TraceCollector] = None) -> TraceCollector:
    """Swap the process-wide collector (tests); returns the new one."""
    global _default_collector
    with _collector_lock:
        _default_collector = collector if collector is not None else TraceCollector()
        return _default_collector
