#!/usr/bin/env python3
"""The HPCWaaS lifecycle (paper Figure 2), end to end.

Plays both roles of the paper's methodology:

* the *workflow developer* uploads the TOSCA topology to Alien4Cloud,
  deploys it through Yorc (container image build, Python environments,
  Data-Logistics staging) onto the simulated Zeus cluster, and
  publishes the workflow;
* the *final user* then triggers the deployed workflow through the
  HPCWaaS Execution API with a single call — no knowledge of the
  cluster, scheduler or software stack required.

Usage::

    python examples/hpcwaas_deployment.py [--days 15]
"""

import argparse

from repro.cluster import zeus_like
from repro.workflow import build_case_study_services, run_extreme_events_workflow


def entrypoint(cluster, params):
    """The PyCOMPSs master invocation HPCWaaS submits to the cluster."""
    wf_keys = {
        "years", "n_days", "n_lat", "n_lon", "min_length_days",
        "with_ml", "seed", "tc_model_path", "tc_target_grid", "n_workers",
    }
    return run_extreme_events_workflow(
        cluster, {k: v for k, v in params.items() if k in wf_keys}
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=15)
    parser.add_argument("--years", type=int, nargs="+", default=[2030])
    args = parser.parse_args()

    with zeus_like() as cluster:
        print(f"target system: {cluster}")

        # --- developer side -------------------------------------------------
        print("\n[developer] uploading TOSCA topology to Alien4Cloud ...")
        a4c, api = build_case_study_services(tc_model_bytes=b"pretrained-cnn")
        print("[developer] deploying via Yorc ...")
        deployment = a4c.deploy("climate-extreme-events", cluster)
        for name, record in deployment.provisioned.items():
            print(f"  provisioned {name:16s} -> {record.get('kind')}"
                  + (f" ({record['image']})" if "image" in record else ""))

        a4c.set_parameters(
            "climate-extreme-events",
            n_lat=24, n_lon=36, min_length_days=4, with_ml=False, n_workers=4,
        )
        record = a4c.publish_workflow(
            "climate-extremes", deployment, entrypoint,
            description="extreme events on CMCC-CM3 projections",
        )
        print(f"[developer] published workflow id: {record.workflow_id}")

        # --- final user side ---------------------------------------------------
        print(f"\n[user] available workflows: {api.list_workflows()}")
        print(f"[user] POST /workflows/climate-extremes/executions "
              f"years={args.years} n_days={args.days}")
        execution = api.invoke("climate-extremes",
                               years=args.years, n_days=args.days)
        print(f"[user] execution {execution.execution_id} submitted "
              f"(state: {execution.state.value}); polling ...")
        summary = execution.wait(timeout=900)
        print(f"[user] state: {api.status(execution.execution_id).value}")

        for year, data in summary["years"].items():
            print(f"[user] {year}: heat waves on "
                  f"{data['heat_waves']['cells_with_waves']:.1%} of cells, "
                  f"{data['tc_deterministic']['n_tracks']} TC tracks")
        print(f"[user] results on the cluster: {cluster.filesystem.root}/results/")

        # --- teardown ------------------------------------------------------------
        a4c.undeploy(record.deployment)
        print(f"\n[developer] undeployed; deployment state: "
              f"{record.deployment.state.value}")


if __name__ == "__main__":
    main()
