"""Streaming interfaces for producer/consumer task overlap.

Section 5.2 of the paper: "a streaming interface available in PyCOMPSs
has been leveraged to monitor the file production progress and detect
when a (full) new year of data is available".  Two stream flavours are
provided, mirroring the distroStream library PyCOMPSs integrates:

* :class:`ObjectDistroStream` — an in-memory pub/sub queue of Python
  objects;
* :class:`FileDistroStream` — watches a directory (optionally through a
  :class:`~repro.cluster.filesystem.SharedFilesystem`) and yields newly
  appeared files matching a pattern, exactly how the case study detects
  freshly written simulation days.
"""

from __future__ import annotations

import fnmatch
import os
import threading
import time
from typing import List, Optional


class StreamClosed(Exception):
    """Polling a closed, fully-drained stream."""


class ObjectDistroStream:
    """In-memory multi-producer / multi-consumer object stream.

    ``publish`` appends; ``poll`` returns everything published since the
    caller's last poll (consumers share a single cursor by default, like
    a work queue; pass ``shared_cursor=False`` for broadcast semantics
    where each consumer instance tracks its own position via
    :meth:`reader`).
    """

    def __init__(self) -> None:
        self._items: List[object] = []
        self._closed = False
        self._lock = threading.Lock()
        self._new = threading.Condition(self._lock)
        self._cursor = 0

    def publish(self, item: object) -> None:
        with self._new:
            if self._closed:
                raise StreamClosed("cannot publish to a closed stream")
            self._items.append(item)
            self._new.notify_all()

    def publish_many(self, items) -> None:
        with self._new:
            if self._closed:
                raise StreamClosed("cannot publish to a closed stream")
            self._items.extend(items)
            self._new.notify_all()

    def close(self) -> None:
        with self._new:
            self._closed = True
            self._new.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def poll(self, timeout: Optional[float] = None, block: bool = True) -> List[object]:
        """Items published since the last poll.

        Blocks until at least one new item arrives or the stream closes.
        Returns ``[]`` on a closed-and-drained stream only when
        *block* is False; otherwise raises :class:`StreamClosed`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._new:
            while True:
                fresh = self._items[self._cursor:]
                if fresh:
                    self._cursor = len(self._items)
                    return list(fresh)
                if self._closed:
                    if block:
                        raise StreamClosed("stream closed and drained")
                    return []
                if not block:
                    return []
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return []
                self._new.wait(timeout=remaining)


class FileDistroStream:
    """Watches a directory for new files matching *pattern*.

    The producing task (the ESM simulation) just writes files; the
    consuming task polls the stream and reacts to fresh paths.  Files are
    reported exactly once, in sorted-name order per poll.

    Attached to a :class:`~repro.cluster.filesystem.SharedFilesystem`
    (the *filesystem* parameter or :meth:`attach_filesystem`), the stream
    is fully event-driven: every write under the watched directory
    notifies blocked pollers, which then sleep untimed between events.
    Unattached, it falls back to rescanning every *poll_interval*
    seconds, which also covers producers that bypass the filesystem
    facade (plain ``open``).

    Parameters
    ----------
    directory:
        Host directory to watch.
    pattern:
        ``fnmatch`` pattern on the file name (default ``*``).
    poll_interval:
        Sleep between directory scans while blocking *without* an
        attached filesystem.
    filesystem:
        Optional shared filesystem whose write events wake pollers.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        pattern: str = "*",
        poll_interval: float = 0.02,
        filesystem=None,
    ) -> None:
        self.directory = os.fspath(directory)
        self.pattern = pattern
        self.poll_interval = poll_interval
        self._seen: set = set()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._fs = None
        self._fs_listener = None
        if filesystem is not None:
            self.attach_filesystem(filesystem)

    # -- event wiring --------------------------------------------------------

    def attach_filesystem(self, filesystem) -> "FileDistroStream":
        """Wake pollers on every write the filesystem lands under us."""
        self.detach_filesystem()
        watched = os.path.abspath(self.directory)

        def on_write(rel_path: str, _root=filesystem.root, _dir=watched) -> None:
            host = os.path.abspath(os.path.join(_root, rel_path))
            # Prefix match (not exact-parent): writes in subdirectories
            # trigger a spurious-but-harmless rescan, a miss would lose
            # a wake-up.
            if host.startswith(_dir + os.sep):
                self.notify()

        self._fs = filesystem
        self._fs_listener = on_write
        filesystem.add_write_listener(on_write)
        return self

    def detach_filesystem(self) -> None:
        fs, listener = self._fs, self._fs_listener
        self._fs = self._fs_listener = None
        if fs is not None and listener is not None:
            fs.remove_write_listener(listener)

    @property
    def event_driven(self) -> bool:
        """True when write events (not timed rescans) wake pollers."""
        return self._fs is not None

    def notify(self) -> None:
        """Wake every blocked poller to rescan (producers/aborters)."""
        with self._wake:
            self._wake.notify_all()

    # -- consumption ---------------------------------------------------------

    def _scan_locked(self) -> List[str]:
        if not os.path.isdir(self.directory):
            return []
        fresh = []
        for name in sorted(os.listdir(self.directory)):
            if name in self._seen:
                continue
            if not fnmatch.fnmatch(name, self.pattern):
                continue
            # Skip in-flight atomic-write temporaries.
            if ".tmp." in name:
                continue
            self._seen.add(name)
            fresh.append(os.path.join(self.directory, name))
        return fresh

    def poll(self, timeout: Optional[float] = None, block: bool = True) -> List[str]:
        """Full paths of files that appeared since the last poll.

        Blocking semantics mirror :meth:`ObjectDistroStream.poll`: raises
        :class:`StreamClosed` once the stream is closed *and* no unseen
        files remain.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wake:
            while True:
                fresh = self._scan_locked()
                if fresh:
                    return fresh
                # The scan above ran after observing any close flag set
                # before we took the lock, so a close racing the last
                # write cannot hide a file from us.
                if self._closed:
                    if block:
                        raise StreamClosed("stream closed and drained")
                    return []
                if not block:
                    return []
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return []
                if self.event_driven:
                    self._wake.wait(timeout=remaining)
                else:
                    self._wake.wait(timeout=(
                        self.poll_interval if remaining is None
                        else min(remaining, self.poll_interval)
                    ))

    def close(self) -> None:
        """Mark end-of-stream: the producer will write no more files."""
        with self._wake:
            self._closed = True
            self._wake.notify_all()
        self.detach_filesystem()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
