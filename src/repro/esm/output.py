"""Daily output writing: one RNC file per simulated day.

File naming follows the case-study convention the streaming monitor
pattern-matches on: ``cmcc_cm3_<year>_<doy>.rnc`` with a zero-padded
3-digit day-of-year, so lexical order equals chronological order.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

import numpy as np

from repro.esm.atmosphere import VARIABLE_ATTRS
from repro.esm.grid import Grid
from repro.netcdf import Dataset
from repro.netcdf.cf import time_axis_for_days

_FILENAME_RE = re.compile(r"^cmcc_cm3_(\d{4})_(\d{3})\.rnc$")


def daily_filename(year: int, doy: int) -> str:
    """Canonical file name for one day of output."""
    if not 1 <= doy <= 365:
        raise ValueError(f"day-of-year {doy} outside [1, 365]")
    return f"cmcc_cm3_{year:04d}_{doy:03d}.rnc"


def parse_daily_filename(name: str) -> Optional[Tuple[int, int]]:
    """Inverse of :func:`daily_filename`; ``None`` for foreign names."""
    match = _FILENAME_RE.match(name)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def build_daily_dataset(
    grid: Grid,
    year: int,
    doy: int,
    fields: Dict[str, np.ndarray],
    steps_per_day: int,
    scenario: str,
) -> Dataset:
    """Assemble the per-day dataset: coordinates + all model variables."""
    ds = Dataset(
        {
            "model": "CMCC-CM3-sim",
            "scenario": scenario,
            "year": year,
            "doy": doy,
            "frequency": f"{24 // steps_per_day}hr",
        }
    )
    ds.create_dimension("time", steps_per_day)
    ds.create_dimension("lat", grid.n_lat)
    ds.create_dimension("lon", grid.n_lon)
    ds.create_variable(
        "time",
        time_axis_for_days(year, doy, 1, steps_per_day),
        ("time",),
        {"units": "days since 2015-01-01", "calendar": "noleap"},
    )
    ds.create_variable("lat", grid.lat, ("lat",), {"units": "degrees_north"})
    ds.create_variable("lon", grid.lon, ("lon",), {"units": "degrees_east"})
    for name, data in fields.items():
        attrs = VARIABLE_ATTRS.get(name, {})
        ds.create_variable(name, data, ("time", "lat", "lon"), attrs)
    return ds
