"""Run-history store tests: persistence, queries, compare, concurrency."""

import json
import multiprocessing
import os
import sqlite3

import pytest

from repro.observability.baseline import write_bench_summary
from repro.observability.history import (
    SCHEMA_VERSION,
    RunHistory,
    compare_runs,
    locked_json_update,
    new_run_id,
    params_digest,
    render_comparison,
    render_run,
    render_run_table,
)


def _snapshot_with(**values):
    """A minimal metrics-snapshot JSON holding the given gauge values."""
    return {
        name: {
            "type": "gauge", "help": name,
            "series": [{"labels": {}, "value": float(value)}],
        }
        for name, value in values.items()
    }


@pytest.fixture
def history(tmp_path):
    return RunHistory(str(tmp_path / "runs.db"))


class TestLifecycle:
    def test_start_then_end_roundtrip(self, history):
        rid = new_run_id()
        history.record_start(rid, "run", params={"years": [2030], "n_days": 6})
        running = history.get(rid)
        assert running.status == "running"
        assert running.params["years"] == [2030]

        history.record_end(
            rid, "completed", wall_clock_s=1.5,
            metrics=_snapshot_with(workflow_makespan_seconds=1.2),
            profile={"makespan_s": 1.2, "critical_path_s": 1.0,
                     "categories": {"compute": 0.9},
                     "by_name": {}, "overlap": {}},
            trace_id="deadbeef",
        )
        done = history.get(rid)
        assert done.status == "completed"
        assert done.wall_clock_s == pytest.approx(1.5)
        assert done.trace_id == "deadbeef"
        assert done.profile["critical_path_s"] == 1.0
        assert done.headline_metrics["makespan_s"] == pytest.approx(1.2)

    def test_record_end_unknown_run_raises(self, history):
        with pytest.raises(KeyError):
            history.record_end("nope", "completed")

    def test_one_shot_record_run(self, history):
        rid = history.record_run("benchmark", "completed",
                                 params={"benchmark": "c1"},
                                 extra={"metrics": {"x": 1.0}})
        record = history.get(rid)
        assert record.kind == "benchmark"
        assert record.extra["metrics"] == {"x": 1.0}

    def test_failed_run_keeps_error(self, history):
        rid = new_run_id()
        history.record_start(rid, "run")
        history.record_end(rid, "failed", error="RuntimeError('boom')")
        assert history.get(rid).error == "RuntimeError('boom')"

    def test_list_runs_newest_first_with_kind_filter(self, history):
        a = history.record_run("run", "completed")
        b = history.record_run("chaos", "completed")
        c = history.record_run("run", "completed")
        ids = [r.run_id for r in history.list_runs()]
        assert ids.index(c) < ids.index(a)
        assert {r.run_id for r in history.list_runs(kind="chaos")} == {b}
        assert len(history) == 3

    def test_get_by_unique_prefix(self, history):
        rid = history.record_run("run", "completed")
        assert history.get(rid[:6]).run_id == rid
        with pytest.raises(KeyError):
            history.get("ffffffffffff")

    def test_schema_version_stamped(self, history, tmp_path):
        conn = sqlite3.connect(str(tmp_path / "runs.db"))
        try:
            assert conn.execute("PRAGMA user_version").fetchone()[0] == \
                SCHEMA_VERSION
        finally:
            conn.close()

    def test_reopen_is_idempotent(self, tmp_path):
        path = str(tmp_path / "runs.db")
        rid = RunHistory(path).record_run("run", "completed")
        assert RunHistory(path).get(rid).run_id == rid

    def test_params_digest_is_order_insensitive(self):
        assert params_digest({"a": 1, "b": 2}) == params_digest({"b": 2, "a": 1})
        assert params_digest({"a": 1}) != params_digest({"a": 2})


class TestCompare:
    def _two_runs(self, history, slow_factor=3.0):
        a = history.record_run(
            "run", "completed", params={"n_days": 6},
            metrics=_snapshot_with(workflow_makespan_seconds=1.0,
                                   workflow_critical_path_seconds=0.8),
            profile={"makespan_s": 1.0, "critical_path_s": 0.8,
                     "categories": {"compute": 0.7, "io": 0.1},
                     "by_name": {}, "overlap": {}},
        )
        b = history.record_run(
            "run", "completed", params={"n_days": 6},
            metrics=_snapshot_with(
                workflow_makespan_seconds=1.0 * slow_factor,
                workflow_critical_path_seconds=0.8 * slow_factor,
            ),
            profile={"makespan_s": 1.0 * slow_factor,
                     "critical_path_s": 0.8 * slow_factor,
                     "categories": {"compute": 0.7 * slow_factor, "io": 0.1},
                     "by_name": {}, "overlap": {}},
        )
        return a, b

    def test_compare_flags_slowdown(self, history):
        a, b = self._two_runs(history, slow_factor=3.0)
        report = history.compare(a, b)
        assert report["drifted"] is True
        assert "makespan_s" in report["regressions"]
        assert report["params_match"] is True
        rendered = render_comparison(report)
        assert "DRIFT" in rendered
        assert "makespan_s" in rendered

    def test_compare_identical_runs_ok(self, history):
        a, b = self._two_runs(history, slow_factor=1.0)
        report = history.compare(a, b)
        assert report["drifted"] is False
        assert report["regressions"] == []
        assert "OK" in render_comparison(report)

    def test_compare_includes_critical_path_attribution(self, history):
        a, b = self._two_runs(history)
        report = compare_runs(history.get(a), history.get(b))
        attribution = report["critical_path"]["categories"]
        assert attribution["compute"]["a_s"] == pytest.approx(0.7)
        assert attribution["compute"]["b_s"] == pytest.approx(2.1)
        assert attribution["compute"]["delta_s"] == pytest.approx(1.4)

    def test_render_helpers(self, history):
        rid = history.record_run(
            "run", "completed", wall_clock_s=2.0,
            metrics=_snapshot_with(workflow_makespan_seconds=1.0),
        )
        table = render_run_table(history.list_runs())
        assert rid in table
        shown = render_run(history.get(rid))
        assert rid in shown
        assert "makespan_s" in shown


def _write_rows(path, worker, n_rows):
    history = RunHistory(path)
    for i in range(n_rows):
        rid = f"w{worker}r{i:03d}zzzzzz"
        history.record_start(rid, "run", params={"worker": worker, "i": i})
        history.record_end(rid, "completed", wall_clock_s=0.01)


def _merge_bench(path, worker, n_merges):
    for i in range(n_merges):
        write_bench_summary(path, f"bench_w{worker}_{i}", {"metric": float(i)})


class TestConcurrentWriters:
    def test_parallel_processes_share_runs_db(self, tmp_path):
        path = str(tmp_path / "runs.db")
        RunHistory(path)  # migrate once up front
        procs = [
            multiprocessing.Process(target=_write_rows, args=(path, w, 20))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        history = RunHistory(path)
        assert len(history) == 80
        assert all(r.status == "completed"
                   for r in history.list_runs(limit=100))

    def test_parallel_bench_summary_merges_lose_nothing(self, tmp_path):
        """Regression: merge-on-write used to drop benchmarks under
        concurrent processes (read-modify-write race)."""
        path = str(tmp_path / "BENCH_summary.json")
        procs = [
            multiprocessing.Process(target=_merge_bench, args=(path, w, 15))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        with open(path) as fh:
            doc = json.load(fh)
        assert len(doc["benchmarks"]) == 60
        assert doc["benchmarks"]["bench_w3_14"] == {"metric": 14.0}

    def test_locked_json_update_creates_and_merges(self, tmp_path):
        path = str(tmp_path / "doc.json")
        locked_json_update(path, lambda cur: {"n": 1})
        doc = locked_json_update(
            path, lambda cur: {"n": cur["n"] + 1}
        )
        assert doc == {"n": 2}
        assert json.load(open(path)) == {"n": 2}
        assert not os.path.exists(path + ".tmp")
