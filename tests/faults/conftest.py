"""Shared fixtures: no runtime or ambient injector leaks between tests."""

import pytest

from repro.compss import compss_stop
from repro.compss.api import get_runtime
from repro.compss.runtime import set_task_fault_injector


@pytest.fixture(autouse=True)
def _clean_runtime():
    if get_runtime() is not None:
        compss_stop(wait=False)
    set_task_fault_injector(None)
    yield
    if get_runtime() is not None:
        compss_stop(wait=False)
    set_task_fault_injector(None)
