"""The distributed (multi-site) case study — the paper's §7 extension.

Runs the same science as
:func:`~repro.workflow.extreme_events.run_extreme_events_workflow`, but
splits the workflow across a :class:`~repro.hpcwaas.federation.Federation`:

* the ESM simulation executes on the ``simulation`` site (the large HPC
  system),
* each completed year is shipped to the ``analytics`` site (the
  data-oriented/Cloud system) by the federated Data Logistics Service,
* Ophidia analytics, ML inference and result storage run on the
  analytics site.

The per-year transfer is itself a workflow task, so data movement
overlaps the still-running simulation exactly like the analytics does.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.compss import COMPSs, compss_wait_on, task
from repro.compss.scheduler import policy_by_name
from repro.hpcwaas.federation import Federation
from repro.observability import (
    MetricsSnapshot,
    build_perfetto_trace,
    get_collector,
    get_registry,
    profile_spans,
    span,
)
from repro.ophidia import Client, OphidiaServer
from repro.workflow import tasks
from repro.workflow.config import WorkflowParams
from repro.workflow.extreme_events import (
    ANALYTICS_TASKS,
    RunControlPlane,
    YearCollector,
)


@task(returns=1, label="dls_transfer")
def transfer_year(
    federation: Federation,
    day_paths,
    year: int,
    staging_dir: str,
):
    """Ship one year of daily files simulation-site → analytics-site.

    *day_paths* are host paths on the simulation site's filesystem (as
    produced by the streaming monitor); returns analytics-site relative
    paths.
    """
    sim = federation.for_role("simulation")
    ana = federation.for_role("analytics")
    rel_paths = [os.path.relpath(p, sim.filesystem.root) for p in day_paths]
    return federation.dls.transfer_files(
        sim, ana, rel_paths, dest_dir=f"{staging_dir}/year_{year:04d}"
    )


def run_distributed_extreme_events(
    federation: Federation,
    params: "WorkflowParams | Dict[str, Any]",
) -> Dict[str, Any]:
    """Execute the case study across the federation; returns the summary.

    Requires ``simulation`` and ``analytics`` roles to be assigned.  The
    summary mirrors the single-site one, plus a ``federation`` section
    with per-transfer accounting.
    """
    p = params if isinstance(params, WorkflowParams) else WorkflowParams.from_dict(params)
    sim = federation.for_role("simulation")
    ana = federation.for_role("analytics")
    ana.filesystem.makedirs(p.results_dir)

    tc_model_path = None
    if p.with_ml:
        tc_model_path = tasks.ensure_tc_model(
            p.tc_model_path, p.tc_patch, ana.filesystem.path("models")
        )

    # The analytics site serves the repeated daily-file reads, so that
    # is where the block cache pays off (the WAN staging already
    # deduplicates transfers between the sites).
    ana.filesystem.configure_cache(p.fs_cache_bytes)
    spill_dir = p.ophidia_spill_dir
    if spill_dir is None and p.ophidia_memory_budget_bytes > 0:
        spill_dir = ana.filesystem.path("ophidia_spill")
    server = OphidiaServer(
        n_io_servers=p.ophidia_io_servers, n_cores=p.ophidia_cores,
        filesystem=ana.filesystem, lazy=p.ophidia_lazy,
        backend=p.execution_backend,
        memory_budget_bytes=p.ophidia_memory_budget_bytes, spill_dir=spill_dir,
    )
    # Everything below the server construction runs inside its
    # try/finally: a failure anywhere on the setup path must still
    # drain the executor pools (thread and process alike).
    collector = None
    control = None
    try:
        client = Client(server)
        # Attaching the simulation site's filesystem makes the year
        # monitor event-driven: each daily write wakes it directly.
        collector = YearCollector(
            sim.filesystem.path(p.output_dir), filesystem=sim.filesystem
        )
        summary: Dict[str, Any] = {
            "years": {},
            "params": {"years": p.years, "n_days": p.n_days},
        }
        cube_futures = []

        registry = get_registry()
        snap_before = registry.snapshot()
        control = RunControlPlane(
            "run-distributed", p,
            p.events_path or ana.filesystem.path(f"{p.results_dir}/events.jsonl"),
        )
        control.begin()
        with span(
            "workflow.run-distributed", layer="workflow",
            attrs={"years": len(p.years), "n_days": p.n_days,
                   "sites": len(federation.sites)},
        ) as root, COMPSs(
            n_workers=p.n_workers, scheduler=policy_by_name(p.scheduler),
            worker_cache_bytes=p.worker_cache_bytes,
        ) as runtime:
            # A workflow failure closes the collector, waking a blocked
            # monitor task immediately (no timed abort polls).
            runtime.add_failure_listener(collector.close)
            summary["trace_id"] = root.context.trace_id
            truth_f = tasks.esm_simulation(
                sim.filesystem, list(p.years), p.n_days, p.n_lat, p.n_lon,
                p.scenario, p.seed, p.output_dir, p.pace_seconds,
            )
            # The baseline climatology is computed where it is consumed.
            baseline_path_f = tasks.write_baseline(
                ana.filesystem, p.n_lat, p.n_lon, p.scenario, p.seed, p.n_days,
                executor=server.process_backend,
            )
            shared_baseline = tasks.load_baseline_cubes(
                client, baseline_path_f, p.nfrag, p.n_days
            )
            base_tmax_f, base_tmin_f = shared_baseline

            per_year: Dict[int, Dict[str, Any]] = {}
            for year in p.years:
                days_f = tasks.monitor_year(collector, year, p.n_days)
                staged_f = transfer_year(federation, days_f, year, "staged")
                tmax_f, tmin_f = tasks.load_year_cubes(client, staged_f, p.nfrag)
                futures: Dict[str, Any] = {}
                for kind, data_f, base_f in (
                    ("heat", tmax_f, base_tmax_f),
                    ("cold", tmin_f, base_tmin_f),
                ):
                    prefix = "hw" if kind == "heat" else "cw"
                    dur_f = tasks.compute_qualifying_durations(
                        client, data_f, base_f, kind,
                        p.threshold_k, p.min_length_days,
                    )
                    dmax_f = tasks.index_duration_max(
                        client, dur_f, f"{prefix}_duration_max_{year:04d}",
                        p.results_dir,
                    )
                    num_f = tasks.index_duration_number(
                        client, dur_f, f"{prefix}_number_{year:04d}", p.results_dir
                    )
                    freq_f = tasks.index_frequency(
                        client, dur_f, p.n_days,
                        f"{prefix}_frequency_{year:04d}", p.results_dir,
                    )
                    futures[f"{prefix}_stats"] = tasks.validate_and_store(
                        ana.filesystem, dmax_f, num_f, freq_f, kind, year,
                        p.n_days, p.min_length_days, p.results_dir,
                    )
                    cube_futures.extend([dur_f, dmax_f, num_f, freq_f])
                if p.with_ml:
                    prep_f = tasks.tc_preprocess(
                        ana.filesystem, staged_f, p.tc_target_grid
                    )
                    det_f = tasks.tc_inference(tc_model_path, prep_f)
                    futures["tc_ml"] = det_f
                    tasks.tc_georeference(ana.filesystem, det_f, year, p.results_dir)
                futures["tc_tracks"] = tasks.tc_deterministic_tracking(
                    ana.filesystem, staged_f, year, p.results_dir
                )
                cube_futures.extend([tmax_f, tmin_f])
                per_year[year] = futures

            truth = compss_wait_on(truth_f)
            for year, futures in per_year.items():
                year_summary: Dict[str, Any] = {
                    "heat_waves": compss_wait_on(futures["hw_stats"]),
                    "cold_waves": compss_wait_on(futures["cw_stats"]),
                }
                tracking = compss_wait_on(futures["tc_tracks"])
                year_summary["tc_deterministic"] = {
                    "n_tracks": len(tracking["tracks"]),
                    "skill": tasks.score_against_truth(
                        tracking["tracks"],
                        truth[year]["tropical_cyclones"], p.n_days,
                    ),
                }
                if p.with_ml:
                    year_summary["tc_ml"] = {
                        "n_detections": len(compss_wait_on(futures["tc_ml"])),
                    }
                summary["years"][year] = year_summary

            for cube in compss_wait_on(cube_futures):
                cube.delete()
            for cube in compss_wait_on(list(shared_baseline)):
                cube.delete()

            summary["task_graph"] = {
                "n_tasks": len(runtime.graph),
                "n_edges": len(runtime.graph.edges()),
                "by_function": dict(runtime.graph.counts_by_function()),
            }
            summary["schedule"] = {
                "makespan_s": runtime.tracer.makespan(),
                "esm_analytics_overlap_s": runtime.tracer.overlap_group_seconds(
                    "esm_simulation", set(ANALYTICS_TASKS) | {"transfer_year"}
                ),
            }
            summary["federation"] = {
                "sites": federation.sites,
                "roles": federation.roles,
                "transfers": federation.dls.total_transfers,
                "bytes_moved": federation.dls.total_bytes,
                "transfer_seconds": federation.dls.total_seconds,
                "sim_site_writes": sim.filesystem.stats.writes,
                "ana_site_reads": ana.filesystem.stats.reads,
            }
    except BaseException as exc:
        if control is not None:
            control.fail(exc)
        raise
    finally:
        if collector is not None:
            collector.close()
        server.shutdown()

    # Root span closed with the ``with`` block above: export the run's
    # telemetry to the analytics site, next to the science results.
    summary["run_id"] = control.run_id
    trace_spans = get_collector().for_trace(summary["trace_id"])
    try:
        profile = profile_spans(
            trace_spans, runtime.tracer.events,
            tracer_epoch=runtime.tracer.epoch,
            esm_functions=("esm_simulation",),
            analytics_functions=set(ANALYTICS_TASKS) | {"transfer_year"},
        ).to_json()
    except Exception:  # noqa: BLE001 - profiling must never fail the run
        profile = None
    if profile is not None:
        summary["profile"] = profile
        registry.gauge(
            "workflow_critical_path_seconds",
            "Summed critical-path duration of the last run",
        ).set(profile["critical_path_s"])
    control.stop_monitor()
    slo_section = control.slo_section()
    if slo_section is not None:
        summary["slo"] = slo_section
    # Final driver resource sample before the delta, mirroring the
    # single-site driver: driver CPU/RSS join the shipped worker samples.
    try:
        from repro.observability.resources import sample_process_resources

        sample_process_resources("driver")
    except Exception:  # noqa: BLE001
        pass
    summary["metrics"] = registry.snapshot().delta(snap_before).to_json()
    dropped_spans = get_collector().dropped
    if dropped_spans:
        summary["spans_dropped"] = dropped_spans
    ana.filesystem.write_bytes(
        f"{p.results_dir}/trace.json",
        build_perfetto_trace(
            trace_spans,
            runtime.tracer.events, tracer_epoch=runtime.tracer.epoch,
            dropped=dropped_spans,
        ).encode(),
    )
    if profile is not None:
        ana.filesystem.write_bytes(
            f"{p.results_dir}/profile.json",
            json.dumps(profile, indent=1).encode(),
        )
    ana.filesystem.write_bytes(
        f"{p.results_dir}/metrics.json",
        json.dumps(summary["metrics"], indent=1).encode(),
    )
    ana.filesystem.write_bytes(
        f"{p.results_dir}/metrics.prom",
        MetricsSnapshot(summary["metrics"]).to_prometheus().encode(),
    )
    ana.filesystem.write_bytes(
        f"{p.results_dir}/run_summary.json",
        json.dumps(summary, indent=1, default=str).encode(),
    )
    control.finish(summary["trace_id"], summary["metrics"], profile)
    return summary
