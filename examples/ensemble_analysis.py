#!/usr/bin/env python3
"""Initial-condition ensemble analysis of heat-wave indices.

The paper's §3 highlights ensembles ("group of runs of the same ESM
with different initial conditions") as a driver of ESM workflow cost.
This example runs a small ensemble — identical forced extremes,
different internal variability — computes each member's heat-wave-number
map, and reports the ensemble mean, spread and member agreement: the
separation of forced signal from weather noise that large-ensemble
studies perform.

Usage::

    python examples/ensemble_analysis.py [--members 3] [--days 250]
"""

import argparse

import numpy as np

from repro.analytics import compute_heatwave_indices, render_ascii_map
from repro.cluster import SharedFilesystem
from repro.esm import (
    CMCCCM3,
    EnsembleConfig,
    ModelConfig,
    build_member,
    ensemble_statistics,
    member_name,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--members", type=int, default=3)
    parser.add_argument("--days", type=int, default=250)
    parser.add_argument("--year", type=int, default=2030)
    args = parser.parse_args()

    base = ModelConfig(n_lat=20, n_lon=30, seed=11)
    config = EnsembleConfig(base, n_members=args.members)

    # The baseline climatology is ensemble-independent.
    baseline_model = CMCCCM3(base)
    baseline = np.stack([
        baseline_model.atmosphere.baseline_tmax(
            d, sst_clim=baseline_model.ocean.sst_clim(1995, d))
        for d in range(1, args.days + 1)
    ])

    member_maps = []
    for index in range(config.n_members):
        model = build_member(config, index)
        tmax = np.stack([
            ds["TREFHTMX"].data[0]
            for _, ds in model.iter_year(args.year, n_days=args.days)
        ]).astype(np.float64)
        idx = compute_heatwave_indices(tmax, baseline)
        member_maps.append(idx.number.astype(np.float64))
        print(f"{member_name(index)}: {int(idx.number.sum())} wave-cells, "
              f"longest {int(idx.duration_max.max())} days")

    stats = ensemble_statistics(member_maps)
    forced = baseline_model.events.heat_waves(args.year)
    inside = [ev for ev in forced if ev.end_doy <= args.days]
    print(f"\nforced (injected) heat waves in window: {len(inside)} — "
          "identical across members by construction")
    print(f"ensemble mean wave-cells: {stats['mean'].sum():.1f}")
    # Short windows can have no wave cells at all; .mean() of the empty
    # selection would emit NaN plus a RuntimeWarning.
    wave_spread = stats["spread"][stats["mean"] > 0]
    spread_text = f"{wave_spread.mean():.2f}" if wave_spread.size else "n/a (no waves)"
    print(f"mean spread where waves occur: {spread_text}")

    print()
    print(render_ascii_map(
        stats["mean"],
        title=f"Ensemble-mean Heat Wave Number ({args.members} members)",
    ))


if __name__ == "__main__":
    main()
