"""Declarative, seed-driven fault schedules.

A :class:`FaultPlan` states *what* goes wrong during a run — which node
dies and when, how flaky the shared filesystem is, how often task
bodies or transfers spontaneously fail — without saying anything about
recovery.  Two runs with the same plan draw the same pseudo-random
decision stream, so chaos experiments are reproducible bug reports:
``repro chaos --seed 7 ...`` fails the same way every time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

#: Filesystem operations eligible for error injection by default.
#: Namespace probes (list/exists/size) are excluded: real GPFS flakiness
#: shows up on data movement, and failing ``listdir`` would break stream
#: polling loops that sit outside any retry scope.  They *are*
#: injectable when listed explicitly in ``FaultPlan.fs_ops`` — every op
#: now routes through the fault hook.  ``delete`` mutates namespace
#: state like a write, so it is fair game by default.
DEFAULT_FS_OPS = (
    "read", "write", "read_bytes", "write_bytes", "read_header", "delete",
)


@dataclass(frozen=True)
class NodeCrash:
    """One scheduled node death.

    Exactly one trigger must be set:

    at_seconds:
        Wall-clock trigger — the node dies this long after the
        controller starts (how a power failure behaves).
    after_fs_writes:
        Event trigger — the node dies when the shared filesystem has
        absorbed this many write operations.  Deterministic with respect
        to workflow progress, so tests and CI use it.
    """

    node: str
    at_seconds: Optional[float] = None
    after_fs_writes: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.at_seconds is None) == (self.after_fs_writes is None):
            raise ValueError(
                "set exactly one of at_seconds / after_fs_writes "
                f"(got {self.at_seconds!r} / {self.after_fs_writes!r})"
            )
        if self.at_seconds is not None and self.at_seconds < 0:
            raise ValueError("at_seconds must be non-negative")
        if self.after_fs_writes is not None and self.after_fs_writes < 1:
            raise ValueError("after_fs_writes must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A complete fault schedule for one chaos run.

    Parameters
    ----------
    seed:
        Seeds every injector's RNG; same seed, same decision stream.
    fs_error_rate:
        Probability in [0, 1) that an eligible filesystem operation
        raises :class:`~repro.faults.errors.InjectedIOError`.
    fs_ops:
        Which filesystem operations are eligible.
    task_error_rate:
        Probability that a task execution raises
        :class:`~repro.faults.errors.InjectedTaskError` before running.
    task_targets:
        Restrict task-error injection to these function names
        (``None`` = every task).
    transfer_error_rate:
        Probability that a task with remote dependencies fails with
        :class:`~repro.faults.errors.InjectedTransferError`.
    node_crashes:
        Scheduled :class:`NodeCrash` events.
    """

    seed: int = 0
    fs_error_rate: float = 0.0
    fs_ops: Tuple[str, ...] = DEFAULT_FS_OPS
    task_error_rate: float = 0.0
    task_targets: Optional[Tuple[str, ...]] = None
    transfer_error_rate: float = 0.0
    node_crashes: Tuple[NodeCrash, ...] = ()

    def __post_init__(self) -> None:
        for name, rate in (
            ("fs_error_rate", self.fs_error_rate),
            ("task_error_rate", self.task_error_rate),
            ("transfer_error_rate", self.transfer_error_rate),
        ):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        # Tolerate lists from loose construction (e.g. CLI assembly).
        if not isinstance(self.fs_ops, tuple):
            object.__setattr__(self, "fs_ops", tuple(self.fs_ops))
        if self.task_targets is not None and not isinstance(self.task_targets, tuple):
            object.__setattr__(self, "task_targets", tuple(self.task_targets))
        if not isinstance(self.node_crashes, tuple):
            object.__setattr__(self, "node_crashes", tuple(self.node_crashes))

    @property
    def injects_anything(self) -> bool:
        return bool(
            self.fs_error_rate or self.task_error_rate
            or self.transfer_error_rate or self.node_crashes
        )

    def describe(self) -> str:
        """One-line human summary for logs and the chaos CLI banner."""
        parts = [f"seed={self.seed}"]
        if self.fs_error_rate:
            parts.append(f"fs_error_rate={self.fs_error_rate:g}")
        if self.task_error_rate:
            target = ",".join(self.task_targets) if self.task_targets else "*"
            parts.append(f"task_error_rate={self.task_error_rate:g}@{target}")
        if self.transfer_error_rate:
            parts.append(f"transfer_error_rate={self.transfer_error_rate:g}")
        for crash in self.node_crashes:
            when = (
                f"t+{crash.at_seconds:g}s" if crash.at_seconds is not None
                else f"write#{crash.after_fs_writes}"
            )
            parts.append(f"kill {crash.node}@{when}")
        if len(parts) == 1:
            parts.append("no faults")
        return "FaultPlan(" + ", ".join(parts) + ")"
