"""YAML emitter tests, including parse(dump(x)) == x round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpcwaas import YAMLError, dump_yaml, parse_yaml


class TestDumpBasics:
    def test_scalars(self):
        assert parse_yaml(dump_yaml({"a": 1})) == {"a": 1}
        assert parse_yaml(dump_yaml({"a": 1.5})) == {"a": 1.5}
        assert parse_yaml(dump_yaml({"a": True})) == {"a": True}
        assert parse_yaml(dump_yaml({"a": None})) == {"a": None}
        assert parse_yaml(dump_yaml({"a": "text"})) == {"a": "text"}

    def test_strings_needing_quotes(self):
        for tricky in ("true", "42", "x: y", "#hash", "[bracket", "", " pad "):
            out = parse_yaml(dump_yaml({"k": tricky}))
            assert out == {"k": tricky}, tricky

    def test_nested_structures(self):
        doc = {
            "topology_template": {
                "inputs": {"years": [2030, 2031]},
                "node_templates": {
                    "app": {
                        "type": "eflows.nodes.PyCOMPSsApplication",
                        "requirements": [{"host": "zeus"}, {"dependency": "env"}],
                    },
                },
            },
        }
        assert parse_yaml(dump_yaml(doc)) == doc

    def test_list_of_multi_key_mappings(self):
        doc = {"steps": [{"name": "load", "retries": 2}, {"name": "go"}]}
        assert parse_yaml(dump_yaml(doc)) == doc

    def test_flow_list_used_for_scalar_lists(self):
        text = dump_yaml({"packages": ["numpy", "scipy"]})
        assert "[numpy, scipy]" in text

    def test_empty_list_roundtrip(self):
        assert parse_yaml(dump_yaml({"xs": []})) == {"xs": []}

    def test_unrepresentable_rejected(self):
        with pytest.raises(YAMLError):
            dump_yaml({})
        with pytest.raises(YAMLError):
            dump_yaml({"a": {}})
        with pytest.raises(YAMLError):
            dump_yaml([[1, 2]])


_plain_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                           blacklist_characters="'"),
    max_size=12,
)
#: Mapping keys additionally exclude ':' and '#' (parser key grammar).
_key_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                           blacklist_characters="':#"),
    min_size=1, max_size=12,
).map(str.strip).filter(bool)
_scalars = st.one_of(
    st.integers(-10**6, 10**6),
    st.floats(-1e6, 1e6, allow_nan=False).map(lambda f: round(f, 4)),
    st.booleans(),
    st.none(),
    _plain_text,
)


@st.composite
def yaml_docs(draw, depth=2):
    if depth == 0:
        return draw(
            st.dictionaries(_key_text, _scalars, min_size=1,
                            max_size=3)
        )
    value = st.one_of(
        _scalars,
        st.lists(_scalars, max_size=3),
        yaml_docs(depth=depth - 1),
        st.lists(
            st.dictionaries(_key_text, _scalars, min_size=1,
                            max_size=2),
            min_size=1, max_size=2,
        ),
    )
    return draw(
        st.dictionaries(_key_text, value, min_size=1, max_size=4)
    )


class TestRoundTripProperty:
    @given(yaml_docs())
    @settings(max_examples=80, deadline=None)
    def test_parse_dump_roundtrip(self, doc):
        assert parse_yaml(dump_yaml(doc)) == doc

    def test_case_study_tosca_roundtrips(self):
        from repro.workflow import CASE_STUDY_TOSCA

        doc = parse_yaml(CASE_STUDY_TOSCA)
        assert parse_yaml(dump_yaml(doc)) == doc
