"""Decayed fair-share accounting tests (injected clock, no sleeping)."""

import pytest

from repro.service import FairShare


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


class TestCharges:
    def test_charges_accumulate(self, clock):
        fs = FairShare(half_life_s=0, clock=clock)
        fs.charge("a", 10.0)
        fs.charge("a", 5.0)
        assert fs.usage("a") == 15.0
        assert fs.usage("never-charged") == 0.0

    def test_negative_charge_rejected(self, clock):
        with pytest.raises(ValueError):
            FairShare(clock=clock).charge("a", -1.0)

    def test_negative_half_life_rejected(self):
        with pytest.raises(ValueError):
            FairShare(half_life_s=-1)


class TestDecay:
    def test_usage_halves_per_half_life(self, clock):
        fs = FairShare(half_life_s=100.0, clock=clock)
        fs.charge("a", 80.0)
        clock.now = 100.0
        assert fs.usage("a") == pytest.approx(40.0)
        clock.now = 300.0
        assert fs.usage("a") == pytest.approx(10.0)

    def test_zero_half_life_disables_decay(self, clock):
        fs = FairShare(half_life_s=0, clock=clock)
        fs.charge("a", 8.0)
        clock.now = 1e6
        assert fs.usage("a") == 8.0

    def test_charge_after_decay_composes(self, clock):
        fs = FairShare(half_life_s=100.0, clock=clock)
        fs.charge("a", 40.0)
        clock.now = 100.0
        fs.charge("a", 10.0)  # 40/2 + 10
        assert fs.usage("a") == pytest.approx(30.0)


class TestOrdering:
    def test_normalized_divides_by_share(self, clock):
        fs = FairShare(half_life_s=0, clock=clock)
        fs.charge("heavy", 40.0)
        fs.charge("light", 10.0)
        # Same raw usage ratio 4:1, but heavy has 4x the share, so the
        # ordering keys tie.
        assert fs.normalized("heavy", share=4.0) == fs.normalized(
            "light", share=1.0
        )
        assert fs.normalized("light") < fs.normalized("heavy")

    def test_share_must_be_positive(self, clock):
        with pytest.raises(ValueError):
            FairShare(clock=clock).normalized("a", share=0)

    def test_snapshot(self, clock):
        fs = FairShare(half_life_s=0, clock=clock)
        fs.charge("b", 2.0)
        fs.charge("a", 1.0)
        assert fs.snapshot() == {"a": 1.0, "b": 2.0}
