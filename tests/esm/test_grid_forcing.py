"""Tests for the model grid and GHG forcing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.esm import Grid, GHGScenario, co2_ppm, warming_offset
from repro.esm.forcing import radiative_forcing
from repro.esm.grid import EARTH_RADIUS_KM


class TestGrid:
    def test_coordinates(self):
        g = Grid(24, 36)
        assert g.lat.shape == (24,)
        assert g.lon.shape == (36,)
        assert g.lat[0] < 0 < g.lat[-1]
        assert g.lat[0] == -g.lat[-1]  # symmetric cell centres
        assert g.lon[0] == 0.0
        assert g.lon[-1] < 360.0

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Grid(2, 8)

    def test_total_area_is_sphere(self):
        g = Grid(24, 36)
        sphere = 4.0 * np.pi * EARTH_RADIUS_KM**2
        assert g.cell_area_km2.sum() == pytest.approx(sphere, rel=1e-9)

    def test_land_fraction_reasonable(self):
        g = Grid(48, 72)
        frac = g.land_mask.mean()
        assert 0.15 < frac < 0.45  # Earth-like, not all-land/all-ocean

    def test_tropical_ocean_exists_for_tc_genesis(self):
        g = Grid(48, 72)
        tropics = (np.abs(g.lat2d) >= 5) & (np.abs(g.lat2d) <= 20)
        assert (g.ocean_mask & tropics).sum() > 10

    def test_masks_partition(self):
        g = Grid(24, 36)
        assert np.all(g.land_mask ^ g.ocean_mask)

    def test_distance_zero_and_antipode(self):
        g = Grid(24, 36)
        assert g.distance_km(10.0, 20.0, 10.0, 20.0) == pytest.approx(0.0)
        half = np.pi * EARTH_RADIUS_KM
        assert g.distance_km(0.0, 0.0, 0.0, 180.0) == pytest.approx(half, rel=1e-6)

    def test_distance_symmetry(self):
        g = Grid(24, 36)
        d1 = g.distance_km(12.0, 33.0, -40.0, 200.0)
        d2 = g.distance_km(-40.0, 200.0, 12.0, 33.0)
        assert d1 == pytest.approx(d2)

    def test_nearest_index(self):
        g = Grid(24, 36)
        i, j = g.nearest_index(0.0, 0.0)
        assert abs(g.lat[i]) <= 90.0 / 24
        assert g.lon[j] == 0.0
        # Wrap-around: 359 degrees is closest to lon=0.
        _, j = g.nearest_index(0.0, 359.9)
        assert j == 0

    def test_coriolis_sign(self):
        g = Grid(24, 36)
        assert np.all(g.coriolis[g.lat2d > 5] > 0)
        assert np.all(g.coriolis[g.lat2d < -5] < 0)


class TestForcing:
    def test_scenario_coercion(self):
        assert GHGScenario.coerce("ssp585") is GHGScenario.SSP585
        assert GHGScenario.coerce(GHGScenario.HISTORICAL) is GHGScenario.HISTORICAL
        with pytest.raises(ValueError):
            GHGScenario.coerce("rcp85")

    def test_historical_anchors(self):
        assert co2_ppm(1850, "historical") == pytest.approx(285.0, rel=1e-6)
        assert co2_ppm(2015, "historical") == pytest.approx(410.0, rel=1e-6)

    def test_scenarios_diverge_after_2015(self):
        assert co2_ppm(2015, "ssp126") == co2_ppm(2015, "ssp585")
        assert co2_ppm(2060, "ssp585") > co2_ppm(2060, "ssp245") > co2_ppm(2060, "ssp126")

    def test_pre_split_years_use_historical(self):
        assert co2_ppm(1990, "ssp585") == co2_ppm(1990, "historical")

    def test_radiative_forcing_doubling(self):
        assert radiative_forcing(560.0) == pytest.approx(3.7, rel=1e-6)
        with pytest.raises(ValueError):
            radiative_forcing(0.0)

    @given(st.integers(1900, 2100))
    def test_warming_monotone_under_ssp585(self, year):
        assert warming_offset(year + 1, "ssp585") >= warming_offset(year, "ssp585")

    def test_warming_magnitude_plausible(self):
        w2100 = warming_offset(2100, "ssp585")
        assert 1.5 < w2100 < 8.0
