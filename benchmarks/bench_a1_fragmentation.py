"""A1 (ablation) — Ophidia fragmentation degree.

Ophidia's performance lever is partitioning datacubes into fragments
processed in parallel by the I/O servers (§4.2.2: computing components
"can be scaled up ... to address more intensive data analytics
workloads").  The full heat-wave pipeline runs over one synthetic year
at fragment counts 1..16.  Shape: results are bit-identical at every
fragmentation; multi-fragment runs beat single-fragment.
"""

import time

import numpy as np

from benchmarks.conftest import print_table
from repro.analytics import ophidia_wave_pipeline
from repro.ophidia import Client, Cube, OphidiaServer

SHAPE = (365, 96, 144)   # one year at ~2x the default benchmark grid


def make_inputs():
    rng = np.random.default_rng(3)
    baseline = np.full(SHAPE, 290.0, dtype=np.float32)
    daily = baseline + rng.normal(0, 3.0, SHAPE).astype(np.float32)
    daily[120:132, 30:60, 40:80] += 9.0
    daily[200:210, 10:25, 100:120] += 9.0
    return daily, baseline


def run_pipeline(daily, baseline, nfrag, n_cores=4):
    with OphidiaServer(n_io_servers=4, n_cores=n_cores) as server:
        client = Client(server)
        data = Cube.from_array(daily, ["time", "lat", "lon"], client=client,
                               fragment_dim="lat", nfrag=nfrag)
        base = Cube.from_array(baseline, ["time", "lat", "lon"], client=client,
                               fragment_dim="lat", nfrag=nfrag)
        start = time.monotonic()
        dmax, num, freq = ophidia_wave_pipeline(data, base, kind="heat")
        elapsed = time.monotonic() - start
        return elapsed, num.to_array(), dmax.to_array()


def test_a1_fragmentation_ablation(benchmark):
    daily, baseline = make_inputs()
    results = {}
    for nfrag in (1, 2, 4, 8, 16):
        if nfrag == 4:
            results[nfrag] = benchmark.pedantic(
                lambda: run_pipeline(daily, baseline, 4), rounds=1, iterations=1
            )
        else:
            results[nfrag] = run_pipeline(daily, baseline, nfrag)

    # Shape: fragmentation never changes the science.
    _, ref_num, ref_dmax = results[1]
    for nfrag, (_, num, dmax) in results.items():
        np.testing.assert_array_equal(num, ref_num, err_msg=f"nfrag={nfrag}")
        np.testing.assert_array_equal(dmax, ref_dmax, err_msg=f"nfrag={nfrag}")

    # Shape: partitioning overhead stays bounded even at 16 fragments
    # (on a multi-core host the mid-range fragment counts also win
    # outright; this benchmark host has a single core, so the honest
    # claim here is identical results at bounded cost).
    t1 = results[1][0]
    worst = max(t for t, _, _ in results.values())
    assert worst < t1 * 2.5

    print_table(
        f"A1: heat-wave pipeline vs fragment count (cube {SHAPE}, 4 cores)",
        ["fragments", "pipeline (s)", "relative to 1 fragment"],
        [
            [nfrag, f"{t:.2f}", f"{t / t1:.2f}x"]
            for nfrag, (t, _, _) in sorted(results.items())
        ],
    )
