"""The TC localization model and its data pipeline.

Mirrors the paper's §5.4: "identifying the presence of TC given a set of
input climate variables ... and localizing its center (or 'eye') in
terms of its geographical coordinates".  A small CNN consumes
multichannel patches (temperature, sea-level pressure, wind speed,
vorticity) and outputs a presence logit plus a normalised in-patch
centre; :func:`localize_in_snapshot` runs the full tile → scale → infer
→ geo-reference chain over a global snapshot.

Training data is synthetic: idealised warm-core vortices composited on
correlated background noise, with randomised intensity, size and centre
position — the stand-in for the paper's "pre-trained on historical data".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

from repro.analytics.tiling import (
    patch_center_latlon,
    scale_features,
    scale_patches_individually,
    tile_patches,
)
from repro.ml.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.ml.losses import localization_loss
from repro.ml.network import Sequential
from repro.ml.optim import Adam
from repro.ml.training import TrainingHistory, train

#: The channel order the localizer is trained on.
CHANNELS = ("T850", "PSL", "WSPDSRFAV", "VORT850")


@dataclass
class TCPatchDataset:
    """Training patches with labels."""

    patches: np.ndarray        # (n, C, P, P) raw (unscaled)
    presence: np.ndarray       # (n,)
    centers: np.ndarray        # (n, 2) normalised [0,1] (row, col); 0 where absent
    stats: Optional[Dict[str, np.ndarray]] = None


#: Gaussian correlation scale per channel (T850, PSL, WSPD, VORT).
_BACKGROUND_SCALES = (2.0, 2.5, 2.0, 1.0)


def _background(rng: np.random.Generator, patch: int) -> np.ndarray:
    """Correlated background noise for the four channels."""
    fields = []
    for scale in _BACKGROUND_SCALES:
        white = rng.standard_normal((patch, patch))
        fields.append(ndimage.gaussian_filter(white, sigma=scale, mode="wrap"))
    t850 = 270.0 + 6.0 * fields[0]
    psl = 1013.0 + 4.0 * fields[1]
    wspd = np.abs(6.0 + 3.0 * fields[2])
    vort = 1.2e-5 * fields[3]
    return np.stack([t850, psl, wspd, vort])


def _background_batch(whites: np.ndarray) -> np.ndarray:
    """Batched :func:`_background` from pre-drawn whites ``(n, C, P, P)``.

    ``sigma=(0, s, s)`` filters every sample in one separable pass
    without smoothing across the batch axis, which is bitwise identical
    to filtering each ``(P, P)`` field on its own.
    """
    fields = [
        ndimage.gaussian_filter(whites[:, c], sigma=(0.0, s, s), mode="wrap")
        for c, s in enumerate(_BACKGROUND_SCALES)
    ]
    t850 = 270.0 + 6.0 * fields[0]
    psl = 1013.0 + 4.0 * fields[1]
    wspd = np.abs(6.0 + 3.0 * fields[2])
    vort = 1.2e-5 * fields[3]
    return np.stack([t850, psl, wspd, vort], axis=1)


def _vortex(
    rng: np.random.Generator, patch: int, center_rc: Tuple[float, float]
) -> np.ndarray:
    """Additive TC signature centred at *center_rc* (cell units)."""
    rows = np.arange(patch)[:, None]
    cols = np.arange(patch)[None, :]
    r = np.sqrt((rows - center_rc[0]) ** 2 + (cols - center_rc[1]) ** 2) + 1e-6
    radius = rng.uniform(1.5, 3.5)
    deficit = rng.uniform(25.0, 70.0)
    vmax = rng.uniform(18.0, 45.0)
    spin = 1.0 if rng.random() < 0.5 else -1.0

    shape = np.exp(-((r / radius) ** 2))
    dpsl = -deficit * shape
    dt = 4.0 * np.exp(-((r / (0.6 * radius)) ** 2))
    profile = np.where(r <= radius, r / radius, (radius / r) ** 0.7)
    dwspd = vmax * profile * np.exp(-((r / (3 * radius)) ** 2))
    dvort = spin * 3.0e-4 * shape
    return np.stack([dt, dpsl, dwspd, dvort])


def _vortex_batch(
    patch: int,
    centers_rc: np.ndarray,
    radius: np.ndarray,
    deficit: np.ndarray,
    vmax: np.ndarray,
    spin: np.ndarray,
) -> np.ndarray:
    """Batched :func:`_vortex`: ``(m, C, P, P)`` signatures from drawn params.

    *centers_rc* is ``(m, 2)``; the remaining parameters are ``(m,)``.
    """
    rows = np.arange(patch)[None, :, None]
    cols = np.arange(patch)[None, None, :]
    cr = centers_rc[:, 0][:, None, None]
    cc = centers_rc[:, 1][:, None, None]
    r = np.sqrt((rows - cr) ** 2 + (cols - cc) ** 2) + 1e-6
    radius = radius[:, None, None]
    deficit = deficit[:, None, None]
    vmax = vmax[:, None, None]
    spin = spin[:, None, None]

    shape = np.exp(-((r / radius) ** 2))
    dpsl = -deficit * shape
    dt = 4.0 * np.exp(-((r / (0.6 * radius)) ** 2))
    profile = np.where(r <= radius, r / radius, (radius / r) ** 0.7)
    dwspd = vmax * profile * np.exp(-((r / (3 * radius)) ** 2))
    dvort = spin * 3.0e-4 * shape
    return np.stack([dt, dpsl, dwspd, dvort], axis=1)


def make_patch_dataset(
    n_samples: int = 1200,
    patch: int = 16,
    positive_fraction: float = 0.5,
    seed: int = 0,
) -> TCPatchDataset:
    """Generate a synthetic labelled patch set (deterministic per seed).

    The per-sample loop only performs the RNG draws — in exactly the
    order of the original loop implementation, so datasets for a given
    seed are unchanged — while the heavy field math (Gaussian filtering,
    vortex composition) runs batched across the whole sample set.
    """
    if not 0.0 < positive_fraction < 1.0:
        raise ValueError("positive_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    presence = np.zeros(n_samples)
    centers = np.zeros((n_samples, 2))
    margin = 2.0
    whites = np.empty((n_samples, len(CHANNELS), patch, patch))
    pos_idx: List[int] = []
    pos_centers: List[Tuple[float, float]] = []
    pos_params: List[Tuple[float, float, float, float]] = []
    for k in range(n_samples):
        for c in range(len(CHANNELS)):
            whites[k, c] = rng.standard_normal((patch, patch))
        if rng.random() < positive_fraction:
            center = (
                rng.uniform(margin, patch - 1 - margin),
                rng.uniform(margin, patch - 1 - margin),
            )
            pos_idx.append(k)
            pos_centers.append(center)
            pos_params.append((
                rng.uniform(1.5, 3.5),
                rng.uniform(25.0, 70.0),
                rng.uniform(18.0, 45.0),
                1.0 if rng.random() < 0.5 else -1.0,
            ))
            presence[k] = 1.0
            centers[k] = (center[0] / (patch - 1), center[1] / (patch - 1))
    patches = _background_batch(whites)
    if pos_idx:
        params = np.asarray(pos_params)
        patches[pos_idx] = patches[pos_idx] + _vortex_batch(
            patch, np.asarray(pos_centers),
            params[:, 0], params[:, 1], params[:, 2], params[:, 3],
        )
    return TCPatchDataset(patches, presence, centers)


def _make_patch_dataset_reference(
    n_samples: int = 1200,
    patch: int = 16,
    positive_fraction: float = 0.5,
    seed: int = 0,
) -> TCPatchDataset:
    """Original per-sample loop implementation, kept as the regression
    oracle for the vectorised :func:`make_patch_dataset`."""
    if not 0.0 < positive_fraction < 1.0:
        raise ValueError("positive_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    patches = np.empty((n_samples, len(CHANNELS), patch, patch))
    presence = np.zeros(n_samples)
    centers = np.zeros((n_samples, 2))
    margin = 2.0
    for k in range(n_samples):
        sample = _background(rng, patch)
        if rng.random() < positive_fraction:
            center = (
                rng.uniform(margin, patch - 1 - margin),
                rng.uniform(margin, patch - 1 - margin),
            )
            sample = sample + _vortex(rng, patch, center)
            presence[k] = 1.0
            centers[k] = (center[0] / (patch - 1), center[1] / (patch - 1))
        patches[k] = sample
    return TCPatchDataset(patches, presence, centers)


def make_patch_dataset_from_esm(
    n_samples: int = 800,
    patch: int = 16,
    model_grid: Tuple[int, int] = (48, 96),
    target_grid: Tuple[int, int] = (96, 192),
    seed: int = 0,
    start_year: int = 2030,
    positive_fraction: float = 0.5,
) -> TCPatchDataset:
    """Harvest labelled patches from the simulated ESM itself.

    The stand-in for the paper's "pre-trained on historical data": run
    TC seasons of the coupled model, regrid each 6-hourly snapshot to
    *target_grid* (the CNN's input resolution), and cut aligned patches —
    positives contain an active injected-TC centre (with its exact
    in-patch offset as the regression label), negatives are storm-free.
    Training on simulator output guarantees the inference-time feature
    distribution matches by construction.
    """
    from repro.analytics.regrid import regrid_bilinear
    from repro.esm import CMCCCM3, ModelConfig

    if target_grid[0] % patch or target_grid[1] % patch:
        raise ValueError("target_grid must be divisible by the patch size")
    rng = np.random.default_rng(seed)
    model = CMCCCM3(ModelConfig(
        n_lat=model_grid[0], n_lon=model_grid[1], seed=seed,
    ))
    # A denser storm season gives more positive samples per simulated day.
    model.events.tcs_per_year = (10, 14)

    n_pos = int(round(n_samples * positive_fraction))
    n_neg = n_samples - n_pos
    dlat = 180.0 / target_grid[0]
    dlon = 360.0 / target_grid[1]
    dst_lat = np.linspace(-90 + dlat / 2, 90 - dlat / 2, target_grid[0])
    dst_lon = np.arange(target_grid[1]) * dlon

    positives: List[Tuple[np.ndarray, Tuple[float, float]]] = []
    negatives: List[np.ndarray] = []
    year = start_year
    while len(positives) < n_pos or len(negatives) < n_neg:
        tcs = model.events.tropical_cyclones(year)
        noise = model.atmosphere.initial_noise(rng)
        sst = model.ocean.initialise(year)
        days = sorted({d for tc in tcs for d in range(tc.start_doy, tc.end_doy + 1)})
        for doy in days:
            if len(positives) >= n_pos and len(negatives) >= n_neg:
                break
            fields = model.atmosphere.daily_fields(
                year, doy, noise, sst, tropical_cyclones=tcs, rng=rng
            )
            noise = model.atmosphere.step_noise(noise, rng)
            for step in range(model.config.steps_per_day):
                stack = np.stack([fields[c][step] for c in CHANNELS])
                regridded = regrid_bilinear(
                    stack, model.grid.lat, model.grid.lon, dst_lat, dst_lon
                )
                centers = []
                for tc in tcs:
                    idx = tc.step_index(doy, step)
                    if idx is None:
                        continue
                    lat, lon = tc.position(idx)
                    row = (lat - dst_lat[0]) / dlat
                    col = (lon % 360.0) / dlon
                    centers.append((row, col, tc.intensity(idx)))
                for row, col, intensity in centers:
                    if len(positives) >= n_pos or intensity < 0.35:
                        continue
                    pi = int(row) // patch * patch
                    pj = int(col) // patch * patch
                    if not (0 <= pi <= target_grid[0] - patch):
                        continue
                    block = regridded[:, pi:pi + patch, pj:pj + patch]
                    offset = ((row - pi) / (patch - 1), (col - pj) / (patch - 1))
                    if not (0 <= offset[0] <= 1 and 0 <= offset[1] <= 1):
                        continue
                    positives.append((block.copy(), offset))
                if len(negatives) < n_neg:
                    # One storm-free aligned patch per snapshot.
                    for _ in range(8):
                        pi = int(rng.integers(target_grid[0] // patch)) * patch
                        pj = int(rng.integers(target_grid[1] // patch)) * patch
                        clear = all(
                            not (pi - patch <= r < pi + 2 * patch
                                 and pj - patch <= c < pj + 2 * patch)
                            for r, c, _ in centers
                        )
                        if clear:
                            negatives.append(
                                regridded[:, pi:pi + patch, pj:pj + patch].copy()
                            )
                            break
        year += 1
        if year - start_year > 30:  # safety: never loop forever
            break

    n_pos = min(n_pos, len(positives))
    n_neg = min(n_neg, len(negatives))
    total = n_pos + n_neg
    patches = np.empty((total, len(CHANNELS), patch, patch))
    presence = np.zeros(total)
    centers_arr = np.zeros((total, 2))
    if n_pos:
        patches[:n_pos] = np.stack([block for block, _ in positives[:n_pos]])
        presence[:n_pos] = 1.0
        centers_arr[:n_pos] = np.asarray([offset for _, offset in positives[:n_pos]])
    if n_neg:
        patches[n_pos:] = np.stack(negatives[:n_neg])
    order = rng.permutation(total)
    return TCPatchDataset(patches[order], presence[order], centers_arr[order])


class TCLocalizer:
    """The CNN: two conv/pool stages, a dense trunk, a 3-unit head.

    Output per patch: ``[presence_logit, center_row, center_col]`` with
    centres in normalised patch coordinates.
    """

    def __init__(self, patch: int = 16, seed: int = 0,
                 normalize: str = "dataset") -> None:
        if patch % 4:
            raise ValueError("patch size must be divisible by 4 (two pools)")
        if normalize not in ("dataset", "per_patch"):
            raise ValueError("normalize must be 'dataset' or 'per_patch'")
        self.patch = patch
        self.normalize = normalize
        rng = np.random.default_rng(seed)
        reduced = patch // 4
        self.network = Sequential([
            Conv2D(len(CHANNELS), 12, kernel=3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(12, 24, kernel=3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(24 * reduced * reduced, 48, rng=rng),
            ReLU(),
            Dense(48, 3, rng=rng),
        ])
        self.stats: Optional[Dict[str, np.ndarray]] = None

    # -- training ---------------------------------------------------------

    def fit(
        self,
        dataset: TCPatchDataset,
        epochs: int = 6,
        batch_size: int = 64,
        lr: float = 2e-3,
        seed: int = 0,
        center_weight: float = 1.0,
    ) -> TrainingHistory:
        if self.normalize == "per_patch":
            scaled = scale_patches_individually(dataset.patches)
            stats = {"mode": "per_patch"}
        else:
            scaled, stats = scale_features(dataset.patches)
        self.stats = stats
        dataset.stats = stats

        def loss_fn(outputs, presence, centers):
            return localization_loss(outputs, presence, centers,
                                     center_weight=center_weight)

        return train(
            self.network,
            scaled,
            (dataset.presence, dataset.centers),
            loss_fn,
            Adam(lr=lr),
            epochs=epochs,
            batch_size=batch_size,
            rng=np.random.default_rng(seed),
        )

    # -- inference ---------------------------------------------------------

    def predict(self, patches: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(probabilities, centres) for raw (unscaled) patches."""
        if self.stats is None:
            raise RuntimeError("model is untrained: call fit() or load()")
        if self.normalize == "per_patch":
            scaled = scale_patches_individually(np.asarray(patches))
        else:
            scaled, _ = scale_features(np.asarray(patches), self.stats)
        out = self.network.forward(scaled)
        probs = 1.0 / (1.0 + np.exp(-np.clip(out[:, 0], -60, 60)))
        centers = np.clip(out[:, 1:], 0.0, 1.0)
        return probs, centers

    def evaluate(self, dataset: TCPatchDataset) -> Dict[str, float]:
        """Accuracy and mean centre error (cells) on a labelled set."""
        probs, centers = self.predict(dataset.patches)
        predicted = probs >= 0.5
        accuracy = float((predicted == (dataset.presence > 0.5)).mean())
        mask = dataset.presence > 0.5
        if mask.any():
            err = np.linalg.norm(
                (centers[mask] - dataset.centers[mask]) * (self.patch - 1), axis=1
            )
            center_error = float(err.mean())
        else:
            center_error = float("nan")
        return {"accuracy": accuracy, "center_error_cells": center_error}

    # -- persistence -----------------------------------------------------------

    def save(self, path: str) -> None:
        import pickle

        with open(path, "wb") as fh:
            pickle.dump(
                {
                    "patch": self.patch,
                    "normalize": self.normalize,
                    "weights": self.network.state_bytes(),
                    "stats": self.stats,
                },
                fh,
            )

    @classmethod
    def load(cls, path: str) -> "TCLocalizer":
        import pickle

        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        model = cls(patch=payload["patch"],
                    normalize=payload.get("normalize", "dataset"))
        model.network.load_state_bytes(payload["weights"])
        model.stats = payload["stats"]
        return model


def train_esm_localizer(
    path: str,
    seed: int = 3,
    n_samples: int = 1400,
    model_grid: Tuple[int, int] = (48, 96),
    target_grid: Tuple[int, int] = (96, 192),
) -> TCLocalizer:
    """Train the production TC localizer on simulator-harvested patches.

    Per-patch normalisation + a strongly-weighted centre loss: the
    recipe that localizes coarse-grid storms (the "pre-trained CNN" the
    workflow's inference task loads).  The model is saved to *path*.
    """
    data = make_patch_dataset_from_esm(
        n_samples=n_samples, seed=seed,
        model_grid=model_grid, target_grid=target_grid,
    )
    model = TCLocalizer(patch=16, seed=0, normalize="per_patch")
    model.fit(data, epochs=10, batch_size=64, lr=2e-3, seed=2, center_weight=5.0)
    model.fit(data, epochs=6, batch_size=64, lr=6e-4, seed=3, center_weight=5.0)
    model.save(path)
    return model


def localize_in_snapshot(
    model: TCLocalizer,
    fields: Dict[str, np.ndarray],
    lat: np.ndarray,
    lon: np.ndarray,
    threshold: float = 0.5,
) -> List[Tuple[float, float, float]]:
    """Full-pipeline localization over one global snapshot.

    *fields* maps channel names (:data:`CHANNELS`) to (lat, lon) arrays.
    Returns ``[(lat, lon, probability), ...]`` for patches above the
    presence *threshold*, geo-referenced through the patch origins.
    """
    missing = [c for c in CHANNELS if c not in fields]
    if missing:
        raise KeyError(f"snapshot missing channels {missing}")
    stack = np.stack([np.asarray(fields[c]) for c in CHANNELS])
    patches, origins = tile_patches(stack, model.patch)
    probs, centers = model.predict(patches)
    found = []
    for k, (prob, center) in enumerate(zip(probs, centers)):
        if prob < threshold:
            continue
        offset = (center[0] * (model.patch - 1), center[1] * (model.patch - 1))
        plat, plon = patch_center_latlon(origins[k], offset, lat, lon)
        found.append((plat, plon, float(prob)))
    return found
