#!/usr/bin/env python3
"""Quickstart: the climate extreme-events workflow, end to end, in ~1 min.

Runs the full case study of the paper on a laptop-scale configuration:
a simulated CMCC-CM3 produces daily files, the PyCOMPSs-style runtime
overlaps Ophidia heat/cold-wave analytics and tropical-cyclone
detection with the running simulation, and results land on the
simulated cluster's shared filesystem.

Usage::

    python examples/quickstart.py [--days 30] [--years 2030]
"""

import argparse
import json

from repro.cluster import laptop_like
from repro.workflow import WorkflowParams, run_extreme_events_workflow


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=30,
                        help="days simulated per year (365 = full year)")
    parser.add_argument("--years", type=int, nargs="+", default=[2030])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--no-ml", action="store_true",
                        help="skip the CNN TC localizer (faster)")
    args = parser.parse_args()

    params = WorkflowParams(
        years=args.years,
        n_days=args.days,
        n_lat=24,
        n_lon=36,
        n_workers=args.workers,
        with_ml=not args.no_ml,
        tc_target_grid=(32, 64),
    )

    with laptop_like() as cluster:
        print(f"cluster: {cluster}")
        print(f"running {len(args.years)} year(s) x {args.days} day(s) "
              f"on {params.n_workers} workers ...")
        summary = run_extreme_events_workflow(cluster, params)

        print("\n--- science summary ---")
        for year, data in summary["years"].items():
            hw, cw = data["heat_waves"], data["cold_waves"]
            print(f"{year}: heat waves on {hw['cells_with_waves']:.1%} of cells "
                  f"(longest {hw['max_duration_days']:.0f}d); "
                  f"cold waves on {cw['cells_with_waves']:.1%}; "
                  f"{data['tc_deterministic']['n_tracks']} TC tracks")
            if "tc_ml" in data:
                print(f"      CNN TC detections: {data['tc_ml']['n_detections']}")

        print("\n--- workflow summary (Figure 3 census) ---")
        for fn, count in sorted(summary["task_graph"]["by_function"].items()):
            print(f"  {fn:32s} {count}")
        sched = summary["schedule"]
        print(f"\nmakespan {sched['makespan_s']:.2f}s, "
              f"ESM/analytics overlap {sched['esm_analytics_overlap_s']:.2f}s, "
              f"worker utilisation {sched['worker_utilisation']:.0%}")

        # The Figure-4-style map was rendered by the workflow:
        year = args.years[0]
        art = cluster.filesystem.read_bytes(
            f"results/hw_number_map_{year:04d}.txt"
        ).decode()
        print(f"\n{art}")
        print(f"\nall artefacts under: {cluster.filesystem.root}/results/")
        print(json.dumps(summary["storage"], indent=1))


if __name__ == "__main__":
    main()
