"""Binary serialisation for the RNC container format.

Layout of an ``.rnc`` file::

    bytes 0..3    magic  b"RNC1"
    bytes 4..11   little-endian uint64: header length H
    bytes 12..    H bytes of UTF-8 JSON header
    then          raw array payloads, concatenated in header order

The JSON header records dimensions, global attributes and, for every
variable, its dims, dtype string, shape, attributes, byte offset (relative
to the start of the payload section) and byte length.  Offsets make
per-variable lazy reads possible with a single ``seek``.

All payloads are written little-endian and C-contiguous.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.netcdf.model import Dataset, Variable

MAGIC = b"RNC1"
_HEADER_LEN_BYTES = 8


class RNCFormatError(IOError):
    """Raised when a file is not a valid RNC container."""


def _le_dtype(dtype: np.dtype) -> np.dtype:
    """Return the little-endian equivalent of *dtype*."""
    dt = np.dtype(dtype)
    if dt.byteorder == ">":
        dt = dt.newbyteorder("<")
    return dt


def write_dataset(dataset: Dataset, path: str | os.PathLike) -> int:
    """Serialise *dataset* to *path*; returns total bytes written.

    The write is atomic at the file level: data is written to a temporary
    sibling and renamed into place, so concurrent readers (e.g. the
    streaming monitor task polling a simulation output directory) never
    observe a half-written file.
    """
    path = os.fspath(path)
    header: Dict[str, Any] = {
        "dimensions": dict(dataset.dimensions),
        "attrs": dict(dataset.attrs),
        "variables": {},
    }
    payloads: List[np.ndarray] = []
    offset = 0
    for name, var in dataset.variables.items():
        # NB: np.ascontiguousarray promotes 0-d arrays to 1-d, so the header
        # must record the variable's true shape, not the payload buffer's.
        arr = np.ascontiguousarray(var.data, dtype=_le_dtype(var.data.dtype))
        header["variables"][name] = {
            "dims": list(var.dims),
            "dtype": arr.dtype.str,
            "shape": list(var.data.shape),
            "attrs": dict(var.attrs),
            "offset": offset,
            "nbytes": arr.nbytes,
        }
        payloads.append(arr)
        offset += arr.nbytes

    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    tmp_path = f"{path}.tmp.{os.getpid()}"
    total = 0
    with open(tmp_path, "wb") as fh:
        total += fh.write(MAGIC)
        total += fh.write(len(header_bytes).to_bytes(_HEADER_LEN_BYTES, "little"))
        total += fh.write(header_bytes)
        for arr in payloads:
            total += fh.write(arr.tobytes())
    os.replace(tmp_path, path)
    return total


def _read_header_fh(fh) -> Dict[str, Any]:
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise RNCFormatError(f"bad magic {magic!r}, expected {MAGIC!r}")
    raw_len = fh.read(_HEADER_LEN_BYTES)
    if len(raw_len) != _HEADER_LEN_BYTES:
        raise RNCFormatError("truncated header length field")
    header_len = int.from_bytes(raw_len, "little")
    # A corrupt length field must not drive a giant allocation: the
    # header can never exceed what the file actually holds.
    pos = fh.tell()
    fh.seek(0, os.SEEK_END)
    remaining = fh.tell() - pos
    fh.seek(pos)
    if header_len > remaining:
        raise RNCFormatError(
            f"header length {header_len} exceeds file contents ({remaining} bytes)"
        )
    header_bytes = fh.read(header_len)
    if len(header_bytes) != header_len:
        raise RNCFormatError("truncated header block")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RNCFormatError(f"corrupt header: {exc}") from exc
    if not isinstance(header, dict):
        raise RNCFormatError("corrupt header: not a mapping")
    header.setdefault("dimensions", {})
    header.setdefault("attrs", {})
    header.setdefault("variables", {})
    for section in ("dimensions", "attrs", "variables"):
        if not isinstance(header[section], dict):
            raise RNCFormatError(f"corrupt header: {section} is not a mapping")
    header["_payload_start"] = len(MAGIC) + _HEADER_LEN_BYTES + header_len
    header["_payload_size"] = remaining - header_len
    return header


def _checked_payload(fh, header: Dict[str, Any], name: str, meta) -> bytes:
    """Read one variable payload with full bounds/type validation."""
    if not isinstance(meta, dict):
        raise RNCFormatError(f"corrupt metadata for variable {name!r}")
    offset = meta.get("offset")
    nbytes = meta.get("nbytes")
    if (not isinstance(offset, int) or not isinstance(nbytes, int)
            or offset < 0 or nbytes < 0
            or offset + nbytes > header["_payload_size"]):
        raise RNCFormatError(
            f"variable {name!r} payload [{offset}, +{nbytes}] outside file"
        )
    fh.seek(header["_payload_start"] + offset)
    raw = fh.read(nbytes)
    if len(raw) != nbytes:
        raise RNCFormatError(f"truncated payload for variable {name!r}")
    return raw


def _decode_payload(raw: bytes, name: str, meta) -> np.ndarray:
    try:
        dtype = np.dtype(meta["dtype"])
        shape = tuple(int(s) for s in meta["shape"])
        return np.frombuffer(raw, dtype=dtype).reshape(shape)
    except (TypeError, ValueError, KeyError) as exc:
        raise RNCFormatError(
            f"corrupt dtype/shape for variable {name!r}: {exc}"
        ) from exc


def read_header(path: str | os.PathLike) -> Dict[str, Any]:
    """Read only the metadata header (dimensions, variables, attrs)."""
    with open(os.fspath(path), "rb") as fh:
        return _read_header_fh(fh)


def read_variable(path: str | os.PathLike, name: str) -> Variable:
    """Lazily read a single variable from an RNC file."""
    path = os.fspath(path)
    with open(path, "rb") as fh:
        header = _read_header_fh(fh)
        meta = header["variables"].get(name)
        if meta is None:
            raise KeyError(
                f"variable {name!r} not in {path!r} "
                f"(available: {sorted(header['variables'])})"
            )
        raw = _checked_payload(fh, header, name, meta)
    data = _decode_payload(raw, name, meta)
    try:
        return Variable(data, tuple(meta["dims"]), dict(meta["attrs"]))
    except (TypeError, ValueError, KeyError) as exc:
        raise RNCFormatError(f"corrupt variable {name!r}: {exc}") from exc


def read_dataset(
    path: str | os.PathLike,
    variables: Optional[Sequence[str]] = None,
) -> Dataset:
    """Read an RNC file into a :class:`Dataset`.

    Parameters
    ----------
    path:
        File to read.
    variables:
        Optional subset of variable names to load.  Dimensions and global
        attributes are always loaded.  Unknown names raise ``KeyError``.
    """
    path = os.fspath(path)
    with open(path, "rb") as fh:
        header = _read_header_fh(fh)
        try:
            ds = Dataset(header["attrs"])
            for dim, size in header["dimensions"].items():
                ds.create_dimension(dim, size)
        except (TypeError, ValueError) as exc:
            raise RNCFormatError(f"corrupt header metadata: {exc}") from exc

        wanted = list(header["variables"]) if variables is None else list(variables)
        for name in wanted:
            meta = header["variables"].get(name)
            if meta is None:
                raise KeyError(f"variable {name!r} not in {path!r}")
            raw = _checked_payload(fh, header, name, meta)
            data = _decode_payload(raw, name, meta).copy()  # writable copy
            try:
                ds.create_variable(name, data, meta["dims"], meta["attrs"])
            except (TypeError, ValueError, KeyError) as exc:
                raise RNCFormatError(
                    f"corrupt variable {name!r}: {exc}"
                ) from exc
    return ds
