#!/usr/bin/env python3
"""Distributed execution: ESM on the HPC site, analytics on the Cloud site.

Implements the paper's §7 outlook — "using large HPC systems for the
ESM simulation [and] data-oriented/Cloud systems for Big Data
processing" with the Data Logistics Service moving the daily files
between sites.  The transfer is a workflow task, so shipping a finished
year overlaps the simulation of the next one.

Usage::

    python examples/distributed_federation.py [--days 15] [--wan-mbps 200]
"""

import argparse

from repro.cluster import Cluster, Node
from repro.hpcwaas import FederatedDataLogistics, Federation
from repro.workflow import WorkflowParams, run_distributed_extreme_events


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=15)
    parser.add_argument("--years", type=int, nargs="+", default=[2030, 2031])
    parser.add_argument("--wan-mbps", type=float, default=200.0,
                        help="emulated inter-site bandwidth")
    args = parser.parse_args()

    dls = FederatedDataLogistics(wan_bandwidth_mbps=args.wan_mbps)
    with Federation(dls=dls) as fed:
        fed.add_site(
            Cluster("zeus-hpc", [Node(f"z{i}", 8, 32.0) for i in range(2)]),
            role="simulation",
        )
        fed.add_site(
            Cluster("cloud-dc", [Node(f"c{i}", 4, 16.0) for i in range(2)]),
            role="analytics",
        )
        print(f"federation sites: {fed.sites}")
        print(f"role placement:   {fed.roles}")
        print(f"WAN bandwidth:    {args.wan_mbps} Mbps\n")

        params = WorkflowParams(
            years=args.years, n_days=args.days, n_lat=24, n_lon=36,
            n_workers=4, min_length_days=4, with_ml=False,
        )
        summary = run_distributed_extreme_events(fed, params)

        print("science (computed on the analytics site):")
        for year, data in summary["years"].items():
            print(f"  {year}: heat waves on "
                  f"{data['heat_waves']['cells_with_waves']:.1%} of cells, "
                  f"{data['tc_deterministic']['n_tracks']} TC tracks")

        info = summary["federation"]
        print(f"\ndata logistics: {info['transfers']} transfer(s), "
              f"{info['bytes_moved'] / 1e6:.1f} MB in "
              f"{info['transfer_seconds']:.2f}s across the WAN")
        print(f"simulation-site writes: {info['sim_site_writes']}, "
              f"analytics-site reads: {info['ana_site_reads']}")
        print(f"\nmakespan {summary['schedule']['makespan_s']:.2f}s, "
              f"simulation/processing overlap "
              f"{summary['schedule']['esm_analytics_overlap_s']:.2f}s")


if __name__ == "__main__":
    main()
