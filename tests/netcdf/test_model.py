"""Unit tests for the RNC in-memory data model."""

import numpy as np
import pytest

from repro.netcdf import Dataset, Variable


class TestVariable:
    def test_dims_must_match_ndim(self):
        with pytest.raises(ValueError):
            Variable(np.zeros((2, 3)), ("time",))

    def test_scalar_variable(self):
        v = Variable(np.float64(3.5), ())
        assert v.shape == ()
        assert v.dims == ()

    def test_attrs_numpy_scalars_coerced(self):
        v = Variable(np.zeros(3), ("x",), {"fill": np.float32(1.5), "n": np.int64(7)})
        assert isinstance(v.attrs["fill"], float)
        assert isinstance(v.attrs["n"], int)

    def test_attrs_reject_unserialisable(self):
        with pytest.raises(TypeError):
            Variable(np.zeros(3), ("x",), {"bad": object()})

    def test_copy_is_deep_for_data(self):
        v = Variable(np.zeros(3), ("x",))
        c = v.copy()
        c.data[0] = 9.0
        assert v.data[0] == 0.0

    def test_nbytes(self):
        v = Variable(np.zeros((4, 5), dtype=np.float32), ("a", "b"))
        assert v.nbytes == 4 * 5 * 4


class TestDataset:
    def test_create_dimension_idempotent(self):
        ds = Dataset()
        ds.create_dimension("lat", 10)
        ds.create_dimension("lat", 10)
        assert ds.dimensions["lat"] == 10

    def test_create_dimension_conflict(self):
        ds = Dataset()
        ds.create_dimension("lat", 10)
        with pytest.raises(ValueError):
            ds.create_dimension("lat", 11)

    def test_negative_dimension_rejected(self):
        ds = Dataset()
        with pytest.raises(ValueError):
            ds.create_dimension("x", -1)

    def test_variable_autodeclares_dims(self):
        ds = Dataset()
        ds.create_variable("t", np.zeros((3, 4)), ("time", "lat"))
        assert ds.dimensions == {"time": 3, "lat": 4}

    def test_variable_shape_vs_declared_dim(self):
        ds = Dataset()
        ds.create_dimension("lat", 5)
        with pytest.raises(ValueError):
            ds.create_variable("t", np.zeros((3, 4)), ("time", "lat"))

    def test_duplicate_variable_rejected(self):
        ds = Dataset()
        ds.create_variable("t", np.zeros(3), ("x",))
        with pytest.raises(ValueError):
            ds.create_variable("t", np.zeros(3), ("x",))

    def test_mapping_access(self):
        ds = Dataset({"title": "test"})
        ds.create_variable("a", np.arange(3), ("x",))
        ds.create_variable("b", np.arange(3), ("x",))
        assert "a" in ds
        assert set(iter(ds)) == {"a", "b"}
        assert len(ds) == 2
        assert ds["a"].shape == (3,)
        assert ds.attrs["title"] == "test"

    def test_nbytes_sums_variables(self):
        ds = Dataset()
        ds.create_variable("a", np.zeros(3, dtype=np.float64), ("x",))
        ds.create_variable("b", np.zeros(3, dtype=np.float32), ("x",))
        assert ds.nbytes == 3 * 8 + 3 * 4

    def test_copy_independent(self):
        ds = Dataset({"k": 1})
        ds.create_variable("a", np.zeros(3), ("x",))
        c = ds.copy()
        c["a"].data[0] = 5.0
        c.attrs["k"] = 2
        assert ds["a"].data[0] == 0.0
        assert ds.attrs["k"] == 1
