"""Cross-process telemetry shipping: spans and metrics over pickle.

Spawn-based pool workers are separate processes with their own span
collector and metrics registry, so anything they record is invisible to
the driver — unless it is *shipped* back.  This module is the channel:

* the parent serialises its active :class:`SpanContext`
  (:func:`serialize_context`) and sends it with each task;
* the worker wraps the task in a :class:`TelemetryCapture`, which
  activates the parent context (worker spans join the driver's trace,
  parenting under the dispatching sweep span), collects spans into a
  private collector, and brackets the worker registry with snapshots;
* the capture's :meth:`~TelemetryCapture.envelope` packages the
  recorded spans + the registry delta + the drop count as plain JSON
  data, returned alongside the shared-memory result;
* the parent calls :func:`merge_envelope`, folding the delta into its
  registry (:meth:`MetricsRegistry.merge_delta`) and the spans into its
  collector.

Everything here is best-effort by design: a telemetry failure must
never fail the kernel whose telemetry it is.  Timestamps stay
comparable because ``time.monotonic`` is CLOCK_MONOTONIC, which is
system-wide on Linux — a worker span slots into the parent's Perfetto
timeline without translation.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.observability.metrics import (
    MetricsRegistry, MetricsSnapshot, get_registry,
)
from repro.observability.spans import (
    Span, SpanContext, TraceCollector, activate, get_collector,
    maybe_span, set_collector,
)

__all__ = [
    "TelemetryCapture",
    "deserialize_context",
    "merge_envelope",
    "serialize_context",
    "span_from_json",
    "span_to_json",
]


# -- serialisation -----------------------------------------------------------

def serialize_context(ctx: Optional[SpanContext]) -> Optional[Tuple[str, str]]:
    """A picklable (trace_id, span_id) pair, or None outside a trace."""
    if ctx is None:
        return None
    return (ctx.trace_id, ctx.span_id)


def deserialize_context(pair: Optional[Tuple[str, str]]) -> Optional[SpanContext]:
    if pair is None:
        return None
    return SpanContext(pair[0], pair[1])


def span_to_json(span_: Span) -> Dict[str, Any]:
    return {
        "name": span_.name,
        "trace_id": span_.trace_id,
        "span_id": span_.span_id,
        "parent_id": span_.parent_id,
        "layer": span_.layer,
        "start": span_.start,
        "end": span_.end,
        "status": span_.status,
        "attrs": dict(span_.attrs),
        "thread_id": span_.thread_id,
        "thread_name": span_.thread_name,
    }


def span_from_json(doc: Dict[str, Any]) -> Span:
    return Span(
        name=doc["name"],
        trace_id=doc["trace_id"],
        span_id=doc["span_id"],
        parent_id=doc.get("parent_id"),
        layer=doc.get("layer", "app"),
        start=doc["start"],
        end=doc["end"],
        status=doc.get("status", "OK"),
        attrs=dict(doc.get("attrs", {})),
        thread_id=int(doc.get("thread_id", 0)),
        thread_name=doc.get("thread_name", ""),
    )


# -- worker side -------------------------------------------------------------

class TelemetryCapture:
    """Capture one worker call's telemetry for shipping to the parent.

    Entering installs a fresh private collector, snapshots the worker's
    registry, activates the parent :class:`SpanContext` and opens a span
    named *name* (layer ``worker``) that every span the call records
    parents under.  Spawn-pool workers execute one task at a time on a
    single thread, so swapping the process-wide collector for the call
    is safe.  Exiting samples the worker's CPU/RSS, restores the
    previous collector, and makes :meth:`envelope` available.
    """

    def __init__(
        self,
        parent: Optional[Tuple[str, str]],
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        role: str = "worker",
    ) -> None:
        self._parent = deserialize_context(parent)
        self._name = name
        self._attrs = dict(attrs or {})
        self._role = role
        self._envelope: Optional[Dict[str, Any]] = None
        self._saved: Optional[TraceCollector] = None
        self._capture: Optional[TraceCollector] = None
        self._before: Optional[MetricsSnapshot] = None
        self._activation = None
        self._span_cm = None
        self._done = False

    def __enter__(self) -> "TelemetryCapture":
        try:
            self._saved = get_collector()
            self._capture = set_collector(TraceCollector())
            self._before = get_registry().snapshot()
            self._activation = activate(self._parent)
            self._activation.__enter__()
            self._span_cm = maybe_span(
                self._name, layer="worker", attrs=self._attrs
            )
            self._span_cm.__enter__()
        except Exception:
            self._teardown(None, None, None)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._teardown(exc_type, exc, tb)
        return False

    def _teardown(self, exc_type, exc, tb) -> None:
        if self._done:
            return
        self._done = True
        if self._span_cm is not None:
            try:
                self._span_cm.__exit__(exc_type, exc, tb)
            except Exception:
                pass
            self._span_cm = None
        if self._activation is not None:
            try:
                self._activation.__exit__(None, None, None)
            except Exception:
                pass
            self._activation = None
        try:
            from repro.observability.resources import sample_process_resources

            sample_process_resources(self._role)
        except Exception:
            pass
        spans: List[Dict[str, Any]] = []
        dropped = 0
        if self._capture is not None:
            pid = os.getpid()
            for span_ in self._capture.spans():
                doc = span_to_json(span_)
                # Worker thread ids can collide with parent thread ids;
                # rename the lane so Perfetto keeps processes apart.
                doc["thread_name"] = f"worker-pid{pid}"
                spans.append(doc)
            dropped = self._capture.dropped
        metrics: Dict[str, Any] = {}
        if self._before is not None:
            try:
                metrics = get_registry().snapshot().delta(self._before).to_json()
            except Exception:
                metrics = {}
        self._envelope = {"spans": spans, "metrics": metrics, "dropped": dropped}
        if self._saved is not None:
            try:
                set_collector(self._saved)
            except Exception:
                pass
            self._saved = None
        self._capture = None
        self._before = None

    def envelope(self) -> Dict[str, Any]:
        """The shippable telemetry payload (valid after the block exits)."""
        return self._envelope or {"spans": [], "metrics": {}, "dropped": 0}


# -- parent side -------------------------------------------------------------

def merge_envelope(
    envelope: Optional[Dict[str, Any]],
    registry: Optional[MetricsRegistry] = None,
    collector: Optional[TraceCollector] = None,
) -> None:
    """Fold a worker's telemetry envelope into this process.

    Metrics merge via :meth:`MetricsRegistry.merge_delta`; spans are
    recorded into the collector verbatim (they already carry the
    parent's ``trace_id``); worker-side drops are accounted via
    :meth:`TraceCollector.note_dropped`.  Never raises.
    """
    if not envelope:
        return
    if registry is None:
        registry = get_registry()
    if collector is None:
        collector = get_collector()
    try:
        metrics = envelope.get("metrics")
        if metrics:
            registry.merge_delta(metrics)
    except Exception:
        pass
    try:
        for doc in envelope.get("spans", ()):
            collector.record(span_from_json(doc))
    except Exception:
        pass
    try:
        collector.note_dropped(int(envelope.get("dropped", 0)))
    except Exception:
        pass
