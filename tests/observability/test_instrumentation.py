"""End-to-end telemetry: one workflow run yields one correlated trace.

The issue's acceptance bar: a single run produces a Perfetto-loadable
trace whose spans cover at least four distinct layers under one
trace_id, non-empty exported metrics, and a working ``metrics`` CLI.
"""

import json

import pytest

from repro.cli import main
from repro.cluster import laptop_like
from repro.observability import get_collector, snapshot_value
from repro.workflow import WorkflowParams, run_extreme_events_workflow


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    scratch = tmp_path_factory.mktemp("telemetry") / "scratch"
    with laptop_like(scratch_root=str(scratch)) as cluster:
        params = WorkflowParams(
            years=[2030], n_days=12, n_lat=16, n_lon=24, n_workers=4,
            min_length_days=4, seed=5,
        )
        summary = run_extreme_events_workflow(cluster, params)
    return summary, scratch / "results"


class TestCorrelatedTrace:
    def test_summary_carries_trace_id_and_metrics(self, run):
        summary, _ = run
        assert summary["trace_id"]
        assert summary["metrics"]

    def test_spans_cover_four_layers_one_trace(self, run):
        summary, _ = run
        spans = get_collector().for_trace(summary["trace_id"])
        layers = {s.layer for s in spans}
        assert {"workflow", "compss", "scheduler", "filesystem",
                "ophidia"} <= layers
        assert len({s.trace_id for s in spans}) == 1

    def test_span_tree_is_rooted(self, run):
        summary, _ = run
        spans = get_collector().for_trace(summary["trace_id"])
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["workflow.run"]
        # Every recorded parent_id referenced by an in-trace span either
        # resolves in-trace or belongs to a dropped/unrecorded ancestor;
        # spans recorded by the instrumented layers must resolve.
        resolved = [s for s in spans if s.parent_id in by_id]
        assert len(resolved) >= len(spans) - 1

    def test_trace_json_loads_in_perfetto_format(self, run):
        summary, results = run
        trace = json.loads((results / "trace.json").read_text())
        events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert len(events) > 20
        in_trace = {
            e["args"]["trace_id"] for e in events
            if "trace_id" in e.get("args", {})
        }
        assert in_trace == {summary["trace_id"]}
        # The COMPSs task schedule rides along as a second process.
        assert any(e["pid"] == 2 for e in events)

    def test_metrics_artefacts_written(self, run):
        summary, results = run
        prom = (results / "metrics.prom").read_text()
        assert "# TYPE compss_tasks_total counter" in prom
        assert "fs_operations_total" in prom
        payload = json.loads((results / "metrics.json").read_text())
        assert snapshot_value(payload, "compss_tasks_total",
                              state="COMPLETED") > 0
        assert snapshot_value(payload, "workflow_makespan_seconds") == \
            summary["schedule"]["makespan_s"]

    def test_registry_counts_match_task_graph(self, run):
        summary, _ = run
        submitted = snapshot_value(summary["metrics"],
                                   "compss_tasks_submitted_total")
        assert submitted == summary["task_graph"]["n_tasks"]

    def test_fs_stats_view_matches_registry(self, run):
        summary, _ = run
        assert summary["storage"]["fs_bytes_read"] > 0
        assert snapshot_value(summary["metrics"], "fs_bytes_read_total") >= \
            summary["storage"]["fs_bytes_read"]


class TestMetricsCLI:
    def test_selftest(self, capsys):
        assert main(["metrics", "--selftest"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_dump_global_registry_prometheus(self, run, capsys):
        # The module fixture ran a workflow in-process, so the global
        # registry is non-empty — the acceptance criterion for `metrics`.
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE compss_tasks_total counter" in out

    def test_from_metrics_json(self, run, capsys):
        _, results = run
        assert main(["metrics", "--from", str(results / "metrics.json")]) == 0
        assert "compss_tasks_total" in capsys.readouterr().out

    def test_from_run_summary_json_format(self, run, capsys):
        _, results = run
        assert main([
            "metrics", "--from", str(results / "run_summary.json"),
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert snapshot_value(payload, "compss_tasks_total") > 0
