"""Span tree unit tests: nesting, propagation, gating, the collector."""

import threading

import pytest

from repro.observability import (
    TraceCollector,
    activate,
    current_context,
    maybe_span,
    new_context,
    record_span,
    span,
)


@pytest.fixture()
def collector():
    return TraceCollector()


class TestSpanNesting:
    def test_child_parents_to_enclosing_span(self, collector):
        with span("root", layer="workflow", collector=collector) as root:
            with span("child", layer="compss", collector=collector):
                pass
        child, root_span = collector.spans()
        assert child.name == "child"
        assert child.trace_id == root_span.trace_id
        assert child.parent_id == root_span.span_id
        assert root_span.parent_id is None
        assert root.context.trace_id == root_span.trace_id

    def test_new_trace_forces_fresh_trace_id(self, collector):
        with span("a", collector=collector):
            with span("b", new_trace=True, collector=collector):
                pass
        b, a = collector.spans()
        assert a.trace_id != b.trace_id

    def test_exception_marks_error_and_propagates(self, collector):
        with pytest.raises(RuntimeError):
            with span("boom", collector=collector):
                raise RuntimeError("x")
        (s,) = collector.spans()
        assert s.status == "ERROR"

    def test_context_restored_after_span(self, collector):
        assert current_context() is None
        with span("a", collector=collector):
            assert current_context() is not None
        assert current_context() is None

    def test_attrs_and_status_via_handle(self, collector):
        with span("a", collector=collector) as handle:
            handle.set_attr("k", 1)
            handle.set_status("ERROR")
        (s,) = collector.spans()
        assert s.attrs["k"] == 1
        assert s.status == "ERROR"


class TestMaybeSpan:
    def test_noop_without_active_context(self, collector):
        with maybe_span("quiet") as handle:
            assert not handle.recording
        assert len(collector.spans()) == 0

    def test_records_inside_active_trace(self, collector):
        with span("root", collector=collector):
            with maybe_span("hot") as handle:
                assert handle.recording
        # maybe_span routes through the global collector only when no
        # explicit one is active; assert via the parent relationship.
        names = {s.name for s in collector.spans()}
        assert "root" in names


class TestRecordSpan:
    def test_retroactive_span_joins_parent(self, collector):
        parent = new_context()
        s = record_span("queue", layer="scheduler", start=1.0, end=2.5,
                        parent=parent, collector=collector)
        assert s is not None
        assert s.trace_id == parent.trace_id
        assert s.parent_id == parent.span_id
        assert s.duration == pytest.approx(1.5)
        assert collector.spans() == [s]

    def test_no_parent_records_nothing(self, collector):
        assert record_span("orphan", layer="x", start=0, end=1,
                           collector=collector) is None
        assert len(collector.spans()) == 0


class TestCrossThreadPropagation:
    def test_activate_joins_trace_on_worker_thread(self, collector):
        recorded = []

        def worker(ctx):
            with activate(ctx):
                with span("work", collector=collector):
                    pass
            recorded.append(True)

        with span("root", collector=collector) as root:
            t = threading.Thread(target=worker, args=(current_context(),))
            t.start()
            t.join()
        assert recorded
        work, root_span = collector.spans()
        assert work.trace_id == root_span.trace_id
        assert work.parent_id == root_span.span_id
        assert work.thread_id != root_span.thread_id

    def test_activate_none_detaches(self, collector):
        with span("root", collector=collector):
            with activate(None):
                assert current_context() is None
            assert current_context() is not None


class TestCollector:
    def test_bounded_with_drop_count(self):
        c = TraceCollector(max_spans=2)
        for _ in range(4):
            record_span("s", layer="x", start=0, end=1,
                        parent=new_context(), collector=c)
        assert len(c) == 2
        assert c.dropped == 2

    def test_for_trace_filters(self, collector):
        a, b = new_context(), new_context()
        record_span("s1", layer="x", start=0, end=1, parent=a,
                    collector=collector)
        record_span("s2", layer="x", start=0, end=1, parent=b,
                    collector=collector)
        assert [s.name for s in collector.for_trace(a.trace_id)] == ["s1"]

    def test_empty_collector_still_receives_spans(self):
        # Regression: an empty collector is falsy (len == 0) and must
        # not be silently swapped for the process-global one.
        c = TraceCollector()
        with span("s", collector=c):
            pass
        assert len(c) == 1

    def test_clear(self, collector):
        record_span("s", layer="x", start=0, end=1, parent=new_context(),
                    collector=collector)
        collector.clear()
        assert len(collector) == 0
