"""End-to-end TC localizer tests: training, skill, snapshot pipeline."""

import numpy as np
import pytest

from repro.ml import TCLocalizer, localize_in_snapshot, make_patch_dataset
from repro.ml.tc_localizer import CHANNELS, _background, _vortex


@pytest.fixture(scope="module")
def trained():
    """One shared, quickly-trained model for the expensive tests."""
    model = TCLocalizer(patch=16, seed=0)
    data = make_patch_dataset(n_samples=900, patch=16, seed=1)
    history = model.fit(data, epochs=6, batch_size=64, lr=2e-3, seed=2)
    model.fit(data, epochs=6, batch_size=64, lr=1e-3, seed=3)  # fine-tune
    return model, data, history


class TestDataset:
    def test_dataset_shapes_and_balance(self):
        data = make_patch_dataset(n_samples=200, patch=16, seed=0)
        assert data.patches.shape == (200, 4, 16, 16)
        assert 0.3 < data.presence.mean() < 0.7
        assert np.all((data.centers >= 0) & (data.centers <= 1))

    def test_deterministic(self):
        a = make_patch_dataset(n_samples=50, seed=3)
        b = make_patch_dataset(n_samples=50, seed=3)
        np.testing.assert_array_equal(a.patches, b.patches)

    def test_positive_patches_have_signature(self):
        rng = np.random.default_rng(0)
        bg = _background(rng, 16)
        vortex = _vortex(rng, 16, (8.0, 8.0))
        with_tc = bg + vortex
        assert with_tc[1].min() < bg[1].min() - 10  # pressure deficit
        assert with_tc[2].max() > bg[2].max() + 5   # wind

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            make_patch_dataset(10, positive_fraction=0.0)


class TestModel:
    def test_patch_divisibility(self):
        with pytest.raises(ValueError):
            TCLocalizer(patch=10)

    def test_untrained_predict_rejected(self):
        model = TCLocalizer(patch=16)
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 4, 16, 16)))

    def test_training_converges(self, trained):
        _, _, history = trained
        assert history.loss[-1] < history.loss[0] * 0.5

    def test_detection_skill(self, trained):
        model, _, _ = trained
        test_data = make_patch_dataset(n_samples=300, patch=16, seed=99)
        metrics = model.evaluate(test_data)
        assert metrics["accuracy"] >= 0.85
        assert metrics["center_error_cells"] <= 3.0

    def test_save_load_preserves_predictions(self, trained, tmp_path):
        model, data, _ = trained
        path = str(tmp_path / "tc.pkl")
        model.save(path)
        loaded = TCLocalizer.load(path)
        p1, c1 = model.predict(data.patches[:10])
        p2, c2 = loaded.predict(data.patches[:10])
        np.testing.assert_allclose(p1, p2)
        np.testing.assert_allclose(c1, c2)


class TestSnapshotPipeline:
    def test_localizes_vortex_in_global_snapshot(self, trained):
        model, _, _ = trained
        n_lat, n_lon = 48, 96
        lat = np.linspace(-87, 87, n_lat)
        lon = np.arange(0, 360, 360 / n_lon)
        rng = np.random.default_rng(5)

        # Build a quiet global background, then composite one vortex.
        fields = {}
        base = _background(rng, 16)  # reuse channel scales
        fields["T850"] = np.full((n_lat, n_lon), 270.0) + rng.normal(0, 1.5, (n_lat, n_lon))
        fields["PSL"] = np.full((n_lat, n_lon), 1013.0) + rng.normal(0, 1.0, (n_lat, n_lon))
        fields["WSPDSRFAV"] = np.abs(rng.normal(6.0, 1.5, (n_lat, n_lon)))
        fields["VORT850"] = rng.normal(0, 4e-6, (n_lat, n_lon))

        ci, cj = 30, 40  # inside one patch
        vortex = _vortex(np.random.default_rng(1), 16, (ci % 16, cj % 16))
        i0, j0 = (ci // 16) * 16, (cj // 16) * 16
        for ch_idx, name in enumerate(CHANNELS):
            fields[name][i0:i0 + 16, j0:j0 + 16] += vortex[ch_idx]

        found = localize_in_snapshot(model, fields, lat, lon, threshold=0.5)
        assert found, "no TC localized"
        best = max(found, key=lambda f: f[2])
        true_lat, true_lon = lat[ci], lon[cj]
        assert abs(best[0] - true_lat) < 15.0
        assert abs((best[1] - true_lon + 180) % 360 - 180) < 15.0

    def test_missing_channel_rejected(self, trained):
        model, _, _ = trained
        with pytest.raises(KeyError):
            localize_in_snapshot(model, {"PSL": np.zeros((16, 16))},
                                 np.zeros(16), np.zeros(16))

    def test_quiet_snapshot_mostly_empty(self, trained):
        model, _, _ = trained
        rng = np.random.default_rng(6)
        n_lat, n_lon = 32, 64
        fields = {
            "T850": np.full((n_lat, n_lon), 270.0) + rng.normal(0, 1.0, (n_lat, n_lon)),
            "PSL": np.full((n_lat, n_lon), 1013.0) + rng.normal(0, 0.8, (n_lat, n_lon)),
            "WSPDSRFAV": np.abs(rng.normal(6.0, 1.0, (n_lat, n_lon))),
            "VORT850": rng.normal(0, 3e-6, (n_lat, n_lon)),
        }
        found = localize_in_snapshot(
            model, fields, np.linspace(-80, 80, n_lat),
            np.arange(0, 360, 360 / n_lon), threshold=0.5,
        )
        assert len(found) <= 2  # at most a couple of false alarms
