"""The workflow registry HPCWaaS publishes deployed workflows into.

"The resulting workflow description, stored in the eFlows4HPC workflow
registry, is accessed via the HPCWaaS interface."  A record binds a
stable workflow id to its deployment and the Python entrypoint the
Execution API launches.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.hpcwaas.yorc import Deployment

#: Entry points take (cluster, params) and return a JSON-able result.
Entrypoint = Callable[..., Any]


@dataclass
class WorkflowRecord:
    workflow_id: str
    deployment: Deployment
    entrypoint: Entrypoint
    description: str = ""
    default_params: Dict[str, Any] = field(default_factory=dict)


class WorkflowRegistry:
    """Thread-safe id → workflow record store."""

    def __init__(self) -> None:
        self._records: Dict[str, WorkflowRecord] = {}
        self._lock = threading.Lock()

    def register(self, record: WorkflowRecord) -> None:
        with self._lock:
            if record.workflow_id in self._records:
                raise ValueError(
                    f"workflow {record.workflow_id!r} already registered"
                )
            self._records[record.workflow_id] = record

    def get(self, workflow_id: str) -> WorkflowRecord:
        with self._lock:
            try:
                return self._records[workflow_id]
            except KeyError:
                raise KeyError(f"unknown workflow {workflow_id!r}") from None

    def unregister(self, workflow_id: str) -> None:
        with self._lock:
            if workflow_id not in self._records:
                raise KeyError(f"unknown workflow {workflow_id!r}")
            del self._records[workflow_id]

    def list(self) -> List[str]:
        with self._lock:
            return sorted(self._records)
