"""Public PyCOMPSs-style API: decorators and synchronisation calls.

Usage mirrors the snippets in the paper's Listing 1::

    from repro.compss import task, compss_wait_on, COMPSs, INOUT

    @task(returns=object)
    def index_duration_max(client, duration, filename):
        ...

    with COMPSs(n_workers=8):
        result = index_duration_max(client, duration, "out.rnc")
        value = compss_wait_on(result)

Outside an active runtime, ``@task`` functions run synchronously (like
executing a PyCOMPSs application without ``runcompss``), which keeps
every task body directly unit-testable.
"""

from __future__ import annotations

import functools
import inspect
import threading
from typing import Any, Dict, Optional

from repro.compss.failures import OnFailure
from repro.compss.parameter import Direction
from repro.compss.runtime import COMPSsRuntime, RuntimeConfig, in_worker

_state = threading.local()
_global_runtime: Optional[COMPSsRuntime] = None
_global_lock = threading.Lock()


def get_runtime() -> Optional[COMPSsRuntime]:
    """The currently active runtime, or ``None`` in sequential mode."""
    return _global_runtime


def compss_start(**config_kwargs: Any) -> COMPSsRuntime:
    """Start a global runtime (idempotent start raises; stop first)."""
    global _global_runtime
    with _global_lock:
        if _global_runtime is not None:
            raise RuntimeError("a COMPSs runtime is already active")
        _global_runtime = COMPSsRuntime(RuntimeConfig(**config_kwargs))
        return _global_runtime


def compss_stop(wait: bool = True) -> None:
    """Stop the global runtime; no-op when none is active."""
    global _global_runtime
    with _global_lock:
        runtime, _global_runtime = _global_runtime, None
    if runtime is not None:
        runtime.stop(wait=wait)


class COMPSs:
    """Context manager for a scoped runtime::

        with COMPSs(n_workers=4) as rt:
            ...
            compss_barrier()

    On exit the runtime drains (barrier) and shuts down; task failures
    with the FAIL policy surface as exceptions at the exit barrier.
    """

    def __init__(self, **config_kwargs: Any) -> None:
        self._kwargs = config_kwargs
        self.runtime: Optional[COMPSsRuntime] = None

    def __enter__(self) -> COMPSsRuntime:
        self.runtime = compss_start(**self._kwargs)
        return self.runtime

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None and self.runtime is not None:
                self.runtime.barrier()
        finally:
            compss_stop(wait=exc_type is None)


def compss_wait_on(obj: Any, timeout: Optional[float] = None) -> Any:
    """Synchronise on futures (recursively through lists/tuples/dicts).

    In sequential mode values pass through unchanged.
    """
    runtime = get_runtime()
    if runtime is None:
        return obj
    return runtime.wait_on(obj, timeout=timeout)


def compss_barrier(timeout: Optional[float] = None) -> None:
    """Block until all submitted tasks finish; re-raises workflow failure."""
    runtime = get_runtime()
    if runtime is not None:
        runtime.barrier(timeout=timeout)


def task(
    returns: Any = 0,
    on_failure: Any = OnFailure.FAIL,
    max_retries: int = 2,
    priority: bool = False,
    label: Optional[str] = None,
    **param_directions: Direction,
):
    """Declare a Python function as a workflow task.

    Parameters
    ----------
    returns:
        Number of return values.  Accepts an int, or — for PyCOMPSs
        source compatibility — a type (``returns=object``) meaning 1.
    on_failure:
        :class:`~repro.compss.failures.OnFailure` policy or its name
        (``"RETRY"``, ``"IGNORE"``, ...).
    max_retries:
        Re-execution budget for the RETRY policy.
    priority:
        Scheduling hint honoured by :class:`PriorityPolicy`.
    label:
        Display name override in graphs and traces.
    **param_directions:
        Per-parameter directions, e.g. ``data=INOUT, out_path=FILE_OUT``.
        Undeclared parameters default to ``IN``.
    """
    if isinstance(returns, int):
        n_returns = returns
    elif returns is None:
        n_returns = 0
    else:
        n_returns = 1  # returns=object / returns=list style declarations
    if n_returns < 0:
        raise ValueError("returns must be >= 0")
    policy = OnFailure.coerce(on_failure)

    for name, direction in param_directions.items():
        if not isinstance(direction, Direction):
            raise TypeError(
                f"direction for parameter {name!r} must be a Direction, "
                f"got {type(direction).__name__}"
            )

    def decorator(fn):
        try:
            sig_params = list(inspect.signature(fn).parameters)
        except (TypeError, ValueError):  # pragma: no cover - builtins
            sig_params = []
        unknown = set(param_directions) - set(sig_params)
        if unknown:
            raise TypeError(
                f"@task on {fn.__name__!r}: directions declared for unknown "
                f"parameters {sorted(unknown)}"
            )
        constraint_units = getattr(fn, "_compss_computing_units", 1)

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            runtime = get_runtime()
            if runtime is None or in_worker():
                # Sequential mode / nested call inside a worker.
                return fn(*args, **kwargs)
            return runtime.submit(
                fn,
                func_name=fn.__name__,
                args=args,
                kwargs=kwargs,
                directions=dict(param_directions),
                param_names=sig_params,
                n_returns=n_returns,
                on_failure=policy,
                max_retries=max_retries,
                computing_units=getattr(wrapper, "_compss_computing_units", constraint_units),
                priority=priority,
                label=label,
            )

        wrapper._compss_task = True
        wrapper._compss_computing_units = constraint_units
        wrapper._compss_fn = fn
        return wrapper

    return decorator


def constraint(computing_units: int = 1, **_ignored: Any):
    """Attach resource constraints to a task (PyCOMPSs ``@constraint``).

    Apply *above* ``@task``::

        @constraint(computing_units=4)
        @task(returns=1)
        def heavy(x): ...

    Unknown constraint keys (``processor_architecture`` etc.) are
    accepted and ignored, as on homogeneous clusters.
    """
    if computing_units < 1:
        raise ValueError("computing_units must be >= 1")

    def decorator(fn):
        fn._compss_computing_units = computing_units
        return fn

    return decorator
