"""Runtime resubmission: retry accounting, transient faults, blacklists."""

import threading

import pytest

from repro.compss import (
    COMPSs,
    OnFailure,
    TaskCancelledError,
    TaskFailedError,
    compss_wait_on,
    task,
)
from repro.faults import FaultPlan, InjectedTaskError, TaskFaultInjector
from repro.observability.metrics import get_registry


class TransientBlip(RuntimeError):
    """User-marked retryable failure (the duck-typed contract)."""

    transient = True


class TestRetryAccounting:
    """``max_retries=N`` means exactly N re-executions: N+1 runs total."""

    def test_max_retries_2_runs_exactly_3_times(self):
        calls = []
        lock = threading.Lock()

        @task(returns=1, on_failure=OnFailure.RETRY, max_retries=2)
        def always_bad():
            with lock:
                calls.append(1)
            raise ValueError("permanent")

        with pytest.raises(TaskFailedError):
            with COMPSs(n_workers=2, retry_backoff_base=0.0):
                compss_wait_on(always_bad())
        assert len(calls) == 3

    def test_max_retries_0_runs_exactly_once(self):
        calls = []

        @task(returns=1, on_failure=OnFailure.RETRY, max_retries=0)
        def always_bad():
            calls.append(1)
            raise ValueError("permanent")

        with pytest.raises(TaskFailedError):
            with COMPSs(n_workers=2, retry_backoff_base=0.0):
                compss_wait_on(always_bad())
        assert len(calls) == 1

    def test_success_on_final_allowed_attempt(self):
        calls = []
        lock = threading.Lock()

        @task(returns=1, on_failure="RETRY", max_retries=2)
        def flaky():
            with lock:
                calls.append(1)
                if len(calls) < 3:
                    raise IOError("still warming up")
            return "ok"

        with COMPSs(n_workers=2, retry_backoff_base=0.0):
            assert compss_wait_on(flaky()) == "ok"
        assert len(calls) == 3

    def test_free_units_intact_after_retries(self):
        # Each failed attempt must release its computing units exactly
        # once; a double-free would let the pool over-subscribe.
        @task(returns=1, on_failure="RETRY", max_retries=3)
        def always_bad():
            raise ValueError("x")

        with pytest.raises(TaskFailedError):
            with COMPSs(n_workers=2, retry_backoff_base=0.0) as rt:
                compss_wait_on(always_bad())
        assert rt._free_units == rt.config.computing_units

    def test_retry_metric_carries_reason_label(self):
        before = get_registry().snapshot()

        @task(returns=1, on_failure="RETRY", max_retries=2)
        def always_bad():
            raise ValueError("x")

        with pytest.raises(TaskFailedError):
            with COMPSs(n_workers=2, retry_backoff_base=0.0):
                compss_wait_on(always_bad())
        delta = get_registry().snapshot().delta(before)
        assert delta.value(
            "compss_tasks_retried_total",
            function="always_bad", reason="policy",
        ) == 2


class TestTransientResubmission:
    def test_transient_failures_retried_under_fail_policy(self):
        calls = []
        lock = threading.Lock()

        @task(returns=1)  # default policy: FAIL
        def shaky():
            with lock:
                calls.append(1)
                if len(calls) < 3:
                    raise TransientBlip("fs hiccup")
            return 42

        with COMPSs(n_workers=2, retry_backoff_base=0.0):
            assert compss_wait_on(shaky()) == 42
        assert len(calls) == 3

    def test_transient_budget_exhaustion_fails_task(self):
        calls = []
        lock = threading.Lock()

        @task(returns=1)
        def cursed():
            with lock:
                calls.append(1)
            raise TransientBlip("never heals")

        with pytest.raises(TaskFailedError) as err:
            with COMPSs(n_workers=2, retry_backoff_base=0.0,
                        transient_retries=2):
                compss_wait_on(cursed())
        assert len(calls) == 3  # initial run + the 2-deep transient budget
        assert isinstance(err.value.__cause__, TransientBlip)

    def test_transient_budget_separate_from_retry_budget(self):
        calls = []
        lock = threading.Lock()

        @task(returns=1, on_failure="RETRY", max_retries=1)
        def mixed():
            with lock:
                calls.append(1)
                n = len(calls)
            if n == 1:
                raise TransientBlip("infrastructure")   # transient budget
            if n <= 3:
                raise ValueError("application bug")      # RETRY budget
            return "recovered"

        # transient failures must not consume RETRY attempts: after the
        # blip, max_retries=1 still allows one re-execution of the
        # application failure — which here fails again, exhausting RETRY.
        with pytest.raises(TaskFailedError):
            with COMPSs(n_workers=2, retry_backoff_base=0.0,
                        transient_retries=5):
                compss_wait_on(mixed())
        assert len(calls) == 3  # blip + first app failure + one retry

    def test_injected_task_faults_flow_through_retry(self):
        # 0.45 per-attempt rate with a 6-deep transient budget: the
        # probability all tasks exhaust it is ~0.8%, and the seed below
        # is fixed, so this is deterministic in practice.
        plan = FaultPlan(seed=9, task_error_rate=0.45)
        injector = TaskFaultInjector(plan)

        @task(returns=1)
        def add(a, b):
            return a + b

        before = get_registry().snapshot()
        with COMPSs(n_workers=2, retry_backoff_base=0.0,
                    fault_injector=injector):
            outs = [add(i, i) for i in range(12)]
            assert compss_wait_on(outs) == [2 * i for i in range(12)]
        delta = get_registry().snapshot().delta(before)
        assert delta.value("faults_injected_total", kind="task_exception") > 0
        assert delta.value(
            "compss_tasks_retried_total", reason="transient"
        ) > 0


class TestBlacklistGrace:
    def test_pinned_workers_cannot_starve_a_retrying_task(self):
        # Regression for a real deadlock: the only non-blacklisted
        # worker is pinned by a task that (transitively) waits for the
        # retrying one.  The blacklist is advisory — after the grace
        # period any worker may pick the task back up.
        unblock = threading.Event()
        failed_once = []

        @task(returns=1)
        def flaky():
            if not failed_once:
                failed_once.append(1)
                raise TransientBlip("first attempt dies")
            unblock.set()
            return "done"

        @task(returns=1)
        def pinned():
            # Occupies its worker until flaky() succeeds.
            assert unblock.wait(timeout=10)
            return "released"

        with COMPSs(n_workers=2, retry_backoff_base=0.0,
                    blacklist_grace_s=0.05) as rt:
            p = pinned()
            f = flaky()
            assert compss_wait_on(f, timeout=8) == "done"
            assert compss_wait_on(p, timeout=8) == "released"
        assert not rt.failed


class TestCancellationCause:
    def test_cancelled_tasks_chain_the_triggering_failure(self):
        # Chaos harnesses walk __cause__ to decide whether a dead run
        # was the injector's doing; cancellations must not break the chain.
        @task(returns=1)
        def boom():
            raise InjectedTaskError("boom", 0)

        @task(returns=1)
        def follow(x):
            return x

        with pytest.raises(TaskFailedError):
            with COMPSs(n_workers=2, transient_retries=0) as rt:
                f = follow(boom())
                rt.barrier(raise_on_error=False)
                with pytest.raises(TaskCancelledError) as cancelled:
                    compss_wait_on(f)
                cause = cancelled.value.__cause__
                assert isinstance(cause, TaskFailedError)
                assert isinstance(cause.__cause__, InjectedTaskError)
