"""Container service, DLS, Yorc orchestration, registry and API tests."""

import time

import pytest

from repro.cluster import laptop_like
from repro.cluster.lsf import JobError
from repro.hpcwaas import (
    Alien4Cloud,
    ContainerImageCreationService,
    DataLogisticsService,
    DataMovement,
    DeploymentState,
    DLSError,
    ExecutionState,
    HPCWaaSAPI,
    WorkflowRecord,
    WorkflowRegistry,
    YorcOrchestrator,
    topology_from_yaml,
)

TOSCA = """
metadata:
  template_name: demo-app
topology_template:
  inputs:
    years:
      default: [2030]
  node_templates:
    compute:
      type: eflows.nodes.ComputeAccess
      properties:
        queue: p_short
    runtime_image:
      type: eflows.nodes.ContainerRuntime
      properties:
        packages: [numpy, tensorflow]
        target_platform: x86_64
      artifacts:
        container:
          name: climate-runtime
      requirements:
        - host: compute
    baseline_data:
      type: eflows.nodes.DataPipeline
      properties:
        pipeline: stage_baseline
      requirements:
        - host: compute
    env:
      type: eflows.nodes.PythonEnvironment
      properties:
        packages: [pyophidia, pycompss]
      requirements:
        - host: compute
    app:
      type: eflows.nodes.PyCOMPSsApplication
      properties:
        entrypoint: demo.main
        arguments:
          n_workers: 2
      requirements:
        - dependency: runtime_image
        - dependency: baseline_data
        - dependency: env
"""


@pytest.fixture
def cluster(tmp_path):
    with laptop_like(scratch_root=str(tmp_path)) as c:
        yield c


@pytest.fixture
def orchestrator():
    yorc = YorcOrchestrator()
    yorc.dls.register_pipeline(
        "stage_baseline",
        [DataMovement(destination="baselines/climatology.bin",
                      producer=lambda: b"\x00" * 128)],
    )
    return yorc


class TestContainerService:
    def test_build_and_reference(self):
        svc = ContainerImageCreationService()
        image = svc.build("rt", ["numpy", "scipy"])
        assert image.reference.startswith("rt@sha256:")
        assert image.packages == ("numpy", "scipy")

    def test_cache_hit_on_same_spec(self):
        svc = ContainerImageCreationService()
        a = svc.build("rt", ["scipy", "numpy"])
        b = svc.build("rt", ["numpy", "scipy"])  # order-insensitive
        assert a.digest == b.digest
        assert svc.builds == 1
        assert svc.cache_hits == 1

    def test_different_platform_different_image(self):
        svc = ContainerImageCreationService()
        a = svc.build("rt", ["numpy"], target_platform="x86_64")
        b = svc.build("rt", ["numpy"], target_platform="ppc64le")
        assert a.digest != b.digest
        assert svc.builds == 2

    def test_get_by_digest(self):
        svc = ContainerImageCreationService()
        image = svc.build("rt", [])
        assert svc.get(image.digest) is image
        assert svc.get("nope") is None

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ContainerImageCreationService().build("", [])


class TestDLS:
    def test_producer_pipeline(self, cluster):
        dls = DataLogisticsService()
        dls.register_pipeline(
            "p", [DataMovement(destination="data/x.bin", producer=lambda: b"abc")]
        )
        moved = dls.execute("p", cluster.filesystem)
        assert moved == 3
        assert cluster.filesystem.read_bytes("data/x.bin") == b"abc"
        assert dls.transfers == 1

    def test_host_source_pipeline(self, cluster, tmp_path):
        src = tmp_path / "ext.bin"
        src.write_bytes(b"external payload")
        dls = DataLogisticsService()
        dls.register_pipeline("p", [DataMovement(destination="in/ext.bin",
                                                 source=str(src))])
        dls.execute("p", cluster.filesystem)
        assert cluster.filesystem.read_bytes("in/ext.bin") == b"external payload"

    def test_relative_source_copy(self, cluster):
        cluster.filesystem.write_bytes("a.bin", b"xy")
        dls = DataLogisticsService()
        dls.register_pipeline(
            "p", [DataMovement(destination="b.bin", source="a.bin",
                               source_is_relative=True)]
        )
        dls.execute("p", cluster.filesystem)
        assert cluster.filesystem.read_bytes("b.bin") == b"xy"

    def test_unknown_pipeline(self, cluster):
        with pytest.raises(DLSError):
            DataLogisticsService().execute("ghost", cluster.filesystem)

    def test_missing_source_fails(self, cluster):
        dls = DataLogisticsService()
        dls.register_pipeline("p", [DataMovement(destination="x", source="/no/such")])
        with pytest.raises(DLSError):
            dls.execute("p", cluster.filesystem)

    def test_movement_validation(self):
        with pytest.raises(ValueError):
            DataMovement(destination="x")
        with pytest.raises(ValueError):
            DataMovement(destination="x", source="s", producer=lambda: b"")
        with pytest.raises(ValueError):
            DataLogisticsService().register_pipeline("p", [])

    def test_duplicate_pipeline_rejected(self):
        dls = DataLogisticsService()
        m = [DataMovement(destination="x", producer=lambda: b"")]
        dls.register_pipeline("p", m)
        with pytest.raises(ValueError):
            dls.register_pipeline("p", m)


class TestYorcDeployment:
    def test_full_deploy(self, cluster, orchestrator):
        topo = topology_from_yaml(TOSCA)
        deployment = orchestrator.deploy(topo, cluster)
        assert deployment.state is DeploymentState.DEPLOYED
        assert deployment.provisioned["runtime_image"]["kind"] == "container"
        assert deployment.provisioned["baseline_data"]["bytes"] == 128
        assert cluster.filesystem.exists("baselines/climatology.bin")
        assert cluster.filesystem.exists("deployments/demo-app/envs/env/manifest.json")
        assert cluster.filesystem.exists("deployments/demo-app/deployment.json")
        assert deployment.application is not None
        assert deployment.application.name == "app"

    def test_deploy_order_is_requirements_first(self, cluster, orchestrator):
        topo = topology_from_yaml(TOSCA)
        deployment = orchestrator.deploy(topo, cluster)
        names = list(deployment.provisioned)
        assert names.index("compute") < names.index("runtime_image")
        assert names.index("runtime_image") < names.index("app")

    def test_unknown_type_fails_deployment(self, cluster, orchestrator):
        bad = """
metadata:
  template_name: bad-app
topology_template:
  node_templates:
    odd:
      type: eflows.nodes.QuantumAccelerator
"""
        topo = topology_from_yaml(bad)
        with pytest.raises(Exception):
            orchestrator.deploy(topo, cluster)
        deployment = orchestrator.get(2) if 2 in orchestrator._deployments else None
        failed = [d for d in orchestrator._deployments.values()
                  if d.state is DeploymentState.FAILED]
        assert failed

    def test_execution_time_pipeline_deferred(self, cluster, orchestrator):
        orchestrator.dls.register_pipeline(
            "late", [DataMovement(destination="late.bin", producer=lambda: b"z")]
        )
        text = TOSCA + """
    late_data:
      type: eflows.nodes.DataPipeline
      properties:
        pipeline: late
        when: execution
      requirements:
        - host: compute
"""
        topo = topology_from_yaml(text.replace("template_name: demo-app",
                                               "template_name: demo-app2"))
        deployment = orchestrator.deploy(topo, cluster)
        assert "late" in deployment.execution_pipelines
        assert not cluster.filesystem.exists("late.bin")

    def test_undeploy_lifecycle(self, cluster, orchestrator):
        topo = topology_from_yaml(TOSCA)
        deployment = orchestrator.deploy(topo, cluster)
        orchestrator.undeploy(deployment)
        assert deployment.state is DeploymentState.UNDEPLOYED
        with pytest.raises(RuntimeError):
            orchestrator.undeploy(deployment)

    def test_two_applications_rejected(self, cluster, orchestrator):
        text = TOSCA + """
    app2:
      type: eflows.nodes.PyCOMPSsApplication
      properties:
        entrypoint: other.main
"""
        topo = topology_from_yaml(text.replace("demo-app", "demo-app3"))
        with pytest.raises(Exception):
            orchestrator.deploy(topo, cluster)


class TestRegistryAndAPI:
    def _published(self, cluster, orchestrator, entrypoint):
        a4c = Alien4Cloud(orchestrator=orchestrator)
        a4c.upload_topology(topology_from_yaml(TOSCA))
        a4c.set_parameters("demo-app", region="global")
        deployment = a4c.deploy("demo-app", cluster)
        record = a4c.publish_workflow("climate-extremes-wf", deployment, entrypoint)
        api = HPCWaaSAPI(a4c.registry, orchestrator=orchestrator)
        return a4c, api, record

    def test_invoke_and_result(self, cluster, orchestrator):
        def entrypoint(cl, params):
            return {"cluster": cl.name, "params": params}

        _, api, record = self._published(cluster, orchestrator, entrypoint)
        assert api.list_workflows() == ["climate-extremes-wf"]
        execution = api.invoke("climate-extremes-wf", years=[2031])
        result = execution.wait(timeout=10)
        assert api.status(execution.execution_id) is ExecutionState.COMPLETED
        assert result["params"]["years"] == [2031]          # user override
        assert result["params"]["n_workers"] == 2           # app default
        assert result["params"]["region"] == "global"       # a4c parameter
        assert api.result(execution.execution_id) == result

    def test_default_params_from_inputs(self, cluster, orchestrator):
        captured = {}

        def entrypoint(cl, params):
            captured.update(params)

        _, api, _ = self._published(cluster, orchestrator, entrypoint)
        api.invoke("climate-extremes-wf").wait(timeout=10)
        assert captured["years"] == [2030]  # topology input default

    def test_failed_workflow_surfaces(self, cluster, orchestrator):
        def entrypoint(cl, params):
            raise RuntimeError("science went wrong")

        _, api, _ = self._published(cluster, orchestrator, entrypoint)
        execution = api.invoke("climate-extremes-wf")
        with pytest.raises(JobError):
            execution.wait(timeout=10)
        assert execution.state is ExecutionState.FAILED
        assert isinstance(execution.error, RuntimeError)
        with pytest.raises(RuntimeError):
            _ = execution.result

    def test_invoke_undeployed_rejected(self, cluster, orchestrator):
        a4c, api, record = self._published(cluster, orchestrator, lambda c, p: 1)
        a4c.undeploy(record.deployment)
        with pytest.raises(RuntimeError):
            api.invoke("climate-extremes-wf")

    def test_execution_pipeline_runs_before_workflow(self, cluster, orchestrator):
        orchestrator.dls.register_pipeline(
            "late", [DataMovement(destination="late.bin", producer=lambda: b"z")]
        )

        def entrypoint(cl, params):
            # Deferred pipeline must have landed by now.
            return cl.filesystem.exists("late.bin")

        a4c = Alien4Cloud(orchestrator=orchestrator)
        text = TOSCA + """
    late_data:
      type: eflows.nodes.DataPipeline
      properties:
        pipeline: late
        when: execution
      requirements:
        - host: compute
"""
        a4c.upload_topology(topology_from_yaml(text.replace("demo-app", "demo-app4")))
        deployment = a4c.deploy("demo-app4", cluster)
        a4c.publish_workflow("wf4", deployment, entrypoint)
        api = HPCWaaSAPI(a4c.registry, orchestrator=orchestrator)
        assert api.invoke("wf4").wait(timeout=10) is True

    def test_registry_duplicate_and_unknown(self, cluster, orchestrator):
        registry = WorkflowRegistry()
        _, _, record = self._published(cluster, orchestrator, lambda c, p: 1)
        registry.register(WorkflowRecord("w", record.deployment, lambda c, p: 1))
        with pytest.raises(ValueError):
            registry.register(WorkflowRecord("w", record.deployment, lambda c, p: 1))
        with pytest.raises(KeyError):
            registry.get("ghost")
        registry.unregister("w")
        with pytest.raises(KeyError):
            registry.unregister("w")

    def test_executions_listing(self, cluster, orchestrator):
        _, api, _ = self._published(cluster, orchestrator, lambda c, p: 1)
        e1 = api.invoke("climate-extremes-wf")
        e2 = api.invoke("climate-extremes-wf")
        e1.wait(timeout=10)
        e2.wait(timeout=10)
        assert [e.execution_id for e in api.executions()] == [
            e1.execution_id, e2.execution_id
        ]
        assert len(api.executions("climate-extremes-wf")) == 2
        with pytest.raises(KeyError):
            api.status(10**9)

    def test_invocation_lands_on_declared_queue(self, cluster, orchestrator):
        """The TOSCA ComputeAccess queue drives the LSF submission."""
        _, api, _ = self._published(cluster, orchestrator, lambda c, p: 1)
        execution = api.invoke("climate-extremes-wf")
        execution.wait(timeout=10)
        assert execution.job.queue.name == "p_short"  # from the TOSCA

    def test_upload_duplicate_topology_rejected(self, cluster, orchestrator):
        a4c = Alien4Cloud(orchestrator=orchestrator)
        a4c.upload_topology(topology_from_yaml(TOSCA))
        with pytest.raises(ValueError):
            a4c.upload_topology(topology_from_yaml(TOSCA))

    def test_set_parameters_unknown_topology(self):
        with pytest.raises(KeyError):
            Alien4Cloud().set_parameters("ghost", x=1)
