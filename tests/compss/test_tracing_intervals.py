"""Tracer interval arithmetic and Gantt edge cases."""

import pytest

from repro.compss.tracing import (
    TaskEvent,
    Tracer,
    _interval_overlap,
    _merge_intervals,
)


def _event(func, start, end, task_id=1, worker=0):
    return TaskEvent(task_id, func, worker, start, end, "COMPLETED")


class TestMergeIntervals:
    def test_empty(self):
        assert _merge_intervals([]) == []

    def test_disjoint_sorted(self):
        assert _merge_intervals([(3, 4), (0, 1)]) == [(0, 1), (3, 4)]

    def test_overlapping_merge(self):
        assert _merge_intervals([(0, 2), (1, 5), (4, 6)]) == [(0, 6)]

    def test_touching_intervals_merge(self):
        # start == previous end counts as contiguous, not a gap.
        assert _merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_contained_interval_absorbed(self):
        assert _merge_intervals([(0, 10), (2, 3)]) == [(0, 10)]

    def test_single_point_intervals(self):
        assert _merge_intervals([(1, 1), (1, 1), (2, 2)]) == [(1, 1), (2, 2)]


class TestIntervalOverlap:
    def test_no_overlap(self):
        assert _interval_overlap([(0, 1)], [(2, 3)]) == 0.0

    def test_touching_is_zero(self):
        assert _interval_overlap([(0, 1)], [(1, 2)]) == 0.0

    def test_partial_and_multiple(self):
        a = [(0, 5), (10, 15)]
        b = [(3, 12)]
        assert _interval_overlap(a, b) == pytest.approx(2 + 2)

    def test_either_side_empty(self):
        assert _interval_overlap([], [(0, 1)]) == 0.0
        assert _interval_overlap([(0, 1)], []) == 0.0


class TestOverlapGroupSeconds:
    def _tracer(self, events):
        tracer = Tracer()
        for e in events:
            tracer.record(e)
        return tracer

    def test_group_union_counts_each_second_once(self):
        # Two analytics tasks cover the same wall-clock window: the
        # overlap with the producer must not double-count it.
        tracer = self._tracer([
            _event("esm", 0.0, 10.0, task_id=1),
            _event("ana", 2.0, 6.0, task_id=2, worker=1),
            _event("ana", 3.0, 7.0, task_id=3, worker=2),
        ])
        assert tracer.overlap_group_seconds("esm", {"ana"}) == pytest.approx(5.0)

    def test_empty_group_is_zero(self):
        tracer = self._tracer([_event("esm", 0.0, 10.0)])
        assert tracer.overlap_group_seconds("esm", set()) == 0.0

    def test_missing_producer_is_zero(self):
        tracer = self._tracer([_event("ana", 0.0, 1.0)])
        assert tracer.overlap_group_seconds("esm", {"ana"}) == 0.0

    def test_group_accepts_list(self):
        tracer = self._tracer([
            _event("esm", 0.0, 4.0, task_id=1),
            _event("a", 1.0, 2.0, task_id=2, worker=1),
            _event("b", 3.0, 5.0, task_id=3, worker=2),
        ])
        assert tracer.overlap_group_seconds("esm", ["a", "b"]) == pytest.approx(2.0)


class TestGanttClamp:
    def _tracer(self):
        tracer = Tracer()
        tracer.record(_event("alpha", 0.0, 0.5, task_id=1, worker=0))
        tracer.record(_event("beta", 0.4, 1.0, task_id=2, worker=1))
        return tracer

    @pytest.mark.parametrize("width", [0, 1, 7, -5])
    def test_narrow_width_clamps_to_minimum(self, width):
        # Regression: width < 8 used to paint zero-width/out-of-bounds
        # bars; it now renders as an 8-column chart.
        lines = self._tracer().gantt(width=width).splitlines()
        bars = [line for line in lines if line.startswith("w")]
        assert len(bars) == 2
        for line in bars:
            assert len(line.split("|")[1]) == 8
        assert any("a" in line for line in bars)
        assert any("b" in line for line in bars)

    def test_wide_chart_unchanged(self):
        lines = self._tracer().gantt(width=40).splitlines()
        bars = [line for line in lines if line.startswith("w")]
        assert all(len(line.split("|")[1]) == 40 for line in bars)

    def test_no_events(self):
        assert Tracer().gantt(width=3) == "(no events)"

    def test_zero_duration_event_paints_one_cell(self):
        tracer = Tracer()
        tracer.record(_event("x", 1.0, 1.0))
        bars = [line for line in tracer.gantt(width=10).splitlines()
                if line.startswith("w")]
        assert bars[0].count("x") == 1
