"""The HPCWaaS Execution API.

"Once the workflow is deployed, it is published to the HPCWaaS
Execution API which allows final users to run the deployed workflow as
a simple REST invocation."  The API here is in-process but keeps the
REST shape: ``invoke`` returns an execution handle immediately; the
workflow runs as a batch job on the deployment's cluster (the PyCOMPSs
master job); status/result/logs are polled by execution id.

Deferred Data Logistics pipelines (``when: execution``) run right
before the application launches.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.lsf import Job, JobError, JobState
from repro.hpcwaas.registry import WorkflowRegistry
from repro.hpcwaas.yorc import DeploymentState, YorcOrchestrator
from repro.observability.events import emit_event
from repro.observability.metrics import get_registry
from repro.observability.spans import maybe_span, span


class ExecutionState(enum.Enum):
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def terminal(self) -> bool:
        return self in (
            ExecutionState.COMPLETED, ExecutionState.FAILED, ExecutionState.CANCELLED
        )


_JOB_TO_EXEC = {
    JobState.PEND: ExecutionState.PENDING,
    JobState.RUN: ExecutionState.RUNNING,
    JobState.DONE: ExecutionState.COMPLETED,
    JobState.EXIT: ExecutionState.FAILED,
    JobState.KILLED: ExecutionState.CANCELLED,
}


@dataclass
class Execution:
    """One workflow run triggered through the API."""

    execution_id: int
    workflow_id: str
    params: Dict[str, Any]
    job: Job
    submitted_at: float = field(default_factory=time.monotonic)

    @property
    def state(self) -> ExecutionState:
        return _JOB_TO_EXEC[self.job.state]

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block for the result; re-raises workflow failure as JobError."""
        return self.job.wait(timeout)

    @property
    def result(self) -> Any:
        if self.state is not ExecutionState.COMPLETED:
            raise RuntimeError(
                f"execution {self.execution_id} is {self.state.value}, no result"
            )
        return self.job.result

    @property
    def error(self) -> Optional[BaseException]:
        return self.job.exception


class HPCWaaSAPI:
    """REST-shaped entry point for final users."""

    def __init__(
        self,
        registry: WorkflowRegistry,
        orchestrator: Optional[YorcOrchestrator] = None,
    ) -> None:
        self.registry = registry
        self.orchestrator = orchestrator
        # Per-instance: two independent API services (e.g. two tenancy
        # control planes in one process, or two tests) must not
        # interleave execution ids through a shared class-level counter.
        self._ids = itertools.count(1)
        self._executions: Dict[int, Execution] = {}
        self._lock = threading.Lock()

    # -- user-facing verbs ------------------------------------------------------

    def list_workflows(self) -> List[str]:
        """GET /workflows"""
        return self.registry.list()

    def invoke(
        self,
        workflow_id: str,
        cores: int = 1,
        memory_gb: float = 0.0,
        **params: Any,
    ) -> Execution:
        """POST /workflows/<id>/executions — returns immediately.

        The workflow executes as a batch job on the cluster that hosts
        its deployment; user params override the published defaults.
        *cores* and *memory_gb* size the batch allocation (the service
        layer uses them to pack concurrent runs onto one cluster).
        """
        record = self.registry.get(workflow_id)
        deployment = record.deployment
        if deployment.state is not DeploymentState.DEPLOYED:
            raise RuntimeError(
                f"workflow {workflow_id!r} deployment is "
                f"{deployment.state.value}; deploy it first"
            )
        merged = dict(record.default_params)
        merged.update(params)

        registry = get_registry()
        registry.counter(
            "hpcwaas_invocations_total", "Workflow invocations by workflow id",
            labels=("workflow",),
        ).inc(workflow=workflow_id)

        def run_workflow():
            with maybe_span(f"execute:{workflow_id}", layer="hpcwaas") as handle:
                try:
                    if self.orchestrator is not None:
                        for pipeline in deployment.execution_pipelines:
                            with maybe_span(f"dls:{pipeline}",
                                            layer="hpcwaas"):
                                self.orchestrator.dls.execute(
                                    pipeline, deployment.cluster.filesystem
                                )
                    result = record.entrypoint(deployment.cluster, merged)
                except BaseException:
                    handle.set_status("ERROR")
                    registry.counter(
                        "hpcwaas_executions_total",
                        "Finished executions by outcome",
                        labels=("workflow", "outcome"),
                    ).inc(workflow=workflow_id, outcome="failed")
                    raise
                registry.counter(
                    "hpcwaas_executions_total",
                    "Finished executions by outcome",
                    labels=("workflow", "outcome"),
                ).inc(workflow=workflow_id, outcome="completed")
                return result

        # The TOSCA ComputeAccess template declares the target queue.  A
        # declared queue the scheduler does not configure used to fall
        # back to the default queue *silently* — a deployment bug that
        # surfaced only as wrong dispatch priority.  The fallback is now
        # loud: a WARNING event plus the hpcwaas_queue_fallbacks_total
        # counter, so tests and SLOs can assert it never happens.
        queue = None
        declared = None
        for record_ in deployment.provisioned.values():
            if record_.get("kind") == "compute":
                declared = record_.get("queue")
                if declared in deployment.cluster.scheduler.queues:
                    queue = declared
                break
        if declared is not None and queue is None:
            registry.counter(
                "hpcwaas_queue_fallbacks_total",
                "Invocations whose declared TOSCA queue was not configured "
                "on the target scheduler (fell back to the default queue)",
                labels=("workflow", "declared"),
            ).inc(workflow=workflow_id, declared=str(declared))
            emit_event(
                "WARNING", "hpcwaas", "queue_fallback",
                f"workflow {workflow_id}: declared queue {declared!r} not "
                "configured on the target scheduler; falling back to the "
                "default queue",
                workflow=workflow_id, declared=str(declared),
                configured=sorted(deployment.cluster.scheduler.queues),
            )
        # A root span around submission: an API invocation with no
        # surrounding trace starts one, and the batch job (which captures
        # this context in ``bsub``) joins it.
        with span(f"invoke:{workflow_id}", layer="hpcwaas",
                  attrs={"workflow": workflow_id, "queue": queue or "",
                         "cores": cores}):
            job = deployment.cluster.scheduler.bsub(
                run_workflow, name=f"hpcwaas-{workflow_id}", queue=queue,
                cores=cores, memory_gb=memory_gb,
            )
        execution = Execution(next(self._ids), workflow_id, merged, job)
        with self._lock:
            self._executions[execution.execution_id] = execution
        return execution

    def status(self, execution_id: int) -> ExecutionState:
        """GET /executions/<id>/status"""
        return self._get(execution_id).state

    def result(self, execution_id: int) -> Any:
        """GET /executions/<id>/result"""
        return self._get(execution_id).result

    def cancel(self, execution_id: int) -> bool:
        """DELETE /executions/<id> — only pending executions can cancel.

        Returns True when the pending execution was dequeued.  Running
        executions cannot be preempted (their batch job is a live
        thread) and terminal executions have nothing to cancel: both
        return False, and no ``bkill`` is issued for terminal ones.
        """
        execution = self._get(execution_id)
        if execution.state.terminal:
            return False
        scheduler = self.registry.get(execution.workflow_id).deployment.cluster.scheduler
        # A PEND job is dequeued; a RUN job returns False.  The job may
        # race into a terminal state between the check above and here —
        # bkill answers False for that too.
        return scheduler.bkill(execution.job.job_id)

    def executions(self, workflow_id: Optional[str] = None) -> List[Execution]:
        """GET /executions[?workflow=...]"""
        with self._lock:
            out = sorted(self._executions.values(), key=lambda e: e.execution_id)
        if workflow_id is None:
            return out
        return [e for e in out if e.workflow_id == workflow_id]

    def _get(self, execution_id: int) -> Execution:
        with self._lock:
            try:
                return self._executions[execution_id]
            except KeyError:
                raise KeyError(f"unknown execution {execution_id}") from None
