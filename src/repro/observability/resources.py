"""Per-process resource sampling: CPU seconds and resident set size.

Every process that participates in a workflow run — the driver and each
spawn-based pool worker — carries one :class:`ResourceSampler` per role.
Samples land in the process-local metrics registry as two families:

* ``process_cpu_seconds_total{role,pid}`` — counter of user+system CPU
  consumed by this process, from :func:`resource.getrusage` (no psutil);
* ``process_rss_bytes{role,pid}`` — gauge of the current resident set,
  from ``/proc/self/statm`` (falling back to ``ru_maxrss`` where procfs
  is unavailable, e.g. macOS).

Workers ship their registry delta back to the driver through the
telemetry envelope (:mod:`repro.observability.shipping`), so one merged
snapshot answers "how much CPU and memory did this run burn, per
process role" no matter how many processes executed it.
"""

from __future__ import annotations

import os
import resource
import threading
from typing import Dict, Optional

from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = [
    "ResourceSampler",
    "process_sampler",
    "sample_process_resources",
]


def _cpu_seconds() -> float:
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_utime + usage.ru_stime


def _rss_bytes() -> float:
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            fields = fh.read().split()
        return float(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        # ru_maxrss is kilobytes on Linux (and a high-water mark, not
        # the current RSS) — a serviceable fallback off procfs systems.
        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024.0


class ResourceSampler:
    """Emit CPU/RSS metrics for this process under a fixed *role* label."""

    def __init__(self, role: str, registry: Optional[MetricsRegistry] = None) -> None:
        self.role = role
        self.pid = str(os.getpid())
        self._registry = registry
        self._last_cpu: Optional[float] = None
        self._lock = threading.Lock()

    def _reg(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def sample(self, baseline_only: bool = False) -> None:
        """Take one sample.

        With *baseline_only* the current CPU total is remembered but not
        emitted — the driver calls this when a run begins, so CPU burned
        before the run never pollutes the run's snapshot delta.  The
        first non-baseline sample with no prior baseline emits the full
        cumulative CPU (right for workers: spawn and import cost is part
        of what the run paid for).
        """
        registry = self._reg()
        cpu = _cpu_seconds()
        with self._lock:
            if not baseline_only:
                delta = cpu if self._last_cpu is None else cpu - self._last_cpu
                if delta > 0:
                    registry.counter(
                        "process_cpu_seconds_total",
                        "User+system CPU seconds consumed, by process",
                        ("role", "pid"),
                    ).inc(delta, role=self.role, pid=self.pid)
            self._last_cpu = cpu
        registry.gauge(
            "process_rss_bytes",
            "Current resident set size, by process",
            ("role", "pid"),
        ).set(_rss_bytes(), role=self.role, pid=self.pid)


_samplers: Dict[str, ResourceSampler] = {}
_samplers_lock = threading.Lock()


def process_sampler(role: str) -> ResourceSampler:
    """The process-wide sampler for *role* (one per role, per process)."""
    with _samplers_lock:
        sampler = _samplers.get(role)
        if sampler is None or sampler.pid != str(os.getpid()):
            sampler = _samplers[role] = ResourceSampler(role)
        return sampler


def sample_process_resources(role: str, baseline_only: bool = False) -> None:
    """Shorthand: sample into the process-wide registry under *role*."""
    process_sampler(role).sample(baseline_only=baseline_only)
