#!/usr/bin/env python3
"""Heat/cold-wave indices through the Ophidia operator pipeline.

The domain-science half of the paper's §5.3, stand-alone: simulate a
full year of CMCC-CM3 output, load the daily maxima and the baseline
climatology into datacubes, and run the exact operator chain of the
paper's Listing 1 (intercube → oph_predicate → runlength → reductions)
to produce the three index maps.  Cross-checks the pipeline against the
NumPy reference implementation and renders the Figure-4 map.

Usage::

    python examples/heatwave_indices.py [--days 365] [--nfrag 4]
"""

import argparse

import numpy as np

from repro.analytics import (
    compute_heatwave_indices,
    ophidia_wave_pipeline,
    render_ascii_map,
    validate_indices,
)
from repro.analytics.heatwaves import WaveIndices
from repro.cluster import laptop_like
from repro.esm import CMCCCM3, ModelConfig
from repro.ophidia import Client, Cube, OphidiaServer
from repro.workflow import tasks


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=365)
    parser.add_argument("--nfrag", type=int, default=4)
    parser.add_argument("--year", type=int, default=2030)
    args = parser.parse_args()

    with laptop_like() as cluster:
        fs = cluster.filesystem
        print(f"simulating {args.days} days of {args.year} ...")
        model = CMCCCM3(ModelConfig(n_lat=24, n_lon=36, seed=7))
        truth = model.run_year(args.year, fs, n_days=args.days)
        model.write_baseline(fs, n_days=args.days)
        windows = [
            (ev["start_doy"], ev["start_doy"] + ev["duration_days"] - 1)
            for ev in truth["heat_waves"]
        ]
        inside = sum(1 for _, end in windows if end <= args.days)
        print(f"injected heat waves: {len(windows)} at day windows {windows} "
              f"({inside} inside the first {args.days} days)")

        with OphidiaServer(n_io_servers=2, n_cores=4, filesystem=fs) as server:
            client = Client(server)
            paths = fs.glob("esm_output", "cmcc_cm3_*.rnc")
            print(f"importing {len(paths)} daily files into datacubes ...")
            tmax, _ = tasks.load_year_cubes(client, paths, nfrag=args.nfrag)
            base, _ = tasks.load_baseline_cubes(
                client, "baselines/climatology.rnc", args.nfrag, args.days
            )
            print(f"data cube: {tmax}")

            print("running the Listing-1 operator pipeline ...")
            dmax, number, freq = ophidia_wave_pipeline(
                tmax, base, kind="heat", export_path="results",
                name_prefix=f"hw_{args.year}",
            )

            indices = WaveIndices(
                dmax.to_array().astype(np.int32),
                number.to_array().astype(np.int32),
                freq.to_array(),
            )
            stats = validate_indices(indices, n_days=args.days)
            print(f"validation: {stats}")

            # Cross-check against the NumPy reference implementation.
            ref = compute_heatwave_indices(
                tmax.to_array().astype(np.float64),
                base.to_array().astype(np.float64),
            )
            assert np.array_equal(indices.number, ref.number)
            assert np.array_equal(indices.duration_max, ref.duration_max)
            print("Ophidia pipeline == NumPy reference: OK")

            print(render_ascii_map(
                indices.number,
                title=f"Heat Wave Number {args.year} (Figure-4 analogue)",
            ))
            ops = [e["operator"] for e in server.operator_log]
            print(f"\nOphidia operators executed: {len(ops)} "
                  f"({', '.join(sorted(set(ops)))})")
            print(f"exports under {fs.root}/results/")


if __name__ == "__main__":
    main()
