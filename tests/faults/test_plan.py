"""Fault-plan construction: validation, coercion and self-description."""

import pytest

from repro.faults import DEFAULT_FS_OPS, FaultPlan, NodeCrash


class TestNodeCrash:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            NodeCrash("n1")
        with pytest.raises(ValueError):
            NodeCrash("n1", at_seconds=1.0, after_fs_writes=3)
        assert NodeCrash("n1", at_seconds=0.5).node == "n1"
        assert NodeCrash("n1", after_fs_writes=1).after_fs_writes == 1

    def test_trigger_bounds(self):
        with pytest.raises(ValueError):
            NodeCrash("n1", at_seconds=-1.0)
        with pytest.raises(ValueError):
            NodeCrash("n1", after_fs_writes=0)


class TestFaultPlan:
    def test_rates_validated(self):
        for field in ("fs_error_rate", "task_error_rate", "transfer_error_rate"):
            with pytest.raises(ValueError):
                FaultPlan(**{field: 1.0})
            with pytest.raises(ValueError):
                FaultPlan(**{field: -0.1})

    def test_sequences_coerced_to_tuples(self):
        plan = FaultPlan(
            fs_ops=["write", "read"],
            task_targets=["simulate_year"],
            node_crashes=[NodeCrash("n1", after_fs_writes=2)],
        )
        assert plan.fs_ops == ("write", "read")
        assert plan.task_targets == ("simulate_year",)
        assert isinstance(plan.node_crashes, tuple)

    def test_default_fs_ops_exclude_metadata(self):
        # Failing listdir/exists would break stream polling loops that
        # sit outside any retry scope; the default must not touch them.
        assert "listdir" not in DEFAULT_FS_OPS
        assert "exists" not in DEFAULT_FS_OPS
        assert "write" in DEFAULT_FS_OPS and "read" in DEFAULT_FS_OPS

    def test_injects_anything(self):
        assert not FaultPlan().injects_anything
        assert FaultPlan(fs_error_rate=0.1).injects_anything
        assert FaultPlan(
            node_crashes=(NodeCrash("n1", after_fs_writes=1),)
        ).injects_anything

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan(
            seed=7,
            fs_error_rate=0.05,
            task_error_rate=0.02,
            task_targets=("monitor_year",),
            transfer_error_rate=0.01,
            node_crashes=(NodeCrash("local1", after_fs_writes=5),),
        )
        text = plan.describe()
        assert "seed=7" in text
        assert "fs_error_rate=0.05" in text
        assert "task_error_rate=0.02@monitor_year" in text
        assert "transfer_error_rate=0.01" in text
        assert "kill local1@write#5" in text
        assert "no faults" in FaultPlan(seed=3).describe()
