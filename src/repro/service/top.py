"""The ``repro top`` data model: a live view of the control plane.

The service writes everything it knows into durable stores — job rows
and tenant quotas into the control-plane database, finished-run metric
deltas into the run history it shares a file with, and lifecycle
events into the JSONL event log.  ``repro top`` therefore needs no
connection to a running service: :func:`gather_top_state` reassembles
the fleet picture purely from those files, and :func:`render_top`
draws it as a plain-text dashboard, so the same view works against a
live service, after a crash, or from a copied-off database.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.observability.events import read_events, render_event
from repro.observability.metrics import snapshot_value
from repro.service.db import JobState, ServiceDB

__all__ = ["gather_top_state", "render_top"]

#: States that hold cluster resources right now.
_ACTIVE = (JobState.LAUNCHED, JobState.RUNNING)


def gather_top_state(
    db: ServiceDB,
    events_path: Optional[str] = None,
    limit: int = 10,
) -> Dict[str, Any]:
    """Assemble the dashboard state from the database + event log.

    Returns a JSON-able dict: cluster capacity, per-tenant occupancy,
    the ready queue, recent jobs, recent recorded runs (with the
    driver/worker CPU and worker RSS recovered from each run's stored
    metrics delta) and the tail of the event log.
    """
    now = time.time()
    sites = db.list_sites()
    total_cores = sum(site.total_cores for site in sites)
    jobs = db.jobs()
    active = [j for j in jobs if j.state in _ACTIVE]
    queued = [j for j in jobs if j.state is JobState.SUBMITTED]

    held: Dict[str, int] = {}
    for job in active:
        held[job.tenant] = held.get(job.tenant, 0) + job.cores

    tenants: List[Dict[str, Any]] = []
    for tenant in db.list_tenants():
        counts = db.job_counts(tenant.name)
        cores = held.get(tenant.name, 0)
        tenants.append({
            "name": tenant.name,
            "share": tenant.share,
            "running": sum(
                counts.get(state.value, 0) for state in _ACTIVE
            ),
            "queued": counts.get(JobState.SUBMITTED.value, 0),
            "completed": counts.get(JobState.COMPLETED.value, 0),
            "failed": counts.get(JobState.FAILED.value, 0),
            "cores": cores,
            "utilisation": cores / total_cores if total_cores else 0.0,
        })

    recent_jobs = sorted(jobs, key=lambda j: j.submitted_at, reverse=True)
    job_rows: List[Dict[str, Any]] = []
    for job in recent_jobs[:limit]:
        finished = job.finished_at if job.finished_at is not None else now
        job_rows.append({
            "job_id": job.job_id,
            "tenant": job.tenant,
            "workflow": job.workflow,
            "state": job.state.value,
            "cores": job.cores,
            "age_s": max(0.0, now - job.submitted_at),
            "busy_s": (
                max(0.0, finished - job.started_at)
                if job.started_at is not None else 0.0
            ),
            "run_id": job.run_id,
            "backfilled": job.backfilled,
        })

    run_rows: List[Dict[str, Any]] = []
    for record in db.list_runs(limit=limit):
        metrics = record.metrics or {}
        run_rows.append({
            "run_id": record.run_id,
            "kind": record.kind,
            "status": record.status,
            "wall_clock_s": record.wall_clock_s,
            "trace_id": record.trace_id,
            "driver_cpu_s": snapshot_value(
                metrics, "process_cpu_seconds_total", role="driver"
            ),
            "worker_cpu_s": snapshot_value(
                metrics, "process_cpu_seconds_total", role="worker"
            ),
            "worker_rss_bytes": snapshot_value(
                metrics, "process_rss_bytes", role="worker"
            ),
        })

    event_lines: List[str] = []
    if events_path:
        try:
            event_lines = [
                render_event(e) for e in read_events(events_path)[-limit:]
            ]
        except OSError:
            event_lines = []

    return {
        "generated_at": now,
        "db_path": db.path,
        "sites": [
            {"name": s.name, "total_cores": s.total_cores} for s in sites
        ],
        "total_cores": total_cores,
        "queue_depth": len(queued),
        "running_jobs": len(active),
        "tenants": tenants,
        "jobs": job_rows,
        "runs": run_rows,
        "events": event_lines,
    }


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{n:.0f}B"
        n /= 1024.0
    return f"{n:.1f}GiB"


def render_top(state: Dict[str, Any]) -> str:
    """The plain-text dashboard for one :func:`gather_top_state` state."""
    stamp = time.strftime(
        "%H:%M:%S", time.localtime(state.get("generated_at", time.time()))
    )
    lines = [
        f"repro top  {stamp}  db={state.get('db_path', '')}",
        f"cluster: {state['total_cores']} cores / "
        f"{len(state['sites'])} site(s)   "
        f"running: {state['running_jobs']}   "
        f"ready queue: {state['queue_depth']}",
        "",
    ]

    lines.append(
        f"{'TENANT':<12} {'SHARE':>5} {'RUN':>4} {'QUEUE':>5} "
        f"{'DONE':>5} {'FAIL':>5} {'CORES':>6} {'UTIL':>6}"
    )
    if state["tenants"]:
        for t in state["tenants"]:
            lines.append(
                f"{t['name']:<12.12} {t['share']:>5.1f} {t['running']:>4} "
                f"{t['queued']:>5} {t['completed']:>5} {t['failed']:>5} "
                f"{t['cores']:>6} {t['utilisation'] * 100:>5.1f}%"
            )
    else:
        lines.append("  (no tenants)")
    lines.append("")

    lines.append(
        f"{'JOB':<13} {'TENANT':<10} {'WORKFLOW':<22} {'STATE':<9} "
        f"{'CORES':>5} {'AGE':>8} {'RUN':<12}"
    )
    if state["jobs"]:
        for j in state["jobs"]:
            flags = "*" if j.get("backfilled") else ""
            lines.append(
                f"{j['job_id']:<13.13} {j['tenant']:<10.10} "
                f"{j['workflow']:<22.22} {j['state']:<9.9} "
                f"{j['cores']:>5} {j['age_s']:>7.1f}s "
                f"{(j['run_id'] or '-'):<12.12}{flags}"
            )
    else:
        lines.append("  (no jobs)")
    lines.append("")

    lines.append(
        f"{'RUN':<13} {'KIND':<26} {'STATUS':<10} {'WALL':>8} "
        f"{'CPU d/w':>13} {'RSS w':>9}"
    )
    if state["runs"]:
        for r in state["runs"]:
            wall = r["wall_clock_s"]
            cpu = f"{r['driver_cpu_s']:.1f}/{r['worker_cpu_s']:.1f}s"
            lines.append(
                f"{r['run_id']:<13.13} {r['kind']:<26.26} "
                f"{r['status']:<10.10} "
                f"{(f'{wall:.1f}s' if wall is not None else '-'):>8} "
                f"{cpu:>13} "
                f"{_fmt_bytes(r['worker_rss_bytes']):>9}"
            )
    else:
        lines.append("  (no recorded runs)")

    if state["events"]:
        lines.append("")
        lines.append("recent events")
        for line in state["events"]:
            lines.append(f"  {line}")
    return "\n".join(lines) + "\n"
