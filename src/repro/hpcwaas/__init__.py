"""The eFlows4HPC software stack: HPC Workflows as a Service.

Reproduces §4 of the paper — the deployment/orchestration layer that
wraps the PyCOMPSs application:

* :mod:`yamlsubset` — a dependency-free YAML-subset parser (TOSCA
  topologies are "yaml TOSCA file[s]" in the paper);
* :mod:`tosca` — the topology model: node templates, properties,
  requirements, artifacts;
* :mod:`alien4cloud` — the developer-facing interface: register
  topologies, set application parameters, trigger deployments;
* :mod:`yorc` — the TOSCA orchestrator: walks a topology and provisions
  software (container images, Python environments) and data (through
  the Data Logistics Service) onto a simulated cluster;
* :mod:`container` — the Container Image Creation service (Ejarque &
  Badia 2023): builds target-platform images, content-addressed and
  cached;
* :mod:`dls` — the Data Logistics Service: named data-movement
  pipelines executed at deployment or execution time;
* :mod:`registry` — the workflow registry HPCWaaS publishes into;
* :mod:`api` — the Execution API: final users trigger a deployed
  workflow with a REST-like call and poll its status, no knowledge of
  the cluster required.
"""

from repro.hpcwaas.yamlsubset import parse_yaml, dump_yaml, YAMLError
from repro.hpcwaas.tosca import (
    NodeTemplate,
    Topology,
    topology_from_yaml,
    TOSCAError,
)
from repro.hpcwaas.container import (
    ContainerImage,
    ContainerImageCreationService,
    ContainerRuntime,
)
from repro.hpcwaas.dls import DataLogisticsService, DataMovement, DLSError
from repro.hpcwaas.yorc import YorcOrchestrator, Deployment, DeploymentState
from repro.hpcwaas.registry import WorkflowRegistry, WorkflowRecord
from repro.hpcwaas.alien4cloud import Alien4Cloud
from repro.hpcwaas.api import HPCWaaSAPI, Execution, ExecutionState
from repro.hpcwaas.federation import (
    Federation,
    FederatedDataLogistics,
    FederationError,
    TransferRecord,
)

__all__ = [
    "parse_yaml", "dump_yaml", "YAMLError",
    "NodeTemplate", "Topology", "topology_from_yaml", "TOSCAError",
    "ContainerImage", "ContainerImageCreationService", "ContainerRuntime",
    "DataLogisticsService", "DataMovement", "DLSError",
    "YorcOrchestrator", "Deployment", "DeploymentState",
    "WorkflowRegistry", "WorkflowRecord",
    "Alien4Cloud",
    "HPCWaaSAPI", "Execution", "ExecutionState",
    "Federation", "FederatedDataLogistics", "FederationError", "TransferRecord",
]
