"""Case-study configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class WorkflowParams:
    """Parameters of the extreme-events workflow.

    Defaults are test-scale; examples and benchmarks scale them up.
    The paper's production run uses 768x1152 cells, 365-day years and
    multi-decade projections.
    """

    years: List[int] = field(default_factory=lambda: [2030])
    n_days: int = 60                 # days simulated per year (365 = full)
    n_lat: int = 24
    n_lon: int = 36
    scenario: str = "ssp245"
    seed: int = 42

    n_workers: int = 4               # COMPSs workers
    scheduler: str = "fifo"
    ophidia_io_servers: int = 2
    ophidia_cores: int = 2
    ophidia_lazy: bool = True    # fuse operator chains into single sweeps
    nfrag: int = 4
    #: Resident-fragment byte budget per Ophidia IO server.  When the
    #: budget is exceeded, least-recently-used fragments spill
    #: (compressed) to the shared filesystem and reload transparently on
    #: next access.  0 keeps every fragment resident (no tiering).
    ophidia_memory_budget_bytes: int = 0
    #: Directory for spilled fragment files.  ``None`` derives
    #: ``<cluster fs>/ophidia_spill`` when a budget is set.
    ophidia_spill_dir: Optional[str] = None
    #: Where NumPy-heavy kernels execute: ``"thread"`` (default) shares
    #: the interpreter and relies on GIL-releasing kernels;
    #: ``"process"`` runs Ophidia fragment sweeps and the ESM baseline
    #: on a spawn-based process pool with shared-memory array transport,
    #: parallelising even GIL-holding Python stages across cores.
    execution_backend: str = "thread"
    #: Cores per simulated node for CLI/benchmark ``laptop_like``
    #: clusters.  Explicit and deterministic — never derived from
    #: ``os.cpu_count()`` — so scheduling order and perf baselines do
    #: not depend on the host machine.
    cluster_cores_per_node: int = 4

    threshold_k: float = 5.0
    min_length_days: int = 6

    with_ml: bool = True
    tc_model_path: Optional[str] = None   # host path; trained if absent
    tc_patch: int = 16
    tc_target_grid: Tuple[int, int] = (32, 64)

    reuse_baseline: bool = True      # C2 ablation knob
    #: Per-worker COMPSs resident-set budget (bytes): a remote
    #: predecessor's output is charged as a transfer only on its first
    #: consumption per worker.  0 disables the reuse accounting.
    worker_cache_bytes: int = 256 * 1024 * 1024
    #: Shared-filesystem block-cache budget (bytes): repeated reads of
    #: the same daily file are served from memory.  0 disables it.
    fs_cache_bytes: int = 64 * 1024 * 1024
    #: When True, analytics are submitted only after the simulation task
    #: completes — the no-streaming-overlap baseline of experiment C1.
    sequential: bool = False
    #: Sleep per simulated day, emulating the real model's production
    #: cadence (the real CMCC-CM3 takes minutes-to-hours per day).
    pace_seconds: float = 0.0
    #: ESM restart-file cadence in days (0 = no restarts).  A re-run of
    #: an interrupted simulation resumes from the newest restart file.
    esm_restart_every: int = 0
    output_dir: str = "esm_output"
    results_dir: str = "results"
    checkpoint_dir: Optional[str] = None
    #: Host path of the persistent run-history database.  ``None``
    #: defers to ``$REPRO_RUNS_DB``; when neither is set the run is not
    #: persisted (library/unit-test invocations stay side-effect free).
    runs_db: Optional[str] = None
    #: Host path of an SLO rules YAML; when set, a live evaluator runs
    #: alongside the workflow and emits ``slo_breach`` events.
    slo_rules_path: Optional[str] = None
    #: Host path override for the structured event log.  Default: the
    #: run writes ``<results_dir>/events.jsonl`` on the cluster FS.
    events_path: Optional[str] = None

    def to_public_dict(self) -> Dict[str, Any]:
        """JSON-safe parameter dict for provenance/history records."""
        from dataclasses import asdict

        doc = asdict(self)
        doc["tc_target_grid"] = list(doc["tc_target_grid"])
        return doc

    def __post_init__(self) -> None:
        if not self.years:
            raise ValueError("need at least one simulation year")
        if not 1 <= self.n_days <= 365:
            raise ValueError("n_days must be in [1, 365]")
        if self.min_length_days > self.n_days:
            raise ValueError("min_length_days cannot exceed n_days")
        if self.tc_target_grid[0] % self.tc_patch or self.tc_target_grid[1] % self.tc_patch:
            raise ValueError("tc_target_grid must be divisible by tc_patch")
        if self.worker_cache_bytes < 0 or self.fs_cache_bytes < 0:
            raise ValueError("cache byte budgets must be non-negative")
        if self.ophidia_memory_budget_bytes < 0:
            raise ValueError("ophidia_memory_budget_bytes must be non-negative")
        if self.execution_backend not in ("thread", "process"):
            raise ValueError(
                f"execution_backend must be 'thread' or 'process', "
                f"got {self.execution_backend!r}"
            )
        if self.cluster_cores_per_node < 1:
            raise ValueError("cluster_cores_per_node must be >= 1")

    @classmethod
    def from_dict(cls, params: Dict[str, Any]) -> "WorkflowParams":
        """Build from a loose dict (HPCWaaS invocation params)."""
        known = {f.name for f in fields(cls)}
        unknown = set(params) - known
        if unknown:
            raise ValueError(f"unknown workflow parameters: {sorted(unknown)}")
        kwargs = dict(params)
        if "years" in kwargs:
            kwargs["years"] = [int(y) for y in kwargs["years"]]
        if "tc_target_grid" in kwargs:
            kwargs["tc_target_grid"] = tuple(kwargs["tc_target_grid"])
        return cls(**kwargs)
