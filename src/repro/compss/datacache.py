"""Per-worker resident sets for task outputs (in-memory data reuse).

The paper's runtime keeps task results "in memory and moved to other
nodes as the workflow progresses" — a worker that has already fetched a
predecessor's output does not fetch it again for the next consumer it
runs.  :class:`WorkerDataCache` models that behaviour for the transfer
accounting in :mod:`repro.compss.runtime`: each worker owns an LRU
resident set of (task id → output size) entries under a configurable
byte budget, and a remote move is only charged on the *first*
consumption of a given predecessor's output on a given worker.

A zero budget disables the cache entirely, restoring the historical
"every remote dependency is re-transferred" accounting.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Sequence, Tuple

#: A dependency as the runtime sees it: (producer task id, output bytes).
_Dep = Tuple[int, int]


class WorkerDataCache:
    """Thread-safe LRU resident set of task outputs, one per worker.

    The cache tracks *which* outputs are resident and how large they
    are, not the values themselves (the runtime's futures already hold
    those) — it exists to make the transfer accounting reflect reuse.
    """

    def __init__(self, budget_bytes: int = 0) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.budget_bytes = int(budget_bytes)
        self._lock = threading.Lock()
        #: worker id → (task id → output nbytes), LRU-ordered (oldest first).
        self._resident: Dict[int, "OrderedDict[int, int]"] = {}
        self._resident_bytes: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_saved = 0

    @property
    def enabled(self) -> bool:
        return self.budget_bytes > 0

    def split(
        self, worker_id: int, deps: Iterable[_Dep]
    ) -> Tuple[List[_Dep], List[_Dep]]:
        """Partition *deps* into (resident, absent) for *worker_id*.

        Pure query — no statistics move and no entries are touched, so a
        failed dispatch (e.g. an injected transfer fault) leaves the
        cache exactly as it was.
        """
        if not self.enabled:
            return [], list(deps)
        resident: List[_Dep] = []
        absent: List[_Dep] = []
        with self._lock:
            entries = self._resident.get(worker_id)
            for dep in deps:
                if entries is not None and dep[0] in entries:
                    resident.append(dep)
                else:
                    absent.append(dep)
        return resident, absent

    def commit(
        self, worker_id: int, hits: Sequence[_Dep], fetched: Sequence[_Dep]
    ) -> int:
        """Record a successful consumption; returns evictions performed.

        *hits* are refreshed in LRU order and counted as saved bytes;
        *fetched* outputs are admitted (the worker now holds a replica)
        and the LRU tail is evicted until the byte budget holds again.
        An output larger than the whole budget is never admitted — it
        would only flush everything else for a single-use entry.
        """
        if not self.enabled:
            return 0
        evicted = 0
        with self._lock:
            entries = self._resident.setdefault(worker_id, OrderedDict())
            held = self._resident_bytes.get(worker_id, 0)
            for task_id, nbytes in hits:
                if task_id in entries:
                    entries.move_to_end(task_id)
                self.hits += 1
                self.bytes_saved += nbytes
            for task_id, nbytes in fetched:
                self.misses += 1
                if nbytes > self.budget_bytes or task_id in entries:
                    continue
                entries[task_id] = nbytes
                held += nbytes
                while held > self.budget_bytes and entries:
                    _, freed = entries.popitem(last=False)
                    held -= freed
                    evicted += 1
            self._resident_bytes[worker_id] = held
            self.evictions += evicted
        return evicted

    # -- introspection (tests, run summaries) ------------------------------

    def resident_bytes(self, worker_id: int) -> int:
        with self._lock:
            return self._resident_bytes.get(worker_id, 0)

    def resident_ids(self, worker_id: int) -> Tuple[int, ...]:
        """Resident producer task ids, LRU order (oldest first)."""
        with self._lock:
            entries = self._resident.get(worker_id)
            return tuple(entries) if entries else ()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "cache_hits": self.hits,
                "cache_misses": self.misses,
                "cache_evictions": self.evictions,
                "bytes_saved": self.bytes_saved,
            }
