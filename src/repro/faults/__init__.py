"""Deterministic fault injection and chaos experiments.

The paper's workflows run for days across hundreds of nodes, where node
loss and flaky storage are routine; this package makes those failures a
first-class, *reproducible* input to the simulated stack.  A seeded
:class:`FaultPlan` says what breaks and when; injectors raise at the
filesystem and task-execution hook points; :class:`ChaosController` and
:func:`run_chaos_experiment` drive a full workflow through the schedule
and check that recovery (task resubmission, LSF requeue, checkpoint
resume) reproduces the fault-free results exactly.

See ``docs/RESILIENCE.md`` for the fault model and recovery semantics.
"""

from repro.faults.errors import (
    InjectedFault,
    InjectedIOError,
    InjectedTaskError,
    InjectedTransferError,
    NodeCrashedError,
)
from repro.faults.plan import DEFAULT_FS_OPS, FaultPlan, NodeCrash
from repro.faults.injectors import FilesystemFaultInjector, TaskFaultInjector
from repro.faults.chaos import ChaosController, run_chaos_experiment

__all__ = [
    "InjectedFault", "InjectedIOError", "InjectedTaskError",
    "InjectedTransferError", "NodeCrashedError",
    "DEFAULT_FS_OPS", "FaultPlan", "NodeCrash",
    "FilesystemFaultInjector", "TaskFaultInjector",
    "ChaosController", "run_chaos_experiment",
]
