"""CLI tests (direct main() invocation; no subprocesses)."""

import json

import pytest

from repro.cli import main


class TestInfo:
    def test_info_lists_components(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for pkg in ("compss", "ophidia", "esm", "hpcwaas", "workflow"):
            assert f"repro.{pkg}" in out


class TestSimulate:
    def test_simulate_writes_files_and_truth(self, tmp_path, capsys):
        code = main([
            "simulate", str(tmp_path / "out"), "--days", "3",
            "--n-lat", "16", "--n-lon", "24", "--years", "2030", "2031",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2030:" in out and "2031:" in out
        files = sorted((tmp_path / "out").glob("cmcc_cm3_*.rnc"))
        assert len(files) == 6
        assert (tmp_path / "out" / "climatology.rnc").exists()


class TestIndices:
    def test_indices_from_simulated_dir(self, tmp_path, capsys):
        data = tmp_path / "out"
        assert main([
            "simulate", str(data), "--days", "8",
            "--n-lat", "16", "--n-lon", "24",
        ]) == 0
        capsys.readouterr()
        assert main([
            "indices", str(data), "--min-length", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "Heat Wave Number" in out
        assert "cells_with_waves" in out

    def test_indices_empty_dir_fails(self, tmp_path, capsys):
        assert main(["indices", str(tmp_path)]) == 2
        assert "no cmcc_cm3" in capsys.readouterr().err


class TestRun:
    def test_run_prints_summary_json(self, tmp_path, capsys):
        code = main([
            "run", "--days", "6", "--n-lat", "16", "--n-lon", "24",
            "--min-length", "4", "--scratch", str(tmp_path / "scratch"),
        ])
        assert code == 0
        captured = capsys.readouterr()
        summary = json.loads(captured.out)
        assert "2030" in summary["years"]
        assert summary["task_graph"]["n_tasks"] > 10
        assert (tmp_path / "scratch" / "results" / "run_summary.json").exists()

    def test_run_distributed(self, capsys):
        code = main([
            "run-distributed", "--days", "5", "--n-lat", "16",
            "--n-lon", "24", "--min-length", "4",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["federation"]["transfers"] == 1

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
