"""Fuzz tests: hostile inputs raise typed errors, never crash.

Parsers and binary readers are the crash surface of any data system;
these properties pin down that every failure mode is a documented
exception type (``RNCFormatError``, ``YAMLError``, ``PrimitiveError``)
rather than an arbitrary traceback.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpcwaas import YAMLError, parse_yaml
from repro.netcdf import Dataset, read_dataset, write_dataset
from repro.netcdf.io import MAGIC, RNCFormatError
from repro.ophidia import PrimitiveError, evaluate_primitive


class TestRNCFuzz:
    @given(st.binary(max_size=512))
    @settings(max_examples=120, deadline=None)
    def test_random_bytes_never_crash_reader(self, tmp_path_factory, payload):
        path = tmp_path_factory.mktemp("fuzz") / "f.rnc"
        path.write_bytes(payload)
        try:
            read_dataset(path)
        except (RNCFormatError, KeyError):
            pass  # the documented failure modes

    @given(st.binary(max_size=256), st.integers(0, 400))
    @settings(max_examples=80, deadline=None)
    def test_corrupted_valid_file(self, tmp_path_factory, junk, cut):
        """Truncating/garbling a valid file must fail loudly, not return
        silently wrong data structures."""
        path = tmp_path_factory.mktemp("fuzz") / "v.rnc"
        ds = Dataset({"k": 1})
        ds.create_variable("x", np.arange(20.0), ("n",))
        write_dataset(ds, path)
        data = path.read_bytes()
        mutated = data[: cut % len(data)] + junk
        path.write_bytes(mutated)
        try:
            back = read_dataset(path)
        except (RNCFormatError, KeyError, ValueError):
            return
        # If it parsed, the magic must still have been intact.
        assert mutated[:4] == MAGIC


class TestYAMLFuzz:
    @given(st.text(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_random_text_parse_is_total(self, text):
        try:
            parse_yaml(text)
        except YAMLError:
            pass

    @given(st.text(
        alphabet=st.sampled_from(list("abc:-[]'\" #\n  01")), max_size=80,
    ))
    @settings(max_examples=300, deadline=None)
    def test_yaml_shaped_noise(self, text):
        """Noise built from YAML's own alphabet is the adversarial case."""
        try:
            parse_yaml(text)
        except YAMLError:
            pass


class TestPrimitiveFuzz:
    @given(st.text(max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_random_query_strings(self, query):
        try:
            evaluate_primitive(query, np.ones(4))
        except PrimitiveError:
            pass

    @given(st.text(
        alphabet=st.sampled_from(
            list("oph_predicate(',measure)OPH_INT><=0123x ")
        ),
        max_size=100,
    ))
    @settings(max_examples=300, deadline=None)
    def test_primitive_shaped_noise(self, query):
        try:
            result = evaluate_primitive(query, np.arange(4.0))
        except PrimitiveError:
            return
        assert result.shape == (4,)  # success implies a well-formed result
