"""E2 (extension) — containerised execution overhead (the paper's §7).

"Another path worth of investigation concerns the use of software
containers ... and the assessment of their impact on the climate
simulation and processing performance."  A bag of analytics tasks runs
bare-metal and inside a simulated Singularity-style runtime (cold start
on first use per node, warm start afterwards).

Shape: identical results; container overhead is dominated by the
one-off cold starts and becomes negligible as task granularity grows —
the quantitative argument for containerising coarse-grained climate
workflows.
"""

import time

import numpy as np

from benchmarks.conftest import print_table
from repro.compss import COMPSs, compss_wait_on, task
from repro.hpcwaas import ContainerImageCreationService, ContainerRuntime

N_TASKS = 12


def _analytics_kernel(seed: int, work: float) -> float:
    """A stand-in index computation with tunable duration."""
    deadline = time.monotonic() + work
    rng = np.random.default_rng(seed)
    acc = 0.0
    while time.monotonic() < deadline:
        acc += float(rng.normal(size=4096).sum())
    return round(acc, 6) * 0.0 + seed  # deterministic result, real work


def run_bag(work_s: float, runtime: ContainerRuntime | None):
    @task(returns=1)
    def job(seed):
        if runtime is None:
            return _analytics_kernel(seed, work_s)
        # Worker threads model nodes: one cold start per worker.
        import threading

        node = threading.current_thread().name
        return runtime.run(_analytics_kernel, seed, work_s, node=node)

    start = time.monotonic()
    with COMPSs(n_workers=4):
        results = compss_wait_on([job(i) for i in range(N_TASKS)])
    return time.monotonic() - start, results


def test_e2_container_overhead(benchmark):
    service = ContainerImageCreationService()
    image = service.build("climate-runtime", ["pyophidia", "tensorflow"])

    rows = []
    for label, work_s in (("fine-grained (30 ms)", 0.03),
                          ("coarse-grained (300 ms)", 0.3)):
        bare_t, bare = run_bag(work_s, None)
        runtime = ContainerRuntime(image, cold_start_seconds=0.3,
                                   warm_start_seconds=0.01)
        if work_s == 0.3:
            contained_t, contained = benchmark.pedantic(
                lambda: run_bag(0.3, runtime), rounds=1, iterations=1
            )
        else:
            contained_t, contained = run_bag(work_s, runtime)
        assert contained == bare
        overhead = contained_t / bare_t - 1
        rows.append([label, f"{bare_t:.2f}", f"{contained_t:.2f}",
                     f"{overhead * 100:.0f}%",
                     runtime.cold_starts, runtime.warm_starts])
        if work_s == 0.3:
            coarse_overhead = overhead
        else:
            fine_overhead = overhead

    # Shape: overhead shrinks with task granularity; coarse-grained
    # climate tasks pay little for portability.
    assert coarse_overhead < fine_overhead
    assert coarse_overhead < 0.8

    print_table(
        f"E2: containerised vs bare-metal execution ({N_TASKS} tasks, 4 workers, "
        "0.3 s cold start)",
        ["granularity", "bare (s)", "containerised (s)", "overhead",
         "cold starts", "warm starts"],
        rows,
    )
