"""Heat/cold-wave indices: reference implementation + Ophidia pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import (
    compute_coldwave_indices,
    compute_heatwave_indices,
    compute_wave_indices,
    ophidia_wave_pipeline,
    validate_indices,
    wave_durations,
    wave_exceedance_mask,
)
from repro.ophidia import Client, Cube, OphidiaServer


def synthetic_year(n_days=60, n_lat=4, n_lon=5, waves=()):
    """Baseline-flat year with rectangular exceedance episodes injected.

    *waves*: (start_day0, length, i, j, amplitude) tuples.
    """
    baseline = np.full((n_days, n_lat, n_lon), 300.0)
    daily = baseline.copy()
    for start, length, i, j, amp in waves:
        daily[start:start + length, i, j] += amp
    return daily, baseline


class TestMaskAndDurations:
    def test_mask_heat_and_cold(self):
        daily, baseline = synthetic_year(waves=[(10, 7, 1, 1, 6.0)])
        hot = wave_exceedance_mask(daily, baseline, 5.0, "heat")
        assert hot[10:17, 1, 1].all()
        assert not hot[9, 1, 1] and not hot[17, 1, 1]
        cold = wave_exceedance_mask(daily - 12.0, baseline, 5.0, "cold")
        assert cold.all()

    def test_mask_validation(self):
        with pytest.raises(ValueError):
            wave_exceedance_mask(np.zeros((2, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            wave_exceedance_mask(np.zeros((2, 2)), np.zeros((2, 2)), -1.0)
        with pytest.raises(ValueError):
            wave_exceedance_mask(np.zeros((2, 2)), np.zeros((2, 2)), kind="warm")

    def test_durations_at_run_ends(self):
        mask = np.zeros((10, 1, 1), dtype=bool)
        mask[2:5, 0, 0] = True
        mask[7:10, 0, 0] = True
        dur = wave_durations(mask)
        assert dur[4, 0, 0] == 3
        assert dur[9, 0, 0] == 3
        assert dur.sum() == 6


class TestReferenceIndices:
    def test_single_qualifying_wave(self):
        daily, baseline = synthetic_year(waves=[(10, 8, 1, 2, 7.0)])
        idx = compute_heatwave_indices(daily, baseline)
        assert idx.duration_max[1, 2] == 8
        assert idx.number[1, 2] == 1
        assert idx.frequency[1, 2] == pytest.approx(8 / 60)
        assert idx.duration_max.sum() == 8  # nowhere else

    def test_short_wave_excluded(self):
        daily, baseline = synthetic_year(waves=[(10, 5, 1, 1, 9.0)])
        idx = compute_heatwave_indices(daily, baseline)
        assert idx.duration_max[1, 1] == 0
        assert idx.number[1, 1] == 0

    def test_multiple_waves_counted(self):
        daily, baseline = synthetic_year(
            n_days=80, waves=[(5, 6, 0, 0, 8.0), (30, 10, 0, 0, 8.0), (60, 6, 0, 0, 8.0)]
        )
        idx = compute_heatwave_indices(daily, baseline)
        assert idx.number[0, 0] == 3
        assert idx.duration_max[0, 0] == 10
        assert idx.frequency[0, 0] == pytest.approx(22 / 80)

    def test_exactly_threshold_counts(self):
        daily, baseline = synthetic_year(waves=[(0, 6, 0, 0, 5.0)])
        idx = compute_heatwave_indices(daily, baseline)
        assert idx.number[0, 0] == 1  # >= baseline + 5 inclusive

    def test_cold_wave_mirror(self):
        daily, baseline = synthetic_year(waves=[(10, 7, 2, 3, -9.0)])
        idx = compute_coldwave_indices(daily, baseline)
        assert idx.number[2, 3] == 1
        assert idx.duration_max[2, 3] == 7
        hot = compute_heatwave_indices(daily, baseline)
        assert hot.number.sum() == 0

    def test_wave_spanning_year_end_counts_once(self):
        daily, baseline = synthetic_year(n_days=30, waves=[(24, 6, 0, 0, 8.0)])
        idx = compute_heatwave_indices(daily, baseline)
        assert idx.number[0, 0] == 1
        assert idx.duration_max[0, 0] == 6

    def test_min_length_validation(self):
        daily, baseline = synthetic_year()
        with pytest.raises(ValueError):
            compute_wave_indices(daily, baseline, min_length_days=0)

    def test_validation_passes_on_real_output(self):
        daily, baseline = synthetic_year(waves=[(10, 8, 1, 2, 7.0)])
        idx = compute_heatwave_indices(daily, baseline)
        stats = validate_indices(idx, n_days=60)
        assert stats["max_duration_days"] == 8


class TestOphidiaPipelineEquivalence:
    @pytest.fixture
    def client(self):
        with OphidiaServer(n_io_servers=2, n_cores=2) as server:
            yield Client(server)

    def _to_cubes(self, daily, baseline, client, nfrag=3):
        data_cube = Cube.from_array(
            daily.astype(np.float32), ["time", "lat", "lon"], client=client,
            fragment_dim="lat", nfrag=nfrag, measure="TREFHTMX",
        )
        base_cube = Cube.from_array(
            baseline.astype(np.float32), ["time", "lat", "lon"], client=client,
            fragment_dim="lat", nfrag=nfrag, measure="TMAX_BASELINE",
        )
        return data_cube, base_cube

    def test_pipeline_matches_reference(self, client):
        daily, baseline = synthetic_year(
            n_days=80,
            waves=[(5, 6, 0, 0, 8.0), (30, 10, 0, 0, 8.0), (12, 7, 2, 3, 6.0),
                   (40, 4, 1, 1, 9.0)],  # last one too short
        )
        data_cube, base_cube = self._to_cubes(daily, baseline, client)
        dmax, num, freq = ophidia_wave_pipeline(data_cube, base_cube, kind="heat")
        ref = compute_heatwave_indices(daily, baseline)
        np.testing.assert_array_equal(dmax.to_array(), ref.duration_max)
        np.testing.assert_array_equal(num.to_array(), ref.number)
        np.testing.assert_allclose(freq.to_array(), ref.frequency, atol=1e-9)

    def test_cold_pipeline_matches_reference(self, client):
        daily, baseline = synthetic_year(
            n_days=60, waves=[(10, 8, 1, 2, -7.0), (30, 6, 3, 4, -5.5)]
        )
        data_cube, base_cube = self._to_cubes(daily, baseline, client)
        dmax, num, freq = ophidia_wave_pipeline(data_cube, base_cube, kind="cold")
        ref = compute_coldwave_indices(daily, baseline)
        np.testing.assert_array_equal(dmax.to_array(), ref.duration_max)
        np.testing.assert_array_equal(num.to_array(), ref.number)
        np.testing.assert_allclose(freq.to_array(), ref.frequency, atol=1e-9)

    def test_pipeline_frees_intermediates(self, client):
        daily, baseline = synthetic_year()
        data_cube, base_cube = self._to_cubes(daily, baseline, client)
        resident_before = client.server.pool.n_fragments
        dmax, num, freq = ophidia_wave_pipeline(data_cube, base_cube)
        resident_after = client.server.pool.n_fragments
        # inputs + the three results; all intermediates freed
        assert resident_after == resident_before + dmax.nfrag + num.nfrag + freq.nfrag

    def test_pipeline_exports(self, tmp_path):
        from repro.cluster import SharedFilesystem

        fs = SharedFilesystem(tmp_path)
        with OphidiaServer(2, 2, filesystem=fs) as server:
            client = Client(server)
            daily, baseline = synthetic_year(waves=[(10, 8, 1, 2, 7.0)])
            data_cube, base_cube = self._to_cubes(daily, baseline, client)
            ophidia_wave_pipeline(
                data_cube, base_cube, export_path="out", name_prefix="hw2030"
            )
            for suffix in ("duration_max", "number", "frequency"):
                assert fs.exists(f"out/hw2030_{suffix}.rnc")

    def test_bad_kind_rejected(self, client):
        daily, baseline = synthetic_year()
        data_cube, base_cube = self._to_cubes(daily, baseline, client)
        with pytest.raises(ValueError):
            ophidia_wave_pipeline(data_cube, base_cube, kind="tepid")


@st.composite
def random_years(draw):
    n_days = draw(st.integers(10, 50))
    n_cells = draw(st.integers(1, 4))
    anomalies = draw(
        st.lists(
            st.floats(-12, 12, allow_nan=False), min_size=n_days * n_cells,
            max_size=n_days * n_cells,
        )
    )
    return np.array(anomalies).reshape(n_days, n_cells, 1)


class TestIndexProperties:
    @given(random_years())
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, anomaly):
        n_days = anomaly.shape[0]
        baseline = np.full(anomaly.shape, 290.0)
        idx = compute_heatwave_indices(baseline + anomaly, baseline,
                                       min_length_days=3)
        validate_indices(idx, n_days=n_days, min_length_days=3)
        # Frequency bounded by duration_max when only one wave exists.
        assert np.all(
            idx.frequency * n_days >= idx.duration_max * (idx.number > 0) - 1e-9
        )

    @given(random_years())
    @settings(max_examples=30, deadline=None)
    def test_heat_cold_symmetry(self, anomaly):
        baseline = np.full(anomaly.shape, 290.0)
        heat = compute_heatwave_indices(baseline + anomaly, baseline)
        cold = compute_coldwave_indices(baseline - anomaly, baseline)
        np.testing.assert_array_equal(heat.duration_max, cold.duration_max)
        np.testing.assert_array_equal(heat.number, cold.number)
