"""C8 — lazy planning fuses the Listing-1 chain; science is unchanged.

The Ophidia layer defers elementwise operators (apply / transform /
intercube / subset) into per-fragment expression plans and executes
each chain as one pooled fragment sweep at the forced-evaluation point.
Intermediate cubes that no consumer forces are never written to the
I/O servers at all.

Two runs of the identical heat-wave pipeline (the paper's Listing 1:
intercube → predicate → runlength → predicate → three reductions) plus
NetCDF exports: lazy planning on (the default) vs eager per-operator
execution.  Shape: at least 40 % fewer fragment writes and strictly
fewer bytes written with fusion on, at least one multi-operator fused
sweep, and byte-identical index cubes and exported files.
"""

import hashlib

import numpy as np

from benchmarks.conftest import print_table
from repro.analytics.heatwaves import ophidia_wave_pipeline
from repro.cluster import SharedFilesystem
from repro.observability.metrics import get_registry
from repro.ophidia import Client, Cube, OphidiaServer

N_DAYS, N_LAT, N_LON = 60, 12, 16
NFRAG = 4


def synthetic_year(seed=8):
    rng = np.random.default_rng(seed)
    baseline = 280.0 + 10.0 * rng.random((N_DAYS, N_LAT, N_LON))
    daily = baseline + rng.normal(0.0, 4.0, size=baseline.shape)
    return daily, baseline


def digest(fs, path):
    ds = fs.read(path)
    h = hashlib.sha256()
    for name in sorted(ds.variables):
        var = ds[name]
        h.update(name.encode())
        h.update(str(var.data.dtype).encode())
        h.update(np.ascontiguousarray(var.data).tobytes())
    return h.hexdigest()


def run_mode(tmp_path, lazy: bool):
    label = "lazy" if lazy else "eager"
    daily, baseline = synthetic_year()
    fs = SharedFilesystem(tmp_path / label)
    with OphidiaServer(n_io_servers=2, n_cores=2, filesystem=fs,
                       lazy=lazy) as server:
        client = Client(server)
        dims = ["time", "lat", "lon"]
        data_cube = Cube.from_array(daily, dims, client=client,
                                    fragment_dim="lat", nfrag=NFRAG)
        base_cube = Cube.from_array(baseline, dims, client=client,
                                    fragment_dim="lat", nfrag=NFRAG)
        before = server.storage_stats()
        fused_before = get_registry().counter(
            "ophidia_fragment_passes_avoided_total",
            "Per-operator sweeps avoided by fusing operator chains",
        ).value()
        indices = ophidia_wave_pipeline(
            data_cube, base_cube, kind="heat", export_path="indices",
            name_prefix="c8",
        )
        arrays = [c.to_array().copy() for c in indices]
        stats = server.storage_stats().delta(before)
        fused = get_registry().counter(
            "ophidia_fragment_passes_avoided_total",
            "Per-operator sweeps avoided by fusing operator chains",
        ).value() - fused_before
        digests = {
            name: digest(fs, f"indices/c8_{name}.rnc")
            for name in ("duration_max", "number", "frequency")
        }
    return {"arrays": arrays, "stats": stats, "digests": digests,
            "fused": fused}


def test_c8_operator_fusion(benchmark, tmp_path, record_bench):
    eager = run_mode(tmp_path, lazy=False)
    lazy = benchmark.pedantic(
        lambda: run_mode(tmp_path, lazy=True), rounds=1, iterations=1,
    )

    # ≥ 40 % fewer fragment writes, strictly fewer bytes to the pool.
    assert lazy["stats"].fragment_writes <= 0.6 * eager["stats"].fragment_writes
    assert lazy["stats"].bytes_written < eager["stats"].bytes_written
    # Fusion actually happened: operator sweeps were avoided.
    assert lazy["fused"] > eager["fused"] == 0
    # Byte-transparent: identical index cubes and exported artifacts.
    for got, want in zip(lazy["arrays"], eager["arrays"]):
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)
    assert lazy["digests"] == eager["digests"]

    record_bench(
        "c8_operator_fusion",
        fragment_writes=lazy["stats"].fragment_writes,
        fragment_bytes_written=lazy["stats"].bytes_written,
        sweeps_avoided=lazy["fused"],
        write_cut_fraction=(
            1 - lazy["stats"].fragment_writes / eager["stats"].fragment_writes
        ),
    )

    rows = []
    for label, run in (("lazy (fused)", lazy), ("eager", eager)):
        s = run["stats"]
        rows.append([
            label, s.fragment_writes, f"{s.bytes_written / 1e3:.1f}",
            s.fragment_reads, int(run["fused"]),
        ])
    print_table(
        "C8: operator fusion on the Listing-1 wave pipeline",
        ["mode", "frag writes", "KB written", "frag reads",
         "sweeps avoided"],
        rows,
    )
    cut = 1 - lazy["stats"].fragment_writes / eager["stats"].fragment_writes
    print(f"fusion cut fragment writes by {cut:.0%} "
          f"({eager['stats'].fragment_writes} -> "
          f"{lazy['stats'].fragment_writes}); outputs byte-identical")
