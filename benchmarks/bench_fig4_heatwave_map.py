"""FIG4 — the Heat Wave Number map (paper Figure 4).

One year of simulated CMCC-CM3 output versus the 20-year baseline
climatology, processed through the Ophidia operator pipeline, yields a
per-gridpoint map of the number of heat waves — rendered here in ASCII
(the PGM twin is written by the workflow).  Shape checks: injected heat
waves appear as localized hotspots over land; most of the map is quiet.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.analytics import ophidia_wave_pipeline, render_ascii_map
from repro.cluster import SharedFilesystem
from repro.esm import CMCCCM3, ModelConfig
from repro.ophidia import Client, Cube, OphidiaServer
from repro.workflow import tasks

N_DAYS = 365
GRID = (24, 36)


def make_year(cluster, seed=5):
    model = CMCCCM3(ModelConfig(n_lat=GRID[0], n_lon=GRID[1], seed=seed))
    truth = model.run_year(2030, cluster.filesystem, n_days=N_DAYS)
    model.write_baseline(cluster.filesystem, n_days=N_DAYS)
    return truth


def compute_map(cluster):
    fs = cluster.filesystem
    with OphidiaServer(n_io_servers=2, n_cores=4, filesystem=fs) as server:
        client = Client(server)
        paths = fs.glob("esm_output", "cmcc_cm3_*.rnc")
        tmax, _ = tasks.load_year_cubes(client, paths, nfrag=4)
        base_tmax, _ = tasks.load_baseline_cubes(
            client, "baselines/climatology.rnc", 4, N_DAYS
        )
        dmax, number, freq = ophidia_wave_pipeline(
            tmax, base_tmax, kind="heat", export_path="results",
            name_prefix="fig4_hw",
        )
        result = {
            "number": number.to_array(),
            "duration_max": dmax.to_array(),
            "frequency": freq.to_array(),
        }
    return result


def test_fig4_heat_wave_number_map(benchmark, cluster):
    truth = make_year(cluster)
    maps = benchmark.pedantic(lambda: compute_map(cluster), rounds=1, iterations=1)
    number = maps["number"]

    # Shape: hotspots exist (injected events) but the map is mostly calm.
    assert number.max() >= 1
    active_fraction = (number > 0).mean()
    assert 0.0 < active_fraction < 0.5
    assert maps["duration_max"].max() >= 6
    assert np.all(maps["frequency"] <= 1.0)

    # Hotspots sit near injected heat-wave centres.
    model = CMCCCM3(ModelConfig(n_lat=GRID[0], n_lon=GRID[1], seed=5))
    hits = 0
    for ev in truth["heat_waves"]:
        i, j = model.grid.nearest_index(ev["center_lat"], ev["center_lon"])
        region = number[max(0, i - 2):i + 3, max(0, j - 2):j + 3]
        if region.max() >= 1:
            hits += 1
    assert hits >= max(1, len(truth["heat_waves"]) // 2)

    print(render_ascii_map(
        number, title="FIG4: Heat Wave Number, 1 simulated year "
        f"({GRID[0]}x{GRID[1]} grid)",
    ))
    print_table(
        "FIG4: injected vs detected hotspots",
        ["metric", "value"],
        [
            ["injected heat waves", len(truth["heat_waves"])],
            ["hotspots recovered", hits],
            ["max waves per cell", int(number.max())],
            ["active cell fraction", f"{active_fraction:.3f}"],
            ["max duration (days)", int(maps["duration_max"].max())],
        ],
    )
