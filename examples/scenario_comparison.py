#!/usr/bin/env python3
"""Scenario comparison: heat-wave statistics under SSP pathways.

The paper's motivation (§1, §5.1): policy makers need to know how
climate change alters extremes; the IPCC AR6 reports increases in
intensity and frequency.  This example runs the same projection years
under low- (SSP1-2.6) and high-emission (SSP5-8.5) pathways against a
common historical baseline and compares the resulting heat-wave
indices — the end product the whole workflow exists to deliver.

Usage::

    python examples/scenario_comparison.py [--days 200] [--decades 3]
"""

import argparse

import numpy as np

from repro.analytics import compute_heatwave_indices
from repro.esm import CMCCCM3, ModelConfig
from repro.esm.forcing import warming_offset


def yearly_hw_stats(scenario: str, year: int, n_days: int, baseline: np.ndarray,
                    seed: int) -> dict:
    model = CMCCCM3(ModelConfig(
        n_lat=20, n_lon=30, scenario=scenario, seed=seed,
    ))
    tmax = np.stack([
        ds["TREFHTMX"].data[0] for _, ds in model.iter_year(year, n_days)
    ]).astype(np.float64)
    idx = compute_heatwave_indices(tmax, baseline)
    return {
        "waves": int(idx.number.sum()),
        "cells": float((idx.number > 0).mean()),
        "longest": int(idx.duration_max.max()),
        "mean_tmax": float(tmax.mean()),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=200)
    parser.add_argument("--decades", type=int, default=3,
                        help="sample one year per decade from 2030")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    base_model = CMCCCM3(ModelConfig(n_lat=20, n_lon=30, seed=args.seed))
    baseline = np.stack([
        base_model.atmosphere.baseline_tmax(
            d, sst_clim=base_model.ocean.sst_clim(1995, d))
        for d in range(1, args.days + 1)
    ])

    years = [2030 + 30 * i for i in range(args.decades)]
    print(f"years: {years}  (baseline: 1995 climatology; "
          f"{args.days} days per year)\n")
    print("scenario  year  global warming  TMAX anomaly  HW cells  waves")
    anomalies = {}
    for scenario in ("ssp126", "ssp585"):
        for year in years:
            stats = yearly_hw_stats(scenario, year, args.days, baseline,
                                    args.seed)
            warming = warming_offset(year, scenario)
            anomaly = stats["mean_tmax"] - float(baseline.mean())
            anomalies[(scenario, year)] = anomaly
            print(f"{scenario:8s}  {year}  {warming:13.2f}K  "
                  f"{anomaly:11.2f}K  {stats['cells']:7.1%}  {stats['waves']:5d}")
        print()

    last = years[-1]
    gap = anomalies[("ssp585", last)] - anomalies[("ssp126", last)]
    print(f"pathway divergence by {last}: SSP5-8.5 runs "
          f"{gap:+.2f} K warmer than SSP1-2.6 on the same grid.")
    print("Shape to observe: the simulated-TMAX anomaly tracks each")
    print("pathway's forcing (injected events are identical), while the")
    print("conservative fixed '+5 K over 1995' wave definition responds")
    print("only once warming approaches the threshold — which is why the")
    print("ETCCDI percentile indices (examples/percentile_indices.py)")
    print("are the instrument of choice for warming-trend detection.")


if __name__ == "__main__":
    main()
