"""YAML-subset parser and TOSCA topology model tests."""

import pytest

from repro.hpcwaas import (
    NodeTemplate,
    TOSCAError,
    Topology,
    YAMLError,
    parse_yaml,
    topology_from_yaml,
)


class TestYAMLScalars:
    def test_types(self):
        assert parse_yaml("a: 1")["a"] == 1
        assert parse_yaml("a: 1.5")["a"] == 1.5
        assert parse_yaml("a: true")["a"] is True
        assert parse_yaml("a: false")["a"] is False
        assert parse_yaml("a: null")["a"] is None
        assert parse_yaml("a:")["a"] is None
        assert parse_yaml("a: hello world")["a"] == "hello world"

    def test_quoted_strings(self):
        assert parse_yaml("a: 'x: y'")["a"] == "x: y"
        assert parse_yaml('a: "42"')["a"] == "42"

    def test_flow_list(self):
        assert parse_yaml("a: [1, 2, 3]")["a"] == [1, 2, 3]
        assert parse_yaml("a: ['x', 'y']")["a"] == ["x", "y"]
        assert parse_yaml("a: []")["a"] == []

    def test_comments_and_blanks(self):
        doc = parse_yaml("""
# header comment
a: 1   # trailing
b: 2
""")
        assert doc == {"a": 1, "b": 2}

    def test_hash_inside_quotes_kept(self):
        assert parse_yaml("a: 'v#1'")["a"] == "v#1"

    def test_empty_document(self):
        assert parse_yaml("") is None
        assert parse_yaml("# only a comment\n") is None


class TestYAMLStructure:
    def test_nested_mapping(self):
        doc = parse_yaml("""
outer:
  inner:
    deep: value
  sibling: 2
top: 3
""")
        assert doc == {"outer": {"inner": {"deep": "value"}, "sibling": 2}, "top": 3}

    def test_sequences(self):
        doc = parse_yaml("""
items:
  - one
  - 2
  - true
""")
        assert doc == {"items": ["one", 2, True]}

    def test_sequence_of_mappings(self):
        doc = parse_yaml("""
requirements:
  - host: cluster
  - dependency: baseline_data
""")
        assert doc["requirements"] == [{"host": "cluster"}, {"dependency": "baseline_data"}]

    def test_sequence_item_with_multiple_keys(self):
        doc = parse_yaml("""
steps:
  - name: load
    retries: 2
  - name: compute
""")
        assert doc["steps"] == [{"name": "load", "retries": 2}, {"name": "compute"}]

    def test_root_sequence(self):
        assert parse_yaml("- a\n- b\n") == ["a", "b"]


class TestYAMLErrors:
    def test_tabs_rejected(self):
        with pytest.raises(YAMLError):
            parse_yaml("a:\n\tb: 1")

    def test_duplicate_keys_rejected(self):
        with pytest.raises(YAMLError):
            parse_yaml("a: 1\na: 2")

    def test_anchor_rejected(self):
        with pytest.raises(YAMLError):
            parse_yaml("a: &anchor 1")

    def test_flow_mapping_rejected(self):
        with pytest.raises(YAMLError):
            parse_yaml("a: {x: 1}")

    def test_block_scalar_rejected(self):
        with pytest.raises(YAMLError):
            parse_yaml("a: |\n  text")

    def test_unterminated_quote(self):
        with pytest.raises(YAMLError):
            parse_yaml("a: 'oops")

    def test_bad_line(self):
        with pytest.raises(YAMLError):
            parse_yaml("just a line without colon\n")

    def test_error_carries_line_number(self):
        with pytest.raises(YAMLError, match="line 2"):
            parse_yaml("a: 1\na: 2")


EXAMPLE_TOSCA = """
tosca_definitions_version: tosca_simple_yaml_1_3
metadata:
  template_name: climate-extremes
topology_template:
  inputs:
    years:
      default: [2030]
  node_templates:
    zeus_access:
      type: eflows.nodes.ComputeAccess
      properties:
        queue: p_medium
    climate_env:
      type: eflows.nodes.PythonEnvironment
      properties:
        packages: [numpy, pyophidia]
      requirements:
        - host: zeus_access
    app:
      type: eflows.nodes.PyCOMPSsApplication
      properties:
        entrypoint: repro.workflow.extreme_events
      requirements:
        - host: climate_env
"""


class TestTopology:
    def test_from_yaml(self):
        topo = topology_from_yaml(EXAMPLE_TOSCA)
        assert topo.name == "climate-extremes"
        assert set(topo.node_templates) == {"zeus_access", "climate_env", "app"}
        assert topo.node_templates["climate_env"].requirements == ["zeus_access"]
        assert topo.inputs["years"]["default"] == [2030]

    def test_deployment_order_respects_requirements(self):
        topo = topology_from_yaml(EXAMPLE_TOSCA)
        order = [t.name for t in topo.deployment_order()]
        assert order.index("zeus_access") < order.index("climate_env")
        assert order.index("climate_env") < order.index("app")

    def test_unknown_requirement_rejected(self):
        topo = Topology("t")
        topo.add(NodeTemplate("a", "x", requirements=["ghost"]))
        with pytest.raises(TOSCAError):
            topo.validate()

    def test_cycle_rejected(self):
        topo = Topology("t")
        topo.add(NodeTemplate("a", "x", requirements=["b"]))
        topo.add(NodeTemplate("b", "x", requirements=["a"]))
        with pytest.raises(TOSCAError):
            topo.deployment_order()

    def test_duplicate_template_rejected(self):
        topo = Topology("t")
        topo.add(NodeTemplate("a", "x"))
        with pytest.raises(TOSCAError):
            topo.add(NodeTemplate("a", "y"))

    def test_missing_sections_rejected(self):
        with pytest.raises(TOSCAError):
            topology_from_yaml("a: 1")
        with pytest.raises(TOSCAError):
            topology_from_yaml(
                "topology_template:\n  node_templates:\n    a:\n      properties: {}"
                .replace("{}", "")
            )

    def test_untyped_template_rejected(self):
        bad = """
topology_template:
  node_templates:
    a:
      properties:
        x: 1
"""
        with pytest.raises(TOSCAError):
            topology_from_yaml(bad)
