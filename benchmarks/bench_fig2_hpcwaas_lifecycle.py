"""FIG2 — the HPCWaaS lifecycle (paper Figure 2).

Reproduces the deployment/execution path: Alien4Cloud topology upload →
Yorc deployment (container image build, Python environments, DLS data
staging) → workflow publication → Execution API invocation → undeploy.
Reports the time of each lifecycle phase; the workflow itself runs at
test scale.
"""

import time

from benchmarks.conftest import print_table
from repro.workflow import build_case_study_services, run_extreme_events_workflow


def _entrypoint(cl, params):
    wf = {k: v for k, v in params.items() if k in (
        "years", "n_days", "n_lat", "n_lon", "min_length_days",
        "with_ml", "seed", "tc_model_path", "tc_target_grid",
    )}
    return run_extreme_events_workflow(cl, wf)


def run_lifecycle(cluster, tc_model_path):
    timings = {}
    t0 = time.monotonic()
    a4c, api = build_case_study_services(tc_model_bytes=b"placeholder")
    timings["upload_topology"] = time.monotonic() - t0

    t0 = time.monotonic()
    deployment = a4c.deploy("climate-extreme-events", cluster)
    timings["deploy"] = time.monotonic() - t0

    t0 = time.monotonic()
    a4c.set_parameters(
        "climate-extreme-events",
        n_lat=16, n_lon=24, min_length_days=4, with_ml=True,
        tc_model_path=tc_model_path, tc_target_grid=(16, 32), seed=5,
    )
    record = a4c.publish_workflow("extreme-events", deployment, _entrypoint)
    timings["publish"] = time.monotonic() - t0

    t0 = time.monotonic()
    execution = api.invoke("extreme-events", years=[2030], n_days=10)
    summary = execution.wait(timeout=600)
    timings["execute"] = time.monotonic() - t0

    provisioned = {
        name: rec.get("kind", "?") for name, rec in deployment.provisioned.items()
    }
    t0 = time.monotonic()
    a4c.undeploy(record.deployment)
    timings["undeploy"] = time.monotonic() - t0
    return timings, summary, provisioned


def test_fig2_hpcwaas_lifecycle(benchmark, cluster, tc_model_path):
    timings, summary, provisioned = benchmark.pedantic(
        lambda: run_lifecycle(cluster, tc_model_path), rounds=1, iterations=1,
    )

    # Shape: the lifecycle completes, provisioning covers every template,
    # and the workflow produced its science outputs.
    assert 2030 in summary["years"]
    assert cluster.filesystem.exists("models/tc_localizer_staged.pkl")
    assert cluster.filesystem.exists("deployments/climate-extreme-events/deployment.json")

    print_table(
        "FIG2: HPCWaaS lifecycle phases",
        ["phase", "seconds"],
        [[name, f"{secs:.3f}"] for name, secs in timings.items()],
    )
    assert set(provisioned.values()) >= {"container", "environment", "data",
                                         "application", "compute"}
    print_table(
        "FIG2: deployed node templates",
        ["template", "kind"],
        sorted(provisioned.items()),
    )
