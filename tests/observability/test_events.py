"""Structured event log unit tests: emission, sinks, scope, tail."""

import json
import threading

import pytest

from repro.observability.events import (
    Event,
    EventLog,
    current_run_id,
    parse_event_line,
    read_events,
    render_event,
    run_scope,
    severity_at_least,
    tail_events,
)
from repro.observability.spans import TraceCollector, span


class TestSeverity:
    def test_ordering(self):
        assert severity_at_least("ERROR", "WARNING")
        assert severity_at_least("WARNING", "WARNING")
        assert not severity_at_least("INFO", "WARNING")

    def test_unknown_severity_treated_as_info(self):
        assert severity_at_least("BOGUS", "INFO")
        assert not severity_at_least("BOGUS", "WARNING")

    def test_case_insensitive(self):
        assert severity_at_least("error", "Warning")


class TestEmission:
    def test_emit_assigns_monotonic_sequence(self):
        log = EventLog()
        events = [log.emit("INFO", "test", f"e{i}") for i in range(5)]
        assert [e.seq for e in events] == [1, 2, 3, 4, 5]

    def test_unknown_severity_coerced_to_info(self):
        log = EventLog()
        assert log.emit("NONSENSE", "test", "x").severity == "INFO"

    def test_attrs_are_json_safe(self):
        log = EventLog()
        event = log.emit("INFO", "test", "x", obj=object(), items=[1, object()])
        json.dumps(event.to_json())  # must not raise
        assert isinstance(event.attrs["obj"], str)
        assert event.attrs["items"][0] == 1

    def test_span_context_captured(self):
        log = EventLog()
        collector = TraceCollector()
        with span("root", layer="workflow", collector=collector) as handle:
            event = log.emit("INFO", "test", "inside")
        assert event.trace_id == handle.context.trace_id
        assert event.span_id == handle.context.span_id
        outside = log.emit("INFO", "test", "outside")
        assert outside.trace_id == ""

    def test_run_scope_attribution(self):
        log = EventLog()
        assert current_run_id() == ""
        with run_scope("abc123"):
            assert current_run_id() == "abc123"
            inside = log.emit("INFO", "test", "x")
        assert inside.run_id == "abc123"
        assert current_run_id() == ""
        assert log.emit("INFO", "test", "y").run_id == ""

    def test_run_scope_restores_previous(self):
        with run_scope("outer"):
            with run_scope("inner"):
                assert current_run_id() == "inner"
            assert current_run_id() == "outer"

    def test_ring_is_bounded(self):
        log = EventLog(max_events=3)
        for i in range(10):
            log.emit("INFO", "test", f"e{i}")
        assert len(log) == 3
        assert [e.name for e in log.events()] == ["e7", "e8", "e9"]

    def test_filtering(self):
        log = EventLog()
        log.emit("DEBUG", "ophidia", "op")
        log.emit("WARNING", "compss", "retry")
        log.emit("ERROR", "lsf", "crash")
        assert len(log.events(min_severity="WARNING")) == 2
        assert [e.name for e in log.events(component="lsf")] == ["crash"]
        with run_scope("r1"):
            log.emit("INFO", "workflow", "scoped")
        assert [e.name for e in log.events(run_id="r1")] == ["scoped"]


class TestSinks:
    def test_file_sink_writes_jsonl(self, tmp_path):
        log = EventLog()
        path = str(tmp_path / "sub" / "events.jsonl")
        log.attach_file(path)  # creates the parent directory
        log.emit("INFO", "test", "one", "hello", n=1)
        log.emit("ERROR", "test", "two")
        log.detach_file()
        events = read_events(path)
        assert [e.name for e in events] == ["one", "two"]
        assert events[0].message == "hello"
        assert events[0].attrs == {"n": 1}

    def test_attach_is_append(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog()
        log.attach_file(path)
        log.emit("INFO", "test", "first")
        log.detach_file()
        log.attach_file(path)
        log.emit("INFO", "test", "second")
        log.detach_file()
        assert [e.name for e in read_events(path)] == ["first", "second"]

    def test_dead_file_sink_is_disarmed_not_fatal(self, tmp_path):
        log = EventLog()
        path = str(tmp_path / "events.jsonl")
        log.attach_file(path)
        log._file.close()  # simulate the handle dying under the log
        event = log.emit("INFO", "test", "after-death")  # must not raise
        assert event.name == "after-death"
        assert log.file_path is None  # sink disarmed

    def test_subscriber_fanout_and_unsubscribe(self):
        log = EventLog()
        seen = []
        unsubscribe = log.subscribe(lambda e: seen.append(e.name))
        log.emit("INFO", "test", "a")
        unsubscribe()
        log.emit("INFO", "test", "b")
        assert seen == ["a"]

    def test_broken_subscriber_does_not_raise(self):
        log = EventLog()

        def boom(event):
            raise RuntimeError("subscriber bug")

        log.subscribe(boom)
        assert log.emit("INFO", "test", "x").name == "x"

    def test_concurrent_emitters_unique_seq(self, tmp_path):
        log = EventLog()
        log.attach_file(str(tmp_path / "events.jsonl"))

        def emit_many(worker):
            for i in range(50):
                log.emit("INFO", "test", "e", worker=worker, i=i)

        threads = [threading.Thread(target=emit_many, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.detach_file()
        seqs = [e.seq for e in log.events()]
        assert len(seqs) == 200
        assert len(set(seqs)) == 200
        on_disk = read_events(str(tmp_path / "events.jsonl"))
        assert len(on_disk) == 200  # no torn/interleaved lines


class TestParsing:
    def test_roundtrip(self):
        event = Event(seq=3, ts=123.4, severity="WARNING", component="lsf",
                      name="node_crashed", message="boom",
                      trace_id="t", span_id="s", run_id="r",
                      attrs={"node": "local1"})
        parsed = parse_event_line(json.dumps(event.to_json()))
        assert parsed == event

    def test_junk_lines_skipped(self):
        assert parse_event_line("") is None
        assert parse_event_line("not json") is None
        assert parse_event_line('{"no": "event key"}') is None

    def test_render_contains_the_essentials(self):
        event = Event(seq=1, ts=0.0, severity="ERROR", component="lsf",
                      name="node_crashed", message="node died",
                      attrs={"node": "local1"})
        line = render_event(event)
        assert "ERROR" in line
        assert "lsf/node_crashed" in line
        assert "node died" in line
        assert "node=local1" in line


class TestTail:
    def test_tail_reads_existing_file(self, tmp_path):
        log = EventLog()
        path = str(tmp_path / "events.jsonl")
        log.attach_file(path)
        log.emit("DEBUG", "ophidia", "op")
        log.emit("ERROR", "lsf", "crash")
        log.detach_file()
        names = [e.name for e in tail_events(path)]
        assert names == ["op", "crash"]
        errors = [e.name for e in tail_events(path, min_severity="ERROR")]
        assert errors == ["crash"]
        lsf = [e.name for e in tail_events(path, component="lsf")]
        assert lsf == ["crash"]

    def test_tail_never_yields_torn_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        full = json.dumps({"seq": 1, "ts": 0, "severity": "INFO",
                           "component": "t", "event": "whole"})
        partial = '{"seq": 2, "ts": 0, "severity": "INFO"'
        path.write_text(full + "\n" + partial)  # writer mid-line
        names = [e.name for e in tail_events(str(path))]
        assert names == ["whole"]

    def test_tail_follow_picks_up_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("")
        seen = []
        done = threading.Event()

        def consume():
            for event in tail_events(str(path), follow=True,
                                     poll_interval=0.01,
                                     stop=lambda: done.is_set()):
                seen.append(event.name)
                if event.name == "last":
                    done.set()

        thread = threading.Thread(target=consume)
        thread.start()
        log = EventLog()
        log.attach_file(str(path))
        log.emit("INFO", "test", "first")
        log.emit("INFO", "test", "last")
        log.detach_file()
        thread.join(timeout=5.0)
        done.set()
        assert not thread.is_alive()
        assert seen == ["first", "last"]
