"""Injector objects that turn a :class:`~repro.faults.plan.FaultPlan`
into raised exceptions at the right hook points.

The hook contracts are intentionally tiny so the production layers stay
ignorant of this package:

* ``SharedFilesystem.fault_injector.before_op(op, path, fs=...)`` —
  called before every data operation; raising aborts it.
* ``repro.compss.runtime`` task hook: ``before_task(func_name, task_id,
  worker_id, attempt, remote_deps=...)`` — called before a task body
  runs; raising fails the attempt through the normal failure path.

Every injected fault increments ``faults_injected_total{kind=...}`` in
the shared metrics registry, which is how chaos runs prove that faults
actually fired.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Optional

from repro.faults.errors import (
    InjectedIOError,
    InjectedTaskError,
    InjectedTransferError,
    NodeCrashedError,
)
from repro.faults.plan import FaultPlan
from repro.observability.events import emit_event
from repro.observability.metrics import get_registry


def _count_fault(kind: str, **attrs) -> None:
    get_registry().counter(
        "faults_injected_total", "Faults injected by the chaos plane",
        labels=("kind",),
    ).inc(kind=kind)
    emit_event(
        "WARNING", "faults", "fault_injected",
        f"injected {kind} fault", kind=kind, **attrs,
    )


class FilesystemFaultInjector:
    """Seeded error injection for :class:`SharedFilesystem` operations.

    Two independent behaviours share the hook:

    * rate-based transient errors (``fs_error_rate`` over ``fs_ops``);
    * *crash mode* — once :meth:`enter_crash_mode` is called, **every**
      operation raises :class:`NodeCrashedError` until
      :meth:`clear_crash_mode`.  This models a process whose node died:
      it cannot reach the filesystem at all, so whatever it was doing
      collapses quickly and the batch layer can requeue it.

    A write-counter callback (:attr:`on_write`) lets the chaos
    controller trigger node crashes deterministically at the N-th write.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._crashed_node: Optional[str] = None
        self._writes = 0
        self._ops = 0
        #: Called (outside the lock) with the cumulative write count
        #: after each write-class operation; set by the ChaosController.
        self.on_write: Optional[Callable[[int], None]] = None

    # -- crash mode ---------------------------------------------------------

    def enter_crash_mode(self, node_name: str) -> None:
        with self._lock:
            self._crashed_node = node_name

    def clear_crash_mode(self) -> None:
        with self._lock:
            self._crashed_node = None

    @property
    def crashed_node(self) -> Optional[str]:
        with self._lock:
            return self._crashed_node

    # -- stats --------------------------------------------------------------

    @property
    def ops_seen(self) -> int:
        with self._lock:
            return self._ops

    @property
    def writes_seen(self) -> int:
        with self._lock:
            return self._writes

    # -- the hook -----------------------------------------------------------

    def before_op(self, op: str, path: str, fs: str = "") -> None:
        """Decide the fate of one filesystem operation (may raise)."""
        is_write = op.startswith("write")
        with self._lock:
            self._ops += 1
            if is_write:
                self._writes += 1
            writes = self._writes
            crashed = self._crashed_node
            inject = (
                crashed is None
                and self.plan.fs_error_rate > 0
                and op in self.plan.fs_ops
                and self._rng.random() < self.plan.fs_error_rate
            )
        if is_write and self.on_write is not None:
            self.on_write(writes)
            # The callback may have pulled the node down under us.
            crashed = self.crashed_node
        if crashed is not None:
            _count_fault("node_crash_io", node=crashed, op=op, path=path)
            raise NodeCrashedError(crashed, detail=f"{op} {path!r}")
        if inject:
            _count_fault(f"fs_{op}", op=op, path=path)
            raise InjectedIOError(op, path)


class TaskFaultInjector:
    """Seeded task-exception and transfer-failure injection.

    Installed through
    :func:`repro.compss.runtime.set_task_fault_injector`; the runtime
    calls :meth:`before_task` inside the task's failure scope, so an
    injected raise flows through the regular ``OnFailure`` / transient
    resubmission machinery — which is precisely what a chaos experiment
    wants to exercise.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed + 1)  # distinct stream from FS
        self._lock = threading.Lock()

    def before_task(
        self,
        func_name: str,
        task_id: int,
        worker_id: int,
        attempt: int,
        remote_deps: int = 0,
    ) -> None:
        plan = self.plan
        with self._lock:
            inject_task = (
                plan.task_error_rate > 0
                and (plan.task_targets is None or func_name in plan.task_targets)
                and self._rng.random() < plan.task_error_rate
            )
            inject_transfer = (
                plan.transfer_error_rate > 0
                and remote_deps > 0
                and self._rng.random() < plan.transfer_error_rate
            )
        if inject_transfer:
            _count_fault("transfer", function=func_name, task_id=task_id)
            raise InjectedTransferError(func_name, task_id, remote_deps)
        if inject_task:
            _count_fault("task_exception", function=func_name, task_id=task_id)
            raise InjectedTaskError(func_name, task_id)
