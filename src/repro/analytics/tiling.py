"""Patch tiling, feature scaling and geo-referencing for the ML pipeline.

§5.4's pre/post-processing around CNN inference: multichannel fields are
tiled into non-overlapping square patches, each channel is scaled, the
network predicts per-patch TC presence and an in-patch centre offset,
and predicted offsets are geo-referenced back to global coordinates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


def tile_patches(fields: np.ndarray, patch: int) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Split ``(channels, lat, lon)`` into non-overlapping patches.

    Returns ``(patches, origins)`` where *patches* is
    ``(n, channels, patch, patch)`` and each origin is the (row, col) of
    the patch's upper-left cell.  Both spatial sizes must be divisible
    by *patch* (regrid first — that is exactly why the pipeline regrids).
    """
    fields = np.asarray(fields)
    if fields.ndim != 3:
        raise ValueError(f"expected (channels, lat, lon), got shape {fields.shape}")
    _, n_lat, n_lon = fields.shape
    if patch < 1 or n_lat % patch or n_lon % patch:
        raise ValueError(
            f"patch size {patch} must divide the grid {n_lat}x{n_lon}"
        )
    patches = []
    origins: List[Tuple[int, int]] = []
    for i0 in range(0, n_lat, patch):
        for j0 in range(0, n_lon, patch):
            patches.append(fields[:, i0:i0 + patch, j0:j0 + patch])
            origins.append((i0, j0))
    return np.stack(patches), origins


def stitch_patches(
    patches: np.ndarray,
    origins: List[Tuple[int, int]],
    grid_shape: Tuple[int, int],
) -> np.ndarray:
    """Inverse of :func:`tile_patches` for single-channel patches."""
    patches = np.asarray(patches)
    n, channels = patches.shape[0], patches.shape[1]
    patch = patches.shape[2]
    out = np.zeros((channels,) + tuple(grid_shape), dtype=patches.dtype)
    for k, (i0, j0) in enumerate(origins):
        out[:, i0:i0 + patch, j0:j0 + patch] = patches[k]
    return out


def scale_features(
    patches: np.ndarray,
    stats: Optional[Dict[str, np.ndarray]] = None,
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Per-channel standardisation: ``(x - mean) / std``.

    With *stats* given (from training), applies them; otherwise computes
    them over the batch and returns them for reuse at inference, the
    usual train/infer asymmetry.
    """
    patches = np.asarray(patches, dtype=np.float64)
    if patches.ndim != 4:
        raise ValueError("expected (n, channels, h, w)")
    if stats is None:
        mean = patches.mean(axis=(0, 2, 3))
        std = patches.std(axis=(0, 2, 3))
        std = np.where(std > 1e-9, std, 1.0)
        stats = {"mean": mean, "std": std}
    mean = np.asarray(stats["mean"])
    std = np.asarray(stats["std"])
    scaled = (patches - mean[None, :, None, None]) / std[None, :, None, None]
    return scaled, stats


def scale_patches_individually(patches: np.ndarray) -> np.ndarray:
    """Standardise every patch per channel over its own pixels.

    Unlike :func:`scale_features`, no dataset statistics are needed:
    each patch is centred on itself, which makes a detector trained this
    way insensitive to the large background differences between climate
    regimes (tropical vs polar patches differ by ~70 K in T850).
    """
    patches = np.asarray(patches, dtype=np.float64)
    if patches.ndim != 4:
        raise ValueError("expected (n, channels, h, w)")
    mean = patches.mean(axis=(2, 3), keepdims=True)
    std = patches.std(axis=(2, 3), keepdims=True)
    std = np.where(std > 1e-9, std, 1.0)
    return (patches - mean) / std


def patch_center_latlon(
    origin: Tuple[int, int],
    offset_rc: Tuple[float, float],
    lat: np.ndarray,
    lon: np.ndarray,
) -> Tuple[float, float]:
    """Geo-reference an in-patch (row, col) offset to global lat/lon.

    *offset_rc* is the predicted centre in fractional patch-local cell
    units; interpolation between cell centres handles the fraction, with
    periodic longitude.
    """
    lat = np.asarray(lat)
    lon = np.asarray(lon)
    row = origin[0] + float(offset_rc[0])
    col = origin[1] + float(offset_rc[1])

    r0 = int(np.clip(np.floor(row), 0, lat.size - 1))
    r1 = min(r0 + 1, lat.size - 1)
    fr = np.clip(row - r0, 0.0, 1.0)
    out_lat = float(lat[r0] * (1 - fr) + lat[r1] * fr)

    c0 = int(np.floor(col)) % lon.size
    c1 = (c0 + 1) % lon.size
    fc = np.clip(col - np.floor(col), 0.0, 1.0)
    lon0 = lon[c0]
    lon1 = lon[c1] if lon[c1] >= lon[c0] else lon[c1] + 360.0
    out_lon = float((lon0 * (1 - fc) + lon1 * fc) % 360.0)
    return out_lat, out_lon
