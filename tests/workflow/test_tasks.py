"""Unit tests for individual workflow tasks (sequential mode)."""

import json

import numpy as np
import pytest

from repro.cluster import SharedFilesystem
from repro.esm import CMCCCM3, ModelConfig
from repro.ophidia import Client, Cube, OphidiaServer
from repro.workflow import tasks
from repro.workflow.extreme_events import YearCollector


@pytest.fixture
def fs(tmp_path):
    return SharedFilesystem(tmp_path)


@pytest.fixture
def client(fs):
    with OphidiaServer(n_io_servers=2, n_cores=2, filesystem=fs) as server:
        yield Client(server)


def run_small_esm(fs, years=(2030,), n_days=8, n_lat=16, n_lon=24, seed=5):
    return tasks.esm_simulation(
        fs, list(years), n_days, n_lat, n_lon, "ssp245", seed, "esm_output", 0.0
    )


class TestESMTasks:
    def test_esm_simulation_writes_days_and_truth(self, fs):
        truth = run_small_esm(fs, n_days=4)
        assert len(fs.glob("esm_output", "cmcc_cm3_*.rnc")) == 4
        assert set(truth[2030]) == {"heat_waves", "cold_waves", "tropical_cyclones"}

    def test_write_baseline(self, fs):
        path = tasks.write_baseline(fs, 16, 24, "ssp245", 5, 10)
        ds = fs.read(path)
        assert ds["TMAX_BASELINE"].shape == (10, 16, 24)


class TestMonitor:
    def test_monitor_year_collects_files(self, fs):
        run_small_esm(fs, n_days=5)
        collector = YearCollector(fs.path("esm_output"))
        paths = tasks.monitor_year(collector, 2030, 5)
        assert len(paths) == 5
        assert paths == sorted(paths)
        collector.close()

    def test_monitor_multiple_years_share_stream(self, fs):
        run_small_esm(fs, years=(2030, 2031), n_days=3)
        collector = YearCollector(fs.path("esm_output"))
        p30 = collector.collect_year(2030, 3)
        p31 = collector.collect_year(2031, 3)
        assert all("2030" in p for p in p30)
        assert all("2031" in p for p in p31)
        collector.close()

    def test_closed_collector_raises_when_incomplete(self, fs):
        from repro.compss import StreamClosed

        run_small_esm(fs, n_days=2)
        collector = YearCollector(fs.path("esm_output"))
        collector.close()
        with pytest.raises(StreamClosed):
            collector.collect_year(2030, 99)


class TestLoadAndIndices:
    def test_load_year_cubes_daily_extremes(self, fs, client):
        run_small_esm(fs, n_days=6)
        paths = [f"esm_output/{n}" for n in fs.glob("esm_output", "cmcc_cm3_*.rnc")]
        paths = [n for n in fs.glob("esm_output", "cmcc_cm3_*.rnc")]
        tmax, tmin = tasks.load_year_cubes(client, paths, nfrag=2)
        assert tmax.shape == (6, 16, 24)
        assert tmin.shape == (6, 16, 24)
        assert np.all(tmax.to_array() >= tmin.to_array())

    def test_full_index_chain_matches_reference(self, fs, client):
        """Task chain vs the NumPy reference on real model output."""
        from repro.analytics import compute_heatwave_indices

        n_days = 30
        run_small_esm(fs, n_days=n_days, seed=11)
        tasks.write_baseline(fs, 16, 24, "ssp245", 11, n_days)
        paths = fs.glob("esm_output", "cmcc_cm3_*.rnc")
        tmax, _ = tasks.load_year_cubes(client, paths, nfrag=2)
        base_tmax, _ = tasks.load_baseline_cubes(
            client, "baselines/climatology.rnc", 2, n_days
        )
        dur = tasks.compute_qualifying_durations(
            client, tmax, base_tmax, "heat", 5.0, 6
        )
        dmax = tasks.index_duration_max(client, dur, "t_dmax", "results")
        num = tasks.index_duration_number(client, dur, "t_num", "results")
        freq = tasks.index_frequency(client, dur, n_days, "t_freq", "results")

        ref = compute_heatwave_indices(
            tmax.to_array().astype(np.float64),
            base_tmax.to_array().astype(np.float64),
        )
        np.testing.assert_array_equal(dmax.to_array(), ref.duration_max)
        np.testing.assert_array_equal(num.to_array(), ref.number)
        np.testing.assert_allclose(freq.to_array(), ref.frequency, atol=1e-6)
        assert fs.exists("results/t_dmax.rnc")
        assert fs.exists("results/t_num.rnc")
        assert fs.exists("results/t_freq.rnc")

    def test_validate_and_store(self, fs, client):
        data = np.zeros((10, 4, 4), np.float32)
        data[2:10, 1, 1] = 10.0  # one 8-day wave
        base = Cube.from_array(np.zeros((10, 4, 4), np.float32),
                               ["time", "lat", "lon"], client=client,
                               fragment_dim="lat")
        cube = Cube.from_array(data, ["time", "lat", "lon"], client=client,
                               fragment_dim="lat")
        dur = tasks.compute_qualifying_durations(client, cube, base, "heat", 5.0, 6)
        dmax = tasks.index_duration_max(client, dur, "x1", "results")
        num = tasks.index_duration_number(client, dur, "x2", "results")
        freq = tasks.index_frequency(client, dur, 10, "x3", "results")
        stats = tasks.validate_and_store(
            fs, dmax, num, freq, "heat", 2030, 10, 6, "results"
        )
        assert stats["max_duration_days"] == 8.0
        stored = json.loads(fs.read_bytes("results/heat_summary_2030.json"))
        assert stored == stats

    def test_make_map(self, fs, client):
        cube = Cube.from_array(np.arange(12.0).reshape(3, 4), ["lat", "lon"],
                               client=client, fragment_dim="lat")
        path = tasks.make_map(fs, cube, "Test map", "test_map", "results")
        assert path.endswith(".pgm")
        assert fs.read_bytes(path).startswith(b"P5")
        assert b"Test map" in fs.read_bytes("results/test_map.txt")


class TestTCTasks:
    def test_tc_preprocess_shapes(self, fs):
        run_small_esm(fs, n_days=2)
        paths = fs.glob("esm_output", "cmcc_cm3_*.rnc")
        prepared = tasks.tc_preprocess(fs, paths, (32, 64))
        assert prepared["data"].shape == (8, 4, 32, 64)
        assert prepared["lat"].shape == (32,)

    def test_tc_inference_and_georeference(self, fs, tmp_path):
        model_path = tasks.ensure_tc_model(None, 16, str(tmp_path / "m"))
        run_small_esm(fs, n_days=2)
        paths = fs.glob("esm_output", "cmcc_cm3_*.rnc")
        prepared = tasks.tc_preprocess(fs, paths, (32, 64))
        detections = tasks.tc_inference(model_path, prepared)
        assert isinstance(detections, list)
        out = tasks.tc_georeference(fs, detections, 2030, "results")
        assert json.loads(fs.read_bytes(out)) == detections

    def test_tc_deterministic_tracking_runs(self, fs):
        run_small_esm(fs, n_days=6, n_lat=32, n_lon=48)
        paths = fs.glob("esm_output", "cmcc_cm3_*.rnc")
        result = tasks.tc_deterministic_tracking(fs, paths, 2030, "results")
        assert "tracks" in result
        assert fs.exists(result["path"])

    def test_ensure_tc_model_reuses_existing(self, tmp_path):
        path1 = tasks.ensure_tc_model(None, 16, str(tmp_path))
        mtime = __import__("os").path.getmtime(path1)
        path2 = tasks.ensure_tc_model(path1, 16, str(tmp_path))
        assert path1 == path2
        assert __import__("os").path.getmtime(path2) == mtime

    def test_score_against_truth_empty(self):
        assert tasks.score_against_truth([], [], 10)["n_truth"] == 0
