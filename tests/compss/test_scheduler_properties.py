"""Property-based scheduler tests: no ready task is lost or duplicated.

Every policy's ``select`` is a destructive pop from the shared ready
list, called under the runtime lock by whichever worker wakes first.
Whatever the mix of priorities, submit orders and worker placements,
draining the ready list through a policy must yield each task exactly
once — a policy that drops or double-schedules a task corrupts the
whole run.  The end-to-end properties re-check the same invariant
through ``_select_runnable`` with real worker threads racing.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compss import (
    COMPSs,
    DataLocalityPolicy,
    FIFOPolicy,
    PriorityPolicy,
    compss_wait_on,
    task,
)
from repro.compss.failures import OnFailure
from repro.compss.task_graph import TaskGraph, TaskNode

POLICIES = [FIFOPolicy, PriorityPolicy, DataLocalityPolicy]


@st.composite
def ready_pools(draw):
    """A randomized ready list over a graph with placed predecessors."""
    n_producers = draw(st.integers(0, 3))
    n_ready = draw(st.integers(1, 12))
    n_workers = draw(st.integers(1, 4))
    graph = TaskGraph()
    producer_ids = []
    for i in range(n_producers):
        producer = TaskNode(
            i + 1, "src", lambda: None, (), {}, 0, (), OnFailure.FAIL, 0
        )
        producer.submit_order = i + 1
        producer.worker_id = draw(st.integers(0, n_workers - 1))
        graph.add_task(producer, ())
        producer_ids.append(producer.task_id)
    ready = []
    for i in range(n_ready):
        task_id = n_producers + i + 1
        node = TaskNode(
            task_id, "use", lambda: None, (), {}, 0, (), OnFailure.FAIL, 0,
            priority=draw(st.booleans()),
        )
        node.submit_order = draw(st.integers(0, 100))
        deps = draw(
            st.lists(st.sampled_from(producer_ids), unique=True)
        ) if producer_ids else []
        graph.add_task(node, deps)
        ready.append(node)
    return graph, ready, n_workers


class TestPolicyDrainProperties:
    @pytest.mark.parametrize("policy_cls", POLICIES)
    @given(pool=ready_pools())
    @settings(max_examples=30, deadline=None)
    def test_drain_yields_each_task_exactly_once(self, policy_cls, pool):
        graph, ready, n_workers = pool
        expected = sorted(n.task_id for n in ready)
        policy = policy_cls()
        picked = []
        worker = 0
        while True:
            node = policy.select(ready, worker % n_workers, graph)
            if node is None:
                break
            picked.append(node.task_id)
            worker += 1          # alternate requesting workers
        assert ready == []
        assert sorted(picked) == expected

    @pytest.mark.parametrize("policy_cls", [PriorityPolicy, DataLocalityPolicy])
    @given(pool=ready_pools())
    @settings(max_examples=30, deadline=None)
    def test_priority_tasks_never_starve_behind_normal_ones(
        self, policy_cls, pool
    ):
        graph, ready, n_workers = pool
        n_priority = sum(1 for n in ready if n.priority)
        policy = policy_cls()
        picked = []
        worker = 0
        while ready:
            picked.append(policy.select(ready, worker % n_workers, graph))
            worker += 1
        flags = [n.priority for n in picked]
        assert all(flags[:n_priority]), (
            "every priority task must drain before the first normal one"
        )


class TestRuntimeDrainProperties:
    @pytest.mark.parametrize("policy_cls", POLICIES)
    @given(n_tasks=st.integers(1, 16), n_workers=st.integers(1, 4),
           priority_mask=st.integers(0, 2 ** 16 - 1))
    @settings(max_examples=8, deadline=None)
    def test_concurrent_workers_run_each_task_once(
        self, policy_cls, n_tasks, n_workers, priority_mask
    ):
        """Real worker threads race through ``_select_runnable``; every
        submitted task completes exactly once under every policy."""
        runs = []
        lock = threading.Lock()

        @task(returns=1)
        def normal(i):
            with lock:
                runs.append(i)
            return i

        @task(returns=1, priority=True)
        def urgent(i):
            with lock:
                runs.append(i)
            return i

        with COMPSs(n_workers=n_workers, scheduler=policy_cls()) as rt:
            futures = [
                (urgent if priority_mask >> i & 1 else normal)(i)
                for i in range(n_tasks)
            ]
            results = compss_wait_on(futures)
            assert rt.graph.counts_by_state() == {"COMPLETED": n_tasks}
        assert results == list(range(n_tasks))
        assert sorted(runs) == list(range(n_tasks))
