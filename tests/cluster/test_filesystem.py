"""Tests for the shared filesystem facade and its I/O accounting."""

import numpy as np
import pytest

from repro.cluster import SharedFilesystem
from repro.netcdf import Dataset


def small_ds(value=0.0):
    ds = Dataset({"v": value})
    ds.create_variable("x", np.full((2, 3), value), ("a", "b"))
    return ds


class TestDatasetIO:
    def test_write_read_roundtrip(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        fs.write("out/y2015/day_001.rnc", small_ds(1.5))
        back = fs.read("out/y2015/day_001.rnc")
        np.testing.assert_array_equal(back["x"].data, np.full((2, 3), 1.5))

    def test_counters_track_ops_and_bytes(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        n = fs.write("a.rnc", small_ds())
        assert fs.stats.writes == 1
        assert fs.stats.bytes_written == n
        fs.read("a.rnc")
        assert fs.stats.reads == 1
        assert fs.stats.bytes_read == small_ds().nbytes

    def test_stats_snapshot_delta(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        fs.write("a.rnc", small_ds())
        before = fs.stats.snapshot()
        fs.read("a.rnc")
        fs.read("a.rnc")
        delta = fs.stats.delta(before)
        assert delta.reads == 2
        assert delta.writes == 0

    def test_subset_read_counts_only_loaded_bytes(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        ds = Dataset()
        ds.create_variable("big", np.zeros((100, 100)), ("a", "b"))
        ds.create_variable("small", np.zeros(10), ("c",))
        fs.write("f.rnc", ds)
        fs.read("f.rnc", variables=["small"])
        assert fs.stats.bytes_read == 10 * 8


class TestNamespace:
    def test_path_escape_rejected(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        with pytest.raises(ValueError):
            fs.path("../outside")

    def test_listdir_and_glob(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        for d in (3, 1, 2):
            fs.write(f"y/day_{d:03d}.rnc", small_ds())
        fs.write_bytes("y/readme.txt", b"hi")
        assert fs.listdir("y") == ["day_001.rnc", "day_002.rnc", "day_003.rnc", "readme.txt"]
        assert fs.glob("y", "day_*.rnc") == [
            "y/day_001.rnc", "y/day_002.rnc", "y/day_003.rnc"
        ]
        assert fs.stats.lists == 2

    def test_listdir_missing_dir_is_empty(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        assert fs.listdir("nope") == []

    def test_exists_delete(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        fs.write_bytes("f.bin", b"abc")
        assert fs.exists("f.bin")
        assert fs.size("f.bin") == 3
        fs.delete("f.bin")
        assert not fs.exists("f.bin")
        assert fs.stats.deletes == 1

    def test_raw_bytes_roundtrip(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        fs.write_bytes("ckpt/t1.pkl", b"\x00\x01\x02")
        assert fs.read_bytes("ckpt/t1.pkl") == b"\x00\x01\x02"

    def test_read_header_counts_read(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        fs.write("a.rnc", small_ds())
        header = fs.read_header("a.rnc")
        assert "x" in header["variables"]
        assert fs.stats.reads == 1
        assert fs.stats.bytes_read == 0


class _RecordingInjector:
    """Captures every op offered to the fault hook; raises on demand."""

    def __init__(self, fail_ops=()):
        self.ops = []
        self.fail_ops = set(fail_ops)

    def before_op(self, op, path, fs=None):
        self.ops.append((op, path))
        if op in self.fail_ops:
            raise OSError(f"injected fault on {op}")


class TestMetadataOps:
    """exists/size/delete must be visible to stats and chaos alike."""

    def test_exists_and_size_are_counted(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        fs.write_bytes("f.bin", b"abc")
        before = fs.stats.snapshot()
        assert fs.exists("f.bin")
        assert not fs.exists("nope.bin")
        assert fs.size("f.bin") == 3
        assert fs.stats.delta(before).metadata_ops == 3

    def test_exists_size_delete_route_through_fault_hook(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        fs.write_bytes("f.bin", b"abc")
        injector = _RecordingInjector()
        fs.fault_injector = injector
        fs.exists("f.bin")
        fs.size("f.bin")
        fs.delete("f.bin")
        assert [op for op, _ in injector.ops] == ["exists", "size", "delete"]

    def test_injected_delete_fault_keeps_the_file(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        fs.write_bytes("f.bin", b"abc")
        fs.fault_injector = _RecordingInjector(fail_ops={"delete"})
        deletes_before = fs.stats.deletes
        with pytest.raises(OSError):
            fs.delete("f.bin")
        fs.fault_injector = None
        assert fs.exists("f.bin")
        assert fs.stats.deletes == deletes_before

    def test_delete_is_injectable_by_default_plan(self):
        from repro.faults.plan import DEFAULT_FS_OPS

        assert "delete" in DEFAULT_FS_OPS
        # Namespace probes stay opt-in: failing every exists() would
        # break polling loops outside any retry scope.
        assert "exists" not in DEFAULT_FS_OPS
        assert "size" not in DEFAULT_FS_OPS
