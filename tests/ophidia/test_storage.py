"""Tests for I/O servers and the storage pool."""

import numpy as np
import pytest

from repro.ophidia import IOServer, StoragePool


class TestIOServer:
    def test_put_get(self):
        s = IOServer("io0")
        s.put(1, np.arange(5))
        np.testing.assert_array_equal(s.get(1), np.arange(5))

    def test_counters(self):
        s = IOServer("io0")
        data = np.zeros(10, dtype=np.float64)
        s.put(1, data)
        s.get(1)
        s.get(1)
        assert s.stats.fragment_writes == 1
        assert s.stats.fragment_reads == 2
        assert s.stats.bytes_written == 80
        assert s.stats.bytes_read == 160

    def test_missing_fragment(self):
        s = IOServer("io0")
        with pytest.raises(KeyError):
            s.get(99)

    def test_delete_idempotent(self):
        s = IOServer("io0")
        s.put(1, np.zeros(3))
        s.delete(1)
        s.delete(1)
        assert s.stats.fragment_deletes == 1
        assert 1 not in s

    def test_resident_bytes(self):
        s = IOServer("io0")
        s.put(1, np.zeros(4, dtype=np.float64))
        s.put(2, np.zeros(2, dtype=np.float32))
        assert s.resident_bytes == 32 + 8
        assert s.n_fragments == 2


class TestStoragePool:
    def test_round_robin_placement(self):
        pool = StoragePool(n_servers=3)
        for _ in range(6):
            pool.store(np.zeros(1))
        assert [s.n_fragments for s in pool.servers] == [2, 2, 2]

    def test_store_load_roundtrip(self):
        pool = StoragePool(2)
        fid = pool.store(np.arange(4))
        np.testing.assert_array_equal(pool.load(fid), np.arange(4))

    def test_unknown_fragment(self):
        pool = StoragePool(1)
        with pytest.raises(KeyError):
            pool.load(123)

    def test_delete_many(self):
        pool = StoragePool(2)
        fids = [pool.store(np.zeros(2)) for _ in range(4)]
        pool.delete_many(fids)
        assert pool.n_fragments == 0
        assert pool.total_stats().fragment_deletes == 4

    def test_total_stats_aggregates(self):
        pool = StoragePool(2)
        fids = [pool.store(np.zeros(2)) for _ in range(4)]
        for fid in fids:
            pool.load(fid)
        agg = pool.total_stats()
        assert agg.fragment_writes == 4
        assert agg.fragment_reads == 4

    def test_stats_snapshot_delta(self):
        pool = StoragePool(1)
        fid = pool.store(np.zeros(2))
        before = pool.total_stats()
        pool.load(fid)
        delta = pool.total_stats().delta(before)
        assert delta.fragment_reads == 1
        assert delta.fragment_writes == 0

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            StoragePool(0)
