"""C2 — in-memory baseline reuse cuts storage reads.

§5.3: "since Ophidia can store the datasets in memory between different
operators' execution, the baseline values with the long-term historical
averages can be loaded only once and used throughout the workflows ...
reducing the number of read operations from storage."

Both modes compute the identical 4-year index set; the reuse mode loads
the baseline cubes once, the no-reuse mode re-imports them per year.
Shape: fewer baseline loads → fewer filesystem reads and bytes.
"""

from benchmarks.conftest import print_table
from repro.cluster import laptop_like
from repro.observability import snapshot_value
from repro.workflow import WorkflowParams, run_extreme_events_workflow

YEARS = [2030, 2031, 2032, 2033]


def fs_reads(summary) -> float:
    """Read-op count for one run, from its exported metrics snapshot."""
    return sum(
        snapshot_value(summary["metrics"], "fs_operations_total", op=op)
        for op in ("read", "read_header", "read_bytes")
    )


def run_mode(tmp_path, reuse: bool):
    with laptop_like(scratch_root=str(tmp_path / f"reuse{reuse}")) as cluster:
        params = WorkflowParams(
            years=YEARS, n_days=15, n_lat=16, n_lon=24, n_workers=4,
            min_length_days=4, with_ml=False, seed=5, reuse_baseline=reuse,
            # C2 isolates the *application-level* reuse effect; the block
            # cache would mask the re-import reads (C7 measures that layer).
            fs_cache_bytes=0,
        )
        summary = run_extreme_events_workflow(cluster, params)
        return summary


def test_c2_inmemory_baseline_reuse(benchmark, tmp_path):
    no_reuse = run_mode(tmp_path, reuse=False)
    reuse = benchmark.pedantic(
        lambda: run_mode(tmp_path, reuse=True), rounds=1, iterations=1
    )

    # Headline numbers come from each run's exported metrics snapshot
    # (the telemetry registry delta), not ad-hoc summary fields.
    loads_reuse = reuse["task_graph"]["by_function"]["load_baseline_cubes"]
    loads_noreuse = no_reuse["task_graph"]["by_function"]["load_baseline_cubes"]
    reads_reuse = fs_reads(reuse)
    reads_noreuse = fs_reads(no_reuse)
    bytes_reuse = snapshot_value(reuse["metrics"], "fs_bytes_read_total")
    bytes_noreuse = snapshot_value(no_reuse["metrics"], "fs_bytes_read_total")

    # The registry delta covers the whole run (it also sees the
    # provenance/summary I/O issued after the in-run storage section was
    # computed), so it can only ever exceed the summary's own counter.
    assert bytes_reuse >= reuse["storage"]["fs_bytes_read"]

    # Shape: exactly one baseline load vs one per year; strictly fewer
    # filesystem reads; identical science.
    assert loads_reuse == 1
    assert loads_noreuse == len(YEARS)
    assert reads_reuse < reads_noreuse
    assert bytes_reuse < bytes_noreuse
    for year in YEARS:
        assert reuse["years"][year]["heat_waves"] == no_reuse["years"][year]["heat_waves"]

    print_table(
        f"C2: baseline handling over {len(YEARS)} years",
        ["mode", "baseline loads", "fs reads", "MB read"],
        [
            ["in-memory reuse", loads_reuse, reads_reuse,
             f"{bytes_reuse / 1e6:.1f}"],
            ["reload per year", loads_noreuse, reads_noreuse,
             f"{bytes_noreuse / 1e6:.1f}"],
            ["saving", loads_noreuse - loads_reuse,
             reads_noreuse - reads_reuse,
             f"{(bytes_noreuse - bytes_reuse) / 1e6:.1f}"],
        ],
    )
