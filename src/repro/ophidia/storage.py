"""Fragment storage: chunked in-memory I/O servers with a disk spill tier.

Ophidia partitions each datacube into fragments spread over a set of
I/O server processes that keep data in memory between operators.  Here
an :class:`IOServer` is an instrumented in-memory fragment table and a
:class:`StoragePool` distributes fragments round-robin, mirroring
Ophidia's hierarchical data organisation (host partition → I/O server →
fragment).

Beyond the flat fragment table of the original design, storage is now a
real memory hierarchy:

* **Chunked fragments with statistics** — each fragment is split into
  fixed-size chunks along one axis, and every chunk carries
  min/max/null-count statistics computed at write time
  (:class:`ChunkStats`).  The lazy planner uses these zone-map style
  stats to skip chunks a ``subset`` or ``oph_predicate`` can prove it
  does not need (see :mod:`repro.ophidia.pruning`), and
  :meth:`StoragePool.load_chunk` reads one surviving chunk without
  touching the rest of the fragment.
* **Tiered residency** — the pool enforces an optional byte budget over
  the in-memory tier: when resident bytes exceed
  ``memory_budget_bytes``, the least-recently-used fragments are
  compressed (pluggable codec, zlib by default) and spilled to a
  shared-filesystem directory.  :meth:`StoragePool.load` reloads
  spilled fragments transparently; :meth:`StoragePool.load_handle`
  instead hands out a picklable :class:`SpillHandle` so worker
  processes hydrate cold data themselves without the parent paying the
  memory first.

Fragments are immutable: ``put`` keeps a read-only view and every read
returns read-only arrays, so an operator that tries to mutate a shared
fragment in place raises instead of silently corrupting state.  Spill
files are therefore write-once — re-spilling an already-spilled
fragment just drops the in-memory chunks again.
"""

from __future__ import annotations

import itertools
import os
import pickle
import struct
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.observability.metrics import get_registry

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "ChunkInfo",
    "ChunkStats",
    "IOServer",
    "SpillError",
    "SpillHandle",
    "StoragePool",
    "StorageStats",
    "available_codecs",
    "register_codec",
]

#: Default target size of one fragment chunk.  Small enough that the
#: planner's chunk pruning has leverage on production-scale fragments,
#: large enough that test-scale fragments stay single-chunk (zero-copy
#: reads, no accounting churn for the existing experiments).
DEFAULT_CHUNK_BYTES = 256 * 1024


class SpillError(RuntimeError):
    """A spill-tier operation failed (codec error, torn write, bad file)."""


# ---------------------------------------------------------------------------
# Codecs
# ---------------------------------------------------------------------------

_CODECS: Dict[str, Tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]] = {}


def register_codec(
    name: str,
    compress: Callable[[bytes], bytes],
    decompress: Callable[[bytes], bytes],
) -> None:
    """Register a spill codec (``blosc``-style pluggability).

    Codecs transform raw chunk payload bytes on their way to and from
    the spill tier; they never see in-memory (hot) data.
    """
    _CODECS[name] = (compress, decompress)


def available_codecs() -> List[str]:
    return sorted(_CODECS)


def _get_codec(name: str) -> Tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]:
    try:
        return _CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown spill codec {name!r}; available: {available_codecs()}"
        ) from None


register_codec("none", lambda b: b, lambda b: b)
# Level 1: spilled climate fields are float grids where speed beats
# ratio; the codec is still pluggable per pool.
register_codec("zlib", lambda b: zlib.compress(b, 1), zlib.decompress)

try:  # pragma: no cover - blosc is not in the baked image
    import blosc as _blosc

    register_codec("blosc", _blosc.compress, _blosc.decompress)
except ImportError:
    pass


# ---------------------------------------------------------------------------
# Chunk metadata
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChunkStats:
    """Zone-map statistics of one chunk, computed at write time.

    ``min``/``max`` ignore NaNs (``null_count`` tracks those); both are
    NaN when the chunk is all-null or empty.
    """

    min: float
    max: float
    null_count: int
    count: int

    @classmethod
    def from_array(cls, data: np.ndarray) -> "ChunkStats":
        count = int(data.size)
        if count == 0:
            return cls(float("nan"), float("nan"), 0, 0)
        if data.dtype.kind == "f":
            nulls = int(np.count_nonzero(np.isnan(data)))
            if nulls == count:
                return cls(float("nan"), float("nan"), nulls, count)
            if nulls:
                return cls(
                    float(np.nanmin(data)), float(np.nanmax(data)), nulls, count
                )
        else:
            nulls = 0
        return cls(float(data.min()), float(data.max()), nulls, count)


@dataclass(frozen=True)
class ChunkInfo:
    """Planner-facing chunk descriptor: extent on the chunk axis + stats."""

    start: int
    stop: int
    nbytes: int
    stats: ChunkStats


@dataclass(frozen=True)
class ChunkMeta:
    """Planner-facing fragment descriptor (no payload access)."""

    axis: int
    shape: Tuple[int, ...]
    dtype: np.dtype
    chunks: Tuple[ChunkInfo, ...]


class _Chunk:
    """One stored chunk: payload (None while spilled) + write-time stats."""

    __slots__ = ("start", "stop", "nbytes", "stats", "data")

    def __init__(self, start: int, stop: int, data: np.ndarray) -> None:
        self.start = start
        self.stop = stop
        self.nbytes = int(data.nbytes)
        self.stats = ChunkStats.from_array(data)
        self.data: Optional[np.ndarray] = data


class _Fragment:
    """A chunked fragment, resident or spilled (chunk payloads dropped)."""

    __slots__ = ("shape", "dtype", "chunk_axis", "chunks", "nbytes",
                 "spill_path", "spill_offsets", "codec")

    def __init__(self, data: np.ndarray, chunk_axis: int, chunk_bytes: int) -> None:
        view = data.view()
        view.flags.writeable = False
        self.shape = view.shape
        self.dtype = view.dtype
        self.nbytes = int(view.nbytes)
        axis = chunk_axis if view.ndim and 0 <= chunk_axis < view.ndim else 0
        self.chunk_axis = axis
        self.chunks: List[_Chunk] = []
        #: Host path of the write-once spill file (None until spilled).
        self.spill_path: Optional[str] = None
        #: Per-chunk ``(offset, compressed_length)`` into the spill file.
        self.spill_offsets: Optional[List[Tuple[int, int]]] = None
        self.codec: Optional[str] = None

        if view.ndim == 0:
            self.chunks.append(_Chunk(0, 1, view))
            return
        size = view.shape[axis]
        if size == 0:
            self.chunks.append(_Chunk(0, 0, view))
            return
        row_bytes = max(1, self.nbytes // size)
        rows = max(1, int(chunk_bytes) // row_bytes) if chunk_bytes > 0 else size
        indexer: List[slice] = [slice(None)] * view.ndim
        for start in range(0, size, rows):
            stop = min(size, start + rows)
            indexer[axis] = slice(start, stop)
            self.chunks.append(_Chunk(start, stop, view[tuple(indexer)]))

    @property
    def resident(self) -> bool:
        return self.chunks[0].data is not None

    def chunk_shape(self, chunk: _Chunk) -> Tuple[int, ...]:
        if not self.shape:
            return ()
        shape = list(self.shape)
        shape[self.chunk_axis] = chunk.stop - chunk.start
        return tuple(shape)

    def assemble(self) -> np.ndarray:
        """Concatenate resident chunk payloads back into one array."""
        if len(self.chunks) == 1:
            return self.chunks[0].data
        out = np.concatenate([c.data for c in self.chunks], axis=self.chunk_axis)
        out.flags.writeable = False
        return out

    def meta(self) -> ChunkMeta:
        return ChunkMeta(
            self.chunk_axis, self.shape, self.dtype,
            tuple(
                ChunkInfo(c.start, c.stop, c.nbytes, c.stats)
                for c in self.chunks
            ),
        )


# ---------------------------------------------------------------------------
# Spill files
# ---------------------------------------------------------------------------

_SPILL_MAGIC = b"RSP1"


def _write_spill_file(path: str, frag: _Fragment, codec: str) -> Tuple[List[Tuple[int, int]], int]:
    """Write *frag* to a spill file atomically; returns (offsets, payload bytes).

    Layout: magic, 8-byte header length, pickled header, then the
    compressed chunk payloads back to back.  The header carries
    everything :class:`SpillHandle` needs, so a worker process can
    hydrate without any pool state.  A temp-file + ``os.replace`` makes
    the write all-or-nothing: a crash mid-spill leaves only a stray
    ``.tmp`` the reload path never consults.
    """
    compress, _ = _get_codec(codec)
    payloads: List[bytes] = []
    offsets: List[Tuple[int, int]] = []
    offset = 0
    for chunk in frag.chunks:
        raw = np.ascontiguousarray(chunk.data).tobytes()
        comp = compress(raw)
        payloads.append(comp)
        offsets.append((offset, len(comp)))
        offset += len(comp)
    header = pickle.dumps({
        "shape": tuple(frag.shape),
        "dtype": frag.dtype.str,
        "chunk_axis": frag.chunk_axis,
        "codec": codec,
        "chunks": [
            (c.start, c.stop, off, clen)
            for c, (off, clen) in zip(frag.chunks, offsets)
        ],
    })
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(_SPILL_MAGIC)
            fh.write(struct.pack("<Q", len(header)))
            fh.write(header)
            for comp in payloads:
                fh.write(comp)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Payload base: every chunk offset is relative to the end of the header.
    base = len(_SPILL_MAGIC) + 8 + len(header)
    return [(base + off, clen) for off, clen in offsets], offset


def _read_spill_range(path: str, offset: int, length: int) -> bytes:
    with open(path, "rb") as fh:
        fh.seek(offset)
        data = fh.read(length)
    if len(data) != length:
        raise SpillError(
            f"truncated spill file {path!r}: wanted {length} bytes at "
            f"{offset}, got {len(data)}"
        )
    return data


def _decode_chunk(
    raw: bytes, codec: str, dtype: np.dtype, shape: Tuple[int, ...]
) -> np.ndarray:
    _, decompress = _get_codec(codec)
    payload = decompress(raw)
    arr = np.frombuffer(payload, dtype=dtype).reshape(shape)
    # frombuffer over immutable bytes is already read-only; keep it so.
    return arr


@dataclass(frozen=True)
class SpillHandle:
    """A picklable reference to one spilled fragment.

    Shipping this across a process boundary instead of the hydrated
    array lets spawn-based workers read and decompress cold chunks
    themselves (:meth:`hydrate`), so a sweep over spilled cubes never
    stages the data through the parent's memory budget.
    """

    path: str
    codec: str
    dtype: str
    shape: Tuple[int, ...]
    chunk_axis: int
    #: per chunk: (start, stop, file offset, compressed length)
    chunks: Tuple[Tuple[int, int, int, int], ...]

    def hydrate(self) -> np.ndarray:
        dtype = np.dtype(self.dtype)
        parts = []
        for start, stop, offset, clen in self.chunks:
            shape = list(self.shape)
            if shape:
                shape[self.chunk_axis] = stop - start
            raw = _read_spill_range(self.path, offset, clen)
            parts.append(_decode_chunk(raw, self.codec, dtype, tuple(shape)))
        if len(parts) == 1:
            return parts[0]
        out = np.concatenate(parts, axis=self.chunk_axis)
        out.flags.writeable = False
        return out


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


@dataclass
class StorageStats:
    """Cumulative fragment-level access counters."""

    fragment_reads: int = 0
    fragment_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    fragment_deletes: int = 0
    chunk_reads: int = 0
    spilled_bytes: int = 0
    reloaded_bytes: int = 0

    def snapshot(self) -> "StorageStats":
        return StorageStats(**{
            f.name: getattr(self, f.name) for f in fields(self)
        })

    def delta(self, earlier: "StorageStats") -> "StorageStats":
        return StorageStats(**{
            f.name: getattr(self, f.name) - getattr(earlier, f.name)
            for f in fields(self)
        })

    def add(self, other: "StorageStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


class IOServer:
    """One in-memory fragment store with a cold tier underneath.

    Fragment payloads are chunked NumPy arrays keyed by a pool-unique
    id.  All accesses are counted; reads return read-only arrays —
    fragments are immutable, so an operator mutating a read fragment
    raises instead of corrupting shared state (operators always write
    new fragments).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._fragments: Dict[int, _Fragment] = {}
        self._lock = threading.Lock()
        self.stats = StorageStats()

    def put(
        self,
        fragment_id: int,
        data: np.ndarray,
        chunk_axis: int = 0,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        frag = _Fragment(np.asarray(data), chunk_axis, chunk_bytes)
        with self._lock:
            self._fragments[fragment_id] = frag
            self.stats.fragment_writes += 1
            self.stats.bytes_written += frag.nbytes

    def _frag(self, fragment_id: int) -> _Fragment:
        try:
            return self._fragments[fragment_id]
        except KeyError:
            raise KeyError(
                f"fragment {fragment_id} not on I/O server {self.name!r}"
            ) from None

    def get(self, fragment_id: int) -> np.ndarray:
        """Read one fragment, transparently reloading it if spilled."""
        data, _ = self.get_with_info(fragment_id)
        return data

    def get_with_info(self, fragment_id: int) -> Tuple[np.ndarray, int]:
        """Read one fragment; returns ``(data, reloaded_bytes)``.

        *reloaded_bytes* is nonzero when the read hydrated a spilled
        fragment back into memory (the transparent-reload path).
        """
        with self._lock:
            frag = self._frag(fragment_id)
            reloaded = 0
            if not frag.resident:
                self._reload_locked(frag)
                reloaded = frag.nbytes
                self.stats.reloaded_bytes += reloaded
            data = frag.assemble()
            self.stats.fragment_reads += 1
            self.stats.bytes_read += frag.nbytes
            return data, reloaded

    def _reload_locked(self, frag: _Fragment) -> None:
        if frag.spill_path is None or frag.spill_offsets is None:
            raise SpillError("fragment is neither resident nor spilled")
        for chunk, (offset, clen) in zip(frag.chunks, frag.spill_offsets):
            raw = _read_spill_range(frag.spill_path, offset, clen)
            chunk.data = _decode_chunk(
                raw, frag.codec or "none", frag.dtype, frag.chunk_shape(chunk)
            )

    def chunk_meta(self, fragment_id: int) -> ChunkMeta:
        """Chunk layout + statistics; never touches payload or counters."""
        with self._lock:
            return self._frag(fragment_id).meta()

    def load_chunk(self, fragment_id: int, index: int) -> np.ndarray:
        """Read one chunk; spilled fragments serve a single range read.

        This is the pruned-sweep read path: surviving chunks come back
        one at a time and the fragment's residency is left untouched, so
        scanning a cold cube's few hot chunks does not force the whole
        fragment back into the memory budget.
        """
        with self._lock:
            frag = self._frag(fragment_id)
            try:
                chunk = frag.chunks[index]
            except IndexError:
                raise KeyError(
                    f"fragment {fragment_id} has no chunk {index}"
                ) from None
            if chunk.data is not None:
                data = chunk.data
            else:
                offset, clen = frag.spill_offsets[index]
                data = _decode_chunk(
                    _read_spill_range(frag.spill_path, offset, clen),
                    frag.codec or "none", frag.dtype, frag.chunk_shape(chunk),
                )
            self.stats.chunk_reads += 1
            self.stats.bytes_read += chunk.nbytes
            return data

    def spill(self, fragment_id: int, spill_dir: str, codec: str) -> Tuple[int, int]:
        """Move one fragment to the cold tier; returns (freed, disk) bytes.

        The spill file is write-once (fragments are immutable): if this
        fragment spilled before, its file is still valid and only the
        in-memory chunk payloads are dropped.  On any write failure the
        fragment stays fully resident — spilling is all-or-nothing.
        """
        with self._lock:
            frag = self._fragments.get(fragment_id)
            if frag is None or not frag.resident:
                return 0, 0
            disk_bytes = 0
            if frag.spill_path is None:
                path = os.path.join(spill_dir, f"fragment_{fragment_id}.spill")
                offsets, disk_bytes = _write_spill_file(path, frag, codec)
                frag.spill_path = path
                frag.spill_offsets = offsets
                frag.codec = codec
            for chunk in frag.chunks:
                chunk.data = None
            self.stats.spilled_bytes += frag.nbytes
            return frag.nbytes, disk_bytes

    def spill_handle(self, fragment_id: int) -> Optional[SpillHandle]:
        """A picklable cold-tier reference, or None while resident."""
        with self._lock:
            frag = self._frag(fragment_id)
            if frag.resident or frag.spill_path is None:
                return None
            return SpillHandle(
                frag.spill_path, frag.codec or "none", frag.dtype.str,
                tuple(frag.shape), frag.chunk_axis,
                tuple(
                    (c.start, c.stop, off, clen)
                    for c, (off, clen) in zip(frag.chunks, frag.spill_offsets)
                ),
            )

    def is_resident(self, fragment_id: int) -> bool:
        with self._lock:
            frag = self._fragments.get(fragment_id)
            return bool(frag is not None and frag.resident)

    def delete(self, fragment_id: int) -> None:
        with self._lock:
            frag = self._fragments.pop(fragment_id, None)
            if frag is None:
                return
            self.stats.fragment_deletes += 1
            path = frag.spill_path
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass

    def __contains__(self, fragment_id: int) -> bool:
        with self._lock:
            return fragment_id in self._fragments

    def fragment_nbytes(self, fragment_id: int) -> int:
        """Size of one fragment, *without* counting a read.

        Accounting peek used by :attr:`Cube.nbytes`: size queries must
        not inflate the fragment-read statistics the experiments
        compare.  Reports the logical payload size whether the fragment
        is resident or spilled; unknown fragments report 0.
        """
        with self._lock:
            frag = self._fragments.get(fragment_id)
            return 0 if frag is None else frag.nbytes

    def snapshot_stats(self) -> StorageStats:
        """A consistent copy of the counters, taken under the server lock.

        The fields of :attr:`stats` mutate concurrently with reads and
        writes; aggregators must go through here rather than reading the
        live object field by field.
        """
        with self._lock:
            return self.stats.snapshot()

    @property
    def n_fragments(self) -> int:
        with self._lock:
            return len(self._fragments)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(
                f.nbytes for f in self._fragments.values() if f.resident
            )


class _PoolCounters:
    """Registry counter handles for the hot fragment paths.

    ``registry.counter(...)`` resolves a name through the registry lock
    on every call; ``store``/``load``/``delete`` run once per fragment
    per sweep, making that the hottest metadata path in the stack (C8).
    The handles are cached once per registry and refreshed only when the
    ambient registry is swapped (tests install fresh registries).
    """

    __slots__ = (
        "registry", "writes", "bytes_written", "reads", "bytes_read",
        "deletes", "chunk_reads", "chunk_bytes_read",
    )

    def __init__(self, registry) -> None:
        self.registry = registry
        self.writes = registry.counter(
            "ophidia_fragment_writes_total",
            "Fragments written into the I/O server pool",
        )
        self.bytes_written = registry.counter(
            "ophidia_fragment_bytes_written_total",
            "Bytes written into the I/O server pool",
        )
        self.reads = registry.counter(
            "ophidia_fragment_reads_total",
            "Fragments read back from the I/O server pool",
        )
        self.bytes_read = registry.counter(
            "ophidia_fragment_bytes_read_total",
            "Bytes read back from the I/O server pool",
        )
        self.deletes = registry.counter(
            "ophidia_fragment_deletes_total",
            "Fragments freed from the I/O server pool",
        )
        self.chunk_reads = registry.counter(
            "ophidia_chunks_read_total",
            "Fragment chunks read individually (pruned sweeps)",
        )
        self.chunk_bytes_read = registry.counter(
            "ophidia_chunk_bytes_read_total",
            "Bytes read through individual chunk reads",
        )


class StoragePool:
    """A set of I/O servers with round-robin placement and a spill tier.

    Parameters
    ----------
    n_servers:
        In-memory fragment stores.
    chunk_bytes:
        Target chunk size along each fragment's chunk axis; chunk
        statistics are computed per chunk at write time.
    memory_budget_bytes:
        Byte budget of the in-memory tier across all servers.  0 (the
        default) disables tiering entirely.  When the budget is
        exceeded, least-recently-used fragments are compressed and
        spilled to *spill_dir* and reloaded transparently on access.
    spill_dir:
        Shared-filesystem directory for spill files; required when a
        budget is set.
    codec:
        Spill compression codec (see :func:`register_codec`).
    """

    def __init__(
        self,
        n_servers: int = 2,
        *,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        memory_budget_bytes: int = 0,
        spill_dir: Optional[str] = None,
        codec: str = "zlib",
    ) -> None:
        if n_servers < 1:
            raise ValueError("need at least one I/O server")
        if memory_budget_bytes < 0:
            raise ValueError("memory_budget_bytes must be >= 0")
        if memory_budget_bytes and not spill_dir:
            raise ValueError("a memory budget requires a spill_dir")
        _get_codec(codec)  # fail fast on unknown codecs
        self.servers: List[IOServer] = [
            IOServer(f"io{idx}") for idx in range(n_servers)
        ]
        self.chunk_bytes = int(chunk_bytes)
        self.memory_budget_bytes = int(memory_budget_bytes)
        self.spill_dir = spill_dir
        self.codec = codec
        if spill_dir:
            os.makedirs(spill_dir, exist_ok=True)
        self._fragment_ids = itertools.count(1)
        self._placement: Dict[int, IOServer] = {}
        self._rr = itertools.cycle(range(n_servers))
        self._lock = threading.Lock()
        #: LRU of *resident* fragments: id → logical nbytes.
        self._resident: "OrderedDict[int, int]" = OrderedDict()
        self._counters: Optional[_PoolCounters] = None

    def _ctr(self) -> _PoolCounters:
        registry = get_registry()
        counters = self._counters
        if counters is None or counters.registry is not registry:
            counters = _PoolCounters(registry)
            self._counters = counters
        return counters

    def add_servers(self, n: int) -> None:
        """Dynamically scale the pool up by *n* I/O servers.

        Existing fragments stay where they are; new fragments round-robin
        over the enlarged set — Ophidia's "scaled up, also dynamically"
        behaviour (§4.2.2).
        """
        if n < 1:
            raise ValueError("must add at least one server")
        with self._lock:
            start = len(self.servers)
            self.servers.extend(IOServer(f"io{start + i}") for i in range(n))
            self._rr = itertools.cycle(range(len(self.servers)))

    # -- tiering -------------------------------------------------------------

    def _touch_locked(self, fragment_id: int, nbytes: int) -> None:
        self._resident[fragment_id] = nbytes
        self._resident.move_to_end(fragment_id)

    def _enforce_budget_locked(self, keep: Optional[int] = None) -> None:
        """Spill LRU fragments until the resident tier fits the budget.

        *keep* temporarily pins one fragment (the one being written or
        read right now) so a single access cannot evict its own data
        mid-flight; if the pinned fragment alone exceeds the budget it
        is spilled too — the caller already holds an assembled copy.
        """
        budget = self.memory_budget_bytes
        if not budget:
            return
        registry = get_registry()
        while sum(self._resident.values()) > budget and self._resident:
            victim = next(
                (fid for fid in self._resident if fid != keep), None
            )
            if victim is None:
                victim = keep
                keep = None
            server = self._placement.get(victim)
            if server is None:  # pragma: no cover - defensive
                self._resident.pop(victim, None)
                continue
            try:
                freed, disk = server.spill(victim, self.spill_dir, self.codec)
            except Exception:
                # Spilling is best-effort: a failed spill (codec error,
                # full or broken disk) leaves the fragment resident and
                # the pool over budget rather than corrupting state.
                self._resident.pop(victim, None)
                self._resident[victim] = self._resident_nbytes(victim)
                registry.counter(
                    "ophidia_spill_failures_total",
                    "Fragment spill attempts that failed (fragment kept hot)",
                ).inc()
                return
            self._resident.pop(victim, None)
            if freed:
                registry.counter(
                    "ophidia_fragments_spilled_total",
                    "Fragments moved from memory to the spill tier",
                ).inc()
                registry.counter(
                    "ophidia_spill_bytes_total",
                    "Uncompressed bytes moved to the spill tier",
                ).inc(freed)
            if disk:
                registry.counter(
                    "ophidia_spill_bytes_written_total",
                    "Compressed bytes written to spill files",
                ).inc(disk)

    def _resident_nbytes(self, fragment_id: int) -> int:
        server = self._placement.get(fragment_id)
        return 0 if server is None else server.fragment_nbytes(fragment_id)

    # -- fragment operations -------------------------------------------------

    def store(self, data: np.ndarray, chunk_axis: int = 0) -> int:
        """Place a new fragment; returns its pool-unique id."""
        with self._lock:
            fragment_id = next(self._fragment_ids)
            server = self.servers[next(self._rr)]
            self._placement[fragment_id] = server
        server.put(fragment_id, data, chunk_axis, self.chunk_bytes)
        nbytes = int(np.asarray(data).nbytes)
        counters = self._ctr()
        counters.writes.inc()
        counters.bytes_written.inc(nbytes)
        with self._lock:
            self._touch_locked(fragment_id, nbytes)
            self._enforce_budget_locked(keep=fragment_id)
        return fragment_id

    def _server_for(self, fragment_id: int) -> IOServer:
        with self._lock:
            server = self._placement.get(fragment_id)
        if server is None:
            raise KeyError(f"unknown fragment id {fragment_id}")
        return server

    def load(self, fragment_id: int) -> np.ndarray:
        """Read one fragment, transparently reloading from the spill tier."""
        server = self._server_for(fragment_id)
        data, reloaded = server.get_with_info(fragment_id)
        counters = self._ctr()
        counters.reads.inc()
        counters.bytes_read.inc(int(data.nbytes))
        if reloaded:
            registry = get_registry()
            registry.counter(
                "ophidia_fragments_reloaded_total",
                "Spilled fragments hydrated back into memory",
            ).inc()
            registry.counter(
                "ophidia_reload_bytes_total",
                "Uncompressed bytes reloaded from the spill tier",
            ).inc(reloaded)
        with self._lock:
            self._touch_locked(fragment_id, int(data.nbytes))
            self._enforce_budget_locked(keep=fragment_id)
        return data

    def load_handle(self, fragment_id: int):
        """Read a fragment as an array (hot) or :class:`SpillHandle` (cold).

        The backend-facing load: resident fragments behave exactly like
        :meth:`load`; spilled fragments stay cold and return a picklable
        handle the consumer hydrates itself (in a worker process, off
        the parent's budget).  Both count as one logical fragment read.
        """
        server = self._server_for(fragment_id)
        handle = server.spill_handle(fragment_id)
        if handle is None:
            return self.load(fragment_id)
        counters = self._ctr()
        counters.reads.inc()
        counters.bytes_read.inc(self._resident_nbytes(fragment_id))
        get_registry().counter(
            "ophidia_spill_handles_total",
            "Cold-fragment reads deferred to consumer-side hydration",
        ).inc()
        return handle

    def chunk_meta(self, fragment_id: int) -> ChunkMeta:
        """Chunk layout and statistics of one fragment (no read counted)."""
        return self._server_for(fragment_id).chunk_meta(fragment_id)

    def load_chunk(self, fragment_id: int, index: int) -> np.ndarray:
        """Read a single chunk (pruned sweeps); residency is untouched."""
        server = self._server_for(fragment_id)
        data = server.load_chunk(fragment_id, index)
        counters = self._ctr()
        counters.chunk_reads.inc()
        counters.chunk_bytes_read.inc(int(data.nbytes))
        return data

    def delete(self, fragment_id: int) -> None:
        with self._lock:
            server = self._placement.pop(fragment_id, None)
            self._resident.pop(fragment_id, None)
        if server is not None:
            known = fragment_id in server
            server.delete(fragment_id)
            if known:
                self._ctr().deletes.inc()

    def fragment_nbytes(self, fragment_id: int) -> int:
        """Non-counting size peek; 0 for unknown/deleted fragments."""
        with self._lock:
            server = self._placement.get(fragment_id)
        return 0 if server is None else server.fragment_nbytes(fragment_id)

    def delete_many(self, fragment_ids: Sequence[int]) -> None:
        for fid in fragment_ids:
            self.delete(fid)

    def total_stats(self) -> StorageStats:
        """Aggregate counters across all servers.

        Each server's counters are copied under that server's own lock
        (:meth:`IOServer.snapshot_stats`), so the aggregate never mixes
        a half-updated read/byte pair from a concurrent access.
        """
        agg = StorageStats()
        for s in self.servers:
            agg.add(s.snapshot_stats())
        return agg

    @property
    def resident_bytes(self) -> int:
        return sum(s.resident_bytes for s in self.servers)

    @property
    def spilled_fragments(self) -> int:
        with self._lock:
            placements = list(self._placement.items())
        return sum(
            0 if server.is_resident(fid) else 1 for fid, server in placements
        )

    @property
    def n_fragments(self) -> int:
        return sum(s.n_fragments for s in self.servers)
