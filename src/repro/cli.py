"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Execute the full extreme-events workflow on a simulated cluster.
``run-distributed``
    Execute it across a two-site HPC+Cloud federation.
``simulate``
    Run only the ESM, writing daily files (plus ground truth) to a
    directory.
``indices``
    Compute heat-wave index maps from a directory of daily files.
``chaos``
    Run the workflow under a seeded fault schedule (node crash, flaky
    I/O, task failures) and verify recovery reproduces a fault-free run.
``analyze``
    Profile a finished run (trace.json / run_summary.json): critical
    path, per-worker utilization, stragglers, what-if estimates.
``perf-gate``
    Diff measured benchmark metrics against committed baselines with
    per-metric tolerances; exits nonzero on regression.
``history``
    Query the persistent run-history store: list runs, show one, or
    compare two runs' headline metrics (exits nonzero on drift with
    ``--fail-on-drift``).
``tail``
    Follow a structured event log (events.jsonl) live, with severity
    and component filtering.
``slo``
    Evaluate declarative SLO rules against a finished run's metrics;
    exits nonzero on critical breaches.
``service``
    Operate the multi-tenant workflow service: create the control-plane
    database, manage tenants and quotas, inspect job queues, and run
    the fair-share launcher over the demo workflows.
``submit``
    Enqueue a workflow job for a tenant into the service database; a
    running (or later-started) ``service run`` launches it.
``top``
    Live per-tenant fleet view (tenants, jobs, worker CPU/RSS, ready
    queue, recent events) assembled from runs.db and events.jsonl.
``info``
    Print the component inventory and version.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _add_workflow_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--years", type=int, nargs="+", default=[2030])
    parser.add_argument("--days", type=int, default=30)
    parser.add_argument("--n-lat", type=int, default=24)
    parser.add_argument("--n-lon", type=int, default=36)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--scenario", default="ssp245")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--min-length", type=int, default=6,
                        help="minimum wave length in days")
    parser.add_argument("--with-ml", action="store_true",
                        help="enable the CNN TC localizer")
    parser.add_argument("--pace", type=float, default=0.0, metavar="SECONDS",
                        help="wall-clock pacing per simulated day (makes "
                             "ESM/analytics overlap visible in profiles)")
    parser.add_argument("--scratch", default=None,
                        help="cluster scratch directory (kept after the run)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="copy the merged Perfetto trace JSON here")
    parser.add_argument("--worker-cache-mb", type=float, default=None,
                        metavar="MB",
                        help="per-worker resident-set budget for task "
                             "outputs (default 256; 0 disables)")
    parser.add_argument("--fs-cache-mb", type=float, default=None,
                        metavar="MB",
                        help="shared-filesystem block-cache budget "
                             "(default 64; 0 disables)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the whole in-memory reuse layer "
                             "(worker resident sets + FS block cache)")
    parser.add_argument("--runs-db", default=None, metavar="PATH",
                        help="persist this run into the given run-history "
                             "database (default: $REPRO_RUNS_DB if set)")
    parser.add_argument("--slo", dest="slo_rules", default=None,
                        metavar="RULES.yaml",
                        help="evaluate these SLO rules live during the run "
                             "(breaches become slo_breach events)")
    parser.add_argument("--events-out", default=None, metavar="PATH",
                        help="write the structured event log here (default: "
                             "<results>/events.jsonl on the cluster FS)")
    parser.add_argument("--backend", choices=("thread", "process"),
                        default="thread",
                        help="execution backend for Ophidia fragment sweeps "
                             "and the ESM baseline: 'thread' (default) or "
                             "'process' (spawned workers, shared-memory "
                             "array transport)")
    parser.add_argument("--cores-per-node", type=int, default=4,
                        metavar="N",
                        help="cores per simulated cluster node (explicit "
                             "and deterministic; default 4)")
    parser.add_argument("--ophidia-memory-budget-mb", type=float, default=None,
                        metavar="MB",
                        help="resident-fragment byte budget per Ophidia IO "
                             "server; LRU fragments spill compressed to the "
                             "shared FS and reload transparently (default 0 "
                             "= no tiering)")
    parser.add_argument("--ophidia-spill-dir", default=None, metavar="DIR",
                        help="directory for spilled fragment files (default: "
                             "<cluster fs>/ophidia_spill when a budget is "
                             "set)")


def _params_from_args(args) -> "WorkflowParams":
    from repro.workflow import WorkflowParams

    kwargs = {}
    if args.no_cache:
        kwargs["worker_cache_bytes"] = 0
        kwargs["fs_cache_bytes"] = 0
    else:
        if args.worker_cache_mb is not None:
            kwargs["worker_cache_bytes"] = int(args.worker_cache_mb * 2**20)
        if args.fs_cache_mb is not None:
            kwargs["fs_cache_bytes"] = int(args.fs_cache_mb * 2**20)
    if args.ophidia_memory_budget_mb is not None:
        kwargs["ophidia_memory_budget_bytes"] = int(
            args.ophidia_memory_budget_mb * 2**20
        )
    if args.ophidia_spill_dir is not None:
        kwargs["ophidia_spill_dir"] = args.ophidia_spill_dir
    return WorkflowParams(
        years=args.years, n_days=args.days, n_lat=args.n_lat, n_lon=args.n_lon,
        n_workers=args.workers, scenario=args.scenario, seed=args.seed,
        min_length_days=args.min_length, with_ml=args.with_ml,
        pace_seconds=args.pace,
        execution_backend=args.backend,
        cluster_cores_per_node=args.cores_per_node,
        runs_db=args.runs_db, slo_rules_path=args.slo_rules,
        events_path=args.events_out, **kwargs,
    )


def _export_trace(fs, params, trace_out: "str | None") -> None:
    """Copy the run's merged trace JSON from *fs* to a host path."""
    if not trace_out:
        return
    with open(trace_out, "wb") as fh:
        fh.write(fs.read_bytes(f"{params.results_dir}/trace.json"))
    print(f"# trace: {trace_out}", file=sys.stderr)


def _cmd_run(args) -> int:
    from repro.cluster import laptop_like
    from repro.workflow import run_extreme_events_workflow

    params = _params_from_args(args)
    with laptop_like(
        scratch_root=args.scratch,
        cores_per_node=params.cluster_cores_per_node,
    ) as cluster:
        summary = run_extreme_events_workflow(cluster, params)
        print(json.dumps(summary, indent=1, default=str))
        print(f"# artefacts: {cluster.filesystem.root}/results/", file=sys.stderr)
        _export_trace(cluster.filesystem, params, args.trace_out)
    return 0


def _cmd_run_distributed(args) -> int:
    from repro.cluster import Cluster, Node
    from repro.hpcwaas import FederatedDataLogistics, Federation
    from repro.workflow import run_distributed_extreme_events

    params = _params_from_args(args)
    dls = FederatedDataLogistics(wan_bandwidth_mbps=args.wan_mbps)
    with Federation(dls=dls) as fed:
        fed.add_site(Cluster("hpc-sim", [Node("h1", 8, 32.0)]),
                     role="simulation")
        fed.add_site(Cluster("cloud-sim", [Node("c1", 4, 16.0)]),
                     role="analytics")
        summary = run_distributed_extreme_events(fed, params)
        print(json.dumps(summary, indent=1, default=str))
        _export_trace(fed.for_role("analytics").filesystem, params,
                      args.trace_out)
    return 0


def _metrics_selftest() -> int:
    """Exercise the registry, spans and exporters end to end."""
    from repro.observability import (
        MetricsRegistry, TraceCollector, build_perfetto_trace,
        record_span, render_run_report, span,
    )

    registry = MetricsRegistry()
    registry.counter("selftest_total", "Selftest counter",
                     labels=("case",)).inc(case="counter")
    registry.gauge("selftest_gauge", "Selftest gauge").set(1.0)
    registry.histogram("selftest_seconds", "Selftest histogram").observe(0.01)
    snap = registry.snapshot()
    assert snap.value("selftest_total", case="counter") == 1
    assert "selftest_total" in snap.to_prometheus()
    assert registry.snapshot().delta(snap).value(
        "selftest_total", case="counter"
    ) == 0, "idle counter delta must be zero"

    collector = TraceCollector()
    with span("selftest.root", layer="workflow", collector=collector) as root:
        with span("selftest.child", layer="compss", collector=collector):
            pass
        record_span("selftest.recorded", layer="scheduler", start=0.0, end=0.1,
                    parent=root.context, collector=collector)
    spans = collector.spans()
    assert len(spans) == 3
    assert len({s.trace_id for s in spans}) == 1

    trace = json.loads(build_perfetto_trace(spans, []))
    assert any(ev.get("ph") == "X" for ev in trace["traceEvents"])
    report = render_run_report(snap, spans, title="selftest")
    assert "selftest" in report

    n_series = sum(len(f["series"]) for f in snap.to_json().values())
    print(f"observability selftest: OK ({len(spans)} spans, "
          f"{n_series} series)")
    return 0


def _cmd_metrics(args) -> int:
    from repro.observability import get_registry, snapshot_from_json

    if args.selftest:
        return _metrics_selftest()
    if getattr(args, "from_path", None):
        with open(args.from_path) as fh:
            snap = snapshot_from_json(json.load(fh))
    else:
        snap = get_registry().snapshot()
    if args.format == "json":
        print(json.dumps(snap.to_json(), indent=1))
    else:
        print(snap.to_prometheus(), end="")
    return 0


def _cmd_simulate(args) -> int:
    from repro.cluster import SharedFilesystem
    from repro.esm import CMCCCM3, ModelConfig

    fs = SharedFilesystem(args.output)
    model = CMCCCM3(ModelConfig(
        n_lat=args.n_lat, n_lon=args.n_lon, scenario=args.scenario,
        seed=args.seed,
    ))
    truth = model.run(args.years, fs, output_dir=".", n_days=args.days)
    model.write_baseline(fs, path="climatology.rnc", n_days=args.days)
    for year, events in truth.items():
        print(f"{year}: {len(events['heat_waves'])} heat waves, "
              f"{len(events['cold_waves'])} cold waves, "
              f"{len(events['tropical_cyclones'])} tropical cyclones")
    print(f"# wrote {len(args.years) * args.days} daily files to {fs.root}",
          file=sys.stderr)
    return 0


def _cmd_indices(args) -> int:
    from repro.analytics import compute_heatwave_indices, render_ascii_map, validate_indices
    from repro.cluster import SharedFilesystem
    from repro.netcdf import read_dataset, read_variable
    import numpy as np

    fs = SharedFilesystem(args.data_dir)
    day_files = fs.glob(".", "cmcc_cm3_*.rnc")
    if not day_files:
        print(f"no cmcc_cm3_*.rnc files in {args.data_dir}", file=sys.stderr)
        return 2
    tmax = np.stack([
        fs.read(path, variables=["TREFHTMX"])["TREFHTMX"].data[0]
        for path in day_files
    ])
    baseline = fs.read(args.baseline, variables=["TMAX_BASELINE"])
    base = baseline["TMAX_BASELINE"].data[: tmax.shape[0]]
    indices = compute_heatwave_indices(
        tmax.astype(np.float64), base.astype(np.float64),
        min_length_days=args.min_length,
    )
    stats = validate_indices(indices, n_days=tmax.shape[0],
                             min_length_days=args.min_length)
    print(render_ascii_map(indices.number, title="Heat Wave Number"))
    print(json.dumps(stats, indent=1))
    return 0


def _cmd_chaos(args) -> int:
    from repro.cluster import laptop_like
    from repro.faults import FaultPlan, NodeCrash, run_chaos_experiment
    from repro.workflow import WorkflowParams

    crashes = []
    for node in args.kill_node or ():
        if args.at_seconds is not None:
            crashes.append(NodeCrash(node, at_seconds=args.at_seconds))
        else:
            crashes.append(NodeCrash(node, after_fs_writes=args.after_writes))
    plan = FaultPlan(
        seed=args.seed,
        fs_error_rate=args.fs_error_rate,
        task_error_rate=args.task_error_rate,
        transfer_error_rate=args.transfer_error_rate,
        node_crashes=tuple(crashes),
    )
    params = WorkflowParams(
        years=args.years, n_days=args.days, n_workers=args.workers,
        seed=args.seed, with_ml=args.with_ml,
        min_length_days=min(6, args.days),
        runs_db=args.runs_db, slo_rules_path=args.slo_rules,
        events_path=args.events_out,
    )
    # The reference and chaos runs each get their own cluster; when the
    # user pins a scratch directory, keep the two roots apart.
    import itertools
    import os

    cluster_ids = itertools.count(1)

    def make_cluster():
        root = None
        if args.scratch:
            root = os.path.join(args.scratch, f"cluster{next(cluster_ids)}")
        return laptop_like(scratch_root=root)

    print(f"# {plan.describe()}", file=sys.stderr)
    report = run_chaos_experiment(
        plan, params,
        make_cluster=make_cluster,
        max_workflow_attempts=args.max_attempts,
        log=lambda msg: print(f"# {msg}", file=sys.stderr),
    )
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(report, fh, indent=1, default=str)
    print(json.dumps(report, indent=1, default=str))
    verdict = "MATCH" if report["match"] else "MISMATCH"
    counters = report["counters"]
    print(
        f"# {verdict}: attempts={report['workflow_attempts']} "
        f"faults_injected={counters['faults_injected_total']:g} "
        f"tasks_retried={counters['compss_tasks_retried_total']:g} "
        f"jobs_requeued={counters['lsf_jobs_requeued_total']:g}",
        file=sys.stderr,
    )
    return 0 if report["match"] else 1


def _cmd_analyze(args) -> int:
    """Profile a finished run: critical path, timelines, what-ifs."""
    from repro.observability import profile_from_perfetto, render_profile
    from repro.workflow.extreme_events import ANALYTICS_TASKS

    with open(args.from_path) as fh:
        payload = json.load(fh)

    if "traceEvents" in payload:
        profile = profile_from_perfetto(
            payload,
            esm_functions=("esm_simulation",),
            analytics_functions=set(ANALYTICS_TASKS) | {"transfer_year"},
            what_if_top_k=args.top,
        ).to_json()
    elif "profile" in payload and isinstance(payload["profile"], dict):
        profile = payload["profile"]  # a run_summary.json
    elif "critical_path_s" in payload:
        profile = payload  # an exported profile.json
    else:
        print(f"{args.from_path}: neither a Perfetto trace, a "
              "run_summary.json, nor a profile.json", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(profile, indent=1))
    else:
        print(render_profile(profile, top=args.top), end="")
    return 0


def _cmd_perf_gate(args) -> int:
    """Diff measured benchmark metrics against committed baselines."""
    from repro.observability import (
        capture_baseline, extract_headline_metrics, gate_summary,
        load_baselines,
    )
    from repro.observability.export import _looks_like_snapshot

    with open(args.from_path) as fh:
        payload = json.load(fh)

    # Accept a BENCH_summary.json, a run's metrics.json, or a
    # run_summary.json (headline metrics are extracted from the latter
    # two under the benchmark name "workflow_run").
    if "benchmarks" in payload:
        summary = payload
    else:
        snapshot = payload.get("metrics", payload)
        if not _looks_like_snapshot(snapshot):
            print(f"{args.from_path}: neither a BENCH_summary.json nor a "
                  "metrics snapshot", file=sys.stderr)
            return 2
        summary = {"benchmarks": {
            "workflow_run": extract_headline_metrics(snapshot)
        }}

    if args.capture:
        for bench, metrics in sorted(summary["benchmarks"].items()):
            path = capture_baseline(bench, metrics, args.baseline)
            print(f"# captured {path}", file=sys.stderr)
        return 0

    report = gate_summary(summary, load_baselines(args.baseline))
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(report.to_json(), fh, indent=1)
    print(report.render(), end="")
    return 0 if report.passed else 1


def _open_history(args) -> "RunHistory | None":
    from repro.observability.history import RunHistory, default_history_path

    db_path = args.db or default_history_path()
    if not db_path:
        print("no runs database: pass --db PATH or set $REPRO_RUNS_DB",
              file=sys.stderr)
        return None
    return RunHistory(db_path)


def _cmd_history(args) -> int:
    """Query the persistent run-history store."""
    from repro.observability.history import (
        render_comparison, render_run, render_run_table,
    )

    history = _open_history(args)
    if history is None:
        return 2
    if args.history_command == "list":
        records = history.list_runs(limit=args.limit, kind=args.kind)
        if args.format == "json":
            print(json.dumps([r.to_json() for r in records], indent=1))
        else:
            print(render_run_table(records), end="")
        return 0
    if args.history_command == "show":
        try:
            record = history.get(args.run_id)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        if args.format == "json":
            print(json.dumps(record.to_json(), indent=1))
        else:
            print(render_run(record), end="")
        return 0
    # compare
    try:
        report = history.compare(args.run_a, args.run_b)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(report, fh, indent=1)
    if args.format == "json":
        print(json.dumps(report, indent=1))
    else:
        print(render_comparison(report), end="")
    if args.fail_on_drift and report["drifted"]:
        return 1
    return 0


def _cmd_tail(args) -> int:
    """Follow (or dump) a structured events.jsonl, with filtering."""
    from repro.observability.events import render_event, tail_events

    try:
        for event in tail_events(
            args.path, min_severity=args.level, component=args.component,
            follow=args.follow, poll_interval=args.poll_interval,
        ):
            print(render_event(event), flush=args.follow)
    except FileNotFoundError:
        print(f"{args.path}: no such event log", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def _cmd_slo(args) -> int:
    """Post-hoc SLO evaluation: exit 1 on critical breaches."""
    from repro.observability.export import _looks_like_snapshot
    from repro.observability.slo import (
        evaluate_rules, load_slo_rules, render_slo_report, slo_report,
    )

    try:
        rules = load_slo_rules(args.rules)
    except (OSError, ValueError) as exc:
        print(f"bad SLO rules {args.rules}: {exc}", file=sys.stderr)
        return 2

    if args.run_id:
        history = _open_history(args)
        if history is None:
            return 2
        try:
            snapshot = history.get(args.run_id).metrics
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        if not snapshot:
            print(f"run {args.run_id} has no metrics snapshot",
                  file=sys.stderr)
            return 2
    else:
        with open(args.from_path) as fh:
            payload = json.load(fh)
        snapshot = payload.get("metrics", payload)
        if not _looks_like_snapshot(snapshot):
            print(f"{args.from_path}: neither a metrics.json nor a "
                  "run_summary.json", file=sys.stderr)
            return 2

    results = evaluate_rules(rules, snapshot)
    report = slo_report(results)
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(report, fh, indent=1)
    if args.format == "json":
        print(json.dumps(report, indent=1))
    else:
        print(render_slo_report(results), end="")
    return 1 if report["critical_breaches"] else 0


def _open_service_db(args) -> "ServiceDB | None":
    from repro.observability.history import default_history_path
    from repro.service import ServiceDB

    db_path = args.db or default_history_path()
    if not db_path:
        print("no service database: pass --db PATH or set $REPRO_RUNS_DB",
              file=sys.stderr)
        return None
    return ServiceDB(db_path)


def _parse_params(pairs) -> dict:
    """``key=value`` pairs; values parse as JSON when possible."""
    params = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad --param {pair!r}: expected key=value")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    return params


def _cmd_service(args) -> int:
    """The multi-tenant workflow service control plane."""
    from repro.service import JobState

    db = _open_service_db(args)
    if db is None:
        return 2

    if args.service_command == "init":
        print(f"service database ready: {db.path} "
              f"(schema v{db.schema_version()})")
        return 0

    if args.service_command == "add-tenant":
        try:
            tenant = db.add_tenant(
                args.name, share=args.share, max_running=args.max_running,
                max_cores=args.max_cores,
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(json.dumps(tenant.to_json(), indent=1))
        return 0

    if args.service_command == "tenants":
        tenants = [t.to_json() for t in db.list_tenants()]
        if args.format == "json":
            print(json.dumps(tenants, indent=1))
        else:
            print(f"{'TENANT':16s} {'SHARE':>6s} {'MAX_RUN':>8s} "
                  f"{'MAX_CORES':>10s}")
            for t in tenants:
                print(f"{t['name']:16s} {t['share']:6g} "
                      f"{t['max_running']:8d} {t['max_cores']:10d}")
        return 0

    if args.service_command == "jobs":
        state = JobState(args.state) if args.state else None
        jobs = db.jobs(tenant=args.tenant, state=state)
        if args.format == "json":
            print(json.dumps([j.to_json() for j in jobs], indent=1))
        else:
            print(f"{'JOB':12s} {'TENANT':12s} {'WORKFLOW':24s} "
                  f"{'STATE':10s} {'CORES':>5s} {'BF':>2s} {'TURNAROUND':>10s}")
            for j in jobs:
                turnaround = (f"{j.turnaround_s:.2f}s"
                              if j.turnaround_s is not None else "-")
                print(f"{j.job_id:12s} {j.tenant:12s} {j.workflow:24s} "
                      f"{j.state.value:10s} {j.cores:5d} "
                      f"{'y' if j.backfilled else '-':>2s} {turnaround:>10s}")
        return 0

    # run: drain the queued jobs through the fair-share launcher.
    from repro.cluster import laptop_like
    from repro.service import WorkflowService, build_demo_services

    with laptop_like(
        scratch_root=args.scratch, cores_per_node=args.cores_per_node,
    ) as cluster:
        _a4c, api = build_demo_services(cluster)
        service = WorkflowService(db, api, cluster, site=args.site)
        with service:
            queued = len(db.jobs(state=JobState.SUBMITTED))
            print(f"# service up on {cluster.name}: {queued} queued job(s)",
                  file=sys.stderr)
            try:
                service.drain(timeout=args.timeout)
            except TimeoutError as exc:
                print(f"# {exc}", file=sys.stderr)
                return 1
        report = service.report()
        if args.report_out:
            with open(args.report_out, "w") as fh:
                json.dump(report, fh, indent=1)
        print(json.dumps(report, indent=1))
    return 0


def _cmd_submit(args) -> int:
    """Enqueue a job for a tenant; ``service run`` launches it."""
    db = _open_service_db(args)
    if db is None:
        return 2
    try:
        job = db.submit_job(
            args.tenant, args.workflow, params=_parse_params(args.param),
            cores=args.cores, memory_gb=args.memory_gb,
        )
    except (KeyError, ValueError) as exc:
        print(str(exc.args[0] if exc.args else exc), file=sys.stderr)
        return 2
    print(json.dumps(job.to_json(), indent=1))
    return 0


def _cmd_top(args) -> int:
    """Live per-tenant fleet view assembled from runs.db + events.jsonl."""
    import time

    from repro.service.top import gather_top_state, render_top

    db = _open_service_db(args)
    if db is None:
        return 2
    if args.once:
        state = gather_top_state(db, events_path=args.events,
                                 limit=args.limit)
        if args.format == "json":
            print(json.dumps(state, indent=1))
        else:
            print(render_top(state), end="")
        return 0
    try:
        while True:
            state = gather_top_state(db, events_path=args.events,
                                     limit=args.limit)
            # Clear screen + home, then redraw — a full-screen live view.
            sys.stdout.write("\x1b[2J\x1b[H" + render_top(state))
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        sys.stdout.write("\n")
    return 0


def _cmd_report(args) -> int:
    from repro.analytics import generate_report

    with open(args.summary) as fh:
        summary = json.load(fh)
    print(generate_report(summary, title=args.title))
    return 0


def _cmd_info(args) -> int:
    import repro

    components = {
        "compss": "PyCOMPSs-style task runtime",
        "ophidia": "datacube HPDA framework",
        "esm": "coupled CMCC-CM3-like simulator",
        "ml": "NumPy CNN for TC localization",
        "analytics": "climate indices + TC tracking",
        "hpcwaas": "eFlows4HPC orchestration stack",
        "cluster": "simulated LSF cluster + shared FS",
        "netcdf": "RNC container format",
        "workflow": "the extreme-events case study",
    }
    print(f"repro {getattr(repro, '__version__', '1.0.0')} — "
          "End-to-End Workflows for Climate Science (SC-W 2023) reproduction")
    for name, desc in components.items():
        print(f"  repro.{name:10s} {desc}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the full workflow")
    _add_workflow_args(run)
    run.set_defaults(fn=_cmd_run)

    dist = sub.add_parser("run-distributed", help="run across a federation")
    _add_workflow_args(dist)
    dist.add_argument("--wan-mbps", type=float, default=200.0)
    dist.set_defaults(fn=_cmd_run_distributed)

    sim = sub.add_parser("simulate", help="run only the ESM")
    sim.add_argument("output", help="output directory for daily files")
    sim.add_argument("--years", type=int, nargs="+", default=[2030])
    sim.add_argument("--days", type=int, default=30)
    sim.add_argument("--n-lat", type=int, default=24)
    sim.add_argument("--n-lon", type=int, default=36)
    sim.add_argument("--scenario", default="ssp245")
    sim.add_argument("--seed", type=int, default=42)
    sim.set_defaults(fn=_cmd_simulate)

    idx = sub.add_parser("indices", help="heat-wave indices from daily files")
    idx.add_argument("data_dir", help="directory with cmcc_cm3_*.rnc files")
    idx.add_argument("--baseline", default="climatology.rnc",
                     help="baseline file (relative to data_dir)")
    idx.add_argument("--min-length", type=int, default=6)
    idx.set_defaults(fn=_cmd_indices)

    metrics = sub.add_parser(
        "metrics", help="dump telemetry metrics as Prometheus text or JSON"
    )
    metrics.add_argument("--from", dest="from_path", default=None,
                         metavar="PATH",
                         help="read a metrics.json or run_summary.json "
                              "instead of the in-process registry")
    metrics.add_argument("--format", choices=("prom", "json"), default="prom")
    metrics.add_argument("--selftest", action="store_true",
                         help="exercise registry, spans and exporters")
    metrics.set_defaults(fn=_cmd_metrics)

    chaos = sub.add_parser(
        "chaos",
        help="run the workflow under injected faults and verify recovery",
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="seeds the fault decision stream (reproducible)")
    chaos.add_argument("--kill-node", action="append", metavar="NAME",
                       help="crash this node mid-run (repeatable; the "
                            "default cluster has nodes local1, local2)")
    chaos.add_argument("--after-writes", type=int, default=5,
                       help="crash trigger: after N shared-FS writes")
    chaos.add_argument("--at-seconds", type=float, default=None,
                       help="crash trigger: wall-clock seconds after start "
                            "(overrides --after-writes)")
    chaos.add_argument("--fs-error-rate", type=float, default=0.0,
                       help="probability an FS data op raises a transient "
                            "I/O error")
    chaos.add_argument("--task-error-rate", type=float, default=0.0,
                       help="probability a task body raises on entry")
    chaos.add_argument("--transfer-error-rate", type=float, default=0.0,
                       help="probability a task with remote deps fails its "
                            "transfer")
    chaos.add_argument("--years", type=int, nargs="+", default=[2030])
    chaos.add_argument("--days", type=int, default=12)
    chaos.add_argument("--workers", type=int, default=4)
    chaos.add_argument("--with-ml", action="store_true")
    chaos.add_argument("--max-attempts", type=int, default=4,
                       help="whole-workflow executions before giving up")
    chaos.add_argument("--scratch", default=None)
    chaos.add_argument("--report-out", default=None, metavar="PATH",
                       help="also write the JSON report here")
    chaos.add_argument("--runs-db", default=None, metavar="PATH",
                       help="persist the experiment (and its workflow "
                            "attempts) into this run-history database")
    chaos.add_argument("--slo", dest="slo_rules", default=None,
                       metavar="RULES.yaml",
                       help="SLO rules evaluated live during each attempt")
    chaos.add_argument("--events-out", default=None, metavar="PATH",
                       help="write the structured event log here")
    chaos.set_defaults(fn=_cmd_chaos)

    analyze = sub.add_parser(
        "analyze",
        help="profile a finished run: critical path, utilization, what-ifs",
    )
    analyze.add_argument("--from", dest="from_path", required=True,
                         metavar="PATH",
                         help="a trace.json (Perfetto), run_summary.json, "
                              "or profile.json from a finished run")
    analyze.add_argument("--format", choices=("text", "json"), default="text")
    analyze.add_argument("--top", type=int, default=10,
                         help="contributors/what-ifs to show (default 10)")
    analyze.set_defaults(fn=_cmd_analyze)

    gate = sub.add_parser(
        "perf-gate",
        help="diff benchmark metrics against committed baselines; "
             "exit 1 on regression",
    )
    gate.add_argument("--from", dest="from_path", required=True,
                      metavar="PATH",
                      help="a BENCH_summary.json, metrics.json, or "
                           "run_summary.json")
    gate.add_argument("--baseline", required=True, metavar="PATH",
                      help="baseline .json file or directory of them "
                           "(e.g. benchmarks/baselines)")
    gate.add_argument("--capture", action="store_true",
                      help="write/refresh baselines from the measured "
                           "values instead of gating")
    gate.add_argument("--report-out", default=None, metavar="PATH",
                      help="also write the gate report as JSON here")
    gate.set_defaults(fn=_cmd_perf_gate)

    history = sub.add_parser(
        "history",
        help="query the persistent run-history store (runs.db)",
    )
    history_sub = history.add_subparsers(dest="history_command", required=True)
    h_list = history_sub.add_parser("list", help="recent runs, newest first")
    h_list.add_argument("--limit", type=int, default=20)
    h_list.add_argument("--kind", default=None,
                        help="filter by run kind (run, run-distributed, "
                             "chaos, benchmark)")
    h_show = history_sub.add_parser("show", help="one run in full")
    h_show.add_argument("run_id", help="run id (unique prefix accepted)")
    h_compare = history_sub.add_parser(
        "compare",
        help="diff two runs' headline metrics and critical-path "
             "attribution; flags drift beyond the perf-gate tolerances",
    )
    h_compare.add_argument("run_a", help="baseline run id (prefix ok)")
    h_compare.add_argument("run_b", help="candidate run id (prefix ok)")
    h_compare.add_argument("--fail-on-drift", action="store_true",
                           help="exit 1 when any metric drifts beyond "
                                "tolerance (CI gating)")
    h_compare.add_argument("--report-out", default=None, metavar="PATH",
                           help="also write the comparison JSON here")
    for sp in (h_list, h_show, h_compare):
        sp.add_argument("--db", default=None, metavar="PATH",
                        help="runs database (default: $REPRO_RUNS_DB)")
        sp.add_argument("--format", choices=("text", "json"), default="text")
    history.set_defaults(fn=_cmd_history)

    tail = sub.add_parser(
        "tail", help="follow a structured event log (events.jsonl)"
    )
    tail.add_argument("path", help="path to an events.jsonl")
    tail.add_argument("-f", "--follow", action="store_true",
                      help="keep watching for new events (like tail -f)")
    tail.add_argument("--level", default="DEBUG",
                      choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
                      help="minimum severity to show")
    tail.add_argument("--component", default=None,
                      help="only events from this component (workflow, "
                           "compss, lsf, ophidia, chaos, faults, slo)")
    tail.add_argument("--poll-interval", type=float, default=0.2,
                      metavar="SECONDS",
                      help="base sleep between --follow polls; backs off "
                           "geometrically (up to 16x) while the log is idle "
                           "(default 0.2)")
    tail.set_defaults(fn=_cmd_tail)

    slo = sub.add_parser(
        "slo", help="evaluate SLO rules against a finished run"
    )
    slo_sub = slo.add_subparsers(dest="slo_command", required=True)
    s_check = slo_sub.add_parser(
        "check",
        help="post-hoc SLO evaluation; exit 1 on critical breaches",
    )
    s_check.add_argument("--rules", required=True, metavar="RULES.yaml",
                         help="declarative SLO rules (YAML)")
    source = s_check.add_mutually_exclusive_group(required=True)
    source.add_argument("--from", dest="from_path", metavar="PATH",
                        help="a metrics.json or run_summary.json")
    source.add_argument("--run", dest="run_id", metavar="RUN_ID",
                        help="evaluate a persisted run's metrics snapshot")
    s_check.add_argument("--db", default=None, metavar="PATH",
                         help="runs database for --run "
                              "(default: $REPRO_RUNS_DB)")
    s_check.add_argument("--format", choices=("text", "json"), default="text")
    s_check.add_argument("--report-out", default=None, metavar="PATH",
                         help="also write the report JSON here")
    s_check.set_defaults(fn=_cmd_slo)

    service = sub.add_parser(
        "service",
        help="multi-tenant workflow service (tenants, quotas, launcher)",
    )
    service_sub = service.add_subparsers(dest="service_command", required=True)
    sv_init = service_sub.add_parser(
        "init", help="create (or migrate) the service database"
    )
    sv_add = service_sub.add_parser("add-tenant", help="register a tenant")
    sv_add.add_argument("name")
    sv_add.add_argument("--share", type=float, default=1.0,
                        help="fair-share weight (default 1.0)")
    sv_add.add_argument("--max-running", type=int, default=4,
                        help="max concurrently running jobs (0 disables "
                             "the tenant; default 4)")
    sv_add.add_argument("--max-cores", type=int, default=0,
                        help="max concurrently held cores (0 = unlimited)")
    sv_tenants = service_sub.add_parser("tenants", help="list tenants")
    sv_jobs = service_sub.add_parser("jobs", help="list service jobs")
    sv_jobs.add_argument("--tenant", default=None,
                         help="only this tenant's jobs")
    sv_jobs.add_argument("--state", default=None,
                         choices=("SUBMITTED", "LAUNCHED", "RUNNING",
                                  "COMPLETED", "FAILED", "CANCELLED"))
    sv_run = service_sub.add_parser(
        "run",
        help="start the fair-share launcher over the demo workflows and "
             "drain the queued jobs",
    )
    sv_run.add_argument("--site", default="laptop",
                        help="site name recorded on job rows")
    sv_run.add_argument("--timeout", type=float, default=300.0,
                        help="max seconds to wait for the queue to drain")
    sv_run.add_argument("--scratch", default=None,
                        help="cluster scratch directory (kept after the run)")
    sv_run.add_argument("--cores-per-node", type=int, default=4, metavar="N")
    sv_run.add_argument("--report-out", default=None, metavar="PATH",
                        help="also write the per-tenant report JSON here")
    for sp in (sv_init, sv_add, sv_tenants, sv_jobs, sv_run):
        sp.add_argument("--db", default=None, metavar="PATH",
                        help="service database (default: $REPRO_RUNS_DB)")
    for sp in (sv_tenants, sv_jobs):
        sp.add_argument("--format", choices=("text", "json"), default="text")
    service.set_defaults(fn=_cmd_service)

    submit = sub.add_parser(
        "submit",
        help="enqueue a workflow job for a tenant into the service database",
    )
    submit.add_argument("tenant", help="tenant submitting the job")
    submit.add_argument("workflow",
                        help="deployed workflow id (e.g. esm-ensemble-member, "
                             "heatwave-analytics)")
    submit.add_argument("--cores", type=int, default=1)
    submit.add_argument("--memory-gb", type=float, default=0.0)
    submit.add_argument("--param", action="append", metavar="KEY=VALUE",
                        help="workflow parameter (repeatable; values parse "
                             "as JSON when possible)")
    submit.add_argument("--db", default=None, metavar="PATH",
                        help="service database (default: $REPRO_RUNS_DB)")
    submit.set_defaults(fn=_cmd_submit)

    top = sub.add_parser(
        "top",
        help="live per-tenant fleet view (tenants, jobs, worker CPU/RSS, "
             "queue depth, recent events) from runs.db + events.jsonl",
    )
    top.add_argument("--db", default=None, metavar="PATH",
                     help="service database (default: $REPRO_RUNS_DB)")
    top.add_argument("--events", default=None, metavar="PATH",
                     help="also show the tail of this events.jsonl")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (for scripting)")
    top.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                     help="refresh period for the live view (default 2)")
    top.add_argument("--limit", type=int, default=10,
                     help="rows per table (default 10)")
    top.add_argument("--format", choices=("text", "json"), default="text",
                     help="with --once, emit the raw state as JSON")
    top.set_defaults(fn=_cmd_top)

    report = sub.add_parser("report", help="Markdown report from a run summary")
    report.add_argument("summary", help="path to a run_summary.json")
    report.add_argument("--title", default="Climate extremes run report")
    report.set_defaults(fn=_cmd_report)

    info = sub.add_parser("info", help="component inventory")
    info.set_defaults(fn=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
