"""FIG3 — the run-time task graph (paper Figure 3).

The paper shows the PyCOMPSs-generated DAG for a single year of
simulation data.  This benchmark runs that configuration, prints the
per-function task census and structural metrics, verifies the
dependency structure, and emits the DOT artefact.
"""

import pytest

from benchmarks.conftest import print_table
from repro.workflow import WorkflowParams, run_extreme_events_workflow


def test_fig3_task_graph_single_year(benchmark, cluster, tc_model_path):
    params = WorkflowParams(
        years=[2030], n_days=12, n_lat=16, n_lon=24, n_workers=4,
        min_length_days=4, tc_model_path=tc_model_path,
        tc_target_grid=(16, 32), seed=5,
    )
    summary = benchmark.pedantic(
        lambda: run_extreme_events_workflow(cluster, params),
        rounds=1, iterations=1,
    )
    graph = summary["task_graph"]
    by_fn = graph["by_function"]

    # Shape: the per-year multiset Figure 3 implies — one simulation
    # block, one load, 2x (durations + 3 indices), TC post-process/
    # inference/geo-reference + deterministic tracker, 2x validate/store,
    # 2x maps.  (The figure's stream monitor is now driver-side
    # pipelined dispatch, so it no longer appears as a task.)
    expected = {
        "esm_simulation": 1,
        "write_baseline": 1,
        "load_baseline_cubes": 1,
        "load_year_cubes": 1,
        "compute_qualifying_durations": 2,
        "index_duration_max": 2,
        "index_duration_number": 2,
        "index_frequency": 2,
        "validate_and_store": 2,
        "make_map": 2,
        "tc_preprocess": 1,
        "tc_inference": 1,
        "tc_georeference": 1,
        "tc_deterministic_tracking": 1,
    }
    assert by_fn == expected
    assert graph["n_tasks"] == sum(expected.values())
    assert graph["n_edges"] >= 20           # densely wired, as in the figure
    assert graph["critical_path"] >= 5      # monitor → load → dur → index → validate
    assert graph["max_width"] >= 4          # HW/CW/TC branches run abreast

    dot = cluster.filesystem.read_bytes("results/task_graph.dot").decode()
    assert dot.startswith("digraph")

    print_table(
        "FIG3: per-function task census (1 year)",
        ["function (graph colour group)", "tasks"],
        sorted(by_fn.items()),
    )
    print_table(
        "FIG3: graph structure",
        ["metric", "value"],
        [
            ["tasks", graph["n_tasks"]],
            ["dependency edges", graph["n_edges"]],
            ["critical path length", graph["critical_path"]],
            ["max parallel width", graph["max_width"]],
            ["DOT size (bytes)", len(dot)],
        ],
    )
