"""End-to-end integration tests: the full case study on a tiny grid."""

import json

import pytest

from repro.cluster import laptop_like
from repro.workflow import (
    CASE_STUDY_TOSCA,
    WorkflowParams,
    build_case_study_services,
    run_extreme_events_workflow,
)
from repro.workflow.tasks import ensure_tc_model


@pytest.fixture(scope="module")
def tc_model_path(tmp_path_factory):
    return ensure_tc_model(None, 16, str(tmp_path_factory.mktemp("tc")))


@pytest.fixture
def cluster(tmp_path):
    with laptop_like(scratch_root=str(tmp_path)) as c:
        yield c


def small_params(tc_model_path, **overrides):
    defaults = dict(
        years=[2030],
        n_days=12,
        n_lat=16,
        n_lon=24,
        n_workers=4,
        min_length_days=4,
        tc_model_path=tc_model_path,
        tc_target_grid=(16, 32),
        seed=5,
    )
    defaults.update(overrides)
    return WorkflowParams(**defaults)


class TestEndToEnd:
    def test_full_run_produces_all_artifacts(self, cluster, tc_model_path):
        params = small_params(tc_model_path)
        summary = run_extreme_events_workflow(cluster, params)
        fs = cluster.filesystem

        year = summary["years"][2030]
        assert "heat_waves" in year and "cold_waves" in year
        assert year["tc_deterministic"]["n_tracks"] >= 0
        assert year["tc_ml"]["n_detections"] >= 0

        # Index exports, maps, summaries, graph, run summary.
        for prefix in ("hw", "cw"):
            for suffix in ("duration_max", "number", "frequency"):
                assert fs.exists(f"results/{prefix}_{suffix}_2030.rnc"), suffix
            assert fs.exists(f"results/{prefix}_number_map_2030.pgm")
        assert fs.exists("results/task_graph.dot")
        assert fs.exists("results/run_summary.json")
        stored = json.loads(fs.read_bytes("results/run_summary.json"))
        assert stored["task_graph"]["n_tasks"] == summary["task_graph"]["n_tasks"]

    def test_task_graph_census_matches_fig3_structure(self, cluster, tc_model_path):
        """Per-year task multiset implied by Figure 3 / §5.1."""
        params = small_params(tc_model_path)
        summary = run_extreme_events_workflow(cluster, params)
        by_fn = summary["task_graph"]["by_function"]
        assert by_fn["esm_simulation"] == 1
        assert by_fn["write_baseline"] == 1
        assert by_fn["load_baseline_cubes"] == 1
        # Pipelined dispatch: the driver waits on the file stream, so
        # no monitor task occupies a worker slot.
        assert "monitor_year" not in by_fn
        assert by_fn["load_year_cubes"] == 1
        assert by_fn["compute_qualifying_durations"] == 2   # HW + CW
        assert by_fn["index_duration_max"] == 2
        assert by_fn["index_duration_number"] == 2
        assert by_fn["index_frequency"] == 2
        assert by_fn["validate_and_store"] == 2
        assert by_fn["make_map"] == 2
        assert by_fn["tc_preprocess"] == 1
        assert by_fn["tc_inference"] == 1
        assert by_fn["tc_georeference"] == 1
        assert by_fn["tc_deterministic_tracking"] == 1
        assert summary["task_graph"]["n_edges"] > 0

    def test_multi_year_scales_task_counts(self, cluster, tc_model_path):
        params = small_params(tc_model_path, years=[2030, 2031], with_ml=False)
        summary = run_extreme_events_workflow(cluster, params)
        by_fn = summary["task_graph"]["by_function"]
        # Per-year tasks double; global tasks don't (paper: "the number of
        # tasks would be repeated with the exception of the first four").
        assert by_fn["esm_simulation"] == 1
        assert by_fn["load_baseline_cubes"] == 1
        assert "monitor_year" not in by_fn
        assert by_fn["compute_qualifying_durations"] == 4
        assert set(summary["years"]) == {2030, 2031}
        assert summary["schedule"]["pipelined_years"] >= 0

    def test_without_ml(self, cluster, tc_model_path):
        params = small_params(tc_model_path, with_ml=False)
        summary = run_extreme_events_workflow(cluster, params)
        assert "tc_ml" not in summary["years"][2030]
        assert "tc_inference" not in summary["task_graph"]["by_function"]

    def test_no_baseline_reuse_loads_per_year(self, cluster, tc_model_path):
        params = small_params(
            tc_model_path, years=[2030, 2031], with_ml=False, reuse_baseline=False
        )
        summary = run_extreme_events_workflow(cluster, params)
        assert summary["task_graph"]["by_function"]["load_baseline_cubes"] == 2

    def test_dict_params_entrypoint_shape(self, cluster, tc_model_path):
        """The HPCWaaS entrypoint signature: (cluster, dict)."""
        summary = run_extreme_events_workflow(cluster, {
            "years": [2030], "n_days": 8, "n_lat": 16, "n_lon": 24,
            "min_length_days": 4, "with_ml": False, "seed": 5,
        })
        assert 2030 in summary["years"]

    def test_detects_injected_heat_waves_over_full_year(self, tmp_path, tc_model_path):
        """With a full year, the injected heat waves must surface in the
        indices (the scientific shape of Figure 4)."""
        with laptop_like(scratch_root=str(tmp_path / "c")) as cluster:
            params = small_params(
                tc_model_path, n_days=250, with_ml=False, min_length_days=6,
                n_lat=24, n_lon=36,
            )
            summary = run_extreme_events_workflow(cluster, params)
            hw = summary["years"][2030]["heat_waves"]
            assert hw["cells_with_waves"] > 0.0
            assert hw["max_duration_days"] >= 6


class TestResilience:
    def test_second_run_recovers_checkpointable_tasks(self, tmp_path, tc_model_path):
        """Re-running with the same checkpoint store recovers the tasks
        with picklable outputs (simulation truth, stats); cube-producing
        tasks re-execute by design.  Science identical."""
        ckpt = str(tmp_path / "ckpt")

        def run():
            from repro.cluster import laptop_like
            from repro.workflow import run_extreme_events_workflow

            # A restart reuses the same scratch: recovered task outputs
            # reference files that must still exist.
            with laptop_like(scratch_root=str(tmp_path / "scratch")) as cluster:
                params = small_params(
                    tc_model_path, n_days=8, with_ml=False,
                    checkpoint_dir=ckpt,
                )
                return run_extreme_events_workflow(cluster, params)

        first = run()
        second = run()
        assert second["years"][2030]["heat_waves"] == first["years"][2030]["heat_waves"]
        # The heavy producer (ESM) recovered.
        assert second["task_graph"]["n_tasks"] == first["task_graph"]["n_tasks"]

    def test_esm_restart_files_written_by_workflow(self, cluster, tc_model_path):
        from repro.workflow import run_extreme_events_workflow

        params = small_params(tc_model_path, n_days=9, with_ml=False,
                              esm_restart_every=4)
        run_extreme_events_workflow(cluster, params)
        restarts = cluster.filesystem.glob("restarts", "restart_2030_*.rnc")
        assert len(restarts) == 2


class TestHPCWaaSLifecycle:
    def test_fig2_deploy_invoke_undeploy(self, cluster, tc_model_path):
        """The Figure-2 path: A4C upload → Yorc deploy → publish →
        Execution API invoke → undeploy."""
        a4c, api = build_case_study_services()
        deployment = a4c.deploy("climate-extreme-events", cluster)

        def entrypoint(cl, params):
            wf = {k: v for k, v in params.items() if k in (
                "years", "n_days", "n_lat", "n_lon", "min_length_days",
                "with_ml", "seed", "tc_model_path", "tc_target_grid",
            )}
            return run_extreme_events_workflow(cl, wf)

        a4c.set_parameters(
            "climate-extreme-events",
            n_lat=16, n_lon=24, min_length_days=4, with_ml=False, seed=5,
        )
        record = a4c.publish_workflow(
            "extreme-events", deployment, entrypoint,
            description="climate extremes case study",
        )
        assert api.list_workflows() == ["extreme-events"]
        execution = api.invoke("extreme-events", years=[2030], n_days=8)
        summary = execution.wait(timeout=300)
        assert 2030 in summary["years"]
        # Deployment staged the TC model placeholder via the DLS.
        assert cluster.filesystem.exists("models/tc_localizer_staged.pkl")
        a4c.undeploy(record.deployment)
        with pytest.raises(RuntimeError):
            api.invoke("extreme-events")

    def test_case_study_tosca_parses(self):
        from repro.hpcwaas import topology_from_yaml

        topo = topology_from_yaml(CASE_STUDY_TOSCA)
        assert topo.name == "climate-extreme-events"
        order = [t.name for t in topo.deployment_order()]
        assert order.index("zeus") < order.index("extremes_app")
