"""End-to-end chaos experiment: kill a node mid-run, demand identical science."""

import itertools

import pytest

from repro.cluster import laptop_like
from repro.faults import FaultPlan, NodeCrash, run_chaos_experiment
from repro.workflow.config import WorkflowParams


class TestChaosExperiment:
    def test_unknown_crash_node_rejected_before_any_run(self, tmp_path):
        plan = FaultPlan(node_crashes=(NodeCrash("ghost", after_fs_writes=1),))
        with pytest.raises(ValueError, match="ghost"):
            run_chaos_experiment(
                plan,
                WorkflowParams(n_days=4, min_length_days=2, with_ml=False),
                make_cluster=lambda: laptop_like(str(tmp_path / "c")),
            )

    def test_node_crash_run_matches_fault_free_run(self, tmp_path):
        ids = itertools.count(1)

        def make_cluster():
            return laptop_like(str(tmp_path / f"cluster{next(ids)}"))

        plan = FaultPlan(
            seed=7,
            fs_error_rate=0.02,
            node_crashes=(NodeCrash("local1", after_fs_writes=4),),
        )
        params = WorkflowParams(
            years=[2030], n_days=6, n_workers=2,
            with_ml=False, min_length_days=3,
        )
        report = run_chaos_experiment(
            plan, params,
            make_cluster=make_cluster,
            max_workflow_attempts=4,
            attempt_timeout=180.0,
        )
        # The verdict: science identical to the fault-free reference.
        assert report["match"] is True
        assert set(report["chaos_years"]) == set(report["baseline_years"])
        # The faults demonstrably fired and recovery demonstrably ran.
        assert report["counters"]["faults_injected_total"] > 0
        assert report["counters"]["lsf_node_crashes_total"] >= 1
        assert report["counters"]["lsf_jobs_requeued_total"] >= 1
        # The LSF requeue restarts the workflow entry point, so the
        # crash implies at least two workflow attempts.
        assert report["workflow_attempts"] >= 2
        assert report["faults_by_kind"]  # populated breakdown
