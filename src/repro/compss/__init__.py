"""A PyCOMPSs-compatible task-based programming model.

This package re-implements the programming model the paper builds its
workflow on (Tejedor et al. 2017; Badia et al. 2015): Python functions
annotated with :func:`@task <repro.compss.api.task>` become asynchronous
workflow tasks at call time.  The runtime

* builds the task graph dynamically, detecting data dependencies from the
  declared parameter directionality (``IN`` / ``OUT`` / ``INOUT`` for
  objects, ``FILE_IN`` / ``FILE_OUT`` / ``FILE_INOUT`` for paths),
* schedules dependency-free tasks onto a pool of workers (pluggable
  policy: FIFO, priority-aware, data-locality),
* resolves futures returned by tasks and synchronises them on demand via
  :func:`compss_wait_on`,
* honours per-task resource constraints (:func:`@constraint
  <repro.compss.api.constraint>`),
* implements the task-level fault-tolerance policies of Ejarque et al.
  2020 (``FAIL`` / ``RETRY`` / ``IGNORE`` / ``CANCEL_SUCCESSORS``) and the
  task-level checkpointing of Vergés et al. 2023,
* supports streaming (directory-watching file streams and in-memory
  object streams) so consumers can overlap with a producing simulation,
* records a trace of task executions and can export the run-time task
  graph in DOT form — the artefact shown in the paper's Figure 3.

Tasks called while no runtime is active execute synchronously, mirroring
PyCOMPSs' sequential (non-``runcompss``) behaviour, which keeps task
functions unit-testable in isolation.
"""

from repro.compss.parameter import IN, OUT, INOUT, FILE_IN, FILE_OUT, FILE_INOUT, Direction
from repro.compss.future import Future
from repro.compss.api import (
    task,
    constraint,
    compss_wait_on,
    compss_barrier,
    compss_start,
    compss_stop,
    get_runtime,
    COMPSs,
)
from repro.compss.runtime import COMPSsRuntime, RuntimeConfig
from repro.compss.task_graph import TaskGraph, TaskNode, TaskState
from repro.compss.scheduler import (
    SchedulerPolicy,
    FIFOPolicy,
    PriorityPolicy,
    DataLocalityPolicy,
)
from repro.compss.failures import OnFailure, TaskFailedError, TaskCancelledError
from repro.compss.checkpoint import CheckpointManager
from repro.compss.streams import ObjectDistroStream, FileDistroStream, StreamClosed
from repro.compss.tracing import Tracer, TaskEvent
from repro.compss.mpi import mpi, MiniComm, MPIError

__all__ = [
    "IN", "OUT", "INOUT", "FILE_IN", "FILE_OUT", "FILE_INOUT", "Direction",
    "Future",
    "task", "constraint", "compss_wait_on", "compss_barrier",
    "compss_start", "compss_stop", "get_runtime", "COMPSs",
    "COMPSsRuntime", "RuntimeConfig",
    "TaskGraph", "TaskNode", "TaskState",
    "SchedulerPolicy", "FIFOPolicy", "PriorityPolicy", "DataLocalityPolicy",
    "OnFailure", "TaskFailedError", "TaskCancelledError",
    "CheckpointManager",
    "ObjectDistroStream", "FileDistroStream", "StreamClosed",
    "Tracer", "TaskEvent",
    "mpi", "MiniComm", "MPIError",
]
