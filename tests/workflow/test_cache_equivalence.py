"""The reuse layer must be byte-transparent: caching changes data
movement, never science.  Runs the case study with caches on and off
and compares content digests of every science artifact."""

from repro.cluster import laptop_like
from repro.workflow import WorkflowParams, run_extreme_events_workflow
from repro.workflow.provenance import science_digests


def run_once(tmp_path, label, **cache_overrides):
    params = WorkflowParams(
        years=[2030, 2031],
        n_days=10,
        n_lat=16,
        n_lon=24,
        n_workers=4,
        min_length_days=4,
        with_ml=False,
        seed=11,
        **cache_overrides,
    )
    with laptop_like(scratch_root=str(tmp_path / label)) as cluster:
        summary = run_extreme_events_workflow(cluster, params)
        return summary, science_digests(cluster.filesystem)


class TestCacheEquivalence:
    def test_cache_on_and_off_produce_identical_science(self, tmp_path):
        on_summary, on_digests = run_once(tmp_path, "on")
        off_summary, off_digests = run_once(
            tmp_path, "off", worker_cache_bytes=0, fs_cache_bytes=0
        )
        assert on_digests, "science artifacts expected under results/"
        assert on_digests == off_digests
        # Identical numbers surface in the summaries too (the TC skill
        # scores hold NaNs, which never compare equal — skip those).
        for year, on_year in on_summary["years"].items():
            off_year = off_summary["years"][year]
            assert on_year["heat_waves"] == off_year["heat_waves"]
            assert on_year["cold_waves"] == off_year["cold_waves"]

    def test_digest_map_skips_bookkeeping(self, tmp_path):
        _, digests = run_once(tmp_path, "solo")
        assert "run_summary.json" not in digests
        assert "task_graph.dot" not in digests
        assert any(name.startswith("hw_") for name in digests)
