"""Neural-network layers with analytic forward/backward passes.

Every layer follows the same contract: ``forward(x)`` caches what the
backward pass needs; ``backward(grad_out)`` returns ``grad_in`` and
fills ``.grads`` (aligned with ``.params``).  All math is float64 NumPy
— the im2col convolution turns the conv into one large matmul, which is
where BLAS (and the GIL release the COMPSs workers rely on) does the
heavy lifting.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


class Layer:
    """Base class: stateless layers keep ``params = []``."""

    def __init__(self) -> None:
        self.params: List[np.ndarray] = []
        self.grads: List[np.ndarray] = []

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError


def _im2col_indices(
    c: int, h: int, w: int, kh: int, kw: int, pad: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Index arrays turning (N,C,H,W) into (N, C*kh*kw, out_h*out_w)."""
    out_h = h + 2 * pad - kh + 1
    out_w = w + 2 * pad - kw + 1
    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = np.tile(np.arange(out_w), out_h)
    i = i0[:, None] + i1[None, :]
    j = j0[:, None] + j1[None, :]
    k = np.repeat(np.arange(c), kh * kw)[:, None]
    return k, i, j, out_h, out_w


class Conv2D(Layer):
    """2-d convolution, stride 1, symmetric zero padding.

    Weights are He-initialised; shapes: input ``(N, C, H, W)``, kernel
    ``(F, C, kh, kw)``, output ``(N, F, H', W')`` with
    ``H' = H + 2 pad - kh + 1``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        pad: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if kernel < 1 or kernel % 2 == 0:
            raise ValueError("kernel must be a positive odd size")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.pad = kernel // 2 if pad is None else pad
        fan_in = in_channels * kernel * kernel
        self.weight = rng.normal(0.0, np.sqrt(2.0 / fan_in),
                                 size=(out_channels, in_channels, kernel, kernel))
        self.bias = np.zeros(out_channels)
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        k, i, j, out_h, out_w = _im2col_indices(c, h, w, self.kernel, self.kernel, self.pad)
        x_pad = np.pad(x, ((0, 0), (0, 0), (self.pad,) * 2, (self.pad,) * 2))
        cols = x_pad[:, k, i, j]                       # (N, C*k*k, L)
        w_col = self.weight.reshape(self.out_channels, -1)
        out = w_col @ cols + self.bias[None, :, None]  # (N, F, L)
        self._cache = (x.shape, x_pad.shape, cols, (k, i, j))
        return out.reshape(n, self.out_channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_shape, pad_shape, cols, (k, i, j) = self._cache
        n = grad_out.shape[0]
        g = grad_out.reshape(n, self.out_channels, -1)   # (N, F, L)

        self.grads[1][...] = g.sum(axis=(0, 2))
        w_grad = np.einsum("nfl,ncl->fc", g, cols)
        self.grads[0][...] = w_grad.reshape(self.weight.shape)

        w_col = self.weight.reshape(self.out_channels, -1)
        grad_cols = np.einsum("fc,nfl->ncl", w_col, g)   # (N, C*k*k, L)
        grad_pad = np.zeros((n,) + pad_shape[1:])
        np.add.at(grad_pad, (slice(None), k, i, j), grad_cols)
        if self.pad:
            return grad_pad[:, :, self.pad:-self.pad, self.pad:-self.pad]
        return grad_pad


class MaxPool2D(Layer):
    """Non-overlapping max pooling; spatial sizes must divide by *pool*."""

    def __init__(self, pool: int = 2) -> None:
        super().__init__()
        if pool < 1:
            raise ValueError("pool must be >= 1")
        self.pool = pool
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.pool
        if h % p or w % p:
            raise ValueError(f"spatial size {h}x{w} not divisible by pool {p}")
        # (n, c, H', W', p*p): one row per pooling block.
        blocks = x.reshape(n, c, h // p, p, w // p, p).transpose(0, 1, 2, 4, 3, 5)
        flat = blocks.reshape(n, c, h // p, w // p, p * p)
        idx = np.argmax(flat, axis=-1)   # first maximum wins ties
        out = np.take_along_axis(flat, idx[..., None], axis=-1)[..., 0]
        self._cache = (x.shape, idx)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_shape, idx = self._cache
        n, c, h, w = x_shape
        p = self.pool
        flat_grad = np.zeros((n, c, h // p, w // p, p * p))
        np.put_along_axis(flat_grad, idx[..., None], grad_out[..., None], axis=-1)
        blocks = flat_grad.reshape(n, c, h // p, w // p, p, p)
        return blocks.transpose(0, 1, 2, 4, 3, 5).reshape(x_shape)


class Dense(Layer):
    """Fully-connected layer ``y = x @ W + b``."""

    def __init__(
        self, in_features: int, out_features: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.weight = rng.normal(0.0, np.sqrt(2.0 / in_features),
                                 size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self._x = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise ValueError(
                f"expected (N, {self.weight.shape[0]}), got {x.shape}"
            )
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self.grads[0][...] = self._x.T @ grad_out
        self.grads[1][...] = grad_out.sum(axis=0)
        return grad_out @ self.weight.T


class Flatten(Layer):
    """(N, ...) → (N, prod(...))."""

    def __init__(self) -> None:
        super().__init__()
        self._shape = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


class ReLU(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class Sigmoid(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._out = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._out = 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._out * (1.0 - self._out)
