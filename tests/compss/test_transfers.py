"""Inter-worker data-transfer accounting tests."""

import numpy as np
import pytest

from repro.compss import COMPSs, compss_wait_on, task
from repro.compss.runtime import COMPSsRuntime


@task(returns=1)
def produce_array(n):
    return np.zeros(n, dtype=np.float64)


@task(returns=1)
def consume(arr):
    return float(arr.sum())


class TestEstimator:
    def test_arrays_use_nbytes(self):
        assert COMPSsRuntime._estimate_nbytes(np.zeros(10)) == 80

    def test_containers_sum(self):
        est = COMPSsRuntime._estimate_nbytes([np.zeros(4), np.zeros(6)])
        assert est == 32 + 48
        est = COMPSsRuntime._estimate_nbytes({"a": np.zeros(2)})
        assert est == 16

    def test_scalars_small_but_positive(self):
        assert 0 < COMPSsRuntime._estimate_nbytes(42) < 1000

    def test_unsizable_is_safe(self):
        assert COMPSsRuntime._estimate_nbytes(object()) >= 0

    def test_deeply_nested_containers_fully_counted(self):
        """A per-year list of per-day dicts of arrays (the workflow's
        natural result shape) is three levels deep and must not be
        truncated by a recursion cap."""
        years = [
            [{"tmax": np.zeros(5), "tmin": np.zeros(5)} for _ in range(3)]
            for _ in range(2)
        ]
        assert COMPSsRuntime._estimate_nbytes(years) == 2 * 3 * 2 * 5 * 8

    def test_cyclic_container_terminates(self):
        loop = [np.zeros(4)]
        loop.append(loop)
        assert COMPSsRuntime._estimate_nbytes(loop) == 32

    def test_shared_reference_counted_once(self):
        """Aliases to one list are one allocation: the estimate reflects
        memory footprint, not traversal count."""
        shared = [np.zeros(10)]
        assert COMPSsRuntime._estimate_nbytes([shared, shared]) == 80


class TestAccounting:
    def test_single_worker_all_local(self):
        with COMPSs(n_workers=1) as rt:
            compss_wait_on(consume(produce_array(100)))
            stats = dict(rt.transfer_stats)
        assert stats["remote_transfers"] == 0
        assert stats["local_hits"] == 1
        assert stats["bytes_transferred"] == 0

    def test_hits_plus_transfers_equal_dependencies(self):
        with COMPSs(n_workers=3) as rt:
            chain = produce_array(50)
            for _ in range(6):
                chain = consume_chain(chain)
            compss_wait_on(chain)
            stats = dict(rt.transfer_stats)
            n_edges = len(rt.graph.edges())
        assert stats["local_hits"] + stats["remote_transfers"] == n_edges

    def test_remote_transfer_counts_producer_bytes(self):
        """Force producer and consumer onto different workers via a
        blocking decoy that pins one worker."""
        import threading

        gate = threading.Event()

        @task()
        def decoy():
            gate.wait(5)

        with COMPSs(n_workers=2) as rt:
            big = produce_array(1000)        # 8000 bytes
            compss_wait_on(big)              # producer done, on some worker
            producer_worker = rt.graph.task(1).worker_id
            # Pin the producer's worker with the decoy, so the consumer
            # must run on the other worker.
            # (Scheduling is FIFO; the decoy grabs the first free worker,
            # which may or may not be the producer's — accept either, but
            # assert the accounting matches the placement.)
            decoy()
            out = consume(big)
            import time

            time.sleep(0.2)
            gate.set()
            compss_wait_on(out)
            consumer_worker = [
                t.worker_id for t in rt.graph.tasks() if t.func_name == "consume"
            ][0]
            stats = dict(rt.transfer_stats)
        if consumer_worker == producer_worker:
            assert stats["bytes_transferred"] == 0
        else:
            assert stats["bytes_transferred"] == 8000
            assert stats["remote_transfers"] == 1


@task(returns=1)
def consume_chain(arr):
    return arr + 1.0
