"""Bilinear regridding between regular lat-lon grids.

The TC pipeline's first post-processing step (§5.4: "regridding the
CMCC-CM3 file") — the CNN expects a fixed input resolution regardless of
the model grid.  Longitude is treated as periodic; latitudes outside the
source range clamp to the nearest edge.
"""

from __future__ import annotations

import numpy as np


def regrid_bilinear(
    data: np.ndarray,
    src_lat: np.ndarray,
    src_lon: np.ndarray,
    dst_lat: np.ndarray,
    dst_lon: np.ndarray,
) -> np.ndarray:
    """Bilinearly interpolate *data* onto the destination grid.

    *data* may be ``(lat, lon)`` or ``(..., lat, lon)``; the trailing two
    axes are regridded.  Source coordinates must be strictly increasing
    (latitudes) / in [0, 360) (longitudes, assumed uniformly spaced).
    """
    data = np.asarray(data, dtype=np.float64)
    src_lat = np.asarray(src_lat, dtype=np.float64)
    src_lon = np.asarray(src_lon, dtype=np.float64)
    dst_lat = np.asarray(dst_lat, dtype=np.float64)
    dst_lon = np.asarray(dst_lon, dtype=np.float64)

    if data.shape[-2] != src_lat.size or data.shape[-1] != src_lon.size:
        raise ValueError(
            f"data trailing shape {data.shape[-2:]} does not match "
            f"({src_lat.size}, {src_lon.size})"
        )
    if np.any(np.diff(src_lat) <= 0):
        raise ValueError("source latitudes must be strictly increasing")

    # --- latitude: clamp outside the source range -----------------------
    li = np.searchsorted(src_lat, dst_lat) - 1
    li = np.clip(li, 0, src_lat.size - 2)
    lat0 = src_lat[li]
    lat1 = src_lat[li + 1]
    wlat = np.clip((dst_lat - lat0) / (lat1 - lat0), 0.0, 1.0)

    # --- longitude: periodic ------------------------------------------------
    dlon = 360.0 / src_lon.size
    pos = (dst_lon - src_lon[0]) % 360.0 / dlon
    gi = np.floor(pos).astype(int) % src_lon.size
    gi1 = (gi + 1) % src_lon.size
    wlon = pos - np.floor(pos)

    # Gather the four corners with broadcasting over leading axes.
    a = data[..., li[:, None], gi[None, :]]
    b = data[..., li[:, None], gi1[None, :]]
    c = data[..., li[:, None] + 1, gi[None, :]]
    d = data[..., li[:, None] + 1, gi1[None, :]]

    wlat2 = wlat[:, None]
    wlon2 = wlon[None, :]
    top = a * (1 - wlon2) + b * wlon2
    bottom = c * (1 - wlon2) + d * wlon2
    return top * (1 - wlat2) + bottom * wlat2
