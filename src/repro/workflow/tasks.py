"""The PyCOMPSs task functions of the case study.

One function per circle colour in the paper's Figure 3.  The heat/cold
wave index tasks keep the shape of the paper's Listing 1: they receive
the Ophidia ``client``, bind it to ``cube.Cube.client`` and drive cube
operators, exporting their result as NetCDF.

All functions are plain Python when no COMPSs runtime is active, which
is how the unit tests exercise them.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analytics import (
    detect_tc_candidates,
    link_tracks,
    regrid_bilinear,
    render_ascii_map,
    render_pgm,
    track_skill,
    validate_indices,
)
from repro.analytics.heatwaves import WaveIndices
from repro.cluster.filesystem import SharedFilesystem
from repro.compss import FILE_IN, task
from repro.esm import CMCCCM3, ModelConfig, daily_filename, parse_daily_filename
from repro.ml.tc_localizer import CHANNELS, TCLocalizer, localize_in_snapshot
from repro.observability import get_registry, maybe_span
from repro.ophidia import Client, Cube


# ---------------------------------------------------------------------------
# 1. ESM simulation (Figure 3, task #1)
# ---------------------------------------------------------------------------

@task(returns=1, label="CMCC-CM3")
def esm_simulation(
    fs: SharedFilesystem,
    years: Sequence[int],
    n_days: int,
    n_lat: int,
    n_lon: int,
    scenario: str,
    seed: int,
    output_dir: str,
    pace_seconds: float = 0.0,
    restart_every: int = 0,
) -> Dict[int, dict]:
    """Run the coupled model; one RNC file per simulated day.

    ``pace_seconds`` throttles production (sleep per day) so benchmarks
    can emulate the real model's cadence and expose streaming overlap.
    With ``restart_every=K``, restart files land every K days and an
    interrupted re-run resumes from the newest one instead of
    re-integrating the year from January 1st.
    """
    import time

    model = CMCCCM3(ModelConfig(
        n_lat=n_lat, n_lon=n_lon, scenario=scenario, seed=seed,
    ))
    days_written = get_registry().counter(
        "esm_days_written_total", "Simulated days written by the ESM",
        labels=("year",),
    )
    truth: Dict[int, dict] = {}
    for year in years:
        def pace(doy: int, path: str) -> None:
            days_written.inc(year=year)
            if pace_seconds:
                time.sleep(pace_seconds)

        with maybe_span(f"esm.year:{year}", layer="esm",
                        attrs={"year": year, "n_days": n_days}):
            truth[year] = model.run_year(
                year, fs, output_dir=output_dir, n_days=n_days,
                on_day_written=pace, restart_every=restart_every,
                resume=restart_every > 0,
            )
    return truth


@task(returns=1, label="write_baseline")
def write_baseline(
    fs: SharedFilesystem, n_lat: int, n_lon: int, scenario: str, seed: int,
    n_days: int, executor=None,
) -> str:
    """Stage the historical-average climatology (loaded once per run).

    With *executor* (the Ophidia server's process backend, when the run
    uses one) the independent per-day climatology fields fan out across
    worker processes; the output is byte-identical either way.
    """
    model = CMCCCM3(ModelConfig(n_lat=n_lat, n_lon=n_lon, scenario=scenario, seed=seed))
    return model.write_baseline(fs, n_days=n_days, executor=executor)


# ---------------------------------------------------------------------------
# 2. Streaming monitor (Figure 3, task #4)
# ---------------------------------------------------------------------------

@task(returns=1, label="stream_monitor")
def monitor_year(stream, year: int, n_days: int) -> List[str]:
    """Poll the file stream until every day of *year* has been produced.

    Returns the year's file paths in chronological order.  The stream is
    shared across per-year monitors; files from other years are kept for
    their monitors via the ``extras`` side channel.
    """
    paths = stream.collect_year(year, n_days)
    return paths


# ---------------------------------------------------------------------------
# 3. Data loading (Ophidia import)
# ---------------------------------------------------------------------------

@task(returns=2, label="load_year")
def load_year_cubes(
    client: Client, day_paths: Sequence[str], nfrag: int
) -> Tuple[Cube, Cube]:
    """Import the year's TMAX/TMIN into datacubes (daily maxima/minima).

    Day files carry four 6-hourly steps with the daily extreme
    replicated per step; ``reduce2`` collapses them to one value per day.
    """
    Cube.client = client
    tmax = Cube.importnc2(
        list(day_paths), measure="TREFHTMX", client=client, nfrag=nfrag,
        description="daily TMAX",
    ).reduce2("max", dim="time", group_size=4)
    tmin = Cube.importnc2(
        list(day_paths), measure="TREFHTMN", client=client, nfrag=nfrag,
        description="daily TMIN",
    ).reduce2("min", dim="time", group_size=4)
    return tmax, tmin


@task(returns=2, label="load_baseline")
def load_baseline_cubes(
    client: Client, baseline_path: str, nfrag: int, n_days: int
) -> Tuple[Cube, Cube]:
    """Import the baseline climatology cubes (TMAX/TMIN baselines)."""
    Cube.client = client
    tmax = Cube.importnc2(
        baseline_path, measure="TMAX_BASELINE", client=client, nfrag=nfrag,
        description="baseline TMAX",
    ).subset("time", 0, n_days)
    tmin = Cube.importnc2(
        baseline_path, measure="TMIN_BASELINE", client=client, nfrag=nfrag,
        description="baseline TMIN",
    ).subset("time", 0, n_days)
    return tmax, tmin


# ---------------------------------------------------------------------------
# 4. Heat/cold wave pipelines (Figure 3, tasks #5-#14; Listing 1)
# ---------------------------------------------------------------------------

@task(returns=1, label="wave_durations")
def compute_qualifying_durations(
    client: Client,
    data_cube: Cube,
    baseline_cube: Cube,
    kind: str,
    threshold_k: float,
    min_length_days: int,
) -> Cube:
    """Anomaly → exceedance mask → run lengths → qualifying durations."""
    Cube.client = client
    anomaly = data_cube.intercube(baseline_cube, "sub",
                                  description=f"{kind} anomaly")
    condition = f">={threshold_k}" if kind == "heat" else f"<=-{threshold_k}"
    mask = anomaly.apply(
        f"oph_predicate('OPH_FLOAT','OPH_INT',measure,'x','{condition}','1','0')",
        description=f"{kind} mask",
    )
    duration = mask.runlength(dim="time", description=f"{kind} durations")
    qualifying = duration.apply(
        "oph_predicate('OPH_INT','OPH_INT',measure,'x',"
        f"'>={min_length_days}','x','0')",
        description=f"{kind} qualifying durations",
    )
    for cube in (anomaly, mask, duration):
        cube.delete()
    return qualifying


@task(returns=1, label="IndexDurationMax")
def index_duration_max(client: Client, duration: Cube, filename: str,
                       output_path: str) -> Cube:
    """Maximum length of heat/cold waves in a year (paper Listing 1)."""
    Cube.client = client
    max_cube = duration.reduce(
        operation="max", dim="time", description="Max Duration cube"
    )
    max_cube.exportnc2(output_path=output_path, output_name=filename)
    return max_cube


@task(returns=1, label="IndexDurationNumber")
def index_duration_number(client: Client, duration: Cube, filename: str,
                          output_path: str) -> Cube:
    """Number of heat/cold waves in a year (paper Listing 1)."""
    Cube.client = client
    mask = duration.apply(
        "oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')"
    )
    count = mask.reduce(
        operation="sum", dim="time", description="Number of durations cube"
    )
    mask.delete()
    count.exportnc2(output_path=output_path, output_name=filename)
    return count


@task(returns=1, label="IndexFrequency")
def index_frequency(client: Client, duration: Cube, n_days: int,
                    filename: str, output_path: str) -> Cube:
    """Fraction of the year spent inside qualifying waves."""
    Cube.client = client
    wave_days = duration.reduce(operation="sum", dim="time")
    freq = wave_days.apply(
        "oph_mul_scalar('OPH_DOUBLE','OPH_DOUBLE',"
        f"oph_cast('OPH_INT','OPH_DOUBLE',measure),{1.0 / n_days})",
        description="Frequency cube",
    )
    # On the lazy path freq still references wave_days; force it before
    # freeing its base cube.
    freq.materialize()
    wave_days.delete()
    freq.exportnc2(output_path=output_path, output_name=filename)
    return freq


# ---------------------------------------------------------------------------
# 5. Tropical cyclones (Figure 3, tasks #15-#17)
# ---------------------------------------------------------------------------

@task(returns=1, label="tc_preprocess")
def tc_preprocess(
    fs: SharedFilesystem,
    day_paths: Sequence[str],
    target_grid: Tuple[int, int],
) -> Dict[str, np.ndarray]:
    """Post-process model output for the CNN: read, regrid, stack.

    Returns the regridded channel stack ``(steps, C, lat, lon)`` plus
    the destination coordinates.
    """
    n_lat, n_lon = target_grid
    dst_lat = np.linspace(-90 + 90.0 / n_lat, 90 - 90.0 / n_lat, n_lat)
    dst_lon = np.arange(n_lon) * (360.0 / n_lon)
    snapshots: List[np.ndarray] = []
    src_lat = src_lon = None
    for path in day_paths:
        ds = fs.read(path, variables=list(CHANNELS) + ["lat", "lon"])
        if src_lat is None:
            src_lat = ds["lat"].data
            src_lon = ds["lon"].data
        stacked = np.stack([ds[c].data for c in CHANNELS], axis=1)  # (t, C, y, x)
        regridded = regrid_bilinear(stacked, src_lat, src_lon, dst_lat, dst_lon)
        snapshots.append(regridded)
    data = np.concatenate(snapshots, axis=0)
    return {"data": data, "lat": dst_lat, "lon": dst_lon}


@task(returns=1, label="tc_inference")
def tc_inference(
    model_path: str,
    prepared: Dict[str, np.ndarray],
    threshold: float = 0.5,
) -> List[dict]:
    """CNN localization on every 6-hourly snapshot of the year."""
    model = TCLocalizer.load(model_path)
    data = prepared["data"]
    found: List[dict] = []
    with maybe_span("ml.tc_inference", layer="ml",
                    attrs={"steps": int(data.shape[0])}) as h:
        for step in range(data.shape[0]):
            fields = {name: data[step, c] for c, name in enumerate(CHANNELS)}
            for lat, lon, prob in localize_in_snapshot(
                model, fields, prepared["lat"], prepared["lon"],
                threshold=threshold
            ):
                found.append(
                    {"step": step, "lat": lat, "lon": lon, "prob": prob}
                )
        h.set_attr("n_detections", len(found))
    return found


@task(returns=1, label="tc_georeference")
def tc_georeference(
    fs: SharedFilesystem,
    detections: List[dict],
    year: int,
    results_dir: str,
) -> str:
    """Persist geo-referenced CNN detections as JSON; returns the path."""
    path = f"{results_dir}/tc_ml_detections_{year:04d}.json"
    fs.write_bytes(path, json.dumps(detections, indent=1).encode())
    return path


@task(returns=1, label="tc_tracking")
def tc_deterministic_tracking(
    fs: SharedFilesystem,
    day_paths: Sequence[str],
    year: int,
    results_dir: str,
) -> Dict[str, object]:
    """Classic detection + tracking scheme over the year's 6-hourly data."""
    detections_per_step = []
    step = 0
    lat = lon = None
    for path in day_paths:
        ds = fs.read(path, variables=["PSL", "VORT850", "WSPDSRFAV", "lat", "lon"])
        if lat is None:
            lat, lon = ds["lat"].data, ds["lon"].data
        for s in range(ds["PSL"].shape[0]):
            detections_per_step.append(detect_tc_candidates(
                ds["PSL"].data[s], ds["VORT850"].data[s],
                ds["WSPDSRFAV"].data[s], lat, lon, step=step,
            ))
            step += 1
    tracks = link_tracks(detections_per_step, min_track_length=4)
    payload = [
        {
            "start_step": t.start_step,
            "positions": t.positions(),
            "min_pressure": t.min_pressure,
            "max_wind": t.max_wind,
        }
        for t in tracks
    ]
    path = f"{results_dir}/tc_tracks_{year:04d}.json"
    fs.write_bytes(path, json.dumps(payload, indent=1).encode())
    return {"tracks": tracks, "path": path}


# ---------------------------------------------------------------------------
# 6. Validation, storage, maps (Figure 3 tail tasks; Figure 4)
# ---------------------------------------------------------------------------

@task(returns=1, label="validate_store")
def validate_and_store(
    fs: SharedFilesystem,
    dmax_cube: Cube,
    number_cube: Cube,
    freq_cube: Cube,
    kind: str,
    year: int,
    n_days: int,
    min_length_days: int,
    results_dir: str,
) -> Dict[str, float]:
    """Validate one year's index maps; persist a summary record."""
    indices = WaveIndices(
        duration_max=dmax_cube.to_array().astype(np.int32),
        number=number_cube.to_array().astype(np.int32),
        frequency=freq_cube.to_array().astype(np.float64),
    )
    stats = validate_indices(indices, n_days=n_days, min_length_days=min_length_days)
    fs.write_bytes(
        f"{results_dir}/{kind}_summary_{year:04d}.json",
        json.dumps(stats, indent=1).encode(),
    )
    return stats


@task(returns=1, label="make_map")
def make_map(
    fs: SharedFilesystem,
    cube_: Cube,
    title: str,
    filename: str,
    results_dir: str,
) -> str:
    """Render an index cube as ASCII + PGM (the Figure-4 artefact)."""
    field = cube_.to_array()
    fs.write_bytes(f"{results_dir}/{filename}.txt",
                   render_ascii_map(field, title=title).encode())
    fs.write_bytes(f"{results_dir}/{filename}.pgm", render_pgm(field))
    return f"{results_dir}/{filename}.pgm"


# ---------------------------------------------------------------------------
# Support: TC model provisioning and skill scoring (not workflow tasks)
# ---------------------------------------------------------------------------

def ensure_tc_model(path: Optional[str], patch: int, tmp_dir: str) -> str:
    """Return a host path to a trained TC localizer, training if needed."""
    import os

    from repro.ml import make_patch_dataset

    if path is not None and os.path.exists(path):
        return path
    target = path or os.path.join(tmp_dir, "tc_localizer.pkl")
    os.makedirs(os.path.dirname(target) or ".", exist_ok=True)
    with maybe_span("ml.train_tc_localizer", layer="ml",
                    attrs={"patch": patch}):
        model = TCLocalizer(patch=patch, seed=0)
        data = make_patch_dataset(n_samples=700, patch=patch, seed=1)
        model.fit(data, epochs=6, batch_size=64, lr=2e-3, seed=2)
        model.fit(data, epochs=4, batch_size=64, lr=1e-3, seed=3)
        model.save(target)
    return target


def score_against_truth(
    tracks, truth_events: List[dict], n_days_covered: int, steps_per_day: int = 4
) -> Dict[str, float]:
    """Score deterministic tracks against the model's injected TC truth."""
    covered = [
        ev for ev in truth_events
        if ev["start_doy"] + len(ev["track"]) / steps_per_day - 1 <= n_days_covered
    ]
    if not covered:
        return {"pod": float("nan"), "far": float("nan"), "n_truth": 0}
    truth_tracks = [ev["track"] for ev in covered]
    starts = [(ev["start_doy"] - 1) * steps_per_day for ev in covered]
    skill = track_skill(tracks, truth_tracks, starts, max_match_km=800.0)
    return {
        "pod": skill.pod,
        "far": skill.far,
        "n_truth": len(covered),
        "mean_center_error_km": skill.mean_center_error_km,
    }
