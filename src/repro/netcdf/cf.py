"""CF-convention helpers: the 'noleap' calendar and time encoding.

Climate models overwhelmingly run on a 365-day ('noleap') calendar; the
CMCC-CM3 output the paper's workflow consumes is daily, grouped per year.
This module provides the minimal CF-time machinery the workflow needs:
encoding dates as "days since <epoch>" and decoding back, plus helpers to
build per-day time axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: Days per month in the noleap calendar.
NOLEAP_MONTH_LENGTHS = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)
DAYS_PER_YEAR = 365


@dataclass(frozen=True)
class NoLeapCalendar:
    """Date arithmetic on the fixed 365-day calendar.

    Dates are ``(year, month, day)`` tuples with 1-based month/day.
    """

    @staticmethod
    def is_valid(year: int, month: int, day: int) -> bool:
        return (
            1 <= month <= 12
            and 1 <= day <= NOLEAP_MONTH_LENGTHS[month - 1]
        )

    @staticmethod
    def day_of_year(month: int, day: int) -> int:
        """1-based ordinal day within the year."""
        if not NoLeapCalendar.is_valid(1, month, day):
            raise ValueError(f"invalid noleap date month={month} day={day}")
        return sum(NOLEAP_MONTH_LENGTHS[: month - 1]) + day

    @staticmethod
    def from_day_of_year(doy: int) -> Tuple[int, int]:
        """Inverse of :meth:`day_of_year`: returns ``(month, day)``."""
        if not 1 <= doy <= DAYS_PER_YEAR:
            raise ValueError(f"day-of-year {doy} outside [1, {DAYS_PER_YEAR}]")
        remaining = doy
        for month, length in enumerate(NOLEAP_MONTH_LENGTHS, start=1):
            if remaining <= length:
                return month, remaining
            remaining -= length
        raise AssertionError("unreachable")

    @staticmethod
    def to_ordinal(year: int, month: int, day: int) -> int:
        """Days elapsed since year 0, month 1, day 1 (0-based)."""
        if not NoLeapCalendar.is_valid(year, month, day):
            raise ValueError(f"invalid noleap date {year}-{month}-{day}")
        return year * DAYS_PER_YEAR + NoLeapCalendar.day_of_year(month, day) - 1

    @staticmethod
    def from_ordinal(ordinal: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`to_ordinal`."""
        year, doy0 = divmod(int(ordinal), DAYS_PER_YEAR)
        month, day = NoLeapCalendar.from_day_of_year(doy0 + 1)
        return year, month, day


def _parse_units(units: str) -> Tuple[float, int]:
    """Parse ``"<unit> since YYYY-MM-DD"``; returns (days-per-unit, epoch ordinal)."""
    parts = units.split()
    if len(parts) < 3 or parts[1] != "since":
        raise ValueError(f"unsupported time units {units!r}")
    unit = parts[0].rstrip("s")
    scale = {"day": 1.0, "hour": 1.0 / 24.0, "minute": 1.0 / 1440.0}.get(unit)
    if scale is None:
        raise ValueError(f"unsupported time unit {parts[0]!r}")
    date = parts[2].split("T")[0]
    year_s, month_s, day_s = date.split("-")
    epoch = NoLeapCalendar.to_ordinal(int(year_s), int(month_s), int(day_s))
    return scale, epoch


def encode_time(dates: List[Tuple[int, int, int]], units: str) -> np.ndarray:
    """Encode ``(year, month, day)`` tuples as a CF time coordinate."""
    scale, epoch = _parse_units(units)
    ordinals = np.array(
        [NoLeapCalendar.to_ordinal(*d) for d in dates], dtype=np.float64
    )
    return (ordinals - epoch) / scale


def decode_time(values: np.ndarray, units: str) -> List[Tuple[int, int, int]]:
    """Decode a CF time coordinate into ``(year, month, day)`` tuples.

    Fractional days (sub-daily timesteps) are floored to the containing day.
    """
    scale, epoch = _parse_units(units)
    ordinals = np.floor(np.asarray(values, dtype=np.float64) * scale + epoch)
    return [NoLeapCalendar.from_ordinal(int(o)) for o in ordinals]


def time_axis_for_days(
    year: int,
    start_doy: int,
    n_days: int,
    steps_per_day: int,
    units: str = "days since 2015-01-01",
) -> np.ndarray:
    """Build a sub-daily CF time axis covering *n_days* starting at *start_doy*.

    Steps are placed at the start of each uniform sub-daily interval (e.g.
    four 6-hourly steps per day at 0, 0.25, 0.5, 0.75 days).
    """
    if steps_per_day < 1:
        raise ValueError("steps_per_day must be >= 1")
    scale, epoch = _parse_units(units)
    base = NoLeapCalendar.to_ordinal(year, 1, 1) + (start_doy - 1) - epoch
    offsets = np.arange(n_days * steps_per_day, dtype=np.float64) / steps_per_day
    return (base + offsets) / scale
