"""A from-scratch NumPy deep-learning stack for TC localization.

The paper's §5.4 uses Keras/TensorFlow CNNs, pre-trained on historical
data, to localize tropical-cyclone centres in gridded climate variables.
Neither framework is available offline, so this package implements the
needed subset from first principles:

* :mod:`layers` — Conv2D (im2col), MaxPool2D, Dense, ReLU, Sigmoid,
  Flatten, with exact analytic gradients (verified against numerical
  differentiation in the tests);
* :mod:`losses` — binary cross-entropy with logits, MSE, and the
  composite localization loss (presence + masked centre regression);
* :mod:`optim` — SGD with momentum and Adam;
* :mod:`network` — a Sequential container with weight save/load;
* :mod:`training` — mini-batch training loop with history;
* :mod:`tc_localizer` — the TC model itself: synthetic vortex patch
  generation, training, and the tile → scale → infer → geo-reference
  pipeline of the case study.
"""

from repro.ml.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sigmoid
from repro.ml.losses import (
    bce_with_logits,
    bce_with_logits_grad,
    mse,
    mse_grad,
    localization_loss,
)
from repro.ml.optim import SGD, Adam
from repro.ml.network import Sequential
from repro.ml.training import TrainingHistory, train
from repro.ml.tc_localizer import (
    TCLocalizer,
    TCPatchDataset,
    make_patch_dataset,
    make_patch_dataset_from_esm,
    train_esm_localizer,
    localize_in_snapshot,
)

__all__ = [
    "Conv2D", "Dense", "Flatten", "MaxPool2D", "ReLU", "Sigmoid",
    "bce_with_logits", "bce_with_logits_grad", "mse", "mse_grad",
    "localization_loss",
    "SGD", "Adam",
    "Sequential",
    "TrainingHistory", "train",
    "TCLocalizer", "TCPatchDataset", "make_patch_dataset",
    "make_patch_dataset_from_esm", "train_esm_localizer",
    "localize_in_snapshot",
]
