"""C10 — tiered chunked storage: pruning and spill under a memory budget.

The storage layer chunks every fragment and records per-chunk min/max/
null statistics at write time; the planner uses them to skip chunks a
predicate decides outright (zone-map pruning) and fragments a subset
along the fragment dimension excludes.  A byte budget on the resident
tier spills least-recently-used fragments compressed to the shared
filesystem and reloads them transparently on access.

Two runs of the Listing-1 wave pipeline over three synthetic years
whose working set exceeds the budget: tiered (pruning on, 96 KiB
budget) vs dense (pruning off, unbounded memory).  Shape: at least half
of all chunks pruned, strictly fewer bytes read from storage, actual
spill and reload round-trips, and byte-identical index cubes and
``exportnc2`` files.
"""

import hashlib

import numpy as np

from benchmarks.conftest import print_table
from repro.analytics.heatwaves import ophidia_wave_pipeline
from repro.cluster import SharedFilesystem
from repro.observability.metrics import get_registry
from repro.ophidia import Client, Cube, OphidiaServer

N_DAYS, N_LAT, N_LON = 64, 12, 16
NFRAG = 4
N_YEARS = 3
CHUNK_BYTES = 3072          # 8-day chunks: the hot band spans 2 of 8
BUDGET_BYTES = 96 * 1024    # < one year's daily cube: forces spills

_COUNTERS = (
    "ophidia_chunks_pruned_total",
    "ophidia_chunks_read_total",
    "ophidia_fragments_spilled_total",
    "ophidia_fragments_reloaded_total",
)


def synthetic_year(seed):
    """A quiet year with one 16-day heat band (days 24..39)."""
    rng = np.random.default_rng(seed)
    baseline = np.full((N_DAYS, N_LAT, N_LON), 280.0)
    daily = baseline + rng.uniform(-1.0, 1.0, size=baseline.shape)
    daily[24:40] += 8.0
    return daily, baseline


def digest(fs, path):
    ds = fs.read(path)
    h = hashlib.sha256()
    for name in sorted(ds.variables):
        var = ds[name]
        h.update(name.encode())
        h.update(str(var.data.dtype).encode())
        h.update(np.ascontiguousarray(var.data).tobytes())
    return h.hexdigest()


def counter_values():
    snap = get_registry().snapshot()
    names = set(snap.names())
    return {n: (snap.value(n) if n in names else 0.0) for n in _COUNTERS}


def run_mode(tmp_path, tiered: bool):
    label = "tiered" if tiered else "dense"
    fs = SharedFilesystem(tmp_path / label)
    kwargs = {"prune": False}
    if tiered:
        kwargs = {
            "chunk_bytes": CHUNK_BYTES,
            "memory_budget_bytes": BUDGET_BYTES,
            "spill_dir": str(tmp_path / f"{label}_spill"),
        }
    before_counters = counter_values()
    with OphidiaServer(n_io_servers=2, n_cores=2, filesystem=fs,
                       lazy=True, **kwargs) as server:
        client = Client(server)
        dims = ["time", "lat", "lon"]
        before = server.storage_stats()
        results = []
        for year in range(N_YEARS):
            daily, baseline = synthetic_year(seed=10 + year)
            data_cube = Cube.from_array(daily, dims, client=client,
                                        fragment_dim="lat", nfrag=NFRAG)
            base_cube = Cube.from_array(baseline, dims, client=client,
                                        fragment_dim="lat", nfrag=NFRAG)
            results.append(ophidia_wave_pipeline(data_cube, base_cube,
                                                 kind="heat"))
        # Export after all years ran: under the budget the early years'
        # index cubes have spilled by now, so exporting exercises the
        # transparent-reload path end to end.
        arrays, digests = [], {}
        for year, indices in enumerate(results):
            for cube, name in zip(indices,
                                  ("duration_max", "number", "frequency")):
                cube.exportnc2("indices", f"y{year}_{name}")
                arrays.append(cube.to_array().copy())
                digests[f"y{year}_{name}"] = digest(
                    fs, f"indices/y{year}_{name}.rnc"
                )
        stats = server.storage_stats().delta(before)
    deltas = {
        name: value - before_counters[name]
        for name, value in counter_values().items()
    }
    return {"arrays": arrays, "digests": digests, "stats": stats,
            "counters": deltas}


def test_c10_tiered_storage(benchmark, tmp_path, record_bench):
    dense = run_mode(tmp_path, tiered=False)
    tiered = benchmark.pedantic(
        lambda: run_mode(tmp_path, tiered=True), rounds=1, iterations=1,
    )

    pruned = tiered["counters"]["ophidia_chunks_pruned_total"]
    read = tiered["counters"]["ophidia_chunks_read_total"]
    spilled = tiered["counters"]["ophidia_fragments_spilled_total"]
    reloaded = tiered["counters"]["ophidia_fragments_reloaded_total"]
    prune_fraction = pruned / (pruned + read)

    # Zone-map pruning decides at least half of all chunks outright.
    assert prune_fraction >= 0.5
    # Pruned sweeps read strictly fewer bytes from the fragment store.
    assert tiered["stats"].bytes_read < dense["stats"].bytes_read
    # The budget is real: fragments spilled and came back.
    assert spilled > 0
    assert reloaded > 0
    # Byte-transparent: identical index cubes and exported artifacts.
    for got, want in zip(tiered["arrays"], dense["arrays"]):
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)
    assert tiered["digests"] == dense["digests"]

    record_bench(
        "c10_tiered_storage",
        chunk_prune_fraction=prune_fraction,
        bytes_read=tiered["stats"].bytes_read,
        read_cut_fraction=(
            1 - tiered["stats"].bytes_read / dense["stats"].bytes_read
        ),
        spill_count=spilled,
        reload_count=reloaded,
    )

    rows = []
    for label, run in (("tiered (96KiB)", tiered), ("dense", dense)):
        c = run["counters"]
        rows.append([
            label,
            f"{run['stats'].bytes_read / 1e3:.1f}",
            int(c["ophidia_chunks_pruned_total"]),
            int(c["ophidia_chunks_read_total"]),
            int(c["ophidia_fragments_spilled_total"]),
            int(c["ophidia_fragments_reloaded_total"]),
        ])
    print_table(
        "C10: tiered storage on the Listing-1 wave pipeline (3 years)",
        ["mode", "KB read", "chunks pruned", "chunks read", "spills",
         "reloads"],
        rows,
    )
    print(f"pruning decided {prune_fraction:.0%} of chunks; bytes read cut "
          f"{1 - tiered['stats'].bytes_read / dense['stats'].bytes_read:.0%}; "
          f"{int(spilled)} spills / {int(reloaded)} reloads; outputs "
          f"byte-identical")
