"""Tests for LSF queues: priorities, selection, runtime limits."""

import threading
import time

import pytest

from repro.cluster import DEFAULT_QUEUES, LSFScheduler, Node, Queue


@pytest.fixture
def sched():
    s = LSFScheduler([Node("n1", 1, 8.0)])
    yield s
    s.shutdown(wait=False)


class TestQueueConfig:
    def test_default_queues_present(self, sched):
        assert set(sched.queues) == {"p_short", "p_medium", "p_long"}

    def test_default_queue_is_highest_priority(self, sched):
        job = sched.bsub(lambda: 1)
        assert job.queue.name == "p_short"
        job.wait(timeout=5)

    def test_unknown_queue_rejected(self, sched):
        with pytest.raises(ValueError):
            sched.bsub(lambda: 1, queue="p_magic")

    def test_custom_queues(self):
        s = LSFScheduler([Node("n", 1, 4.0)], queues=[Queue("only", priority=5)])
        job = s.bsub(lambda: "ok", queue="only")
        assert job.wait(timeout=5) == "ok"
        s.shutdown(wait=False)

    def test_empty_queue_list_rejected(self):
        with pytest.raises(ValueError):
            LSFScheduler([Node("n", 1, 4.0)], queues=[])

    def test_queue_validation(self):
        with pytest.raises(ValueError):
            Queue("bad", max_runtime_s=0.0)


class TestPriorityDispatch:
    def test_high_priority_queue_jumps_ahead(self):
        sched = LSFScheduler([Node("n1", 1, 8.0)])
        release = threading.Event()
        order = []

        sched.bsub(lambda: release.wait(5), name="holder", queue="p_long")
        time.sleep(0.1)
        low = sched.bsub(lambda: order.append("long"), queue="p_long")
        high = sched.bsub(lambda: order.append("short"), queue="p_short")
        release.set()
        sched.wait_all(timeout=5)
        assert order == ["short", "long"]  # despite later submission
        sched.shutdown(wait=False)

    def test_same_queue_keeps_submit_order(self):
        sched = LSFScheduler([Node("n1", 1, 8.0)])
        release = threading.Event()
        order = []
        sched.bsub(lambda: release.wait(5), name="holder", queue="p_medium")
        time.sleep(0.1)
        for i in range(3):
            sched.bsub(lambda i=i: order.append(i), queue="p_medium")
        release.set()
        sched.wait_all(timeout=5)
        assert order == [0, 1, 2]
        sched.shutdown(wait=False)


class TestRuntimeLimits:
    def test_overrun_job_flagged(self):
        sched = LSFScheduler(
            [Node("n1", 1, 8.0)],
            queues=[Queue("tiny", priority=1, max_runtime_s=0.05)],
        )
        job = sched.bsub(lambda: time.sleep(0.15) or "done", queue="tiny")
        assert job.wait(timeout=5) == "done"  # cooperative: result kept
        assert job.timed_out is True
        sched.shutdown(wait=False)

    def test_fast_job_not_flagged(self):
        sched = LSFScheduler(
            [Node("n1", 1, 8.0)],
            queues=[Queue("tiny", priority=1, max_runtime_s=5.0)],
        )
        job = sched.bsub(lambda: "quick", queue="tiny")
        job.wait(timeout=5)
        assert job.timed_out is False
        sched.shutdown(wait=False)

    def test_unlimited_queue_never_flags(self, sched):
        job = sched.bsub(lambda: time.sleep(0.02), queue="p_long")
        job.wait(timeout=5)
        assert job.timed_out is False
