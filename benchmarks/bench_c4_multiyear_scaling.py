"""C4 — multi-year projections scale linearly.

§5.2: projections span "multiple tens of years"; per-year tasks repeat
while the first simulation/baseline tasks do not (Figure 3 caption).
Shape: end-to-end time grows roughly linearly in the number of years,
and the task census scales exactly as the figure predicts.
"""

from benchmarks.conftest import print_table
from repro.cluster import laptop_like
from repro.workflow import WorkflowParams, run_extreme_events_workflow

PER_YEAR_TASKS = 10   # load, 2x(dur+3 idx... ) w/o ML: see below
GLOBAL_TASKS = 3      # esm, write_baseline, load_baseline


def run_years(tmp_path, n_years: int):
    years = [2030 + i for i in range(n_years)]
    with laptop_like(scratch_root=str(tmp_path / f"y{n_years}")) as cluster:
        params = WorkflowParams(
            years=years, n_days=15, n_lat=16, n_lon=24, n_workers=4,
            min_length_days=4, with_ml=False, seed=5,
        )
        return run_extreme_events_workflow(cluster, params)


def test_c4_multiyear_scaling(benchmark, tmp_path):
    results = {}
    for n in (1, 2, 4):
        if n == 4:
            results[n] = benchmark.pedantic(
                lambda: run_years(tmp_path, 4), rounds=1, iterations=1
            )
        else:
            results[n] = run_years(tmp_path, n)

    rows = []
    for n, summary in results.items():
        g = summary["task_graph"]
        rows.append([
            n, g["n_tasks"], g["n_edges"],
            f"{summary['schedule']['makespan_s']:.2f}",
        ])
        # Census shape: global tasks constant, per-year tasks proportional.
        by_fn = g["by_function"]
        assert by_fn["esm_simulation"] == 1
        assert by_fn["write_baseline"] == 1
        assert by_fn["load_baseline_cubes"] == 1
        # Pipelined dispatch: year streaming happens driver-side, no
        # monitor task occupies a worker slot.
        assert "monitor_year" not in by_fn
        assert by_fn["compute_qualifying_durations"] == 2 * n
        assert by_fn["index_duration_max"] == 2 * n
        assert len(summary["years"]) == n

    t1 = results[1]["schedule"]["makespan_s"]
    t4 = results[4]["schedule"]["makespan_s"]
    # Shape: 4x the years costs clearly more than 1x but less than ~8x
    # (parallelism absorbs some growth; it must not explode superlinearly).
    assert t4 > t1
    assert t4 < 8 * t1

    tasks_1 = results[1]["task_graph"]["n_tasks"]
    tasks_4 = results[4]["task_graph"]["n_tasks"]
    per_year = (tasks_4 - tasks_1) / 3
    print_table(
        "C4: scaling with projection length",
        ["years", "tasks", "edges", "makespan (s)"],
        rows,
    )
    print(f"per-year task increment: {per_year:.1f} tasks/year "
          f"(globals stay constant)")
