"""Tests for the shared-filesystem LRU block cache."""

import numpy as np
import pytest

from repro.cluster import SharedFilesystem
from repro.cluster.filesystem import BlockCache
from repro.netcdf import Dataset


def two_var_ds():
    ds = Dataset({"title": "cache-test"})
    ds.create_variable("big", np.arange(100.0).reshape(10, 10), ("y", "x"))
    ds.create_variable("small", np.arange(10.0), ("t",))
    return ds


class TestBlockCacheUnit:
    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(0)

    def test_store_lookup_roundtrip(self):
        cache = BlockCache(1000)
        assert cache.lookup(("bytes", "p")) is None
        cache.store(("bytes", "p"), b"abc", 3)
        assert cache.lookup(("bytes", "p")) == b"abc"
        assert cache.resident_bytes == 3

    def test_lru_eviction_and_path_index(self):
        cache = BlockCache(300)
        for i in range(3):
            cache.store(("bytes", f"p{i}"), bytes(100), 100)
        evicted = cache.store(("bytes", "p3"), bytes(100), 100)
        assert evicted == 1
        assert cache.lookup(("bytes", "p0")) is None
        assert len(cache) == 3

    def test_oversized_block_not_admitted(self):
        cache = BlockCache(100)
        cache.store(("bytes", "keep"), bytes(50), 50)
        assert cache.store(("bytes", "huge"), bytes(500), 500) == 0
        assert cache.lookup(("bytes", "huge")) is None
        assert cache.lookup(("bytes", "keep")) is not None

    def test_invalidate_drops_all_blocks_and_meta(self):
        cache = BlockCache(1000)
        cache.store(("var", "p", "a"), b"x", 1)
        cache.store(("var", "p", "b"), b"y", 1)
        cache.set_meta("p", {"d": 2}, {}, ["a", "b"])
        cache.invalidate("p")
        assert cache.lookup(("var", "p", "a")) is None
        assert cache.meta("p") is None
        assert cache.resident_bytes == 0

    def test_var_order_is_sticky(self):
        cache = BlockCache(1000)
        cache.set_meta("p", {"d": 2}, {}, ["a", "b"])
        cache.set_meta("p", {"d": 2}, {}, None)     # subset read later
        assert cache.meta("p")["var_order"] == ["a", "b"]


class TestCachedReads:
    def test_repeat_read_served_from_memory(self, tmp_path):
        fs = SharedFilesystem(tmp_path, cache_bytes=1 << 20)
        fs.write("f.rnc", two_var_ds())
        first = fs.read("f.rnc")
        disk_reads = fs.stats.reads
        disk_bytes = fs.stats.bytes_read
        second = fs.read("f.rnc")
        assert fs.stats.reads == disk_reads
        assert fs.stats.bytes_read == disk_bytes
        assert fs.stats.cache_hits == 1
        np.testing.assert_array_equal(second["big"].data, first["big"].data)
        np.testing.assert_array_equal(second["small"].data, first["small"].data)
        assert second.attrs == first.attrs
        assert list(second.variables) == list(first.variables)

    def test_cache_hits_hand_out_fresh_arrays(self, tmp_path):
        fs = SharedFilesystem(tmp_path, cache_bytes=1 << 20)
        fs.write("f.rnc", two_var_ds())
        fs.read("f.rnc")
        mutated = fs.read("f.rnc")
        mutated["big"].data[:] = -1.0
        clean = fs.read("f.rnc")
        assert clean["big"].data[0, 0] == 0.0

    def test_subset_read_reuses_overlap(self, tmp_path):
        """After a full read, a variable subset is served without disk."""
        fs = SharedFilesystem(tmp_path, cache_bytes=1 << 20)
        fs.write("f.rnc", two_var_ds())
        fs.read("f.rnc")                       # primes every variable
        before = fs.stats.snapshot()
        sub = fs.read("f.rnc", variables=["small"])
        delta = fs.stats.delta(before)
        assert delta.reads == 0
        assert delta.bytes_read == 0
        assert delta.cache_hits == 1
        assert list(sub.variables) == ["small"]
        np.testing.assert_array_equal(sub["small"].data, np.arange(10.0))

    def test_partial_miss_reads_only_missing_bytes(self, tmp_path):
        fs = SharedFilesystem(tmp_path, cache_bytes=1 << 20)
        fs.write("f.rnc", two_var_ds())
        fs.read("f.rnc", variables=["small"])  # prime: small only
        before = fs.stats.snapshot()
        both = fs.read("f.rnc", variables=["small", "big"])
        delta = fs.stats.delta(before)
        # Only the 100-element "big" variable came from disk.
        assert delta.bytes_read == 100 * 8
        assert delta.reads == 1
        assert delta.cache_misses == 1
        np.testing.assert_array_equal(both["small"].data, np.arange(10.0))

    def test_write_invalidates(self, tmp_path):
        fs = SharedFilesystem(tmp_path, cache_bytes=1 << 20)
        fs.write("f.rnc", two_var_ds())
        fs.read("f.rnc")
        updated = two_var_ds()
        updated["big"].data[:] = 7.0
        fs.write("f.rnc", updated)
        back = fs.read("f.rnc")
        assert back["big"].data[0, 0] == 7.0

    def test_delete_invalidates(self, tmp_path):
        fs = SharedFilesystem(tmp_path, cache_bytes=1 << 20)
        fs.write_bytes("f.bin", b"abc")
        assert fs.read_bytes("f.bin") == b"abc"
        fs.delete("f.bin")
        with pytest.raises(FileNotFoundError):
            fs.read_bytes("f.bin")

    def test_raw_bytes_cached(self, tmp_path):
        fs = SharedFilesystem(tmp_path, cache_bytes=1 << 20)
        fs.write_bytes("f.bin", b"\x00\x01\x02")
        fs.read_bytes("f.bin")
        before = fs.stats.snapshot()
        assert fs.read_bytes("f.bin") == b"\x00\x01\x02"
        delta = fs.stats.delta(before)
        assert delta.reads == 0
        assert delta.cache_hits == 1

    def test_budget_evicts_and_counts(self, tmp_path):
        fs = SharedFilesystem(tmp_path, cache_bytes=16)
        fs.write_bytes("a.bin", bytes(10))
        fs.write_bytes("b.bin", bytes(10))
        fs.read_bytes("a.bin")
        fs.read_bytes("b.bin")                # evicts a.bin
        assert fs.stats.cache_evictions == 1
        before = fs.stats.snapshot()
        fs.read_bytes("a.bin")                # back to disk
        assert fs.stats.delta(before).cache_misses == 1

    def test_fault_hook_fires_on_cache_hits(self, tmp_path):
        fs = SharedFilesystem(tmp_path, cache_bytes=1 << 20)
        fs.write("f.rnc", two_var_ds())
        fs.read("f.rnc")

        class Injector:
            def before_op(self, op, path, fs=None):
                raise OSError("node crashed")

        fs.fault_injector = Injector()
        # A cache on a dead node is just as dead as its disks.
        with pytest.raises(OSError):
            fs.read("f.rnc")
        with pytest.raises(OSError):
            fs.read_bytes("f.rnc")

    def test_configure_cache_zero_disables(self, tmp_path):
        fs = SharedFilesystem(tmp_path, cache_bytes=1 << 20)
        fs.write("f.rnc", two_var_ds())
        fs.read("f.rnc")
        fs.configure_cache(0)
        assert fs.cache is None
        before = fs.stats.snapshot()
        fs.read("f.rnc")
        delta = fs.stats.delta(before)
        assert delta.reads == 1
        assert delta.cache_hits == 0

    def test_configure_cache_negative_rejected(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        with pytest.raises(ValueError):
            fs.configure_cache(-1)

    def test_uncached_fs_reports_zero_cache_stats(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        fs.write("f.rnc", two_var_ds())
        fs.read("f.rnc")
        fs.read("f.rnc")
        assert fs.stats.cache_hits == 0
        assert fs.stats.cache_misses == 0
        assert fs.stats.reads == 2
