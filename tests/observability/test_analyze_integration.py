"""Round-trip acceptance: `repro analyze` / `repro perf-gate` CLIs.

A real (paced, two-year) workflow run is profiled three ways — in
process, from the exported ``trace.json``, and from the artifacts on
disk — and all three must agree.  The perf gate is exercised end to
end: capture baselines, pass on the same numbers, fail on a doctored
2x makespan.
"""

import json

import pytest

from repro.cli import main
from repro.cluster import laptop_like
from repro.observability import write_bench_summary
from repro.workflow import WorkflowParams, run_extreme_events_workflow


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    scratch = tmp_path_factory.mktemp("analyze") / "scratch"
    with laptop_like(scratch_root=str(scratch)) as cluster:
        params = WorkflowParams(
            years=[2030, 2031], n_days=8, n_lat=8, n_lon=12, n_workers=4,
            min_length_days=4, seed=7, pace_seconds=0.02,
        )
        summary = run_extreme_events_workflow(cluster, params)
    return summary, scratch / "results"


class TestInProcessProfile:
    def test_critical_path_within_5pct_of_makespan(self, run):
        summary, _ = run
        prof = summary["profile"]
        assert prof is not None
        assert prof["makespan_s"] > 0
        assert abs(prof["critical_path_s"] - prof["makespan_s"]) <= \
            0.05 * prof["makespan_s"]

    def test_esm_analytics_overlap_is_positive(self, run):
        summary, _ = run
        overlap = summary["profile"]["overlap"]
        assert overlap["esm_busy_s"] > 0
        assert overlap["analytics_busy_s"] > 0
        assert overlap["fraction"] > 0

    def test_categories_partition_the_makespan(self, run):
        summary, _ = run
        prof = summary["profile"]
        assert sum(prof["categories"].values()) == \
            pytest.approx(prof["makespan_s"], rel=1e-6)

    def test_profile_artifact_matches_summary(self, run):
        summary, results = run
        on_disk = json.loads((results / "profile.json").read_text())
        assert on_disk["critical_path_s"] == \
            summary["profile"]["critical_path_s"]
        assert on_disk["trace_id"] == summary["trace_id"]


class TestAnalyzeCLI:
    def test_trace_json_round_trip_agrees(self, run, capsys):
        summary, results = run
        assert main(["analyze", "--from", str(results / "trace.json"),
                     "--format", "json"]) == 0
        rt = json.loads(capsys.readouterr().out)
        prof = summary["profile"]
        # the export rounds timestamps to microseconds
        assert rt["makespan_s"] == pytest.approx(prof["makespan_s"],
                                                 abs=1e-3)
        assert rt["critical_path_s"] == pytest.approx(
            prof["critical_path_s"], abs=1e-3)
        assert rt["overlap"]["overlap_s"] == pytest.approx(
            prof["overlap"]["overlap_s"], abs=1e-3)
        assert rt["overlap"]["fraction"] > 0

    def test_run_summary_and_profile_inputs(self, run, capsys):
        _, results = run
        for name in ("run_summary.json", "profile.json"):
            assert main(["analyze", "--from", str(results / name)]) == 0
            out = capsys.readouterr().out
            assert "critical path" in out
            assert "what-if" in out

    def test_rejects_unrecognised_payload(self, tmp_path, capsys):
        p = tmp_path / "junk.json"
        p.write_text(json.dumps({"hello": 1}))
        assert main(["analyze", "--from", str(p)]) == 2


class TestPerfGateCLI:
    def summary_file(self, tmp_path, makespan=2.0):
        out = str(tmp_path / "BENCH_summary.json")
        write_bench_summary(out, "bench_x",
                            {"makespan_s": makespan, "speedup": 1.5})
        return out

    def test_capture_then_pass_then_doctored_failure(self, tmp_path, capsys):
        baselines = str(tmp_path / "baselines")
        fresh = self.summary_file(tmp_path)
        assert main(["perf-gate", "--from", fresh,
                     "--baseline", baselines, "--capture"]) == 0
        capsys.readouterr()

        assert main(["perf-gate", "--from", fresh,
                     "--baseline", baselines]) == 0
        assert "PASS" in capsys.readouterr().out

        doctored = self.summary_file(tmp_path / "bad", makespan=4.0)
        assert main(["perf-gate", "--from", doctored,
                     "--baseline", baselines]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "makespan_s" in out

    def test_gate_accepts_run_metrics_json(self, run, tmp_path, capsys):
        _, results = run
        metrics = str(results / "metrics.json")
        baselines = str(tmp_path / "baselines")
        assert main(["perf-gate", "--from", metrics,
                     "--baseline", baselines, "--capture"]) == 0
        capsys.readouterr()
        report_out = str(tmp_path / "gate.json")
        assert main(["perf-gate", "--from", metrics,
                     "--baseline", baselines,
                     "--report-out", report_out]) == 0
        assert "PASS" in capsys.readouterr().out
        report = json.loads(open(report_out).read())
        assert report["n_regressions"] == 0
        assert any(c["benchmark"] == "workflow_run"
                   for c in report["checks"])

    def test_gate_rejects_unrecognised_payload(self, tmp_path, capsys):
        p = tmp_path / "junk.json"
        p.write_text(json.dumps({"hello": 1}))
        assert main(["perf-gate", "--from", str(p),
                     "--baseline", str(tmp_path)]) == 2
