"""Dependency analysis: ordering, INOUT versioning, file and object deps."""

import threading
import time

import pytest

from repro.compss import (
    COMPSs,
    FILE_IN,
    FILE_INOUT,
    FILE_OUT,
    INOUT,
    compss_barrier,
    compss_wait_on,
    task,
)
from repro.compss.api import get_runtime


class TestFutureDependencies:
    def test_execution_respects_raw_dependency(self):
        order = []

        @task(returns=1)
        def produce():
            time.sleep(0.05)
            order.append("produce")
            return 10

        @task(returns=1)
        def consume(x):
            order.append("consume")
            return x * 2

        with COMPSs(n_workers=4):
            assert compss_wait_on(consume(produce())) == 20
        assert order == ["produce", "consume"]

    def test_diamond_dependency(self):
        @task(returns=1)
        def src():
            return 1

        @task(returns=1)
        def left(x):
            return x + 10

        @task(returns=1)
        def right(x):
            return x + 100

        @task(returns=1)
        def join(a, b):
            return a + b

        with COMPSs(n_workers=4):
            s = src()
            assert compss_wait_on(join(left(s), right(s))) == 112

    def test_futures_inside_list_argument_create_deps(self):
        @task(returns=1)
        def make(i):
            time.sleep(0.02)
            return i

        @task(returns=1)
        def total(values):
            return sum(values)

        with COMPSs(n_workers=4):
            futs = [make(i) for i in range(6)]
            assert compss_wait_on(total(futs)) == 15

    def test_graph_records_edges(self):
        @task(returns=1)
        def a():
            return 1

        @task(returns=1)
        def b(x):
            return x

        with COMPSs(n_workers=2) as rt:
            b(a())
            compss_barrier()
            assert len(rt.graph) == 2
            assert len(rt.graph.edges()) == 1
            assert rt.graph.is_dag()


class TestInoutVersioning:
    def test_inout_future_serialises_writers(self):
        @task(returns=1)
        def new_list():
            return []

        @task(data=INOUT)
        def append(data, value):
            time.sleep(0.01)
            data.append(value)

        with COMPSs(n_workers=4):
            lst = new_list()
            for i in range(5):
                append(lst, i)
            result = compss_wait_on(lst)
        assert result == [0, 1, 2, 3, 4]  # strict order despite 4 workers

    def test_reader_after_writer_sees_new_version(self):
        @task(returns=1)
        def new_dict():
            return {}

        @task(d=INOUT)
        def put(d, k, v):
            d[k] = v

        @task(returns=1)
        def get(d, k):
            return d[k]

        with COMPSs(n_workers=4):
            d = new_dict()
            put(d, "x", 42)
            assert compss_wait_on(get(d, "x")) == 42

    def test_plain_object_inout_orders_tasks(self):
        @task(acc=INOUT)
        def bump(acc):
            acc[0] += 1

        @task(returns=1)
        def read(acc):
            return acc[0]

        acc = [0]
        with COMPSs(n_workers=4):
            for _ in range(8):
                bump(acc)
            assert compss_wait_on(read(acc)) == 8


class TestFileDependencies:
    def test_file_out_then_in_is_ordered(self, tmp_path):
        path = str(tmp_path / "x.txt")

        @task(dst=FILE_OUT)
        def write(dst, text):
            time.sleep(0.03)
            with open(dst, "w") as fh:
                fh.write(text)

        @task(returns=1, src=FILE_IN)
        def read(src):
            with open(src) as fh:
                return fh.read()

        with COMPSs(n_workers=4):
            write(path, "hello")
            assert compss_wait_on(read(path)) == "hello"

    def test_file_inout_chain(self, tmp_path):
        path = str(tmp_path / "counter.txt")
        path2 = str(tmp_path / "other.txt")

        @task(dst=FILE_OUT)
        def init(dst):
            with open(dst, "w") as fh:
                fh.write("0")

        @task(f=FILE_INOUT)
        def increment(f):
            with open(f) as fh:
                n = int(fh.read())
            time.sleep(0.01)
            with open(f, "w") as fh:
                fh.write(str(n + 1))

        @task(returns=1, src=FILE_IN)
        def load(src):
            with open(src) as fh:
                return int(fh.read())

        with COMPSs(n_workers=4):
            init(path)
            init(path2)  # independent file: no false dependency
            for _ in range(5):
                increment(path)
            assert compss_wait_on(load(path)) == 5

    def test_independent_files_run_in_parallel(self, tmp_path):
        gate = threading.Barrier(2, timeout=5)

        @task(dst=FILE_OUT)
        def write(dst):
            gate.wait()  # deadlocks unless both writers run concurrently
            with open(dst, "w") as fh:
                fh.write("x")

        with COMPSs(n_workers=2):
            write(str(tmp_path / "a"))
            write(str(tmp_path / "b"))
            compss_barrier()
