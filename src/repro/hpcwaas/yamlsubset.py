"""A dependency-free parser for the YAML subset TOSCA files use.

Supported: nested block mappings and sequences (indentation-based),
scalars (int, float, bool, null, quoted and plain strings), flow lists
(``[a, b, c]``), comments and blank lines.  Unsupported (raises
:class:`YAMLError`): anchors/aliases, multi-line strings, flow mappings,
tabs for indentation, documents streams.

The grammar is deliberately strict — a topology file that silently
parses differently from real YAML would be worse than a loud error.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple


class YAMLError(ValueError):
    """Malformed input for the supported subset."""

    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


_KEY_RE = re.compile(r"^(?P<key>[^:#]+?)\s*:(?:\s+(?P<value>.*))?$")


def _parse_key(text: str, line_no: int) -> Any:
    """Parse a mapping key; only hashable scalars are valid keys.

    ``_parse_scalar`` can yield a flow list (``[]: value``), which real
    YAML allows as a complex key but a Python dict cannot hold — reject
    it with a :class:`YAMLError` instead of crashing on insertion.
    """
    key = _parse_scalar(text, line_no)
    if isinstance(key, (list, dict)):
        raise YAMLError(f"unsupported non-scalar mapping key {text!r}", line_no)
    return key


def _strip_comment(text: str) -> str:
    """Drop a trailing comment that is outside quotes."""
    in_single = in_double = False
    for i, ch in enumerate(text):
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif ch == "#" and not in_single and not in_double:
            if i == 0 or text[i - 1] in " \t":
                return text[:i].rstrip()
    return text.rstrip()


def _parse_scalar(text: str, line_no: int) -> Any:
    text = text.strip()
    if text in ("", "~", "null", "Null", "NULL"):
        return None
    if text in ("true", "True", "TRUE"):
        return True
    if text in ("false", "False", "FALSE"):
        return False
    if text[0] in "'\"":
        if len(text) < 2 or text[-1] != text[0]:
            raise YAMLError(f"unterminated quoted string {text!r}", line_no)
        return text[1:-1]
    if text.startswith("[") :
        if not text.endswith("]"):
            raise YAMLError(f"unterminated flow list {text!r}", line_no)
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(part, line_no) for part in _split_flow(inner, line_no)]
    if text.startswith("{"):
        raise YAMLError("flow mappings are not supported", line_no)
    if text.startswith("&") or text.startswith("*"):
        raise YAMLError("anchors/aliases are not supported", line_no)
    if text in ("|", ">") or text.startswith("|") or text.startswith(">"):
        raise YAMLError("block scalars are not supported", line_no)
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _split_flow(inner: str, line_no: int) -> List[str]:
    """Split a flow-list body on top-level commas, respecting quotes."""
    parts, buf = [], []
    in_single = in_double = False
    depth = 0
    for ch in inner:
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif ch == "[" and not (in_single or in_double):
            depth += 1
        elif ch == "]" and not (in_single or in_double):
            depth -= 1
        if ch == "," and depth == 0 and not (in_single or in_double):
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    if in_single or in_double:
        raise YAMLError("unterminated quote in flow list", line_no)
    parts.append("".join(buf))
    return [p.strip() for p in parts if p.strip()]


class _Line:
    __slots__ = ("indent", "content", "no")

    def __init__(self, indent: int, content: str, no: int) -> None:
        self.indent = indent
        self.content = content
        self.no = no


def _lex(text: str) -> List[_Line]:
    lines = []
    for no, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YAMLError("tabs are not allowed in indentation", no)
        stripped = _strip_comment(raw)
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append(_Line(indent, stripped.strip(), no))
    return lines


class _Parser:
    def __init__(self, lines: List[_Line]) -> None:
        self.lines = lines
        self.pos = 0

    def peek(self) -> Optional[_Line]:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def parse_block(self, indent: int) -> Any:
        """Parse the block starting at the current position with *indent*."""
        line = self.peek()
        if line is None:
            return None
        if line.content.startswith("- "):
            return self._parse_sequence(indent)
        if line.content == "-":
            return self._parse_sequence(indent)
        return self._parse_mapping(indent)

    def _parse_sequence(self, indent: int) -> List[Any]:
        items: List[Any] = []
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                break
            if line.indent > indent:
                raise YAMLError("unexpected indentation in sequence", line.no)
            if not (line.content == "-" or line.content.startswith("- ")):
                break
            rest = line.content[1:].strip()
            self.pos += 1
            if not rest:
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    items.append(self.parse_block(nxt.indent))
                else:
                    items.append(None)
                continue
            if self._looks_like_mapping_entry(rest):
                # "- key: value" — a mapping item; re-inject as virtual lines.
                item = self._parse_inline_mapping_item(rest, indent + 2, line.no)
                items.append(item)
            else:
                items.append(_parse_scalar(rest, line.no))
        return items

    @staticmethod
    def _looks_like_mapping_entry(rest: str) -> bool:
        """Distinguish ``- key: value`` from a scalar sequence item."""
        if rest[0] in "[":
            return False
        if rest[0] in "'\"":
            # A quoted token is a key only when a colon follows the quote.
            end = rest.find(rest[0], 1)
            return end != -1 and rest[end + 1:].lstrip().startswith(":")
        return _KEY_RE.match(rest) is not None

    def _parse_inline_mapping_item(self, first: str, indent: int, no: int) -> dict:
        """Handle ``- key: value`` plus following deeper-indented keys."""
        match = _KEY_RE.match(first)
        if match is None:
            raise YAMLError(f"bad mapping entry {first!r}", no)
        result = {}
        key = _parse_key(match.group("key").strip(), no)
        value = match.group("value")
        if value is None or value == "":
            nxt = self.peek()
            if nxt is not None and nxt.indent >= indent:
                result[key] = self.parse_block(nxt.indent)
            else:
                result[key] = None
        else:
            result[key] = _parse_scalar(value, no)
        # Continuation keys at the same (virtual) indent.
        while True:
            line = self.peek()
            if line is None or line.indent < indent or line.content.startswith("- "):
                break
            sub = self._parse_mapping(line.indent)
            for k, v in sub.items():
                if k in result:
                    raise YAMLError(f"duplicate key {k!r}", line.no)
                result[k] = v
        return result

    def _parse_mapping(self, indent: int) -> dict:
        result: dict = {}
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                break
            if line.indent > indent:
                raise YAMLError("unexpected indentation", line.no)
            if line.content.startswith("- "):
                break
            match = _KEY_RE.match(line.content)
            if match is None:
                raise YAMLError(f"expected 'key: value', got {line.content!r}", line.no)
            key = _parse_key(match.group("key").strip(), line.no)
            if key in result:
                raise YAMLError(f"duplicate key {key!r}", line.no)
            value = match.group("value")
            self.pos += 1
            if value is not None and value != "":
                result[key] = _parse_scalar(value, line.no)
            else:
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    result[key] = self.parse_block(nxt.indent)
                else:
                    result[key] = None
        return result


def _needs_quoting(text: str) -> bool:
    """A plain scalar that would not parse back to the same string."""
    if text == "" or text != text.strip():
        return True
    if text[0] in "'\"[{&*|>-" or "#" in text or ":" in text:
        return True
    if text in ("~", "null", "Null", "NULL", "true", "True", "TRUE",
                "false", "False", "FALSE"):
        return True
    try:
        float(text)
        return True  # would parse as a number
    except ValueError:
        return False


def _dump_scalar(value: Any, in_flow: bool = False) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    # Inside flow lists, commas/brackets/quotes would derail the scanner.
    flow_specials = in_flow and any(c in ',[]"' for c in text)
    if _needs_quoting(text) or flow_specials:
        escaped = text.replace("'", "")  # the subset has no escape syntax
        return f"'{escaped}'"
    return text


def dump_yaml(value: Any, indent: int = 0) -> str:
    """Serialise *value* into the supported YAML subset.

    Inverse of :func:`parse_yaml` for parseable structures (mappings,
    lists, scalars).  Strings containing single quotes lose them — the
    subset has no escaping; structure and every other value round-trips,
    which the property tests assert.
    """
    pad = " " * indent
    if isinstance(value, dict):
        if not value:
            raise YAMLError("cannot dump an empty mapping in the subset")
        lines = []
        for key, item in value.items():
            if isinstance(key, str) and (":" in key or "#" in key):
                raise YAMLError(
                    f"mapping key {key!r} contains ':' or '#', which the "
                    "subset's key grammar cannot represent"
                )
            key_text = _dump_scalar(key)
            if isinstance(item, dict) and item:
                lines.append(f"{pad}{key_text}:")
                lines.append(dump_yaml(item, indent + 2))
            elif isinstance(item, list) and item and any(
                isinstance(x, (dict, list)) for x in item
            ):
                lines.append(f"{pad}{key_text}:")
                lines.append(dump_yaml(item, indent + 2))
            elif isinstance(item, list):
                inline = ", ".join(_dump_scalar(x, in_flow=True) for x in item)
                lines.append(f"{pad}{key_text}: [{inline}]")
            elif isinstance(item, dict):
                raise YAMLError("cannot dump an empty mapping in the subset")
            else:
                lines.append(f"{pad}{key_text}: {_dump_scalar(item)}")
        return "\n".join(lines)
    if isinstance(value, list):
        lines = []
        for item in value:
            if isinstance(item, dict) and item:
                body = dump_yaml(item, indent + 2).lstrip()
                first, _, rest = body.partition("\n")
                lines.append(f"{pad}- {first}")
                if rest:
                    lines.append(rest)
            elif isinstance(item, (dict, list)):
                raise YAMLError(
                    "nested lists / empty mappings inside sequences are "
                    "outside the subset"
                )
            else:
                lines.append(f"{pad}- {_dump_scalar(item)}")
        return "\n".join(lines)
    return f"{pad}{_dump_scalar(value)}"


def parse_yaml(text: str) -> Any:
    """Parse *text*; returns dict/list/scalar, ``None`` for empty input."""
    lines = _lex(text)
    if not lines:
        return None
    parser = _Parser(lines)
    root_indent = lines[0].indent
    result = parser.parse_block(root_indent)
    leftover = parser.peek()
    if leftover is not None:
        raise YAMLError(
            f"trailing content {leftover.content!r}", leftover.no
        )
    return result
