"""The model grid: a regular lat-lon mesh with synthetic geography.

The real CMCC-CM3 runs at 768x1152 (1/4 degree).  The grid here is
configurable; defaults are laptop-sized while preserving the aspect
ratio.  Geography is deterministic pseudo-continents so that land-sea
contrast, TC genesis basins (tropical oceans) and landfall decay all
have somewhere to happen.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

EARTH_RADIUS_KM = 6371.0
OMEGA = 7.2921e-5  # Earth's angular velocity, rad/s


@dataclass(frozen=True)
class Grid:
    """A global regular latitude-longitude grid.

    Parameters
    ----------
    n_lat, n_lon:
        Grid points.  Latitudes are cell centres in (-90, 90); longitudes
        cover [0, 360).
    """

    n_lat: int = 48
    n_lon: int = 72

    def __post_init__(self) -> None:
        if self.n_lat < 4 or self.n_lon < 4:
            raise ValueError("grid needs at least 4x4 points")

    @cached_property
    def lat(self) -> np.ndarray:
        """Cell-centre latitudes, degrees, south to north."""
        edges = np.linspace(-90.0, 90.0, self.n_lat + 1)
        return (edges[:-1] + edges[1:]) / 2.0

    @cached_property
    def lon(self) -> np.ndarray:
        """Cell-centre longitudes, degrees in [0, 360)."""
        return np.arange(self.n_lon) * (360.0 / self.n_lon)

    @cached_property
    def lat2d(self) -> np.ndarray:
        return np.broadcast_to(self.lat[:, None], (self.n_lat, self.n_lon)).copy()

    @cached_property
    def lon2d(self) -> np.ndarray:
        return np.broadcast_to(self.lon[None, :], (self.n_lat, self.n_lon)).copy()

    @cached_property
    def coriolis(self) -> np.ndarray:
        """Coriolis parameter f = 2 Omega sin(lat), s^-1."""
        return 2.0 * OMEGA * np.sin(np.deg2rad(self.lat2d))

    @cached_property
    def cell_area_km2(self) -> np.ndarray:
        """Spherical cell areas (km^2)."""
        lat_edges = np.deg2rad(np.linspace(-90.0, 90.0, self.n_lat + 1))
        band = (
            2.0 * np.pi * EARTH_RADIUS_KM**2
            * (np.sin(lat_edges[1:]) - np.sin(lat_edges[:-1]))
        )
        per_cell = band / self.n_lon
        return np.broadcast_to(per_cell[:, None], (self.n_lat, self.n_lon)).copy()

    @cached_property
    def land_mask(self) -> np.ndarray:
        """Boolean land mask from deterministic pseudo-continents.

        Two large mid-latitude landmasses plus a tropical one, built from
        smooth trigonometric bumps thresholded at a fixed level — about a
        third of the sphere ends up land, oceans stay zonally connected
        in the tropics (TC corridors).
        """
        lat_r = np.deg2rad(self.lat2d)
        lon_r = np.deg2rad(self.lon2d)
        bumps = (
            1.1 * np.exp(-((self.lat2d - 45) / 26) ** 2)
            * (np.cos(lon_r - 0.8) + 0.3 * np.cos(2 * lon_r + 0.5))
            + 1.0 * np.exp(-((self.lat2d + 30) / 24) ** 2)
            * (np.cos(lon_r - 3.6) + 0.2 * np.sin(3 * lon_r))
            + 0.55 * np.exp(-((self.lat2d - 8) / 14) ** 2)
            * np.cos(2 * lon_r - 2.2)
        )
        mask = bumps > 0.42
        # Keep the poles icy but treat them as land-free ocean caps so TC
        # code never sees undefined SST.
        mask &= np.abs(self.lat2d) < 78
        return mask

    @cached_property
    def ocean_mask(self) -> np.ndarray:
        return ~self.land_mask

    def distance_km(self, lat1, lon1, lat2, lon2) -> np.ndarray:
        """Great-circle (haversine) distance in km; broadcasts."""
        p1, p2 = np.deg2rad(lat1), np.deg2rad(lat2)
        dphi = p2 - p1
        dlmb = np.deg2rad(np.asarray(lon2) - np.asarray(lon1))
        a = np.sin(dphi / 2) ** 2 + np.cos(p1) * np.cos(p2) * np.sin(dlmb / 2) ** 2
        return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))

    def distance_field_km(self, lat0: float, lon0: float) -> np.ndarray:
        """Distance of every grid cell from (lat0, lon0), km."""
        return self.distance_km(self.lat2d, self.lon2d, lat0, lon0)

    def nearest_index(self, lat0: float, lon0: float) -> tuple[int, int]:
        """(row, col) of the cell centre nearest to the given point."""
        i = int(np.argmin(np.abs(self.lat - lat0)))
        dlon = (self.lon - lon0 + 180.0) % 360.0 - 180.0
        j = int(np.argmin(np.abs(dlon)))
        return i, j

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_lat, self.n_lon)
