#!/usr/bin/env python3
"""Streaming overlap: analytics running *while* the ESM simulates.

Demonstrates the paper's central scheduling effect (§5.1): the
simulation task produces day files at a realistic pace; per-year
streaming monitors detect completed years; and the index/TC tasks
execute concurrently with the still-running simulation.  The same
workload then runs sequentially (analytics submitted only after the
model finishes) and both schedules are compared, including an ASCII
Gantt chart of worker occupancy.

Usage::

    python examples/streaming_overlap.py [--pace 0.08] [--years 2]
"""

import argparse

from repro.cluster import laptop_like
from repro.workflow import WorkflowParams, run_extreme_events_workflow


def run(mode_sequential: bool, args) -> dict:
    with laptop_like() as cluster:
        params = WorkflowParams(
            years=[2030 + i for i in range(args.years)],
            n_days=args.days, n_lat=16, n_lon=24, n_workers=4,
            min_length_days=4, with_ml=False, seed=5,
            sequential=mode_sequential, pace_seconds=args.pace,
        )
        return run_extreme_events_workflow(cluster, params)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pace", type=float, default=0.08,
                        help="seconds of simulated model time per day file")
    parser.add_argument("--days", type=int, default=20)
    parser.add_argument("--years", type=int, default=2)
    args = parser.parse_args()

    print(f"workload: {args.years} year(s) x {args.days} days, "
          f"{args.pace}s of ESM compute per day\n")

    print("running SEQUENTIAL (analytics after the full simulation) ...")
    seq = run(True, args)
    print("running OVERLAPPED (streaming-triggered analytics) ...")
    ovl = run(False, args)

    s_seq, s_ovl = seq["schedule"], ovl["schedule"]
    print("\nmode        makespan   ESM/analytics overlap   utilisation")
    print(f"sequential  {s_seq['makespan_s']:7.2f}s   "
          f"{s_seq['esm_analytics_overlap_s']:9.2f}s            "
          f"{s_seq['worker_utilisation']:.0%}")
    print(f"overlapped  {s_ovl['makespan_s']:7.2f}s   "
          f"{s_ovl['esm_analytics_overlap_s']:9.2f}s            "
          f"{s_ovl['worker_utilisation']:.0%}")
    print(f"\nspeedup from overlap: "
          f"{s_seq['makespan_s'] / s_ovl['makespan_s']:.2f}x")

    # Identical science either way:
    for year in ovl["years"]:
        assert ovl["years"][year]["heat_waves"] == seq["years"][year]["heat_waves"]
    print("science identical across schedules: OK")


if __name__ == "__main__":
    main()
