"""The assembled simulated cluster: nodes + scheduler + shared filesystem."""

from __future__ import annotations

import tempfile
from typing import List, Optional, Sequence

from repro.cluster.filesystem import SharedFilesystem
from repro.cluster.lsf import LSFScheduler
from repro.cluster.node import Node


class Cluster:
    """A named HPC system: compute nodes, batch scheduler, shared scratch.

    Parameters
    ----------
    name:
        System name (e.g. ``"zeus-sim"``); surfaces in TOSCA endpoints.
    nodes:
        The compute nodes.
    scratch_root:
        Directory backing the shared filesystem.  A temporary directory is
        created (and owned by the cluster) when omitted.
    backfill:
        Scheduler backfill policy, see :class:`LSFScheduler`.
    """

    def __init__(
        self,
        name: str,
        nodes: Sequence[Node],
        scratch_root: Optional[str] = None,
        backfill: bool = True,
    ) -> None:
        self.name = name
        self.nodes: List[Node] = list(nodes)
        self._owns_scratch = scratch_root is None
        if scratch_root is None:
            scratch_root = tempfile.mkdtemp(prefix=f"{name}-scratch-")
        self.filesystem = SharedFilesystem(scratch_root)
        self.scheduler = LSFScheduler(self.nodes, backfill=backfill)

    @property
    def total_cores(self) -> int:
        return sum(n.cores for n in self.nodes)

    @property
    def total_memory_gb(self) -> float:
        return sum(n.memory_gb for n in self.nodes)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the scheduler; keeps the scratch directory contents."""
        self.scheduler.shutdown(wait=wait)

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Cluster {self.name}: {len(self.nodes)} nodes, "
            f"{self.total_cores} cores, {self.total_memory_gb:.0f}GB>"
        )


def zeus_like(
    scratch_root: Optional[str] = None,
    n_nodes: int = 8,
    cores_per_node: int = 36,
    memory_gb_per_node: float = 96.0,
) -> Cluster:
    """A scaled-down Zeus: the real system has 348 nodes x 36 cores.

    Eight nodes preserve the scheduling dynamics (multi-node placement,
    queueing under contention) at a size laptops can execute.
    """
    nodes = [
        Node(f"zeus{n:03d}", cores_per_node, memory_gb_per_node)
        for n in range(1, n_nodes + 1)
    ]
    return Cluster("zeus-sim", nodes, scratch_root=scratch_root)


def laptop_like(
    scratch_root: Optional[str] = None, cores_per_node: int = 4
) -> Cluster:
    """A minimal 2-node cluster for unit tests and the quickstart example.

    *cores_per_node* is explicit and deterministic (no
    ``os.cpu_count()`` derivation): scheduling order, placement and perf
    baselines must not depend on which machine runs the suite.  The CLI
    plumbs :attr:`WorkflowParams.cluster_cores_per_node` through here.
    """
    if cores_per_node < 1:
        raise ValueError("cores_per_node must be >= 1")
    nodes = [Node(f"local{n}", cores_per_node, 8.0) for n in (1, 2)]
    return Cluster("laptop-sim", nodes, scratch_root=scratch_root)
