"""Streaming interfaces for producer/consumer task overlap.

Section 5.2 of the paper: "a streaming interface available in PyCOMPSs
has been leveraged to monitor the file production progress and detect
when a (full) new year of data is available".  Two stream flavours are
provided, mirroring the distroStream library PyCOMPSs integrates:

* :class:`ObjectDistroStream` — an in-memory pub/sub queue of Python
  objects;
* :class:`FileDistroStream` — watches a directory (optionally through a
  :class:`~repro.cluster.filesystem.SharedFilesystem`) and yields newly
  appeared files matching a pattern, exactly how the case study detects
  freshly written simulation days.
"""

from __future__ import annotations

import fnmatch
import os
import threading
import time
from typing import List, Optional


class StreamClosed(Exception):
    """Polling a closed, fully-drained stream."""


class ObjectDistroStream:
    """In-memory multi-producer / multi-consumer object stream.

    ``publish`` appends; ``poll`` returns everything published since the
    caller's last poll (consumers share a single cursor by default, like
    a work queue; pass ``shared_cursor=False`` for broadcast semantics
    where each consumer instance tracks its own position via
    :meth:`reader`).
    """

    def __init__(self) -> None:
        self._items: List[object] = []
        self._closed = False
        self._lock = threading.Lock()
        self._new = threading.Condition(self._lock)
        self._cursor = 0

    def publish(self, item: object) -> None:
        with self._new:
            if self._closed:
                raise StreamClosed("cannot publish to a closed stream")
            self._items.append(item)
            self._new.notify_all()

    def publish_many(self, items) -> None:
        with self._new:
            if self._closed:
                raise StreamClosed("cannot publish to a closed stream")
            self._items.extend(items)
            self._new.notify_all()

    def close(self) -> None:
        with self._new:
            self._closed = True
            self._new.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def poll(self, timeout: Optional[float] = None, block: bool = True) -> List[object]:
        """Items published since the last poll.

        Blocks until at least one new item arrives or the stream closes.
        Returns ``[]`` on a closed-and-drained stream only when
        *block* is False; otherwise raises :class:`StreamClosed`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._new:
            while True:
                fresh = self._items[self._cursor:]
                if fresh:
                    self._cursor = len(self._items)
                    return list(fresh)
                if self._closed:
                    if block:
                        raise StreamClosed("stream closed and drained")
                    return []
                if not block:
                    return []
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return []
                self._new.wait(timeout=remaining)


class FileDistroStream:
    """Watches a directory for new files matching *pattern*.

    The producing task (the ESM simulation) just writes files; the
    consuming task polls the stream and reacts to fresh paths.  Files are
    reported exactly once, in sorted-name order per poll.

    Parameters
    ----------
    directory:
        Host directory to watch.
    pattern:
        ``fnmatch`` pattern on the file name (default ``*``).
    poll_interval:
        Sleep between directory scans while blocking.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        pattern: str = "*",
        poll_interval: float = 0.02,
    ) -> None:
        self.directory = os.fspath(directory)
        self.pattern = pattern
        self.poll_interval = poll_interval
        self._seen: set = set()
        self._closed = threading.Event()
        self._lock = threading.Lock()

    def _scan(self) -> List[str]:
        if not os.path.isdir(self.directory):
            return []
        fresh = []
        with self._lock:
            for name in sorted(os.listdir(self.directory)):
                if name in self._seen:
                    continue
                if not fnmatch.fnmatch(name, self.pattern):
                    continue
                # Skip in-flight atomic-write temporaries.
                if ".tmp." in name:
                    continue
                self._seen.add(name)
                fresh.append(os.path.join(self.directory, name))
        return fresh

    def poll(self, timeout: Optional[float] = None, block: bool = True) -> List[str]:
        """Full paths of files that appeared since the last poll.

        Blocking semantics mirror :meth:`ObjectDistroStream.poll`: raises
        :class:`StreamClosed` once the stream is closed *and* no unseen
        files remain.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            fresh = self._scan()
            if fresh:
                return fresh
            if self._closed.is_set():
                # One final scan so a close racing the last write loses.
                fresh = self._scan()
                if fresh:
                    return fresh
                if block:
                    raise StreamClosed("stream closed and drained")
                return []
            if not block:
                return []
            if deadline is not None and time.monotonic() >= deadline:
                return []
            self._closed.wait(self.poll_interval)

    def close(self) -> None:
        """Mark end-of-stream: the producer will write no more files."""
        self._closed.set()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()
