"""Losses, optimisers, network container and training-loop tests."""

import numpy as np
import pytest

from repro.ml import (
    Adam,
    Dense,
    ReLU,
    SGD,
    Sequential,
    bce_with_logits,
    bce_with_logits_grad,
    localization_loss,
    mse,
    mse_grad,
    train,
)
from repro.ml.training import numerical_gradient


class TestLosses:
    def test_bce_known_values(self):
        assert bce_with_logits(np.array([0.0]), np.array([1.0])) == pytest.approx(
            np.log(2)
        )
        assert bce_with_logits(np.array([100.0]), np.array([1.0])) < 1e-6

    def test_bce_stable_at_extremes(self):
        loss = bce_with_logits(np.array([1e4, -1e4]), np.array([0.0, 1.0]))
        assert np.isfinite(loss)

    def test_bce_grad_matches_numeric(self):
        z = np.random.default_rng(0).normal(size=6)
        y = np.array([0, 1, 1, 0, 1, 0], dtype=float)

        def f():
            return bce_with_logits(z, y)

        np.testing.assert_allclose(
            bce_with_logits_grad(z, y), numerical_gradient(f, z), atol=1e-7
        )

    def test_mse_and_grad(self):
        pred = np.array([1.0, 2.0])
        target = np.array([0.0, 0.0])
        assert mse(pred, target) == pytest.approx(2.5)

        def f():
            return mse(pred, target)

        np.testing.assert_allclose(
            mse_grad(pred, target), numerical_gradient(f, pred), atol=1e-7
        )

    def test_localization_loss_masks_negatives(self):
        out = np.array([[5.0, 0.9, 0.9], [-5.0, 0.9, 0.9]])
        presence = np.array([1.0, 0.0])
        centers = np.array([[0.9, 0.9], [0.0, 0.0]])
        loss, grad, comps = localization_loss(out, presence, centers)
        # Perfect predictions: tiny presence loss, zero centre loss.
        assert comps["center"] == pytest.approx(0.0)
        assert np.all(grad[1, 1:] == 0.0)  # no centre grad for negatives

    def test_localization_loss_grad_numeric(self):
        rng = np.random.default_rng(1)
        out = rng.normal(size=(5, 3))
        presence = (rng.random(5) > 0.5).astype(float)
        presence[0] = 1.0
        centers = rng.random((5, 2))

        def f():
            return localization_loss(out, presence, centers)[0]

        _, grad, _ = localization_loss(out, presence, centers)
        np.testing.assert_allclose(grad, numerical_gradient(f, out), atol=1e-6)

    def test_localization_loss_shape_validation(self):
        with pytest.raises(ValueError):
            localization_loss(np.zeros((2, 2)), np.zeros(2), np.zeros((2, 2)))

    def test_all_negative_batch(self):
        out = np.zeros((3, 3))
        loss, grad, comps = localization_loss(out, np.zeros(3), np.zeros((3, 2)))
        assert comps["center"] == 0.0
        assert np.all(grad[:, 1:] == 0.0)


class TestOptimizers:
    def test_sgd_step(self):
        p = np.array([1.0])
        SGD(lr=0.1).step([p], [np.array([2.0])])
        assert p[0] == pytest.approx(0.8)

    def test_sgd_momentum_accumulates(self):
        opt = SGD(lr=0.1, momentum=0.9)
        p = np.array([0.0])
        g = np.array([1.0])
        opt.step([p], [g])
        first = p.copy()
        opt.step([p], [g])
        assert (p - first)[0] < first[0]  # second step larger (more negative)

    def test_adam_bias_correction_first_step(self):
        opt = Adam(lr=0.1)
        p = np.array([1.0])
        opt.step([p], [np.array([3.0])])
        # First Adam step has magnitude ~lr regardless of gradient scale.
        assert p[0] == pytest.approx(0.9, abs=1e-6)

    def test_param_set_change_rejected(self):
        opt = Adam()
        p = np.array([1.0])
        opt.step([p], [np.array([1.0])])
        with pytest.raises(ValueError):
            opt.step([p, p], [np.array([1.0]), np.array([1.0])])

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            Adam(lr=-1)

    def test_optimizers_reduce_quadratic(self):
        for opt in (SGD(lr=0.05), Adam(lr=0.1)):
            p = np.array([5.0])
            for _ in range(200):
                opt.step([p], [2 * p])
            assert abs(p[0]) < 0.5


class TestSequentialAndTraining:
    def _xor_net(self, seed=0):
        rng = np.random.default_rng(seed)
        return Sequential([Dense(2, 12, rng=rng), ReLU(), Dense(12, 1, rng=rng)])

    def test_network_learns_xor(self):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([[0.0], [1.0], [1.0], [0.0]])

        def loss_fn(out, target):
            return (
                bce_with_logits(out, target),
                bce_with_logits_grad(out, target),
                {},
            )

        model = self._xor_net()
        history = train(
            model, x, (y,), loss_fn, Adam(lr=0.05), epochs=300, batch_size=4,
            rng=np.random.default_rng(0),
        )
        assert history.loss[-1] < 0.1
        assert history.loss[-1] < history.loss[0]
        preds = 1 / (1 + np.exp(-model.forward(x)))
        assert np.all((preds > 0.5).astype(float) == y)

    def test_parameter_count(self):
        model = self._xor_net()
        assert model.n_parameters == 2 * 12 + 12 + 12 * 1 + 1

    def test_state_save_load_roundtrip(self, tmp_path):
        model = self._xor_net(seed=1)
        other = self._xor_net(seed=2)
        path = str(tmp_path / "w.pkl")
        model.save(path)
        other.load(path)
        x = np.random.default_rng(0).normal(size=(3, 2))
        np.testing.assert_array_equal(model.forward(x), other.forward(x))

    def test_load_shape_mismatch_rejected(self, tmp_path):
        model = self._xor_net()
        bigger = Sequential([Dense(3, 4)])
        path = str(tmp_path / "w.pkl")
        model.save(path)
        with pytest.raises(ValueError):
            bigger.load(path)

    def test_train_validation(self):
        model = self._xor_net()
        with pytest.raises(ValueError):
            train(model, np.zeros((0, 2)), (np.zeros((0, 1)),),
                  lambda o, t: (0.0, np.zeros_like(o), {}), SGD())
        with pytest.raises(ValueError):
            train(model, np.zeros((2, 2)), (np.zeros((2, 1)),),
                  lambda o, t: (0.0, np.zeros_like(o), {}), SGD(), epochs=0)
