"""Perf-regression gate: committed baselines + tolerance-aware diffing.

The benchmarks (C1 overlap, C7 reuse, C8 fusion) record a handful of
headline numbers per run — makespan, critical-path length, fragment
writes, transfer bytes saved, cache hit rate — into a single
``BENCH_summary.json``.  This module turns such summaries into committed
baselines under ``benchmarks/baselines/`` and diffs fresh summaries
against them with per-metric tolerances, so a perf win landed by one PR
cannot silently regress in a later one: ``repro perf-gate`` exits
nonzero when any metric drifts outside its tolerance in the bad
direction.

Baseline files are one JSON document per benchmark::

    {"benchmark": "c7_cache_reuse",
     "metrics": {"makespan_s": {"value": 3.1, "direction": "lower",
                                "tolerance_pct": 75.0, "abs_tolerance": 0.0},
                 ...}}

``direction`` is the *good* direction: a ``lower``-is-better metric
regresses when the current value exceeds
``value * (1 + tolerance_pct/100) + abs_tolerance``; ``higher``-is-better
mirrors that.  Wall-clock metrics default to wide (75%) tolerances so
shared-CI jitter passes while a genuine 2x blow-up still fails;
deterministic counts are gated tightly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "GateReport",
    "MetricCheck",
    "capture_baseline",
    "compare_to_baseline",
    "default_metric_spec",
    "extract_headline_metrics",
    "gate_summary",
    "load_baseline",
    "load_baselines",
    "write_bench_summary",
]

#: (substring, spec) rules, first match wins (a trailing ``$`` makes the
#: needle a suffix match).  ``direction`` is the good direction;
#: tolerances are how far the *bad* direction may drift.
_SPEC_RULES: Tuple[Tuple[Tuple[str, ...], Dict[str, Any]], ...] = (
    # Saved/avoided/overlap/hit-rate style wins: higher is better, and
    # halving one is a bug.  Checked first so e.g. ``overlap_s`` and
    # ``transfer_bytes_saved`` are not mistaken for plain durations.
    (("saved", "avoided", "hits", "overlap", "speedup", "util", "fraction",
      "hit_rate"),
     {"direction": "higher", "tolerance_pct": 50.0}),
    # Wall-clock: huge variance on shared CI runners.  75% tolerance
    # passes normal jitter yet fails a 2x (=+100%) regression.
    (("makespan", "critical_path", "seconds", "duration", "_s$"),
     {"direction": "lower", "tolerance_pct": 75.0}),
    # Byte volumes move a little with placement races.
    (("bytes", "_mb"), {"direction": "lower", "tolerance_pct": 15.0}),
    # Discrete op counts (fragment writes, transfers) are near-
    # deterministic; allow slack for scheduling races only.
    (("writes", "reads", "transfers", "passes", "ops", "count", "tasks"),
     {"direction": "lower", "tolerance_pct": 10.0, "abs_tolerance": 2.0}),
)

_DEFAULT_SPEC = {"direction": "lower", "tolerance_pct": 25.0}


def _needle_matches(needle: str, name: str) -> bool:
    if needle.endswith("$"):
        return name.endswith(needle[:-1])
    return needle in name


def default_metric_spec(name: str, value: float) -> Dict[str, Any]:
    """Baseline entry for one headline metric, tolerances by name."""
    lowered = name.lower()
    spec: Dict[str, Any] = dict(_DEFAULT_SPEC)
    for needles, rule in _SPEC_RULES:
        if any(_needle_matches(n, lowered) for n in needles):
            spec = dict(rule)
            break
    spec.setdefault("abs_tolerance", 0.0)
    spec["value"] = float(value)
    return spec


# ---------------------------------------------------------------------------
# Capture / load
# ---------------------------------------------------------------------------

def capture_baseline(
    benchmark: str,
    metrics: Mapping[str, float],
    out_dir: str,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> str:
    """Write (or refresh) ``<out_dir>/<benchmark>.json`` from measured
    values; *overrides* patches individual metric specs (e.g. a custom
    tolerance).  Returns the file path."""
    os.makedirs(out_dir, exist_ok=True)
    doc: Dict[str, Any] = {"benchmark": benchmark, "metrics": {}}
    for name in sorted(metrics):
        spec = default_metric_spec(name, metrics[name])
        if overrides and name in overrides:
            spec.update(overrides[name])
        doc["metrics"][name] = spec
    path = os.path.join(out_dir, f"{benchmark}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if "metrics" not in doc:
        raise ValueError(f"{path}: not a baseline file (no 'metrics' key)")
    return doc


def load_baselines(path: str) -> Dict[str, Dict[str, Any]]:
    """Baselines keyed by benchmark name; *path* is one file or a
    directory of ``*.json`` baselines."""
    if os.path.isdir(path):
        docs = {}
        for entry in sorted(os.listdir(path)):
            if entry.endswith(".json"):
                doc = load_baseline(os.path.join(path, entry))
                docs[doc.get("benchmark", entry[:-5])] = doc
        if not docs:
            raise ValueError(f"no baseline .json files under {path}")
        return docs
    doc = load_baseline(path)
    return {doc.get("benchmark", os.path.basename(path)[:-5] or path): doc}


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MetricCheck:
    """Outcome of gating one metric against its baseline entry."""

    benchmark: str
    metric: str
    status: str  # "ok" | "regression" | "missing" | "new"
    current: Optional[float]
    baseline: Optional[float]
    threshold: Optional[float]
    direction: str

    @property
    def regressed(self) -> bool:
        return self.status in ("regression", "missing")

    @property
    def delta_pct(self) -> Optional[float]:
        if self.current is None or not self.baseline:
            return None
        return 100.0 * (self.current - self.baseline) / self.baseline


@dataclass
class GateReport:
    """All checks across all gated benchmarks."""

    checks: List[MetricCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not any(c.regressed for c in self.checks)

    @property
    def regressions(self) -> List[MetricCheck]:
        return [c for c in self.checks if c.regressed]

    def to_json(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "n_checks": len(self.checks),
            "n_regressions": len(self.regressions),
            "checks": [
                {
                    "benchmark": c.benchmark, "metric": c.metric,
                    "status": c.status, "current": c.current,
                    "baseline": c.baseline, "threshold": c.threshold,
                    "direction": c.direction, "delta_pct": c.delta_pct,
                }
                for c in self.checks
            ],
        }

    def render(self) -> str:
        lines = []
        marks = {"ok": "ok  ", "new": "new ", "regression": "FAIL",
                 "missing": "MISS"}
        for c in self.checks:
            cur = "n/a" if c.current is None else f"{c.current:.4g}"
            base = "n/a" if c.baseline is None else f"{c.baseline:.4g}"
            delta = "" if c.delta_pct is None else f"  ({c.delta_pct:+.1f}%)"
            lines.append(
                f"  [{marks.get(c.status, c.status)}] "
                f"{c.benchmark}.{c.metric}: {cur} vs baseline {base} "
                f"({c.direction} is better){delta}"
            )
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"perf gate: {verdict} — {len(self.checks)} checks, "
            f"{len(self.regressions)} regressions"
        )
        return "\n".join(lines) + "\n"


def _check_one(
    benchmark: str, metric: str, spec: Mapping[str, Any],
    current: Optional[float],
) -> MetricCheck:
    base = float(spec["value"])
    direction = str(spec.get("direction", "lower"))
    tol_pct = float(spec.get("tolerance_pct", 0.0))
    abs_tol = float(spec.get("abs_tolerance", 0.0))
    if current is None:
        return MetricCheck(benchmark, metric, "missing", None, base, None,
                           direction)
    current = float(current)
    if direction == "higher":
        threshold = base * (1.0 - tol_pct / 100.0) - abs_tol
        status = "regression" if current < threshold else "ok"
    else:
        threshold = base * (1.0 + tol_pct / 100.0) + abs_tol
        status = "regression" if current > threshold else "ok"
    return MetricCheck(benchmark, metric, status, current, base, threshold,
                       direction)


def compare_to_baseline(
    benchmark: str,
    current: Mapping[str, float],
    baseline: Mapping[str, Any],
) -> List[MetricCheck]:
    """Gate one benchmark's measured metrics against one baseline doc.

    Every baselined metric must be present and in tolerance (absent →
    ``missing`` → fail); metrics measured but not yet baselined report
    as ``new`` and pass, so adding instrumentation never blocks CI.
    """
    checks: List[MetricCheck] = []
    specs: Mapping[str, Any] = baseline.get("metrics", {})
    for metric in sorted(specs):
        checks.append(
            _check_one(benchmark, metric, specs[metric], current.get(metric))
        )
    for metric in sorted(set(current) - set(specs)):
        value = current[metric]
        checks.append(MetricCheck(benchmark, metric, "new", float(value),
                                  None, None, "-"))
    return checks


def gate_summary(
    summary: Mapping[str, Any],
    baselines: Mapping[str, Mapping[str, Any]],
) -> GateReport:
    """Gate a ``BENCH_summary.json`` document against loaded baselines.

    Benchmarks present only in the summary pass as ``new``; a baseline
    with no matching summary entry fails (the benchmark silently
    disappearing from CI is itself a regression).
    """
    report = GateReport()
    measured: Mapping[str, Any] = summary.get("benchmarks", summary)
    for bench in sorted(baselines):
        current = measured.get(bench)
        if current is None:
            for metric, spec in sorted(baselines[bench].get("metrics", {}).items()):
                report.checks.append(MetricCheck(
                    bench, metric, "missing", None,
                    float(spec["value"]), None,
                    str(spec.get("direction", "lower")),
                ))
            continue
        report.checks.extend(
            compare_to_baseline(bench, current, baselines[bench])
        )
    for bench in sorted(set(measured) - set(baselines)):
        entry = measured[bench]
        if not isinstance(entry, Mapping):
            continue
        for metric in sorted(entry):
            value = entry[metric]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                report.checks.append(MetricCheck(
                    bench, metric, "new", float(value), None, None, "-"))
    return report


# ---------------------------------------------------------------------------
# Headline extraction + BENCH_summary.json
# ---------------------------------------------------------------------------

def extract_headline_metrics(metrics_json: Mapping[str, Any]) -> Dict[str, float]:
    """Pull the gate-worthy headline numbers out of a run's exported
    ``metrics.json`` snapshot (the PR-1 registry format)."""
    from repro.observability.metrics import snapshot_value

    def val(name: str, **labels: str) -> float:
        return snapshot_value(metrics_json, name, **labels)

    headline: Dict[str, float] = {}
    for name, metric in (
        ("workflow_makespan_seconds", "makespan_s"),
        ("workflow_critical_path_seconds", "critical_path_s"),
        ("workflow_esm_analytics_overlap_seconds", "overlap_s"),
        ("ophidia_fragment_writes_total", "fragment_writes"),
        ("compss_transfer_bytes_total", "transfer_bytes"),
        ("compss_transfer_bytes_saved_total", "transfer_bytes_saved"),
        ("fs_bytes_read_total", "fs_bytes_read"),
    ):
        v = val(name)
        if v:
            headline[metric] = v
    hits = val("fs_cache_hits_total")
    misses = val("fs_cache_misses_total")
    if hits + misses > 0:
        headline["fs_cache_hit_rate"] = hits / (hits + misses)
    return headline


def write_bench_summary(
    path: str, benchmark: str, metrics: Mapping[str, float],
) -> Dict[str, Any]:
    """Merge one benchmark's numbers into ``BENCH_summary.json``.

    Merge-on-write lets independent pytest invocations (one per
    benchmark file, as CI runs them) compose into a single summary the
    gate consumes — including *concurrent* invocations: the
    read-modify-write runs under the same interprocess lock + atomic
    rename discipline as ``runs.db``'s WAL, so parallel benchmark
    processes merge instead of clobbering each other (or leaving a torn
    file for the gate to choke on).  Returns the merged document.
    """
    from repro.observability.history import locked_json_update

    clean = {
        k: float(v) for k, v in metrics.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }

    def merge(existing: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"benchmarks": {}}
        if isinstance(existing, dict):
            doc.update(existing)
            if not isinstance(doc.get("benchmarks"), dict):
                doc["benchmarks"] = {}
        doc["benchmarks"][benchmark] = clean
        return doc

    return locked_json_update(path, merge)
