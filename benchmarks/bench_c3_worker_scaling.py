"""C3 — transparent parallelism: task throughput vs COMPSs workers.

§6: "PyCOMPSs can automate concurrent execution of independent tasks on
different NetCDF files produced by the simulation."  A fixed bag of
independent per-day tasks is executed with 1, 2, 4 and 8 workers.

Environment note: this benchmark host exposes a single CPU core, so
compute-bound kernels cannot physically speed up.  Each task therefore
models the dominant cost of the real per-file analytics on a parallel
filesystem — I/O wait (staging a day file) — plus a small compute
portion.  Task-level concurrency hides the I/O wait, which is exactly
the scheduling property the paper exercises; on a multi-core node the
compute portion scales as well (NumPy releases the GIL).

Shape: makespan decreases monotonically with workers and the speedup
approaches the worker count while the task bag is wide enough.
"""

import time

import numpy as np

from benchmarks.conftest import print_table
from repro.compss import COMPSs, compss_wait_on, task

N_TASKS = 16
IO_WAIT_S = 0.10       # staging one daily file from the parallel FS
GRID = (4, 48, 72)     # the in-memory slab processed afterwards


@task(returns=1)
def stage_and_process(seed: int):
    """One day of analytics: I/O wait + field post-processing."""
    time.sleep(IO_WAIT_S)
    rng = np.random.default_rng(seed)
    field = rng.normal(290.0, 3.0, size=GRID)
    return float(field.max(axis=0).mean())


def run_with_workers(n_workers: int):
    start = time.monotonic()
    with COMPSs(n_workers=n_workers):
        results = compss_wait_on([stage_and_process(s) for s in range(N_TASKS)])
    return time.monotonic() - start, results


def test_c3_worker_scaling(benchmark):
    worker_counts = [1, 2, 4, 8]
    times = {}
    reference = None
    for w in worker_counts:
        if w == 4:
            elapsed, results = benchmark.pedantic(
                lambda: run_with_workers(4), rounds=1, iterations=1
            )
        else:
            elapsed, results = run_with_workers(w)
        times[w] = elapsed
        if reference is None:
            reference = results
        assert results == reference  # worker count never changes science

    speedup = {w: times[1] / times[w] for w in worker_counts}

    # Shape: concurrency hides the per-task wait; near-linear early,
    # saturating as width runs out.
    assert speedup[2] > 1.5
    assert speedup[4] > 2.5
    assert times[8] <= times[4] * 1.3  # no regression at higher widths

    print_table(
        f"C3: {N_TASKS} independent per-day tasks "
        f"({IO_WAIT_S * 1000:.0f} ms I/O wait + compute each)",
        ["workers", "makespan (s)", "speedup", "efficiency"],
        [
            [w, f"{times[w]:.2f}", f"{speedup[w]:.2f}x", f"{speedup[w] / w:.2f}"]
            for w in worker_counts
        ],
    )
