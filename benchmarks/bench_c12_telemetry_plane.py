"""C12 — the cross-process telemetry plane: zero loss, bounded cost.

The process backend executes fragment kernels in spawn workers whose
spans and metric increments only reach the driver through the shipped
telemetry envelope.  This benchmark runs the paper's Listing-1 style
operator chain once per backend under a fresh registry and checks the
plane's two promises:

* **zero loss** — the process run's Ophidia counter families equal the
  thread run's exactly (every worker-side fact was shipped and merged),
  and every worker kernel span joins the driver's single trace under
  the dispatching sweep span;
* **bounded cost** — shipping rides the existing result pickle, so the
  headline is accounted as the worker spans and CPU seconds recovered
  per sweep rather than a separate transport.

Headline metrics (all deterministic; the sequential chain has no
scheduler interleaving to jitter the accounting):

* ``counter_families_equal`` — 1.0 when thread and process Ophidia
  counter deltas match exactly;
* ``worker_kernel_spans`` — worker-side kernel spans shipped into the
  driver's trace;
* ``trace_count`` — distinct trace ids across all shipped spans (must
  stay 1.0: workers join the driver's trace, never start their own).
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.observability import get_collector, snapshot_value, span
from repro.observability.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.ophidia import Client, OphidiaServer
from repro.ophidia.datacube import Cube


def _counter_families(metrics):
    out = {}
    for name, family in metrics.items():
        if family["kind"] != "counter" or not name.startswith("ophidia_"):
            continue
        series = {
            tuple(sorted((k, str(v)) for k, v in entry["labels"].items())):
                entry["value"]
            for entry in family["series"]
        }
        if name == "ophidia_backend_sweeps_total":
            series = {(): sum(series.values())}  # label names the backend
        out[name] = series
    return out


def run_chain(backend: str):
    """One Listing-1 chain under a fresh registry; returns its telemetry."""
    previous = get_registry()
    registry = set_registry(MetricsRegistry())
    server = OphidiaServer(
        n_io_servers=2, n_cores=2, lazy=True, backend=backend
    )
    try:
        with span(f"bench.c12-{backend}", layer="benchmark",
                  new_trace=True) as root:
            client = Client(server)
            rng = np.random.default_rng(7)
            data = rng.normal(300.0, 8.0, size=(8, 120, 30)).astype(np.float32)
            tmax = Cube.from_array(
                data, dims=["lat", "time", "lon"], client=client,
                fragment_dim="lat", nfrag=8, measure="TMAX",
            )
            base = Cube.from_array(
                data.mean(axis=1, keepdims=True).repeat(120, axis=1),
                dims=["lat", "time", "lon"], client=client,
                fragment_dim="lat", nfrag=8, measure="TMAX_BASELINE",
            )
            durations = tmax.intercube(base, "sub").apply(
                "oph_predicate('OPH_FLOAT','OPH_INT',measure,'x','>5','1','0')"
            ).runlength("time")
            durations.reduce("max", dim="time").to_array()
            durations.reduce("sum", dim="time").to_array()
        trace_id = root.context.trace_id
    finally:
        server.shutdown()
        set_registry(previous)
    metrics = registry.snapshot().to_json()
    spans = get_collector().for_trace(trace_id)
    return metrics, spans, trace_id


class TestC12TelemetryPlane:
    def test_telemetry_plane(self, record_bench):
        thread_metrics, _, _ = run_chain("thread")
        process_metrics, spans, trace_id = run_chain("process")

        thread_families = _counter_families(thread_metrics)
        process_families = _counter_families(process_metrics)
        families_equal = float(thread_families == process_families)

        worker_spans = [s for s in spans if s.layer == "worker"]
        kernel_spans = [s for s in worker_spans if s.name == "worker.kernel"]
        sweep_ids = {s.span_id for s in spans if s.layer == "ophidia"}
        parented = sum(1 for s in kernel_spans if s.parent_id in sweep_ids)
        trace_ids = {s.trace_id for s in spans}
        worker_cpu = snapshot_value(
            process_metrics, "process_cpu_seconds_total", role="worker"
        )

        print_table(
            "C12: cross-process telemetry plane",
            ("quantity", "thread", "process"),
            [
                ("ophidia counter families", len(thread_families),
                 len(process_families)),
                ("families byte-equal", "-", bool(families_equal)),
                ("worker kernel spans", 0, len(kernel_spans)),
                ("…parented under sweep", 0, parented),
                ("distinct trace ids", 1, len(trace_ids)),
                ("worker CPU shipped (s)", 0.0, round(worker_cpu, 3)),
            ],
        )

        assert families_equal == 1.0
        assert kernel_spans and parented == len(kernel_spans)
        assert len(trace_ids) == 1
        assert worker_cpu > 0

        record_bench(
            "c12_telemetry_plane",
            counter_families_equal=families_equal,
            worker_kernel_spans=float(len(kernel_spans)),
            trace_count=float(len(trace_ids)),
        )
