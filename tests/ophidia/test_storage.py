"""Tests for I/O servers and the storage pool."""

import os

import numpy as np
import pytest

from repro.observability.metrics import MetricsRegistry, get_registry, set_registry
from repro.ophidia import IOServer, StoragePool
from repro.ophidia.storage import SpillHandle, available_codecs


class TestIOServer:
    def test_put_get(self):
        s = IOServer("io0")
        s.put(1, np.arange(5))
        np.testing.assert_array_equal(s.get(1), np.arange(5))

    def test_counters(self):
        s = IOServer("io0")
        data = np.zeros(10, dtype=np.float64)
        s.put(1, data)
        s.get(1)
        s.get(1)
        assert s.stats.fragment_writes == 1
        assert s.stats.fragment_reads == 2
        assert s.stats.bytes_written == 80
        assert s.stats.bytes_read == 160

    def test_missing_fragment(self):
        s = IOServer("io0")
        with pytest.raises(KeyError):
            s.get(99)

    def test_delete_idempotent(self):
        s = IOServer("io0")
        s.put(1, np.zeros(3))
        s.delete(1)
        s.delete(1)
        assert s.stats.fragment_deletes == 1
        assert 1 not in s

    def test_resident_bytes(self):
        s = IOServer("io0")
        s.put(1, np.zeros(4, dtype=np.float64))
        s.put(2, np.zeros(2, dtype=np.float32))
        assert s.resident_bytes == 32 + 8
        assert s.n_fragments == 2


class TestStoragePool:
    def test_round_robin_placement(self):
        pool = StoragePool(n_servers=3)
        for _ in range(6):
            pool.store(np.zeros(1))
        assert [s.n_fragments for s in pool.servers] == [2, 2, 2]

    def test_store_load_roundtrip(self):
        pool = StoragePool(2)
        fid = pool.store(np.arange(4))
        np.testing.assert_array_equal(pool.load(fid), np.arange(4))

    def test_unknown_fragment(self):
        pool = StoragePool(1)
        with pytest.raises(KeyError):
            pool.load(123)

    def test_delete_many(self):
        pool = StoragePool(2)
        fids = [pool.store(np.zeros(2)) for _ in range(4)]
        pool.delete_many(fids)
        assert pool.n_fragments == 0
        assert pool.total_stats().fragment_deletes == 4

    def test_total_stats_aggregates(self):
        pool = StoragePool(2)
        fids = [pool.store(np.zeros(2)) for _ in range(4)]
        for fid in fids:
            pool.load(fid)
        agg = pool.total_stats()
        assert agg.fragment_writes == 4
        assert agg.fragment_reads == 4

    def test_stats_snapshot_delta(self):
        pool = StoragePool(1)
        fid = pool.store(np.zeros(2))
        before = pool.total_stats()
        pool.load(fid)
        delta = pool.total_stats().delta(before)
        assert delta.fragment_reads == 1
        assert delta.fragment_writes == 0

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            StoragePool(0)

    def test_counter_handles_follow_registry_swap(self):
        """Cached counter handles re-validate when tests swap registries."""
        old = get_registry()
        try:
            first = MetricsRegistry()
            set_registry(first)
            pool = StoragePool(1)
            fid = pool.store(np.zeros(4))
            pool.load(fid)
            assert first.counter_value("ophidia_fragment_reads_total") == 1
            second = MetricsRegistry()
            set_registry(second)
            pool.load(fid)
            assert second.counter_value("ophidia_fragment_reads_total") == 1
            assert first.counter_value("ophidia_fragment_reads_total") == 1
        finally:
            set_registry(old)


class TestChunking:
    def test_fragment_splits_into_chunks_with_stats(self):
        s = IOServer("io0")
        data = np.arange(24, dtype=np.float64).reshape(6, 4)
        # 2 rows of 4 float64 per chunk -> 3 chunks.
        s.put(1, data, chunk_axis=0, chunk_bytes=64)
        meta = s.chunk_meta(1)
        assert len(meta.chunks) == 3
        assert [(c.start, c.stop) for c in meta.chunks] == [(0, 2), (2, 4), (4, 6)]
        first = meta.chunks[0].stats
        assert first.min == 0.0 and first.max == 7.0
        assert first.null_count == 0 and first.count == 8

    def test_chunk_stats_count_nans(self):
        s = IOServer("io0")
        data = np.array([1.0, np.nan, 3.0, np.nan])
        s.put(1, data, chunk_bytes=1 << 20)
        (chunk,) = s.chunk_meta(1).chunks
        assert chunk.stats.null_count == 2
        assert chunk.stats.min == 1.0 and chunk.stats.max == 3.0

    def test_get_reassembles_multi_chunk_fragment(self):
        s = IOServer("io0")
        data = np.random.default_rng(0).normal(size=(7, 3))
        s.put(1, data, chunk_axis=0, chunk_bytes=48)
        np.testing.assert_array_equal(s.get(1), data)

    def test_load_chunk_returns_slice(self):
        s = IOServer("io0")
        data = np.arange(24, dtype=np.float64).reshape(6, 4)
        s.put(1, data, chunk_axis=0, chunk_bytes=64)
        np.testing.assert_array_equal(s.load_chunk(1, 1), data[2:4])
        assert s.stats.chunk_reads == 1
        with pytest.raises(KeyError):
            s.load_chunk(1, 9)

    def test_chunk_meta_does_not_count_a_read(self):
        s = IOServer("io0")
        s.put(1, np.zeros(8))
        s.chunk_meta(1)
        assert s.stats.fragment_reads == 0
        assert s.stats.bytes_read == 0


class TestImmutability:
    def test_single_chunk_read_is_read_only(self):
        s = IOServer("io0")
        s.put(1, np.arange(4.0))
        view = s.get(1)
        with pytest.raises(ValueError):
            view[0] = 99.0

    def test_multi_chunk_read_is_read_only(self):
        s = IOServer("io0")
        s.put(1, np.arange(32.0), chunk_bytes=64)
        view = s.get(1)
        with pytest.raises(ValueError):
            view[:] = 0.0

    def test_stored_fragment_unaffected_by_source_mutation(self):
        s = IOServer("io0")
        src = np.arange(4.0)
        s.put(1, src)
        # The store may alias the caller's buffer; the read-only contract
        # covers what readers can do, not the writer's own array.
        np.testing.assert_array_equal(s.get(1), np.arange(4.0))


class TestSpillTier:
    def _pool(self, tmp_path, budget, **kw):
        return StoragePool(
            1, memory_budget_bytes=budget, spill_dir=str(tmp_path), **kw
        )

    def test_budget_requires_spill_dir(self):
        with pytest.raises(ValueError):
            StoragePool(1, memory_budget_bytes=100)

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            StoragePool(1, codec="nope")
        assert "zlib" in available_codecs()

    def test_spill_and_transparent_reload(self, tmp_path):
        pool = self._pool(tmp_path, budget=100)
        data = np.random.default_rng(1).normal(size=64)  # 512 bytes
        fid = pool.store(data)
        assert pool.spilled_fragments == 1
        assert len(os.listdir(tmp_path)) == 1
        np.testing.assert_array_equal(pool.load(fid), data)
        assert pool.total_stats().reloaded_bytes == data.nbytes

    def test_lru_eviction_order(self, tmp_path):
        pool = self._pool(tmp_path, budget=600)
        a = pool.store(np.zeros(32))   # 256 bytes each
        b = pool.store(np.zeros(32))
        pool.load(a)                   # a is now most-recently used
        c = pool.store(np.zeros(32))   # over budget: evict b, not a
        srv = pool.servers[0]
        assert srv.is_resident(a) and srv.is_resident(c)
        assert not srv.is_resident(b)

    def test_load_chunk_on_cold_fragment_stays_cold(self, tmp_path):
        pool = self._pool(tmp_path, budget=100, chunk_bytes=128)
        data = np.arange(64, dtype=np.float64)
        fid = pool.store(data)
        srv = pool.servers[0]
        assert not srv.is_resident(fid)
        np.testing.assert_array_equal(pool.load_chunk(fid, 1), data[16:32])
        assert not srv.is_resident(fid)

    def test_load_handle_round_trips_cold_fragment(self, tmp_path):
        pool = self._pool(tmp_path, budget=100)
        data = np.random.default_rng(2).normal(size=(8, 8))
        fid = pool.store(data)
        handle = pool.load_handle(fid)
        assert isinstance(handle, SpillHandle)
        np.testing.assert_array_equal(handle.hydrate(), data)
        with pytest.raises(ValueError):
            handle.hydrate()[0, 0] = 1.0

    def test_delete_unlinks_spill_file(self, tmp_path):
        pool = self._pool(tmp_path, budget=100)
        fid = pool.store(np.zeros(64))
        assert len(os.listdir(tmp_path)) == 1
        pool.delete(fid)
        assert len(os.listdir(tmp_path)) == 0

    def test_spill_failure_keeps_fragment_resident(self, tmp_path, monkeypatch):
        import repro.ophidia.storage as storage_mod

        old = get_registry()
        try:
            reg = MetricsRegistry()
            set_registry(reg)
            pool = self._pool(tmp_path, budget=100)

            def boom(*args, **kwargs):
                raise OSError("disk full")

            monkeypatch.setattr(storage_mod, "_write_spill_file", boom)
            data = np.random.default_rng(3).normal(size=64)
            fid = pool.store(data)
            assert pool.servers[0].is_resident(fid)
            assert reg.counter_value("ophidia_spill_failures_total") == 1
            np.testing.assert_array_equal(pool.load(fid), data)
        finally:
            set_registry(old)
