"""The COMPSs runtime: dependency analysis, scheduling, execution.

The main program calls ``@task``-decorated functions; each call lands
here as a *submission*.  The runtime inspects arguments against the
declared parameter directions to discover data dependencies, inserts a
node into the :class:`~repro.compss.task_graph.TaskGraph`, and hands
dependency-free tasks to a pool of worker threads.  NumPy kernels
release the GIL, so workers achieve real parallelism on the array
workloads this reproduction runs.

Versioned data
--------------
A future written by an ``INOUT``/``OUT`` parameter acquires a new
version: later readers depend on the writing task, not the original
producer, and synchronisation returns the value after the rewrite.
Plain mutable objects passed ``INOUT`` are tracked in an identity
registry with the same semantics.  File parameters (``FILE_*``) carry
dependencies keyed by path string.
"""

from __future__ import annotations

import itertools
import threading
import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.compss.checkpoint import CheckpointManager
from repro.compss.datacache import WorkerDataCache
from repro.compss.failures import OnFailure, TaskCancelledError, TaskFailedError
from repro.compss.future import Future
from repro.compss.parameter import Direction
from repro.compss.scheduler import FIFOPolicy, InstrumentedPolicy, SchedulerPolicy
from repro.compss.task_graph import TaskGraph, TaskNode, TaskState
from repro.compss.timerwheel import TimerWheel
from repro.compss.tracing import TaskEvent, Tracer
from repro.observability.events import emit_event
from repro.observability.metrics import get_registry
from repro.observability.spans import activate, current_context, maybe_span, record_span

#: Worker threads set this so task bodies that call other @task functions
#: degrade to plain synchronous calls (PyCOMPSs does not nest tasks).
_worker_context = threading.local()


def in_worker() -> bool:
    """True when the calling thread is a COMPSs worker executing a task."""
    return getattr(_worker_context, "active", False)


#: Process-wide chaos hook (see :func:`set_task_fault_injector`): used
#: when a runtime's config does not carry its own ``fault_injector``.
_ambient_fault_injector: Optional[Any] = None


def set_task_fault_injector(injector: Optional[Any]) -> Optional[Any]:
    """Install a process-wide task fault injector; returns the previous one.

    The injector's ``before_task(func_name, task_id, worker_id, attempt,
    remote_deps=...)`` is invoked inside each task's failure scope, so a
    raise is handled exactly like the task body raising.  Pass ``None``
    to uninstall.  This exists so chaos tooling can reach runtimes it
    did not construct (e.g. the one a workflow entrypoint creates
    internally).
    """
    global _ambient_fault_injector
    previous = _ambient_fault_injector
    _ambient_fault_injector = injector
    return previous


def get_task_fault_injector() -> Optional[Any]:
    """The process-wide task fault injector, or ``None``."""
    return _ambient_fault_injector


@dataclass
class RuntimeConfig:
    """Tunables for a runtime instance.

    Parameters
    ----------
    n_workers:
        Worker threads (≈ cluster cores made available to COMPSs).
    scheduler:
        Ready-queue ordering policy.
    checkpoint:
        Optional checkpoint store; enables recovery of completed tasks.
    computing_units:
        Total constraint units; defaults to ``n_workers``.  A task with
        ``@constraint(computing_units=k)`` occupies *k* units while it
        runs, bounding co-execution of heavyweight tasks.
    transient_retries:
        Resubmission budget for *transient* failures — exceptions whose
        ``transient`` attribute is true (the ``repro.faults`` injectors
        and anything user code marks the same way).  These model flaky
        infrastructure, so they are retried for every task regardless
        of its ``OnFailure`` policy, on top of any RETRY budget.
    retry_backoff_base / retry_backoff_cap:
        Exponential-backoff schedule for resubmissions: retry *k*
        dispatches no sooner than ``base * 2**k`` seconds (capped)
        after the failure.  ``base=0`` disables the delay.
    fault_injector:
        Optional chaos hook consulted before each task execution; see
        :func:`set_task_fault_injector` for the process-wide variant.
    worker_cache_bytes:
        Per-worker resident-set budget for task outputs.  With a
        positive budget, a remote predecessor's output is charged as a
        transfer only on its *first* consumption on a given worker;
        later consumers on that worker are in-memory cache hits (the
        paper's "data could be kept in memory" reuse).  ``0`` (the
        default) keeps the historical charge-every-consumption
        accounting.
    poll_interval_s:
        Compatibility knob for the pre-event-driven scheduler.  ``0``
        (the default) makes idle workers sleep until a real event —
        submission, completion, node restore, or a backoff/grace
        deadline from the timer wheel.  A positive value restores the
        old behaviour of re-polling the ready queue on that interval;
        it exists so benchmarks (C9) can quantify the orchestration
        overhead the event-driven core removes.
    """

    n_workers: int = 4
    scheduler: SchedulerPolicy = field(default_factory=FIFOPolicy)
    checkpoint: Optional[CheckpointManager] = None
    computing_units: Optional[int] = None
    # Sized for chaos runs at ~5% per-op error rates: a task doing a
    # dozen I/O calls is hit roughly every other attempt, so a small
    # budget would still fail read-heavy tasks for good fairly often.
    transient_retries: int = 6
    retry_backoff_base: float = 0.02
    retry_backoff_cap: float = 2.0
    # The per-task worker blacklist is advisory: once a retrying task
    # has been dispatchable this long without any non-blacklisted worker
    # picking it up, every worker becomes eligible again.  Hard
    # blacklisting can deadlock — the only "clean" workers may be pinned
    # by long-running tasks that transitively wait on the retrying one.
    blacklist_grace_s: float = 0.5
    fault_injector: Optional[Any] = None
    worker_cache_bytes: int = 0
    poll_interval_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.worker_cache_bytes < 0:
            raise ValueError("worker_cache_bytes must be >= 0")
        if self.computing_units is None:
            self.computing_units = self.n_workers
        if self.computing_units < 1:
            raise ValueError("computing_units must be >= 1")
        if self.transient_retries < 0:
            raise ValueError("transient_retries must be >= 0")
        if self.retry_backoff_base < 0 or self.retry_backoff_cap < 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.poll_interval_s < 0:
            raise ValueError("poll_interval_s must be >= 0")


#: Slot addressing for INOUT-written future parameters.
_PosSlot = Tuple[str, int]    # ("pos", index)
_KwSlot = Tuple[str, str]     # ("kw", name)


class COMPSsRuntime:
    """One workflow execution context.  See module docstring."""

    def __init__(self, config: Optional[RuntimeConfig] = None) -> None:
        self.config = config or RuntimeConfig()
        self.graph = TaskGraph()
        self.tracer = Tracer()
        #: Telemetry wrapper: counts every scheduling decision in the
        #: shared registry without the policy implementations knowing.
        self._policy = InstrumentedPolicy(self.config.scheduler)
        self._task_ids = itertools.count(1)
        self._submit_order = itertools.count(0)

        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        #: Poll-mode workers wait here instead of ``_wake``: nothing
        #: notifies it except shutdown, so readiness is observed only at
        #: tick boundaries — the legacy behaviour the event-driven core
        #: replaced, kept faithful so C9 measures a real baseline.
        self._poll = threading.Condition(self._lock)
        self._ready: List[TaskNode] = []
        self._pending_deps: Dict[int, int] = {}
        self._free_units = int(self.config.computing_units)
        self._file_writers: Dict[str, int] = {}
        self._object_writers: Dict[int, Tuple[Any, int]] = {}
        self._workflow_error: Optional[TaskFailedError] = None
        self._shutdown = False
        self._active_tasks = 0
        #: Deadline wake-ups for retry backoff and blacklist-grace
        #: expiry: the only time-based events the scheduler has, now
        #: delivered as notifications instead of worker-side re-polling.
        self._timers = TimerWheel(name="compss-timers")
        #: Callbacks fired once, outside the lock, when the first
        #: workflow error is recorded (drivers use this to interrupt
        #: blocked stream consumers without polling ``failed``).
        self._failure_listeners: List[Any] = []
        #: Data-movement accounting: a dependency consumed on the worker
        #: that produced it is a "local hit"; a dependency already in the
        #: worker's resident set is a "cache hit"; otherwise the
        #: producer's estimated output size counts as transferred (§3:
        #: "data could be kept in memory and moved to other nodes as the
        #: workflow progresses").
        self.transfer_stats: Dict[str, int] = {
            "local_hits": 0, "remote_transfers": 0, "bytes_transferred": 0,
            "cache_hits": 0, "cache_misses": 0, "cache_evictions": 0,
            "bytes_saved": 0,
        }
        #: Per-worker resident sets backing the reuse accounting above.
        self.data_cache = WorkerDataCache(self.config.worker_cache_bytes)

        self._workers = [
            threading.Thread(
                target=self._worker_loop, args=(wid,),
                name=f"compss-worker-{wid}", daemon=True,
            )
            for wid in range(self.config.n_workers)
        ]
        for w in self._workers:
            w.start()

    # ------------------------------------------------------------------
    # Submission and dependency analysis
    # ------------------------------------------------------------------

    def submit(
        self,
        fn,
        func_name: str,
        args: tuple,
        kwargs: dict,
        directions: Dict[str, Direction],
        param_names: Sequence[str],
        n_returns: int,
        on_failure: OnFailure,
        max_retries: int,
        computing_units: int = 1,
        priority: bool = False,
        label: Optional[str] = None,
    ):
        """Register one task invocation; returns its futures (or ``None``).

        ``param_names`` maps positional slots to declared parameter names
        so decorator-declared directions apply to positional arguments.
        """
        if computing_units > self.config.computing_units:
            raise ValueError(
                f"task {func_name!r} needs {computing_units} computing units, "
                f"runtime has {self.config.computing_units}"
            )

        task_id = next(self._task_ids)
        futures = tuple(Future(task_id) for _ in range(n_returns))
        node = TaskNode(
            task_id, func_name, fn, args, kwargs, n_returns, futures,
            on_failure, max_retries, computing_units, priority, label,
        )
        # Capture the submitter's span context so the worker that later
        # executes this task joins the same trace (workers are long-lived
        # threads and do not inherit the submitting context).
        node.trace_ctx = current_context()
        get_registry().counter(
            "compss_tasks_submitted_total", "Task submissions by function",
            labels=("function",),
        ).inc(function=func_name)
        # Checkpoint recovery: a completed prior run satisfies this call.
        if self.config.checkpoint is not None:
            signature = self.config.checkpoint.next_signature(func_name)
            stored = self.config.checkpoint.load(signature)
            if stored is not None and len(stored) == n_returns:
                with self._wake:
                    node.state = TaskState.RECOVERED
                    node.submit_order = next(self._submit_order)
                    self.graph.add_task(node, depends_on=())
                    self._register_writes_locked(node, directions, param_names)
                for future, value in zip(futures, stored):
                    future._set_value(value)
                node.done_event.set()
                return self._package_returns(futures, n_returns)
            node.ckpt_signature = signature

        deps: List[int] = []

        def scan(slot, name: Optional[str], value: Any) -> None:
            direction = directions.get(name, Direction.IN) if name else Direction.IN
            if isinstance(value, Future):
                if value.last_writer_id is not None:
                    deps.append(value.last_writer_id)
                if direction.writes:
                    node.inout_futures.append((slot, value))
                return
            if direction.is_file:
                path = str(value)
                if direction.reads and path in self._file_writers:
                    deps.append(self._file_writers[path])
                return
            # Plain objects: identity-registry dependencies.
            entry = self._object_writers.get(id(value))
            if entry is not None and direction.reads:
                deps.append(entry[1])
            # Futures nested one level inside containers carry IN deps,
            # covering the common "list of per-day results" pattern.
            if isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Future) and item.last_writer_id is not None:
                        deps.append(item.last_writer_id)

        with self._wake:
            if self._shutdown:
                raise RuntimeError("runtime is stopped")
            for i, value in enumerate(args):
                name = param_names[i] if i < len(param_names) else None
                scan(("pos", i), name, value)
            for name, value in kwargs.items():
                scan(("kw", name), name, value)

            node.submit_order = next(self._submit_order)
            outstanding = self.graph.add_task(node, deps)
            # New data versions become visible only after deps are wired.
            for _, future in node.inout_futures:
                future._reset_for_new_version(task_id)
            self._register_writes_locked(node, directions, param_names)
            self._pending_deps[task_id] = len(outstanding)
            self._active_tasks += 1
            if not outstanding:
                node.state = TaskState.READY
                node.ready_at = _time.monotonic()
                self._ready.append(node)
                self._wake.notify_all()

        return self._package_returns(futures, n_returns)

    def _register_writes_locked(self, node: TaskNode, directions, param_names) -> None:
        """Update last-writer registries for file and object parameters."""
        def reg(name: Optional[str], value: Any) -> None:
            if name is None:
                return
            direction = directions.get(name, Direction.IN)
            if not direction.writes or isinstance(value, Future):
                return
            if direction.is_file:
                self._file_writers[str(value)] = node.task_id
            else:
                self._object_writers[id(value)] = (value, node.task_id)

        for i, value in enumerate(node.args):
            reg(param_names[i] if i < len(param_names) else None, value)
        for name, value in node.kwargs.items():
            reg(name, value)

    @staticmethod
    def _package_returns(futures: tuple, n_returns: int):
        if n_returns == 0:
            return None
        if n_returns == 1:
            return futures[0]
        return futures

    # ------------------------------------------------------------------
    # Worker execution
    # ------------------------------------------------------------------

    def _worker_loop(self, worker_id: int) -> None:
        _worker_context.active = True
        while True:
            with self._wake:
                node = None
                while node is None:
                    if self._shutdown:
                        return
                    node = self._select_runnable(worker_id)
                    if node is None:
                        if self.config.poll_interval_s:
                            # Legacy polling: sleep a full tick on a
                            # condition readiness events never notify
                            # (``_poll`` shares the lock with ``_wake``
                            # but only shutdown signals it), so a task
                            # becoming ready mid-tick waits for the
                            # next poll — the baseline C9 quantifies.
                            self._poll.wait(
                                timeout=self.config.poll_interval_s
                            )
                        else:
                            # Event-driven: sleep until notified.
                            # Every transition that can make a task
                            # runnable notifies this condition —
                            # submission, completion, resubmission,
                            # cancellation, shutdown — and the timer
                            # wheel covers backoff and blacklist-grace
                            # deadlines.
                            self._wake.wait()
                self._free_units -= node.computing_units
                node.state = TaskState.RUNNING
                node.worker_id = worker_id
                node.attempts += 1
            self._execute(node, worker_id)

    def _select_runnable(self, worker_id: int) -> Optional[TaskNode]:
        """Pick a ready task whose computing units fit; lock is held.

        Retrying tasks are skipped while their backoff window is open.
        A worker avoids tasks that already failed on it (per-worker
        blacklist), but only for ``config.blacklist_grace_s`` past the
        backoff window: the blacklist is a placement preference, not a
        ban — the non-blacklisted workers may all be pinned by
        long-running tasks that transitively depend on the retrying one,
        and honouring the blacklist forever would deadlock the graph.
        """
        now = _time.monotonic()
        grace = self.config.blacklist_grace_s
        fitting = [
            t for t in self._ready
            if t.computing_units <= self._free_units
            and t.not_before <= now
            and (
                worker_id not in t.blacklisted_workers
                or now >= t.not_before + grace
            )
        ]
        if not fitting:
            return None
        chosen = self._policy.select(fitting, worker_id, self.graph)
        if chosen is not None:
            self._ready.remove(chosen)
        return chosen

    def _plan_transfers(
        self, node: TaskNode, worker_id: int
    ) -> Tuple[int, List[Tuple[int, int]], List[Tuple[int, int]]]:
        """Classify this task's dependencies for *worker_id*, mutating nothing.

        Returns ``(local, cache_hits, fetches)`` where *local* counts
        dependencies produced on this worker and the two lists hold
        ``(producer id, nbytes)`` pairs: *cache_hits* are remote outputs
        already resident on the worker, *fetches* must actually move.
        Planning is separated from :meth:`_commit_transfers` so a
        dispatch aborted by the fault injector charges nothing and
        caches nothing.
        """
        local = 0
        remote: List[Tuple[int, int]] = []
        for pred_id in self.graph.predecessors(node.task_id):
            pred = self.graph.task(pred_id)
            if pred.worker_id is None or pred.worker_id == worker_id:
                local += 1
            else:
                remote.append((pred_id, pred.result_nbytes))
        cache_hits, fetches = self.data_cache.split(worker_id, remote)
        return local, cache_hits, fetches

    def _commit_transfers(
        self,
        node: TaskNode,
        worker_id: int,
        plan: Tuple[int, List[Tuple[int, int]], List[Tuple[int, int]]],
    ) -> None:
        """Charge the planned movement and admit fetched outputs."""
        local, cache_hits, fetches = plan
        moved = sum(nbytes for _, nbytes in fetches)
        saved = sum(nbytes for _, nbytes in cache_hits)
        evicted = self.data_cache.commit(worker_id, cache_hits, fetches)
        cache_enabled = self.data_cache.enabled
        with self._lock:
            self.transfer_stats["local_hits"] += local
            self.transfer_stats["remote_transfers"] += len(fetches)
            self.transfer_stats["bytes_transferred"] += moved
            self.transfer_stats["cache_hits"] += len(cache_hits)
            if cache_enabled:
                self.transfer_stats["cache_misses"] += len(fetches)
            self.transfer_stats["cache_evictions"] += evicted
            self.transfer_stats["bytes_saved"] += saved
        registry = get_registry()
        transfers = registry.counter(
            "compss_transfers_total",
            "Dependency placements by kind (local hit, resident-set "
            "cache hit, or inter-worker move)",
            labels=("kind",),
        )
        if local:
            transfers.inc(local, kind="local_hit")
        if cache_hits:
            transfers.inc(len(cache_hits), kind="cache_hit")
        if fetches:
            transfers.inc(len(fetches), kind="remote")
        if moved:
            registry.counter(
                "compss_transfer_bytes_total",
                "Bytes moved between workers for dependencies",
            ).inc(moved)
        if cache_enabled:
            registry.counter(
                "compss_cache_hits_total",
                "Remote dependencies served from worker resident sets",
            ).inc(len(cache_hits))
            registry.counter(
                "compss_cache_misses_total",
                "Remote dependencies absent from worker resident sets",
            ).inc(len(fetches))
        if saved:
            registry.counter(
                "compss_transfer_bytes_saved_total",
                "Bytes not re-transferred thanks to worker resident sets",
            ).inc(saved)
        if evicted:
            registry.counter(
                "compss_cache_evictions_total",
                "Resident-set entries evicted under the byte budget",
            ).inc(evicted)

    #: Containers deeper than this stop contributing to the estimate; at
    #: 32 levels the residual payload is negligible for any real task
    #: result, and shared references are counted once anyway.
    _ESTIMATE_MAX_DEPTH = 32

    @staticmethod
    def _estimate_nbytes(value: Any, depth: int = 0, _seen: Optional[set] = None) -> int:
        """Rough payload size of a task result (arrays dominate).

        Recurses through nested containers (a per-year list of daily
        maps is a real task payload here) with identity-based cycle
        protection; an object reachable through several aliases is
        charged once, matching its actual memory footprint.
        """
        import sys as _sys

        nbytes = getattr(value, "nbytes", None)
        if nbytes is not None:
            try:
                return int(nbytes)
            except (TypeError, ValueError):
                pass
        if (
            isinstance(value, (list, tuple, dict))
            and depth < COMPSsRuntime._ESTIMATE_MAX_DEPTH
        ):
            if _seen is None:
                _seen = set()
            if id(value) in _seen:
                return 0
            _seen.add(id(value))
            items = value.values() if isinstance(value, dict) else value
            return sum(
                COMPSsRuntime._estimate_nbytes(v, depth + 1, _seen)
                for v in items
            )
        try:
            return _sys.getsizeof(value)
        except TypeError:  # pragma: no cover - exotic objects
            return 0

    def _execute(self, node: TaskNode, worker_id: int) -> None:
        # Queue-wait is only known at dispatch: record it retroactively,
        # parented to the submitter's context so it lands in the trace
        # between submission and execution.
        dispatch = _time.monotonic()
        if node.ready_at is not None:
            wait = max(0.0, dispatch - node.ready_at)
            get_registry().histogram(
                "compss_queue_wait_seconds",
                "Time tasks spend in the ready queue before dispatch",
                labels=("function",),
            ).observe(wait, function=node.func_name)
            record_span(
                f"queue:{node.func_name}#{node.task_id}", layer="scheduler",
                start=node.ready_at, end=dispatch, parent=node.trace_ctx,
                attrs={"task_id": node.task_id, "worker_id": worker_id,
                       "category": "queue", "function": node.func_name},
            )
        with activate(node.trace_ctx):
            with maybe_span(
                f"{node.func_name}#{node.task_id}", layer="compss",
                attrs={"task_id": node.task_id, "worker_id": worker_id,
                       "attempt": node.attempts, "category": "compute",
                       "function": node.func_name},
            ) as handle:
                transfer_plan = self._plan_transfers(node, worker_id)
                start = self.tracer.now()
                try:
                    injector = self.config.fault_injector or _ambient_fault_injector
                    if injector is not None:
                        # Resident-set hits never touch the network, so
                        # only the planned fetches are eligible for
                        # injected transfer failures.
                        injector.before_task(
                            node.func_name, node.task_id, worker_id,
                            node.attempts, remote_deps=len(transfer_plan[2]),
                        )
                    if transfer_plan[2]:
                        # Remote fetches get their own span so the
                        # critical-path profiler can attribute transfer
                        # time separately from the task's compute time.
                        with maybe_span(
                            f"transfer:{node.func_name}#{node.task_id}",
                            layer="compss",
                            attrs={"category": "transfer",
                                   "task_id": node.task_id,
                                   "worker_id": worker_id,
                                   "n_fetches": len(transfer_plan[2])},
                        ):
                            self._commit_transfers(node, worker_id, transfer_plan)
                    else:
                        self._commit_transfers(node, worker_id, transfer_plan)
                    mat_args = tuple(self._materialise(a) for a in node.args)
                    mat_kwargs = {
                        k: self._materialise(v) for k, v in node.kwargs.items()
                    }
                    result = node.fn(*mat_args, **mat_kwargs)
                except BaseException as exc:  # noqa: BLE001 - policy decides
                    handle.set_status("ERROR")
                    handle.set_attr("error", repr(exc))
                    self.tracer.record(TaskEvent(
                        node.task_id, node.func_name, worker_id,
                        start, self.tracer.now(), "FAILED",
                    ))
                    self._handle_failure(node, exc)
                    return
                self.tracer.record(TaskEvent(
                    node.task_id, node.func_name, worker_id,
                    start, self.tracer.now(), "COMPLETED",
                ))
            self._complete(node, result, mat_args, mat_kwargs)

    @staticmethod
    def _materialise(value: Any) -> Any:
        """Replace futures (top level and one level into containers) by values.

        Uses the future's *current version* value: an INOUT parameter of
        the executing task reads the previous version, which the
        dependency edges guarantee is final.
        """
        if isinstance(value, Future):
            return value._value  # guarded by dependency ordering
        # Rebuild containers only when they hold futures: a plain list
        # argument must keep its identity so INOUT mutations are visible.
        if isinstance(value, (list, tuple)) and any(
            isinstance(v, Future) for v in value
        ):
            items = (v._value if isinstance(v, Future) else v for v in value)
            return list(items) if isinstance(value, list) else tuple(items)
        return value

    def _normalise_results(self, node: TaskNode, result: Any) -> Tuple[Any, ...]:
        n = node.n_returns
        if n == 0:
            return ()
        if n == 1:
            return (result,)
        if not isinstance(result, (tuple, list)) or len(result) != n:
            raise TypeError(
                f"task {node.func_name!r} declared returns={n} but returned "
                f"{type(result).__name__}"
            )
        return tuple(result)

    def _complete(self, node: TaskNode, result: Any, mat_args, mat_kwargs) -> None:
        try:
            values = self._normalise_results(node, result)
        except TypeError as exc:
            self._handle_failure(node, exc)
            return

        node.result_nbytes = sum(self._estimate_nbytes(v) for v in values)
        for future, value in zip(node.futures, values):
            future._set_value(value)
        # INOUT futures resolve to the (mutated-in-place) materialised arg.
        for slot, future in node.inout_futures:
            if future.last_writer_id != node.task_id:
                continue  # a later task already owns the next version
            kind, key = slot
            mutated = mat_args[key] if kind == "pos" else mat_kwargs[key]
            future._set_value(mutated)

        if self.config.checkpoint is not None and node.ckpt_signature is not None:
            try:
                self.config.checkpoint.store(node.ckpt_signature, values)
            except Exception:  # noqa: BLE001 - unpicklable outputs (e.g.
                # live datacube handles) are simply not checkpointable;
                # the task re-executes on restart instead.
                pass

        with self._wake:
            node.state = TaskState.COMPLETED
            self._finish_locked(node)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    def _retry_reason(self, node: TaskNode, exc: BaseException) -> Optional[str]:
        """Classify a failure as retryable; returns the reason or ``None``.

        Accounting contract (locked in by tests): ``attempts`` counts
        *started executions*, so after the first failure
        ``retries_done = attempts - 1 == 0``.  A RETRY task re-executes
        while ``retries_done < max_retries`` — ``max_retries=N`` means
        exactly N re-executions, N+1 executions total.  Transient
        (infrastructure) failures draw from the separate
        ``config.transient_retries`` budget whatever the policy, so a
        flaky-I/O blip does not consume an application-level verdict.
        """
        if getattr(exc, "transient", False):
            node.transient_failures += 1
            if node.transient_failures <= self.config.transient_retries:
                return "transient"
        # Executions burned by the transient budget must not count
        # against max_retries, or a flaky-I/O blip would silently eat a
        # RETRY attempt.  (Capped at the budget: once it is exhausted,
        # further transient failures do spend RETRY attempts, so a
        # permanently "transient" error still terminates.)
        transient_resubmits = min(
            node.transient_failures, self.config.transient_retries
        )
        retries_done = node.attempts - 1 - transient_resubmits
        if node.on_failure is OnFailure.RETRY and retries_done < node.max_retries:
            return "policy"
        return None

    def _resubmit(self, node: TaskNode, exc: BaseException, reason: str) -> None:
        """Put a failed task back on the ready queue with backoff."""
        retries_done = node.attempts - 1
        backoff = 0.0
        if self.config.retry_backoff_base > 0:
            backoff = min(
                self.config.retry_backoff_cap,
                self.config.retry_backoff_base * (2 ** retries_done),
            )
        now = _time.monotonic()
        failed_worker = node.worker_id
        with self._wake:
            if failed_worker is not None:
                node.blacklisted_workers.add(failed_worker)
                if len(node.blacklisted_workers) >= self.config.n_workers:
                    # Every worker has failed this task: a blanket ban
                    # would starve it, so wipe the slate instead.
                    node.blacklisted_workers.clear()
            node.state = TaskState.READY
            node.ready_at = now
            node.not_before = now + backoff
            # The failed execution's units come back until re-dispatch
            # (matched 1:1 with the decrement in _worker_loop, so the
            # retry path cannot double-free).
            self._free_units += node.computing_units
            self._ready.append(node)
            self._wake.notify_all()
        # Idle workers sleep untimed, so the two time-based windows this
        # resubmission opens are turned into explicit wake-ups: one when
        # the backoff expires, one when the blacklist grace lapses and
        # the previously failing workers become eligible again.
        if backoff > 0:
            self._timers.schedule(node.not_before, self._notify_ready)
        if node.blacklisted_workers and self.config.blacklist_grace_s > 0:
            self._timers.schedule(
                node.not_before + self.config.blacklist_grace_s,
                self._notify_ready,
            )
        get_registry().counter(
            "compss_tasks_retried_total",
            "Task resubmissions by function and cause",
            labels=("function", "reason"),
        ).inc(function=node.func_name, reason=reason)
        record_span(
            f"retry:{node.func_name}#{node.task_id}", layer="compss",
            start=now, end=now + backoff, parent=node.trace_ctx,
            attrs={
                "task_id": node.task_id, "attempt": node.attempts,
                "reason": reason, "backoff_s": round(backoff, 6),
                "failed_worker": failed_worker, "error": repr(exc),
                "category": "queue", "function": node.func_name,
            },
        )
        emit_event(
            "WARNING", "compss", "task_retried",
            f"{node.func_name}#{node.task_id} resubmitted "
            f"(attempt {node.attempts}, {reason}): {exc!r}",
            task_id=node.task_id, function=node.func_name,
            attempt=node.attempts, reason=reason,
            backoff_s=round(backoff, 6), error=repr(exc),
        )

    def _notify_ready(self) -> None:
        """Wake every waiter on the ready-queue condition (timer payload)."""
        with self._wake:
            self._wake.notify_all()

    def _handle_failure(self, node: TaskNode, exc: BaseException) -> None:
        policy = node.on_failure
        reason = self._retry_reason(node, exc)
        if reason is not None:
            self._resubmit(node, exc, reason)
            return

        if policy is OnFailure.IGNORE:
            node.exception = exc
            for future in node.futures:
                future._set_value(None)
            for _, future in node.inout_futures:
                if future.last_writer_id == node.task_id:
                    future._set_value(None)
            with self._wake:
                node.state = TaskState.COMPLETED
                self._finish_locked(node)
            return

        # FAIL / CANCEL_SUCCESSORS / exhausted RETRY.
        node.exception = exc
        emit_event(
            "ERROR", "compss", "task_failed",
            f"{node.func_name}#{node.task_id} failed terminally "
            f"after {node.attempts} attempt(s): {exc!r}",
            task_id=node.task_id, function=node.func_name,
            attempts=node.attempts, policy=policy.name, error=repr(exc),
        )
        error = TaskFailedError(node.task_id, node.func_name, exc)
        for future in node.futures:
            future._set_exception(error)
        for _, future in node.inout_futures:
            if future.last_writer_id == node.task_id:
                future._set_exception(error)

        cancel_ids = self.graph.descendants(node.task_id)
        listeners: List[Any] = []
        with self._wake:
            node.state = TaskState.FAILED
            if policy is not OnFailure.CANCEL_SUCCESSORS:
                if self._workflow_error is None:
                    listeners = self._failure_listeners
                    self._failure_listeners = []
                self._workflow_error = error
            self._finish_locked(node)
            for cid in sorted(cancel_ids):
                self._cancel_locked(cid, cause=error)
        for callback in listeners:
            try:
                callback()
            except Exception:  # noqa: BLE001 - listeners must not mask
                pass          # the workflow error being propagated

    def _cancel_locked(
        self, task_id: int, cause: Optional[BaseException] = None
    ) -> None:
        node = self.graph.task(task_id)
        if node.state.terminal or node.state is TaskState.RUNNING:
            return
        node.state = TaskState.CANCELLED
        # The task never ran, so no execution span exists for it; without
        # an explicit close the trace of a chaos run would simply drop
        # cancelled work.  Record a zero-advance ERROR span covering the
        # time the task spent waiting before cancellation.
        now = _time.monotonic()
        record_span(
            f"cancel:{node.func_name}#{node.task_id}", layer="compss",
            start=node.ready_at if node.ready_at is not None else now,
            end=now, parent=node.trace_ctx, status="ERROR",
            attrs={"task_id": node.task_id, "category": "queue",
                   "function": node.func_name,
                   "cause": repr(cause) if cause is not None else "cancelled"},
        )
        emit_event(
            "WARNING", "compss", "task_cancelled",
            f"{node.func_name}#{node.task_id} cancelled"
            + (f": {cause!r}" if cause is not None else ""),
            task_id=node.task_id, function=node.func_name,
            cause=repr(cause) if cause is not None else None,
        )
        cancel_error = TaskCancelledError(node.task_id, node.func_name, cause)
        for future in node.futures:
            future._set_exception(cancel_error)
        for _, future in node.inout_futures:
            if future.last_writer_id == node.task_id:
                future._set_exception(cancel_error)
        if node in self._ready:
            self._ready.remove(node)
        self._pending_deps.pop(task_id, None)
        self._active_tasks -= 1
        node.done_event.set()
        self._wake.notify_all()

    # ------------------------------------------------------------------
    # Completion plumbing
    # ------------------------------------------------------------------

    def _finish_locked(self, node: TaskNode) -> None:
        """Release resources and wake dependents; lock is held."""
        if node.worker_id is not None:
            self._free_units += node.computing_units
        self._pending_deps.pop(node.task_id, None)
        self._active_tasks -= 1
        node.done_event.set()
        if node.state is TaskState.COMPLETED:
            for succ_id in self.graph.successors(node.task_id):
                remaining = self._pending_deps.get(succ_id)
                if remaining is None:
                    continue
                remaining -= 1
                self._pending_deps[succ_id] = remaining
                succ = self.graph.task(succ_id)
                if remaining == 0 and succ.state is TaskState.PENDING:
                    succ.state = TaskState.READY
                    succ.ready_at = _time.monotonic()
                    self._ready.append(succ)
        self._wake.notify_all()

    # ------------------------------------------------------------------
    # Synchronisation API
    # ------------------------------------------------------------------

    def wait_on(self, obj: Any, timeout: Optional[float] = None) -> Any:
        """Synchronise: block for futures (recursively through containers).

        *timeout* bounds the whole synchronisation: one monotonic
        deadline is shared by every future encountered while recursing,
        so waiting on a container of N futures blocks at most *timeout*
        seconds total — not ``2 × N × timeout`` as the historical
        per-wait application of the parameter allowed.
        """
        deadline = None if timeout is None else _time.monotonic() + timeout
        return self._wait_on_deadline(obj, deadline)

    def _wait_on_deadline(self, obj: Any, deadline: Optional[float]) -> Any:
        def remaining() -> Optional[float]:
            if deadline is None:
                return None
            return max(0.0, deadline - _time.monotonic())

        if isinstance(obj, Future):
            writer = obj.last_writer_id
            if writer is not None:
                if not self.graph.task(writer).done_event.wait(remaining()):
                    raise TimeoutError(f"task {writer} did not finish in time")
            return obj.result(remaining())
        if isinstance(obj, list):
            return [self._wait_on_deadline(v, deadline) for v in obj]
        if isinstance(obj, tuple):
            return tuple(self._wait_on_deadline(v, deadline) for v in obj)
        if isinstance(obj, dict):
            return {k: self._wait_on_deadline(v, deadline) for k, v in obj.items()}
        return obj

    def barrier(self, timeout: Optional[float] = None, raise_on_error: bool = True) -> None:
        """Block until every submitted task is terminal.

        With *raise_on_error* (default), re-raises the first workflow
        failure recorded by a task with the ``FAIL``/``RETRY`` policy.
        """
        deadline = None if timeout is None else _time.monotonic() + timeout
        with self._wake:
            while self._active_tasks > 0:
                remaining = None if deadline is None else deadline - _time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"barrier timed out with {self._active_tasks} live tasks"
                    )
                # Without a caller deadline this wait is untimed: every
                # task-terminal transition notifies the condition, so
                # there is nothing to re-check until one arrives.
                self._wake.wait(timeout=remaining)
        if raise_on_error and self._workflow_error is not None:
            raise self._workflow_error

    @property
    def failed(self) -> bool:
        with self._lock:
            return self._workflow_error is not None

    def add_failure_listener(self, callback) -> None:
        """Register *callback* to fire once when the workflow first fails.

        Fires immediately (on the calling thread) when the runtime has
        already failed; otherwise on the worker thread that records the
        first terminal error, outside the runtime lock.  This is the
        event-driven replacement for polling :attr:`failed`: stream
        consumers register an interrupt (e.g. ``collector.close``) so a
        blocked wait wakes the moment the workflow dies.
        """
        fire_now = False
        with self._lock:
            if self._workflow_error is not None:
                fire_now = True
            else:
                self._failure_listeners.append(callback)
        if fire_now:
            callback()

    def status(self) -> Dict[str, Any]:
        """Live monitoring snapshot (the WMS 'monitoring' feature of §2).

        Safe to call from any thread while the workflow runs.
        """
        with self._lock:
            ready = len(self._ready)
            active = self._active_tasks
            free_units = self._free_units
        by_state = dict(self.graph.counts_by_state())
        running = [
            f"{t.func_name}#{t.task_id}" for t in self.graph.tasks()
            if t.state is TaskState.RUNNING
        ]
        return {
            "submitted": len(self.graph),
            "active": active,
            "ready": ready,
            "running": running,
            "free_computing_units": free_units,
            "by_state": by_state,
            "failed": self._workflow_error is not None,
        }

    def stop(self, wait: bool = True) -> None:
        """Shut the runtime down; with *wait*, drain submitted tasks first."""
        if wait:
            try:
                self.barrier(raise_on_error=False)
            except TimeoutError:  # pragma: no cover - defensive
                pass
        with self._wake:
            if not wait:
                # A hard stop abandons queued work: close each not-yet-
                # running task with an ERROR span so the exported trace
                # stays well-formed instead of silently losing them.
                now = _time.monotonic()
                for node in self.graph.tasks():
                    if node.state in (TaskState.PENDING, TaskState.READY):
                        record_span(
                            f"abandon:{node.func_name}#{node.task_id}",
                            layer="compss",
                            start=node.ready_at
                            if node.ready_at is not None else now,
                            end=now, parent=node.trace_ctx, status="ERROR",
                            attrs={"task_id": node.task_id,
                                   "category": "queue",
                                   "function": node.func_name,
                                   "cause": "runtime stopped"},
                        )
            self._shutdown = True
            self._wake.notify_all()
            self._poll.notify_all()
        for w in self._workers:
            w.join(timeout=5)
        self._timers.stop()
        with self._lock:
            self._object_writers.clear()
