"""Declarative SLOs: live breach detection and post-hoc compliance checks.

An SLO rule names a metric selector (a counter/gauge value or a
histogram quantile), a threshold, a severity, and optionally an
evaluation window.  Rules are written in YAML (parsed with the repo's
dependency-free subset parser) and evaluated two ways:

* **live** — :class:`SLOMonitor` is a lightweight evaluator the
  workflow drivers hook into the metrics registry: a background thread
  snapshots the registry on a fixed interval, evaluates every rule, and
  on a transition into breach emits an ``slo_breach`` event (severity
  per rule) into the structured event log and increments
  ``slo_breaches_total{slo,severity}`` — an in-flight health signal
  while the run is still executing;
* **post-hoc** — ``repro slo check`` evaluates the same rules against a
  finished run's ``metrics.json`` / ``run_summary.json`` or a ``runs.db``
  row, exiting nonzero on critical breaches so CI can gate on them.

Rule file format (``slos:`` list, one mapping per rule)::

    slos:
      - name: year-dispatch-p95
        metric: workflow_year_dispatch_wait_seconds
        quantile: 0.95          # omit for counter/gauge value
        max: 2.5                # or `min:` for higher-is-better
        severity: critical      # default warning
        window_s: 10            # live: evaluate over the trailing window
        labels:                 # optional series selector
          mode: pipelined

``max`` / ``min`` is the objective: ``max`` breaches when the observed
value exceeds it, ``min`` when the value falls below.  With
``window_s``, the live evaluator diffs the current snapshot against the
ring snapshot from ``window_s`` ago, so the rule tracks *recent*
traffic rather than the whole run; post-hoc evaluation always sees the
full run delta (the window is a live-only refinement).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.observability.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    snapshot_histogram_quantile,
    snapshot_value,
)

__all__ = [
    "SLOMonitor",
    "SLOResult",
    "SLORule",
    "evaluate_rules",
    "load_slo_rules",
    "parse_slo_rules",
    "render_slo_report",
    "slo_report",
]


@dataclass(frozen=True)
class SLORule:
    """One declarative objective over a metric selector."""

    name: str
    metric: str
    threshold: float
    objective: str = "max"            # "max": value must stay <=; "min": >=
    quantile: Optional[float] = None  # histogram quantile selector
    labels: Dict[str, str] = field(default_factory=dict)
    severity: str = "warning"         # "warning" | "critical"
    window_s: Optional[float] = None  # live evaluation window
    description: str = ""

    def __post_init__(self) -> None:
        if self.objective not in ("max", "min"):
            raise ValueError(f"slo {self.name!r}: objective must be max|min")
        if self.severity not in ("warning", "critical"):
            raise ValueError(
                f"slo {self.name!r}: severity must be warning|critical"
            )
        if self.quantile is not None and not 0.0 <= self.quantile <= 1.0:
            raise ValueError(f"slo {self.name!r}: quantile outside [0, 1]")
        if self.window_s is not None and self.window_s <= 0:
            raise ValueError(f"slo {self.name!r}: window_s must be positive")

    def observe(self, snapshot_json: Mapping[str, Any]) -> float:
        """The rule's observed value on one (delta) snapshot."""
        if self.metric not in snapshot_json:
            return math.nan  # absent metric: nothing to judge
        if self.quantile is not None:
            return snapshot_histogram_quantile(
                snapshot_json, self.metric, self.quantile, **self.labels
            )
        return snapshot_value(snapshot_json, self.metric, **self.labels)

    def check(self, value: float) -> bool:
        """True when *value* satisfies the objective.

        ``nan`` (metric absent / histogram empty) counts as compliant:
        an SLO on traffic that never happened has nothing to breach.
        """
        if math.isnan(value):
            return True
        if self.objective == "max":
            return value <= self.threshold
        return value >= self.threshold

    def selector(self) -> str:
        sel = self.metric
        if self.quantile is not None:
            sel = f"p{round(self.quantile * 100):g}({sel})"
        if self.labels:
            inner = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
            sel += "{" + inner + "}"
        return sel


@dataclass(frozen=True)
class SLOResult:
    """Outcome of evaluating one rule once."""

    rule: SLORule
    value: float
    ok: bool

    def to_json(self) -> Dict[str, Any]:
        return {
            "slo": self.rule.name,
            "selector": self.rule.selector(),
            "objective": self.rule.objective,
            "threshold": self.rule.threshold,
            "severity": self.rule.severity,
            "value": None if math.isnan(self.value) else self.value,
            "ok": self.ok,
        }


# ---------------------------------------------------------------------------
# Rule loading
# ---------------------------------------------------------------------------

def parse_slo_rules(text: str) -> List[SLORule]:
    """Parse SLO rules from YAML text (the repo's YAML subset)."""
    from repro.hpcwaas.yamlsubset import parse_yaml

    doc = parse_yaml(text)
    if doc is None:
        return []
    if isinstance(doc, dict):
        entries = doc.get("slos")
    else:
        entries = doc
    if not isinstance(entries, list):
        raise ValueError("SLO file must be a 'slos:' list of rule mappings")
    rules: List[SLORule] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"slos[{i}] is not a mapping")
        rules.append(_rule_from_mapping(entry, i))
    names = [r.name for r in rules]
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise ValueError(f"duplicate SLO names: {sorted(dupes)}")
    return rules


def _rule_from_mapping(entry: Mapping[str, Any], index: int) -> SLORule:
    known = {"name", "metric", "quantile", "max", "min", "severity",
             "window_s", "labels", "description"}
    unknown = set(entry) - known
    if unknown:
        raise ValueError(f"slos[{index}]: unknown keys {sorted(unknown)}")
    metric = entry.get("metric")
    if not metric:
        raise ValueError(f"slos[{index}]: 'metric' is required")
    has_max, has_min = "max" in entry, "min" in entry
    if has_max == has_min:
        raise ValueError(
            f"slos[{index}]: exactly one of 'max'/'min' is required"
        )
    threshold = entry["max"] if has_max else entry["min"]
    if not isinstance(threshold, (int, float)) or isinstance(threshold, bool):
        raise ValueError(f"slos[{index}]: threshold must be a number")
    labels = entry.get("labels") or {}
    if not isinstance(labels, dict):
        raise ValueError(f"slos[{index}]: 'labels' must be a mapping")
    quantile = entry.get("quantile")
    return SLORule(
        name=str(entry.get("name") or f"slo-{index}"),
        metric=str(metric),
        threshold=float(threshold),
        objective="max" if has_max else "min",
        quantile=None if quantile is None else float(quantile),
        labels={str(k): str(v) for k, v in labels.items()},
        severity=str(entry.get("severity", "warning")).lower(),
        window_s=(None if entry.get("window_s") is None
                  else float(entry["window_s"])),
        description=str(entry.get("description", "")),
    )


def load_slo_rules(path: str) -> List[SLORule]:
    with open(path, "r", encoding="utf-8") as fh:
        return parse_slo_rules(fh.read())


# ---------------------------------------------------------------------------
# Post-hoc evaluation
# ---------------------------------------------------------------------------

def evaluate_rules(
    rules: Sequence[SLORule], snapshot_json: Mapping[str, Any]
) -> List[SLOResult]:
    """Evaluate every rule against one (delta) metrics snapshot."""
    results = []
    for rule in rules:
        value = rule.observe(snapshot_json)
        results.append(SLOResult(rule, value, rule.check(value)))
    return results


def slo_report(results: Sequence[SLOResult]) -> Dict[str, Any]:
    breaches = [r for r in results if not r.ok]
    critical = [r for r in breaches if r.rule.severity == "critical"]
    return {
        "passed": not breaches,
        "critical_breaches": len(critical),
        "warning_breaches": len(breaches) - len(critical),
        "n_rules": len(results),
        "results": [r.to_json() for r in results],
    }


def render_slo_report(results: Sequence[SLOResult]) -> str:
    lines = []
    for r in results:
        mark = "ok  " if r.ok else ("CRIT" if r.rule.severity == "critical"
                                    else "WARN")
        shown = "n/a" if math.isnan(r.value) else f"{r.value:.6g}"
        op = "<=" if r.rule.objective == "max" else ">="
        lines.append(
            f"  [{mark}] {r.rule.name}: {r.rule.selector()} = {shown} "
            f"(objective {op} {r.rule.threshold:g})"
        )
    breaches = [r for r in results if not r.ok]
    critical = sum(1 for r in breaches if r.rule.severity == "critical")
    verdict = "PASS" if not breaches else (
        "FAIL" if critical else "WARN"
    )
    lines.append(
        f"slo check: {verdict} — {len(results)} rules, "
        f"{len(breaches)} breaches ({critical} critical)"
    )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Live evaluation
# ---------------------------------------------------------------------------

class SLOMonitor:
    """Background evaluator emitting breach events while a run executes.

    Every *interval* seconds the monitor snapshots the registry,
    computes the delta since the run started (or, per rule, since
    ``window_s`` ago using a ring of timestamped snapshots) and checks
    each rule.  On a compliant→breach transition it emits an
    ``slo_breach`` event at the rule's severity and increments
    ``slo_breaches_total{slo,severity}``; on recovery it emits
    ``slo_recovered`` at INFO.  A final evaluation runs at
    :meth:`stop`, so even sub-interval runs get checked once.

    The monitor is deliberately decoupled from the workflow outcome:
    breaches never raise; gating is the post-hoc check's job.
    """

    def __init__(
        self,
        rules: Sequence[SLORule],
        interval: float = 0.25,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.rules = list(rules)
        self.interval = interval
        self._registry = registry
        self._baseline: Optional[MetricsSnapshot] = None
        #: (monotonic timestamp, snapshot) ring for window deltas.
        self._ring: Deque[Tuple[float, MetricsSnapshot]] = deque(maxlen=512)
        self._breached: Dict[str, bool] = {r.name: False for r in self.rules}
        self._breach_counts: Dict[str, int] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SLOMonitor":
        if self._thread is not None:
            raise RuntimeError("monitor already started")
        self._stop.clear()
        snap = self.registry.snapshot()
        self._baseline = snap
        self._ring.append((time.monotonic(), snap))
        if self.rules:
            self._thread = threading.Thread(
                target=self._loop, name="slo-monitor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> Dict[str, int]:
        """Stop the thread, run one final evaluation; breach counts."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.rules and self._baseline is not None:
            self.evaluate_once()
        with self._lock:
            return dict(self._breach_counts)

    def __enter__(self) -> "SLOMonitor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- evaluation ---------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.evaluate_once()
            except Exception:  # noqa: BLE001 - monitoring never kills a run
                pass

    def evaluate_once(self) -> List[SLOResult]:
        """One evaluation pass over all rules (also called by tests)."""
        from repro.observability.events import get_event_log

        now = time.monotonic()
        snap = self.registry.snapshot()
        baseline = self._baseline
        if baseline is None:
            return []
        run_delta = snap.delta(baseline).to_json()
        window_deltas: Dict[float, Mapping[str, Any]] = {}
        results: List[SLOResult] = []
        registry = self.registry
        log = get_event_log()
        for rule in self.rules:
            if rule.window_s is None:
                delta = run_delta
            else:
                delta = window_deltas.get(rule.window_s)
                if delta is None:
                    anchor = self._snapshot_before(now - rule.window_s, baseline)
                    delta = snap.delta(anchor).to_json()
                    window_deltas[rule.window_s] = delta
            value = rule.observe(delta)
            ok = rule.check(value)
            results.append(SLOResult(rule, value, ok))
            with self._lock:
                was_breached = self._breached[rule.name]
                self._breached[rule.name] = not ok
                if not ok and not was_breached:
                    self._breach_counts[rule.name] = (
                        self._breach_counts.get(rule.name, 0) + 1
                    )
                    fire_breach = True
                else:
                    fire_breach = False
                fire_recovery = ok and was_breached
            if fire_breach:
                registry.counter(
                    "slo_breaches_total",
                    "Live SLO breach transitions by rule and severity",
                    labels=("slo", "severity"),
                ).inc(slo=rule.name, severity=rule.severity)
                log.emit(
                    "CRITICAL" if rule.severity == "critical" else "WARNING",
                    "slo", "slo_breach",
                    f"{rule.name}: {rule.selector()} = {value:.6g} violates "
                    f"{'<=' if rule.objective == 'max' else '>='} "
                    f"{rule.threshold:g}",
                    slo=rule.name, value=value, threshold=rule.threshold,
                    objective=rule.objective, window_s=rule.window_s,
                )
            elif fire_recovery:
                log.emit(
                    "INFO", "slo", "slo_recovered",
                    f"{rule.name}: {rule.selector()} back within objective",
                    slo=rule.name, value=value, threshold=rule.threshold,
                )
        self._ring.append((now, snap))
        return results

    def _snapshot_before(
        self, cutoff: float, fallback: MetricsSnapshot
    ) -> MetricsSnapshot:
        """Newest ring snapshot taken at or before *cutoff*."""
        anchor = fallback
        for ts, snap in self._ring:
            if ts <= cutoff:
                anchor = snap
            else:
                break
        return anchor

    # -- state --------------------------------------------------------------

    @property
    def breached_rules(self) -> List[str]:
        with self._lock:
            return sorted(n for n, b in self._breached.items() if b)

    @property
    def breach_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._breach_counts)
