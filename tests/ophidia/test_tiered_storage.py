"""Tiered storage and pruning: byte-identity under every configuration.

The contract under test: chunk-stat predicate pruning, fragment-bound
subset pruning and cold-tier spill/reload are *pure* optimisations —
every pipeline output is byte-identical (values **and** dtype) to the
dense, untiered execution, including when a spill fails mid-run and the
fragment silently stays hot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.metrics import MetricsRegistry, get_registry, set_registry
from repro.ophidia import Client, Cube, OphidiaServer

PRED = "oph_predicate('OPH_FLOAT','OPH_INT',measure,'x','{cond}','{t}','{e}')"


@pytest.fixture
def fresh_registry():
    old = get_registry()
    reg = MetricsRegistry()
    set_registry(reg)
    yield reg
    set_registry(old)


def run_pipeline(data, baseline, cond, then_v, else_v, *, nfrag, server_kwargs):
    """anomaly -> predicate -> runlength -> reduce, on one server config."""
    with OphidiaServer(n_io_servers=2, n_cores=2, lazy=True, **server_kwargs) as server:
        client = Client(server)
        dc = Cube.from_array(
            data, ["time", "lat", "lon"], client=client,
            fragment_dim="lat", nfrag=nfrag,
        )
        bc = Cube.from_array(
            baseline, ["time", "lat", "lon"], client=client,
            fragment_dim="lat", nfrag=nfrag,
        )
        masked = dc.intercube(bc, "sub").apply(
            PRED.format(cond=cond, t=then_v, e=else_v)
        )
        duration = masked.runlength(dim="time")
        out = duration.reduce("max", dim="time").to_array().copy()
        flags = masked.to_array().copy()
    return flags, out


conditions = st.tuples(
    st.sampled_from([">", ">=", "<", "<=", "=", "!="]),
    st.sampled_from([-4.0, 0.0, 3.5, 8.0]),
).map(lambda c: f"{c[0]}{c[1]}")
branches = st.sampled_from(["1", "0", "x", "2.5"])


class TestPruningByteIdentity:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 50),
        nfrag=st.integers(1, 4),
        cond=conditions,
        then_v=branches,
        else_v=branches,
        bump=st.booleans(),
    )
    def test_pruned_equals_dense(self, seed, nfrag, cond, then_v, else_v, bump):
        rng = np.random.default_rng(seed)
        data = 280 + rng.uniform(-1, 1, size=(24, 8, 6))
        if bump:  # a decidable hot band plus decidable cold chunks
            data[8:16] += 8.0
        baseline = np.full_like(data, 280.0)
        dense = run_pipeline(
            data, baseline, cond, then_v, else_v, nfrag=nfrag,
            server_kwargs={"prune": False},
        )
        pruned = run_pipeline(
            data, baseline, cond, then_v, else_v, nfrag=nfrag,
            server_kwargs={"chunk_bytes": 1024},
        )
        for a, b in zip(dense, pruned):
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 50),
        nfrag=st.integers(2, 4),
        start_f=st.floats(0, 0.6),
        len_f=st.floats(0.1, 1.0),
    )
    def test_fragment_subset_pruning_equals_dense(self, seed, nfrag, start_f,
                                                  len_f):
        data = np.random.default_rng(seed).normal(size=(6, 12, 4))
        n_lat = data.shape[1]
        start = int(start_f * (n_lat - 1))
        stop = min(n_lat, start + max(1, int(len_f * n_lat)))
        results = []
        for prune in (False, True):
            with OphidiaServer(n_io_servers=2, n_cores=2, lazy=True,
                               prune=prune) as server:
                client = Client(server)
                cube = Cube.from_array(
                    data, ["time", "lat", "lon"], client=client,
                    fragment_dim="lat", nfrag=nfrag,
                )
                out = cube.subset("lat", start, stop)
                results.append(out.to_array().copy())
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[1], data[:, start:stop])


class TestTieredByteIdentity:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 50),
        nfrag=st.integers(1, 4),
        cond=conditions,
        budget=st.sampled_from([512, 4096, 32768]),
        codec=st.sampled_from(["zlib", "none"]),
    )
    def test_spilled_equals_dense(self, tmp_path_factory, seed, nfrag, cond,
                                  budget, codec):
        rng = np.random.default_rng(seed)
        data = 280 + rng.uniform(-1, 1, size=(24, 8, 6))
        baseline = np.full_like(data, 280.0)
        dense = run_pipeline(
            data, baseline, cond, "1", "0", nfrag=nfrag,
            server_kwargs={"prune": False},
        )
        tiered = run_pipeline(
            data, baseline, cond, "1", "0", nfrag=nfrag,
            server_kwargs={
                "chunk_bytes": 1024,
                "memory_budget_bytes": budget,
                "spill_dir": str(tmp_path_factory.mktemp("spill")),
                "spill_codec": codec,
            },
        )
        for a, b in zip(dense, tiered):
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)

    def test_spill_actually_happens_under_tiny_budget(self, tmp_path,
                                                      fresh_registry):
        data = 280 + np.random.default_rng(0).uniform(-1, 1, size=(24, 8, 6))
        baseline = np.full_like(data, 280.0)
        run_pipeline(
            data, baseline, ">=5.0", "1", "0", nfrag=4,
            server_kwargs={
                "chunk_bytes": 1024,
                "memory_budget_bytes": 2048,
                "spill_dir": str(tmp_path),
            },
        )
        assert fresh_registry.counter_value("ophidia_fragments_spilled_total") > 0

    def test_mid_run_spill_failure_is_transparent(self, tmp_path, monkeypatch,
                                                  fresh_registry):
        """A spill that dies mid-write must not change any output byte."""
        import repro.ophidia.storage as storage_mod

        data = 280 + np.random.default_rng(7).uniform(-1, 1, size=(24, 8, 6))
        data[4:12] += 8.0
        baseline = np.full_like(data, 280.0)
        dense = run_pipeline(
            data, baseline, ">=5.0", "1", "0", nfrag=4,
            server_kwargs={"prune": False},
        )

        real_write = storage_mod._write_spill_file
        calls = {"n": 0}

        def flaky_write(path, frag, codec):
            calls["n"] += 1
            if calls["n"] % 3 == 0:  # every third spill tears mid-run
                raise OSError("injected: disk full")
            return real_write(path, frag, codec)

        monkeypatch.setattr(storage_mod, "_write_spill_file", flaky_write)
        tiered = run_pipeline(
            data, baseline, ">=5.0", "1", "0", nfrag=4,
            server_kwargs={
                "chunk_bytes": 1024,
                "memory_budget_bytes": 2048,
                "spill_dir": str(tmp_path),
            },
        )
        assert calls["n"] >= 3, "fault injection never triggered"
        assert fresh_registry.counter_value("ophidia_spill_failures_total") > 0
        for a, b in zip(dense, tiered):
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)


class TestPruningEffectiveness:
    def test_decidable_chunks_are_pruned(self, fresh_registry):
        """A hot band on an otherwise-cold cube prunes most chunks."""
        rng = np.random.default_rng(0)
        data = 280 + rng.uniform(-1, 1, size=(64, 12, 16))
        data[24:40] += 8.0
        baseline = np.full_like(data, 280.0)
        run_pipeline(
            data, baseline, ">=5.0", "1", "0", nfrag=4,
            server_kwargs={"chunk_bytes": 3072},
        )
        pruned = fresh_registry.counter_value("ophidia_chunks_pruned_total")
        read = fresh_registry.counter_value("ophidia_chunks_read_total")
        assert pruned > 0
        assert pruned / (pruned + read) >= 0.5

    def test_subset_outside_fragment_bounds_skips_fragments(self,
                                                            fresh_registry):
        data = np.random.default_rng(1).normal(size=(6, 12, 4))
        with OphidiaServer(n_io_servers=2, n_cores=2, lazy=True) as server:
            client = Client(server)
            cube = Cube.from_array(
                data, ["time", "lat", "lon"], client=client,
                fragment_dim="lat", nfrag=4,
            )
            out = cube.subset("lat", 0, 3).to_array()
        np.testing.assert_array_equal(out, data[:, 0:3])
        assert fresh_registry.counter_value("ophidia_fragments_pruned_total") == 3
