"""A GPFS-like shared filesystem with I/O accounting.

Backed by a real directory so that the RNC files the simulated ESM writes
are genuine files the downstream analytics read back.  All access goes
through this object, which counts operations and bytes; experiment C2
("in-memory baseline reuse reduces storage reads") is measured with these
counters.
"""

from __future__ import annotations

import fnmatch
import os
import threading
from dataclasses import dataclass, field
from typing import List

from repro.netcdf import Dataset, read_dataset, write_dataset
from repro.netcdf.io import read_header


@dataclass
class FilesystemStats:
    """Cumulative operation counters for a shared filesystem."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    lists: int = 0
    deletes: int = 0

    def snapshot(self) -> "FilesystemStats":
        return FilesystemStats(
            self.reads, self.writes, self.bytes_read,
            self.bytes_written, self.lists, self.deletes,
        )

    def delta(self, earlier: "FilesystemStats") -> "FilesystemStats":
        """Counters accumulated since *earlier* (an older snapshot)."""
        return FilesystemStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
            self.lists - earlier.lists,
            self.deletes - earlier.deletes,
        )


class SharedFilesystem:
    """Shared parallel-filesystem facade over a root directory.

    Paths given to the API are *relative* to the filesystem root and use
    ``/`` separators, mirroring how workflow code addresses a scratch
    space (``output/year_2015/day_001.rnc``).
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.path.abspath(os.fspath(root))
        os.makedirs(self.root, exist_ok=True)
        self.stats = FilesystemStats()
        self._lock = threading.Lock()

    # -- path handling -----------------------------------------------------

    def _resolve(self, rel_path: str) -> str:
        full = os.path.abspath(os.path.join(self.root, rel_path))
        if not full.startswith(self.root + os.sep) and full != self.root:
            raise ValueError(f"path {rel_path!r} escapes the filesystem root")
        return full

    def path(self, rel_path: str) -> str:
        """Absolute host path of *rel_path* (for passing to external code)."""
        return self._resolve(rel_path)

    # -- dataset I/O ---------------------------------------------------------

    def write(self, rel_path: str, dataset: Dataset) -> int:
        """Write an RNC dataset; returns bytes written."""
        full = self._resolve(rel_path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        nbytes = write_dataset(dataset, full)
        with self._lock:
            self.stats.writes += 1
            self.stats.bytes_written += nbytes
        return nbytes

    def read(self, rel_path: str, variables=None) -> Dataset:
        """Read an RNC dataset (optionally a variable subset)."""
        full = self._resolve(rel_path)
        ds = read_dataset(full, variables=variables)
        with self._lock:
            self.stats.reads += 1
            self.stats.bytes_read += ds.nbytes
        return ds

    def read_header(self, rel_path: str) -> dict:
        """Read only the metadata header; counts as a (cheap) read."""
        full = self._resolve(rel_path)
        header = read_header(full)
        with self._lock:
            self.stats.reads += 1
        return header

    # -- raw bytes (checkpoints, logs, images) --------------------------------

    def write_bytes(self, rel_path: str, payload: bytes) -> int:
        full = self._resolve(rel_path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "wb") as fh:
            n = fh.write(payload)
        with self._lock:
            self.stats.writes += 1
            self.stats.bytes_written += n
        return n

    def read_bytes(self, rel_path: str) -> bytes:
        full = self._resolve(rel_path)
        with open(full, "rb") as fh:
            payload = fh.read()
        with self._lock:
            self.stats.reads += 1
            self.stats.bytes_read += len(payload)
        return payload

    # -- namespace ops ---------------------------------------------------------

    def exists(self, rel_path: str) -> bool:
        return os.path.exists(self._resolve(rel_path))

    def makedirs(self, rel_path: str) -> None:
        os.makedirs(self._resolve(rel_path), exist_ok=True)

    def listdir(self, rel_path: str = ".") -> List[str]:
        """Sorted directory listing; empty if the directory doesn't exist."""
        full = self._resolve(rel_path)
        with self._lock:
            self.stats.lists += 1
        if not os.path.isdir(full):
            return []
        return sorted(os.listdir(full))

    def glob(self, rel_dir: str, pattern: str) -> List[str]:
        """Sorted relative paths under *rel_dir* matching *pattern*."""
        entries = self.listdir(rel_dir)
        matched = fnmatch.filter(entries, pattern)
        prefix = "" if rel_dir in (".", "") else rel_dir.rstrip("/") + "/"
        return [prefix + name for name in matched]

    def delete(self, rel_path: str) -> None:
        full = self._resolve(rel_path)
        os.remove(full)
        with self._lock:
            self.stats.deletes += 1

    def size(self, rel_path: str) -> int:
        return os.path.getsize(self._resolve(rel_path))
