"""Smoke tests: every example script runs end-to-end at tiny scale.

Examples are executed in-process (import + ``main()`` with patched
``sys.argv``) so they stay cheap while still exercising their full code
paths.  Keeping them green keeps the documentation honest.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list, monkeypatch) -> None:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    monkeypatch.setattr(sys, "argv", [name] + argv)
    spec.loader.exec_module(module)
    module.main()


@pytest.fixture(scope="module")
def tc_model_path(tmp_path_factory):
    from repro.workflow.tasks import ensure_tc_model

    return ensure_tc_model(None, 16, str(tmp_path_factory.mktemp("tc")))


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        run_example("quickstart.py", ["--days", "6", "--no-ml"], monkeypatch)
        out = capsys.readouterr().out
        assert "science summary" in out
        assert "makespan" in out

    def test_heatwave_indices(self, monkeypatch, capsys):
        run_example("heatwave_indices.py", ["--days", "20"], monkeypatch)
        out = capsys.readouterr().out
        assert "Ophidia pipeline == NumPy reference: OK" in out

    def test_streaming_overlap(self, monkeypatch, capsys):
        run_example(
            "streaming_overlap.py",
            ["--days", "6", "--years", "1", "--pace", "0.01"],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "science identical across schedules: OK" in out

    def test_hpcwaas_deployment(self, monkeypatch, capsys):
        run_example("hpcwaas_deployment.py", ["--days", "5"], monkeypatch)
        out = capsys.readouterr().out
        assert "published workflow id" in out
        assert "UNDEPLOYED" in out

    def test_distributed_federation(self, monkeypatch, capsys):
        run_example(
            "distributed_federation.py",
            ["--days", "4", "--years", "2030"],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "data logistics:" in out

    def test_fault_tolerance(self, monkeypatch, capsys):
        run_example("fault_tolerance.py", [], monkeypatch)
        out = capsys.readouterr().out
        assert "RETRY:" in out
        assert "recovered from" in out

    # Warnings-as-errors: a 20-day window can contain zero wave cells,
    # which used to make the spread computation average an empty slice
    # (NaN + RuntimeWarning).  Keep it locked down.
    @pytest.mark.filterwarnings("error")
    def test_ensemble_analysis(self, monkeypatch, capsys):
        run_example(
            "ensemble_analysis.py", ["--members", "2", "--days", "20"],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "r1i1p1f1" in out and "r2i1p1f1" in out
        assert "mean spread where waves occur:" in out

    def test_percentile_indices(self, monkeypatch, capsys):
        run_example(
            "percentile_indices.py", ["--hist-years", "3", "--days", "30"],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "days above p90" in out

    def test_scenario_comparison(self, monkeypatch, capsys):
        run_example(
            "scenario_comparison.py", ["--days", "20", "--decades", "2"],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "pathway divergence" in out

    def test_tc_detection(self, monkeypatch, capsys, tc_model_path):
        run_example(
            "tc_detection.py", ["--days", "6", "--model", tc_model_path],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "deterministic tracker:" in out
        assert "CNN localizer:" in out
