"""Empirical baseline climatologies.

The paper's workflow loads "baseline values with the long-term
historical averages (e.g., computed over a 20-year period)".  This
module computes such baselines empirically from stacks of simulated
years — the per-calendar-day mean across years, optionally smoothed with
a circular day-of-year window to suppress sampling noise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def empirical_baseline(yearly_fields: Sequence[np.ndarray]) -> np.ndarray:
    """Per-calendar-day mean over *yearly_fields*.

    Each element is one year shaped (n_days, lat, lon); all years must
    share a shape.  Returns the same shape averaged across years.
    """
    if not yearly_fields:
        raise ValueError("need at least one year of data")
    stack = [np.asarray(y) for y in yearly_fields]
    shape = stack[0].shape
    for i, y in enumerate(stack):
        if y.shape != shape:
            raise ValueError(
                f"year {i} has shape {y.shape}, expected {shape}"
            )
    return np.mean(stack, axis=0)


def smooth_doy_baseline(baseline: np.ndarray, window_days: int = 15) -> np.ndarray:
    """Circular moving average along the day-of-year axis (axis 0).

    The calendar wraps: the window for January 2nd includes late
    December, as in ETCCDI percentile baselines.  *window_days* must be
    odd so the window is centred.
    """
    baseline = np.asarray(baseline, dtype=np.float64)
    if window_days < 1 or window_days % 2 == 0:
        raise ValueError("window_days must be a positive odd number")
    if window_days == 1:
        return baseline.copy()
    n = baseline.shape[0]
    if window_days > n:
        raise ValueError(f"window {window_days} longer than the year ({n} days)")
    half = window_days // 2
    padded = np.concatenate([baseline[-half:], baseline, baseline[:half]], axis=0)
    # Cumulative-sum moving average along axis 0.
    csum = np.cumsum(padded, axis=0)
    csum = np.concatenate([np.zeros_like(csum[:1]), csum], axis=0)
    out = (csum[window_days:] - csum[:-window_days]) / window_days
    return out


def percentile_baseline(
    yearly_fields: Sequence[np.ndarray],
    q: float = 90.0,
    window_days: int = 5,
) -> np.ndarray:
    """ETCCDI percentile baseline (TX90p / TN10p family).

    For each calendar day, pool the values of a centred circular
    *window_days* window across all years and take the *q*-th
    percentile — the exact construction of the ETCCDI percentile
    indices the paper's heat-wave definitions reference.

    Returns an array shaped like one year: ``(n_days, lat, lon)``.
    """
    if not yearly_fields:
        raise ValueError("need at least one year of data")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if window_days < 1 or window_days % 2 == 0:
        raise ValueError("window_days must be a positive odd number")
    stack = np.stack([np.asarray(y) for y in yearly_fields])  # (Y, D, ...)
    n_days = stack.shape[1]
    if window_days > n_days:
        raise ValueError(
            f"window {window_days} longer than the year ({n_days} days)"
        )
    half = window_days // 2
    offsets = np.arange(-half, half + 1)
    out = np.empty(stack.shape[1:], dtype=np.float64)
    for day in range(n_days):
        window = (day + offsets) % n_days  # circular calendar
        pooled = stack[:, window]          # (Y, window, ...)
        out[day] = np.percentile(
            pooled.reshape(-1, *stack.shape[2:]), q, axis=0
        )
    return out
