"""A deadline timer for the event-driven scheduler core.

The runtime's ready-queue condition is notified by *events* (task
completion, submission, node restore); the only genuinely time-based
wake-ups left are retry-backoff windows and blacklist-grace expiries.
Rather than having every idle worker re-poll on a short timeout, those
deadlines are registered here: a single lazily-started daemon thread
sleeps until exactly the earliest deadline and fires its callback
(typically ``Condition.notify_all`` on the ready queue).

The name follows the classic "timer wheel" used by OS schedulers and
event loops; with the handful of concurrent deadlines a workflow run
produces, a binary heap is the right-sized implementation of the same
contract: O(log n) schedule, wake exactly when the next deadline is due,
sleep forever when none is pending.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, List, Tuple

__all__ = ["TimerWheel"]


class TimerWheel:
    """Fires callbacks at monotonic-clock deadlines from one daemon thread.

    Callbacks run outside the wheel's internal lock and must be short and
    non-blocking (the intended payload is a condition notify).  A callback
    that raises is dropped; it cannot take the timer thread down with it.
    """

    def __init__(self, name: str = "timer-wheel") -> None:
        self._name = name
        self._cond = threading.Condition()
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._thread: threading.Thread | None = None
        self._stopped = False

    def schedule(self, deadline: float, callback: Callable[[], None]) -> None:
        """Run *callback* once ``time.monotonic()`` reaches *deadline*.

        A deadline already in the past fires promptly (on the timer
        thread, never inline).  After :meth:`stop`, scheduling is a
        silent no-op so late registrations on shutdown paths are safe.
        """
        with self._cond:
            if self._stopped:
                return
            heapq.heappush(self._heap, (deadline, next(self._seq), callback))
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name=self._name, daemon=True
                )
                self._thread.start()
            self._cond.notify_all()

    def stop(self) -> None:
        """Discard pending deadlines and join the timer thread."""
        with self._cond:
            self._stopped = True
            self._heap.clear()
            self._cond.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    def _run(self) -> None:
        while True:
            due: List[Callable[[], None]] = []
            with self._cond:
                while not due:
                    if self._stopped:
                        return
                    now = time.monotonic()
                    while self._heap and self._heap[0][0] <= now:
                        due.append(heapq.heappop(self._heap)[2])
                    if due:
                        break
                    wait = self._heap[0][0] - now if self._heap else None
                    self._cond.wait(timeout=wait)
            for callback in due:
                try:
                    callback()
                except Exception:  # noqa: BLE001 - timer thread must survive
                    pass
