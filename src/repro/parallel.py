"""Process-pool execution with shared-memory array transport.

The thread backend is the default everywhere: NumPy kernels release the
GIL, so fragment sweeps already parallelise for array-dominated work.
The process backend exists for the other regime — operator chains with
real Python-level work per fragment (AST evaluation, run-length
encoding, user transforms) where the GIL serialises threads.  Fragment
kernels are compiled to picklable :class:`FragmentKernel` objects,
shipped to a spawn-based :class:`ProcessPoolBackend`, and arrays cross
the process boundary through POSIX shared memory instead of pickled
copies: the parent writes inputs into segments the children map
directly, and children write results into segments the parent copies
out and unlinks.

Spawn (not fork) is mandatory: the parent runs many threads (COMPSs
workers, stream pollers, the LSF dispatcher) and forking a threaded
process deadlocks on whatever locks the other threads held.  Spawned
children inherit ``sys.path``, so the ``repro`` package resolves in the
workers exactly as in the parent.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.observability.shipping import (
    TelemetryCapture, merge_envelope, serialize_context,
)
from repro.observability.spans import current_context

__all__ = [
    "SHM_MIN_BYTES",
    "FragmentKernel",
    "ProcessPoolBackend",
    "decode_array",
    "encode_array",
    "payload_picklable",
]

#: Arrays smaller than this ship inline (pickled): creating and mapping
#: a shared-memory segment has a fixed syscall cost that only pays off
#: for larger payloads.
SHM_MIN_BYTES = 64 * 1024


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Withdraw a segment from this process's resource tracker.

    On Python < 3.13 every ``SharedMemory`` registers with the process's
    resource tracker, including attachments to segments another process
    owns (bpo-39959).  Lifecycle here is explicit — exactly one process
    unlinks each segment — so the extra registrations would only produce
    spurious "leaked shared_memory" warnings at worker exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - tracker internals vary by version
        pass


def encode_array(
    arr: np.ndarray, min_shm_bytes: int = SHM_MIN_BYTES
) -> Tuple[tuple, Optional[shared_memory.SharedMemory]]:
    """Encode an array for the process boundary.

    Returns ``(handle, segment)``: *segment* is ``None`` for small
    arrays shipped inline, otherwise the newly created shared-memory
    segment holding the data.  The caller owns the segment — it must
    stay linked until every consumer has decoded the handle, then be
    ``close()``d and ``unlink()``ed (or handed over via
    :func:`_untrack` + ``close`` when the *other* side unlinks).
    """
    arr = np.ascontiguousarray(arr)
    if arr.nbytes < min_shm_bytes:
        return ("inline", arr), None
    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)[...] = arr
    return ("shm", shm.name, arr.shape, arr.dtype.str), shm


def _attach(handle: tuple) -> Tuple[np.ndarray, Optional[shared_memory.SharedMemory]]:
    """Map a handle to an array without copying (worker-side input path).

    The returned array aliases the segment buffer; the caller must keep
    the returned segment open while using it and ``close()`` it after.
    """
    if handle[0] == "inline":
        return handle[1], None
    _, name, shape, dtype = handle
    seg = shared_memory.SharedMemory(name=name)
    _untrack(seg)  # the creating process owns the unlink
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf), seg


def decode_array(handle: tuple) -> np.ndarray:
    """Materialise a result handle, releasing its segment (parent side)."""
    if handle[0] == "inline":
        return handle[1]
    _, name, shape, dtype = handle
    seg = shared_memory.SharedMemory(name=name)
    try:
        return np.array(
            np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf), copy=True
        )
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - defensive
            pass


def payload_picklable(obj: Any) -> bool:
    """Whether *obj* survives the spawn boundary (gate for the process path)."""
    try:
        pickle.dumps(obj)
        return True
    except Exception:  # noqa: BLE001 - any pickling failure means "no"
        return False


@dataclass(frozen=True)
class FragmentKernel:
    """A compiled per-fragment operator chain, backend-agnostic.

    Each stage is a picklable callable ``stage(data, i) -> (out, extra)``
    where *extra* is avoided-intermediate bytes the stage accounts for
    internally (intercube operand chains).  ``n_metered`` leading stage
    outputs additionally count as avoided materialisations — the thread
    and process backends share this accounting, so fusion metrics are
    identical whichever executes the sweep.
    """

    stages: Tuple[Callable[..., Any], ...]
    n_metered: int

    def run(self, data: Any, i: int) -> Tuple[np.ndarray, int]:
        """Apply all stages to fragment *i*; returns (result, avoided bytes).

        *data* may also be a cold-fragment handle (anything exposing
        ``hydrate()``, e.g. :class:`repro.ophidia.storage.SpillHandle`):
        hydration happens here, inside whichever worker runs the sweep,
        so spilled fragments never stage through the parent's memory.
        """
        if hasattr(data, "hydrate"):
            data = data.hydrate()
        avoided = 0
        for k, stage in enumerate(self.stages):
            data, extra = stage(data, i)
            avoided += extra
            if k < self.n_metered:
                avoided += data.nbytes
        return np.asarray(data), avoided


def _run_kernel_task(payload: tuple) -> Tuple[tuple, int, Dict[str, Any]]:
    """Worker-side sweep step: map input, run the kernel, encode the result.

    The payload's optional fourth and fifth members are the parent's
    serialized span context and extra span attributes; the kernel runs
    under a :class:`TelemetryCapture` so its spans/metrics ship back in
    the returned envelope alongside the shared-memory result.
    """
    kernel, in_handle, i = payload[0], payload[1], payload[2]
    ctx = payload[3] if len(payload) > 3 else None
    attrs = dict(payload[4]) if len(payload) > 4 else {}
    attrs["fragment"] = i
    capture = TelemetryCapture(ctx, "worker.kernel", attrs=attrs)
    with capture:
        arr, seg = _attach(in_handle)
        try:
            out, avoided = kernel.run(arr, i)
        finally:
            if seg is not None:
                seg.close()
    out_handle, out_seg = encode_array(out)
    if out_seg is not None:
        # Ownership transfers to the parent, which unlinks after copying.
        _untrack(out_seg)
        out_seg.close()
    return out_handle, avoided, capture.envelope()


def _pack(obj: Any) -> tuple:
    """Recursively encode ndarrays in a result into shm handles."""
    if isinstance(obj, np.ndarray):
        handle, seg = encode_array(obj)
        if seg is not None:
            _untrack(seg)
            seg.close()
        return ("arr", handle)
    if isinstance(obj, tuple):
        return ("tuple", [_pack(v) for v in obj])
    if isinstance(obj, list):
        return ("list", [_pack(v) for v in obj])
    return ("obj", obj)


def _unpack(packed: tuple) -> Any:
    kind, value = packed
    if kind == "arr":
        return decode_array(value)
    if kind == "tuple":
        return tuple(_unpack(v) for v in value)
    if kind == "list":
        return [_unpack(v) for v in value]
    return value


def _call_packed(
    fn: Callable[[Any], Any], item: Any, ctx: Any = None
) -> Tuple[tuple, Dict[str, Any]]:
    capture = TelemetryCapture(ctx, "worker.map")
    with capture:
        packed = _pack(fn(item))
    return packed, capture.envelope()


class ProcessPoolBackend:
    """A lazily-spawned process pool with shared-memory result transport.

    Thin enough to be shared: the Ophidia server drives fragment sweeps
    through :meth:`map_kernel`, the ESM baseline fans day chunks out
    through :meth:`map`.  Workers spawn on first use (constructing the
    backend is free), and :meth:`shutdown` is idempotent, so error
    paths can drain unconditionally.
    """

    def __init__(self, max_workers: int, name: str = "repro-proc") -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = int(max_workers)
        self.name = name
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False

    @property
    def started(self) -> bool:
        with self._lock:
            return self._executor is not None

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def _ensure(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("process backend is shut down")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=get_context("spawn"),
                )
            return self._executor

    @staticmethod
    def _drain(
        futures: List[Any],
    ) -> Tuple[List[Any], Optional[BaseException]]:
        """Resolve every future; returns (ordered results, first error).

        Failed slots hold ``None``.  Resolving everything before the
        caller raises means no child still holds a mapping to an input
        segment when the caller unlinks them.
        """
        results: List[Any] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - caller re-raises
                if first_error is None:
                    first_error = exc
                results.append(None)
        return results, first_error

    def map_kernel(
        self,
        kernel: FragmentKernel,
        arrays: Sequence[Any],
        indices: Optional[Sequence[int]] = None,
        span_attrs: Optional[Dict[str, Any]] = None,
    ) -> Tuple[List[np.ndarray], int]:
        """Run *kernel* over pre-loaded fragment arrays in worker processes.

        Inputs travel via shared memory (above the inline threshold) and
        results come back the same way.  Non-array inputs (cold-fragment
        spill handles) ship pickled; the kernel hydrates them
        worker-side.  *indices* overrides the fragment index passed to
        each kernel invocation (default: position in *arrays*).
        Returns ``(results, avoided_bytes)`` with the same
        order-preserving, first-error-after-all-resolve semantics as
        the thread path's ``map_fragments``.

        The caller's active span context ships with every task, so
        worker kernel spans join the caller's trace (parenting under
        the dispatching sweep span), and each task's metrics delta
        merges back into this process's registry — a process sweep is
        telemetry-equivalent to a thread sweep.  *span_attrs* annotate
        the worker spans (e.g. the fused stage names).
        """
        executor = self._ensure()
        ctx = serialize_context(current_context())
        idx = list(indices) if indices is not None else list(range(len(arrays)))
        handles: List[tuple] = []
        segments: List[shared_memory.SharedMemory] = []
        try:
            for arr in arrays:
                if isinstance(arr, np.ndarray):
                    handle, seg = encode_array(arr)
                else:
                    handle, seg = ("inline", arr), None
                handles.append(handle)
                if seg is not None:
                    segments.append(seg)
            futures = [
                executor.submit(
                    _run_kernel_task,
                    (kernel, handle, i, ctx, span_attrs or {}),
                )
                for handle, i in zip(handles, idx)
            ]
            triples, first_error = self._drain(futures)
        finally:
            # Inputs are dead once every task resolved (each child holds
            # its own mapping only for the kernel's duration).
            for seg in segments:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - defensive
                    pass
        results: List[np.ndarray] = []
        avoided = 0
        for triple in triples:
            if triple is None:
                results.append(None)
                continue
            out_handle, extra, envelope = triple
            # Decode (and unlink) even when a sibling failed, so a
            # partial sweep cannot leak the successful results' segments.
            results.append(decode_array(out_handle))
            avoided += extra
            # Merge telemetry even on partially failed sweeps: the
            # successful tasks' spans and counters are real work done.
            merge_envelope(envelope)
        if first_error is not None:
            raise first_error
        return results, avoided

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Generic process map; ndarray results return via shared memory.

        *fn* must be picklable (a module-level function or a
        ``functools.partial`` over one).  As with :meth:`map_kernel`,
        the caller's span context propagates and each item's telemetry
        envelope merges back on completion.
        """
        executor = self._ensure()
        ctx = serialize_context(current_context())
        futures = [
            executor.submit(_call_packed, fn, item, ctx) for item in items
        ]
        pairs, first_error = self._drain(futures)
        results: List[Any] = []
        for pair in pairs:
            if pair is None:
                results.append(None)
                continue
            packed, envelope = pair
            results.append(_unpack(packed))
            merge_envelope(envelope)
        if first_error is not None:
            raise first_error
        return results

    def shutdown(self) -> None:
        """Join the workers; idempotent, safe on never-started backends."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=True)
