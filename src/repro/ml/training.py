"""Mini-batch training loop and gradient checking."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.ml.network import Sequential
from repro.ml.optim import Optimizer


@dataclass
class TrainingHistory:
    """Per-epoch aggregates."""

    loss: List[float] = field(default_factory=list)
    components: List[Dict[str, float]] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.loss[-1] if self.loss else float("nan")


#: A loss callable: (outputs, *targets) -> (loss, grad_wrt_outputs, components)
LossFn = Callable[..., Tuple[float, np.ndarray, Dict[str, float]]]


def train(
    model: Sequential,
    inputs: np.ndarray,
    targets: Tuple[np.ndarray, ...],
    loss_fn: LossFn,
    optimizer: Optimizer,
    epochs: int = 5,
    batch_size: int = 32,
    rng: Optional[np.random.Generator] = None,
    verbose: bool = False,
) -> TrainingHistory:
    """Train *model* on ``(inputs, targets)``; targets are passed through
    to *loss_fn* sliced by the same batch indices."""
    if epochs < 1 or batch_size < 1:
        raise ValueError("epochs and batch_size must be >= 1")
    n = inputs.shape[0]
    if n == 0:
        raise ValueError("empty training set")
    rng = rng or np.random.default_rng()
    history = TrainingHistory()

    for epoch in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        comp_sums: Dict[str, float] = {}
        n_batches = 0
        for start in range(0, n, batch_size):
            batch = order[start:start + batch_size]
            outputs = model.forward(inputs[batch], train=True)
            loss, grad, comps = loss_fn(outputs, *(t[batch] for t in targets))
            model.backward(grad)
            optimizer.step(model.params, model.grads)
            epoch_loss += loss
            for key, value in comps.items():
                comp_sums[key] = comp_sums.get(key, 0.0) + value
            n_batches += 1
        history.loss.append(epoch_loss / n_batches)
        history.components.append(
            {k: v / n_batches for k, v in comp_sums.items()}
        )
        if verbose:  # pragma: no cover - console aid
            print(f"epoch {epoch + 1}/{epochs}  loss={history.loss[-1]:.5f}")
    return history


def numerical_gradient(
    f: Callable[[], float], param: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of scalar *f* wrt *param* (in place)."""
    grad = np.zeros_like(param)
    it = np.nditer(param, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = param[idx]
        param[idx] = original + eps
        f_plus = f()
        param[idx] = original - eps
        f_minus = f()
        param[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad
