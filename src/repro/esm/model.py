"""The CMCC-CM3 model driver: the coupled daily integration loop.

``run_year`` integrates one simulated year day by day — atmosphere and
slab ocean exchanging through the coupler — and writes one RNC file per
day through a :class:`~repro.cluster.filesystem.SharedFilesystem`,
exactly the production pattern the workflow's streaming monitor watches.
Ground-truth events for each year are returned (and optionally persisted
as JSON) for detector validation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.cluster.filesystem import SharedFilesystem
from repro.esm.atmosphere import Atmosphere
from repro.esm.coupler import Coupler
from repro.esm.events import EventGenerator
from repro.esm.forcing import GHGScenario
from repro.esm.grid import Grid
from repro.esm.ocean import SlabOcean
from repro.esm.output import build_daily_dataset, daily_filename
from repro.netcdf import Dataset
from repro.netcdf.cf import DAYS_PER_YEAR


@dataclass
class RestartState:
    """Mid-run model state: everything needed to resume bit-identically.

    Real ESMs write restart files because multi-decade runs exceed any
    queue limit; resuming must reproduce the uninterrupted trajectory
    exactly.  The state is the prognostic fields (SST, AR(1) noise) plus
    the RNG's bit-generator state.
    """

    year: int
    next_doy: int
    noise: "np.ndarray"
    sst: "np.ndarray"
    rng_state: dict


@dataclass(frozen=True)
class ModelConfig:
    """Run configuration for the simulated CMCC-CM3.

    The defaults target unit-test scale; benchmarks override ``n_lat`` /
    ``n_lon`` upward.  The paper's production grid is 768x1152.
    """

    n_lat: int = 24
    n_lon: int = 36
    steps_per_day: int = 4
    scenario: GHGScenario = GHGScenario.SSP245
    seed: int = 42
    start_year: int = 2030
    with_events: bool = True

    def __post_init__(self) -> None:
        if self.steps_per_day < 1:
            raise ValueError("steps_per_day must be >= 1")


class CMCCCM3:
    """The coupled model: grid + atmosphere + ocean + coupler + events."""

    def __init__(self, config: Optional[ModelConfig] = None) -> None:
        self.config = config or ModelConfig()
        scenario = GHGScenario.coerce(self.config.scenario)
        self.grid = Grid(self.config.n_lat, self.config.n_lon)
        self.atmosphere = Atmosphere(
            self.grid, scenario, steps_per_day=self.config.steps_per_day
        )
        self.ocean = SlabOcean(self.grid, scenario)
        self.coupler = Coupler(self.grid)
        self.events = EventGenerator(
            self.grid, seed=self.config.seed,
            steps_per_day=self.config.steps_per_day,
        )

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------

    def iter_year(
        self,
        year: int,
        n_days: int = DAYS_PER_YEAR,
        restart: Optional[RestartState] = None,
        state_out: Optional[Dict] = None,
    ) -> Iterator[Tuple[int, Dataset]]:
        """Yield ``(doy, daily dataset)`` for *n_days* of *year*.

        With *restart*, integration resumes at ``restart.next_doy`` with
        the saved prognostic state, reproducing the uninterrupted
        trajectory bit-for-bit.  When *state_out* is given, it is updated
        in place after every day with the :class:`RestartState` fields,
        ready for :meth:`save_restart`.
        """
        cfg = self.config
        if restart is not None:
            if restart.year != year:
                raise ValueError(
                    f"restart is for year {restart.year}, requested {year}"
                )
            rng = np.random.default_rng()
            rng.bit_generator.state = restart.rng_state
            noise = np.array(restart.noise, dtype=np.float64)
            sst = np.array(restart.sst, dtype=np.float64)
            self.ocean.sst = sst
            start_doy = restart.next_doy
        else:
            rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, year, 7]))
            noise = self.atmosphere.initial_noise(rng)
            sst = self.ocean.initialise(year)
            start_doy = 1
        if cfg.with_events:
            year_events = self.events.events_for_year(year)
        else:
            year_events = {"heat_waves": [], "cold_waves": [], "tropical_cyclones": []}

        for doy in range(start_doy, n_days + 1):
            fields = self.atmosphere.daily_fields(
                year, doy, noise, sst,
                heat_waves=year_events["heat_waves"],
                cold_waves=year_events["cold_waves"],
                tropical_cyclones=year_events["tropical_cyclones"],
                rng=rng,
            )
            ds = build_daily_dataset(
                self.grid, year, doy, fields, cfg.steps_per_day,
                GHGScenario.coerce(cfg.scenario).value,
            )
            yield doy, ds
            # Couple for the next day.
            t2m_mean = fields["TREFHT"].mean(axis=0).astype(np.float64)
            wind = fields["WSPDSRFAV"].mean(axis=0).astype(np.float64)
            flux = self.coupler.atmosphere_to_ocean(t2m_mean, wind, sst)
            sst = self.ocean.step(year, doy + 1, flux)
            noise = self.atmosphere.step_noise(noise, rng)
            if state_out is not None:
                state_out.update(
                    year=year, next_doy=doy + 1, noise=noise.copy(),
                    sst=sst.copy(), rng_state=rng.bit_generator.state,
                )

    def run_year(
        self,
        year: int,
        filesystem: SharedFilesystem,
        output_dir: str = "esm_output",
        n_days: int = DAYS_PER_YEAR,
        on_day_written: Optional[Callable[[int, str], None]] = None,
        diagnostics: Optional["DiagnosticsRecorder"] = None,
        restart_every: int = 0,
        resume: bool = False,
    ) -> Dict[str, list]:
        """Integrate *year*, writing one file per day; returns ground truth.

        ``on_day_written(doy, rel_path)`` fires after each file lands —
        benchmarks use it to model production pace.  A
        :class:`~repro.esm.diagnostics.DiagnosticsRecorder` consumes each
        day online (the paper's §3 in-simulation diagnostics) and its
        record is persisted next to the output.

        With ``restart_every=K``, a restart file is written every K days;
        with ``resume=True``, the run continues from the newest restart
        file of this year instead of re-integrating from January 1st —
        the standard ESM crash-recovery pattern.
        """
        filesystem.makedirs(output_dir)
        restart = None
        if resume:
            restart = self._latest_restart(filesystem, year, n_days)
        state: Dict = {}
        for doy, ds in self.iter_year(
            year, n_days=n_days, restart=restart, state_out=state
        ):
            if diagnostics is not None:
                diagnostics.record_day(doy, ds)
            rel_path = f"{output_dir}/{daily_filename(year, doy)}"
            filesystem.write(rel_path, ds)
            if on_day_written is not None:
                on_day_written(doy, rel_path)
            if restart_every and doy % restart_every == 0 and doy < n_days:
                self.save_restart(filesystem, dict(state))
        if diagnostics is not None:
            filesystem.write_bytes(
                f"{output_dir}/diagnostics_{year:04d}.json",
                diagnostics.to_json(),
            )
        truth = self.ground_truth(year)
        filesystem.write_bytes(
            f"{output_dir}/ground_truth_{year:04d}.json",
            json.dumps(truth, indent=1).encode("utf-8"),
        )
        return truth

    def run(
        self,
        years: List[int],
        filesystem: SharedFilesystem,
        output_dir: str = "esm_output",
        n_days: int = DAYS_PER_YEAR,
    ) -> Dict[int, Dict[str, list]]:
        """Multi-year projection run; returns ground truth per year."""
        return {
            year: self.run_year(year, filesystem, output_dir, n_days=n_days)
            for year in years
        }

    def _latest_restart(
        self, filesystem: SharedFilesystem, year: int, n_days: int
    ) -> Optional[RestartState]:
        """Newest usable restart file for *year*, or None for a cold start."""
        candidates = filesystem.glob("restarts", f"restart_{year:04d}_*.rnc")
        best = None
        for rel in candidates:
            try:
                doy = int(rel.rsplit("_", 1)[-1].split(".")[0])
            except ValueError:
                continue
            if doy <= n_days and (best is None or doy > best[0]):
                best = (doy, rel)
        if best is None:
            return None
        return self.load_restart(filesystem, best[1])

    # ------------------------------------------------------------------
    # Restart files
    # ------------------------------------------------------------------

    def save_restart(
        self,
        filesystem: SharedFilesystem,
        state: "RestartState | Dict",
        path: Optional[str] = None,
    ) -> str:
        """Persist a restart file; returns its path.

        *state* is a :class:`RestartState` or the ``state_out`` dict
        filled by :meth:`iter_year`.
        """
        if isinstance(state, dict):
            state = RestartState(**state)
        ds = Dataset({
            "content": "restart",
            "year": state.year,
            "next_doy": state.next_doy,
            "rng_state": json.dumps(state.rng_state),
        })
        ds.create_variable("noise", state.noise, ("lat", "lon"))
        ds.create_variable("sst", state.sst, ("lat", "lon"))
        if path is None:
            path = f"restarts/restart_{state.year:04d}_{state.next_doy:03d}.rnc"
        filesystem.write(path, ds)
        return path

    @staticmethod
    def load_restart(filesystem: SharedFilesystem, path: str) -> RestartState:
        """Read a restart file back into a :class:`RestartState`."""
        ds = filesystem.read(path)
        if ds.attrs.get("content") != "restart":
            raise ValueError(f"{path!r} is not a restart file")
        return RestartState(
            year=int(ds.attrs["year"]),
            next_doy=int(ds.attrs["next_doy"]),
            noise=ds["noise"].data.astype(np.float64),
            sst=ds["sst"].data.astype(np.float64),
            rng_state=json.loads(ds.attrs["rng_state"]),
        )

    # ------------------------------------------------------------------
    # Ground truth / baselines
    # ------------------------------------------------------------------

    def ground_truth(self, year: int) -> Dict[str, list]:
        """JSON-ready event log for *year* (empty when events are off)."""
        if not self.config.with_events:
            return {"heat_waves": [], "cold_waves": [], "tropical_cyclones": []}
        per_kind = self.events.events_for_year(year)
        return {
            kind: [ev.to_dict() for ev in events]
            for kind, events in per_kind.items()
        }

    def baseline_dataset(
        self,
        baseline_year: int = 1995,
        n_days: int = DAYS_PER_YEAR,
        executor=None,
    ) -> Dataset:
        """The 20-year-average climatology file the workflow loads once.

        Contains per-day-of-year TMAX/TMIN baselines (no noise, no
        events) — the synthetic analogue of the paper's "long-term
        historical averages".

        Unlike :meth:`iter_year` (sequentially coupled day to day), each
        climatology day is an independent closed-form field, so with
        *executor* (a :class:`~repro.parallel.ProcessPoolBackend`) the
        days fan out across worker processes in chunks.  The per-day
        computation is deterministic and the stack order fixed, so both
        paths produce byte-identical datasets.
        """
        days = list(range(1, n_days + 1))
        if executor is not None:
            chunks = [days[i:i + 32] for i in range(0, len(days), 32)]
            fn = partial(
                _baseline_days_chunk, self.config, baseline_year
            )
            pairs = [p for chunk in executor.map(fn, chunks) for p in chunk]
        else:
            pairs = [
                (
                    self.atmosphere.baseline_tmax(
                        d, baseline_year,
                        sst_clim=self.ocean.sst_clim(baseline_year, d),
                    ),
                    self.atmosphere.baseline_tmin(
                        d, baseline_year,
                        sst_clim=self.ocean.sst_clim(baseline_year, d),
                    ),
                )
                for d in days
            ]
        tmax = np.stack([p[0] for p in pairs]).astype(np.float32)
        tmin = np.stack([p[1] for p in pairs]).astype(np.float32)
        ds = Dataset(
            {
                "model": "CMCC-CM3-sim",
                "content": "baseline climatology",
                "baseline_year": baseline_year,
            }
        )
        ds.create_dimension("time", n_days)
        ds.create_variable("lat", self.grid.lat, ("lat",), {"units": "degrees_north"})
        ds.create_variable("lon", self.grid.lon, ("lon",), {"units": "degrees_east"})
        ds.create_variable(
            "TMAX_BASELINE", tmax, ("time", "lat", "lon"), {"units": "K"}
        )
        ds.create_variable(
            "TMIN_BASELINE", tmin, ("time", "lat", "lon"), {"units": "K"}
        )
        return ds

    def write_baseline(
        self,
        filesystem: SharedFilesystem,
        path: str = "baselines/climatology.rnc",
        baseline_year: int = 1995,
        n_days: int = DAYS_PER_YEAR,
        executor=None,
    ) -> str:
        filesystem.write(
            path,
            self.baseline_dataset(baseline_year, n_days=n_days, executor=executor),
        )
        return path


def _baseline_days_chunk(
    config: ModelConfig, baseline_year: int, days: List[int]
) -> List[Tuple["np.ndarray", "np.ndarray"]]:
    """Worker-side climatology chunk: (tmax, tmin) fields for *days*.

    Module-level (picklable) and rebuilds the model from its frozen
    config once per chunk — the component constructors are cheap next to
    the per-day field computation they amortise over 32 days.
    """
    model = CMCCCM3(config)
    return [
        (
            model.atmosphere.baseline_tmax(
                d, baseline_year,
                sst_clim=model.ocean.sst_clim(baseline_year, d),
            ),
            model.atmosphere.baseline_tmin(
                d, baseline_year,
                sst_clim=model.ocean.sst_clim(baseline_year, d),
            ),
        )
        for d in days
    ]
