"""Post-hoc workflow profiler: critical path, timelines, what-ifs.

A finished run leaves two artefacts behind: the span tree recorded by
the :class:`~repro.observability.spans.TraceCollector` (every layer —
COMPSs tasks, scheduler queueing, transfers, filesystem I/O, Ophidia
sweeps, batch jobs — parents into one ``workflow.run`` root) and the
per-task schedule recorded by the COMPSs
:class:`~repro.compss.tracing.Tracer`.  This module turns them into the
quantities a performance engineer actually acts on:

* **critical path** — the chain of span segments that bounds the
  makespan.  The walk descends from the root span: within any span's
  window, the child finishing last owns the tail of the window, the
  child finishing last before *that* child started owns the region
  before it, and so on; uncovered gaps are the span's own self-time.
  Segments therefore partition the root window exactly — their summed
  durations equal the measured makespan by construction — and each
  segment is attributed to a cost category (queue / transfer / compute /
  io / orchestration) from its span's attributes.
* **utilization timelines** — per-worker busy/idle/blocked intervals
  derived from the task schedule ("blocked" = idle while ready work was
  waiting in the scheduler queue), plus straggler detection and the
  ESM-simulation / analytics overlap fraction (the paper's C1 claim).
* **what-if estimates** — the predicted makespan if the top-k critical
  contributors were free, so each perf PR knows where to aim first.

Both the in-process objects and an exported ``trace.json`` (the
Perfetto trace written by ``repro run --trace-out``) are accepted; the
two routes agree to export rounding (sub-microsecond).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.observability.spans import Span

__all__ = [
    "CATEGORIES",
    "ProfileError",
    "ProfileTaskEvent",
    "WorkflowProfile",
    "categorize_span",
    "profile_from_perfetto",
    "profile_spans",
    "render_profile",
    "spans_from_perfetto",
    "task_events_from_perfetto",
]

#: Cost categories every critical-path segment is attributed to.
CATEGORIES = ("compute", "io", "transfer", "queue", "orchestration")

#: Tasks slower than ``straggler_factor`` x their function's median (and
#: longer than this floor) are flagged; the floor keeps microsecond-scale
#: jitter from producing "stragglers" among trivially short tasks.
_STRAGGLER_FLOOR_S = 0.05

_TASK_SUFFIX = re.compile(r"#\d+$")

#: Keys :func:`build_perfetto_trace` injects into every span event's args
#: alongside the span's own attributes.
_PERFETTO_META_KEYS = ("trace_id", "span_id", "parent_id", "layer", "status")


class ProfileError(ValueError):
    """The trace is unusable for profiling (empty, or no root span)."""


@dataclass(frozen=True)
class ProfileTaskEvent:
    """A task attempt on the *span* clock (used for timelines/overlap)."""

    task_id: int
    func_name: str
    worker_id: int
    start: float
    end: float
    state: str

    @property
    def duration(self) -> float:
        return self.end - self.start


# ---------------------------------------------------------------------------
# Category attribution
# ---------------------------------------------------------------------------

def categorize_span(span: Span) -> str:
    """Cost category of one span.

    Instrumented layers stamp an explicit ``category`` attribute on the
    spans whose meaning is not implied by their layer (queue waits,
    transfers, batch pends); everything else falls back to a layer/name
    mapping so traces from older runs still profile.
    """
    explicit = span.attrs.get("category")
    if explicit in CATEGORIES:
        return explicit
    name = span.name
    if name.startswith(("queue:", "retry:", "pend:", "requeue:", "cancel:")):
        return "queue"
    if name.startswith("transfer:"):
        return "transfer"
    if span.layer == "filesystem":
        return "io"
    if span.layer == "scheduler":
        return "queue"
    if span.layer in ("compss", "esm", "ml", "ophidia", "cluster"):
        return "compute"
    return "orchestration"


def _name_key(name: str) -> str:
    """Aggregation key for a span name: the task-id suffix is stripped
    (``tc_inference#42`` → ``tc_inference``) so repeated invocations of
    one function pool together."""
    return _TASK_SUFFIX.sub("", name)


# ---------------------------------------------------------------------------
# Interval helpers (self-contained: profiles also run on parsed traces)
# ---------------------------------------------------------------------------

def _merge(intervals: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _overlap(a: List[Tuple[float, float]], b: List[Tuple[float, float]]) -> float:
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def _complement(
    merged: List[Tuple[float, float]], lo: float, hi: float
) -> List[Tuple[float, float]]:
    """Gaps of *merged* within ``[lo, hi]``."""
    gaps: List[Tuple[float, float]] = []
    cursor = lo
    for start, end in merged:
        if start > cursor:
            gaps.append((cursor, min(start, hi)))
        cursor = max(cursor, end)
        if cursor >= hi:
            break
    if cursor < hi:
        gaps.append((cursor, hi))
    return [(s, e) for s, e in gaps if e > s]


def _length(merged: List[Tuple[float, float]]) -> float:
    return sum(e - s for s, e in merged)


# ---------------------------------------------------------------------------
# The profile result
# ---------------------------------------------------------------------------

@dataclass
class WorkflowProfile:
    """Everything :func:`profile_spans` derives from one run's trace.

    All times are seconds relative to the root span's start; summed
    critical-path segment durations equal ``makespan_s`` exactly (the
    walk partitions the root window), which is the conservation property
    the acceptance tests pin down.
    """

    trace_id: str
    root_name: str
    makespan_s: float
    #: Chronological (start, end, name, layer, category, status) hops.
    critical_path: List[Dict[str, Any]] = field(default_factory=list)
    critical_path_s: float = 0.0
    #: Critical seconds by cost category; sums to ``critical_path_s``.
    categories: Dict[str, float] = field(default_factory=dict)
    #: Critical seconds pooled by span-name key (task ids stripped).
    by_name: List[Dict[str, Any]] = field(default_factory=list)
    #: Predicted makespans with the top contributors made free.
    what_if: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-worker busy/idle/blocked accounting over the task window.
    workers: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Task attempts far over their function's median duration.
    stragglers: List[Dict[str, Any]] = field(default_factory=list)
    #: ESM-vs-analytics co-execution (the paper's C1 quantity).
    overlap: Dict[str, float] = field(default_factory=dict)
    task_window_s: float = 0.0
    n_spans: int = 0
    n_task_events: int = 0

    def to_json(self, max_segments: int = 200) -> Dict[str, Any]:
        """Plain-data form for run summaries and ``profile.json``.

        The segment list is capped at *max_segments* (longest first,
        re-sorted chronologically); the aggregate fields are always
        computed over the full path.
        """
        segments = self.critical_path
        truncated = len(segments) > max_segments
        if truncated:
            keep = sorted(segments, key=lambda s: -s["duration_s"])[:max_segments]
            segments = sorted(keep, key=lambda s: s["start_s"])
        return {
            "trace_id": self.trace_id,
            "root_name": self.root_name,
            "makespan_s": self.makespan_s,
            "critical_path_s": self.critical_path_s,
            "categories": dict(self.categories),
            "critical_path": [dict(s) for s in segments],
            "critical_path_truncated": truncated,
            "n_critical_segments": len(self.critical_path),
            "by_name": [dict(e) for e in self.by_name],
            "what_if": [dict(e) for e in self.what_if],
            "workers": {k: dict(v) for k, v in self.workers.items()},
            "stragglers": [dict(s) for s in self.stragglers],
            "overlap": dict(self.overlap),
            "task_window_s": self.task_window_s,
            "n_spans": self.n_spans,
            "n_task_events": self.n_task_events,
        }


# ---------------------------------------------------------------------------
# Critical-path walk
# ---------------------------------------------------------------------------

def _walk_critical(
    node: Span,
    lo: float,
    hi: float,
    children: Mapping[str, List[Span]],
    segments: List[Tuple[Span, float, float]],
) -> None:
    """Assign every instant of ``[lo, hi]`` to exactly one span.

    Walking backwards from *hi*: the child of *node* with the latest end
    owns the tail, the remaining window recurses the same way, and gaps
    no child covers are *node*'s self-time.  Children are clipped to the
    window, so overlapping (parallel) children never double-count — the
    one finishing later is, by definition, the critical one.
    """
    kids = sorted(
        (k for k in children.get(node.span_id, ()) if k.end > lo and k.start < hi),
        key=lambda s: s.end,
        reverse=True,
    )
    cursor = hi
    for kid in kids:
        k_hi = min(kid.end, cursor)
        k_lo = max(kid.start, lo)
        if k_hi <= k_lo:
            continue
        if k_hi < cursor:
            segments.append((node, k_hi, cursor))
        _walk_critical(kid, k_lo, k_hi, children, segments)
        cursor = k_lo
        if cursor <= lo:
            break
    if cursor > lo:
        segments.append((node, lo, cursor))


def _pick_root(spans: Sequence[Span]) -> Span:
    ids = {s.span_id for s in spans}
    roots = [s for s in spans if s.parent_id is None or s.parent_id not in ids]
    if not roots:
        raise ProfileError("trace has no root span")
    return max(roots, key=lambda s: s.duration)


# ---------------------------------------------------------------------------
# The profiler
# ---------------------------------------------------------------------------

def profile_spans(
    spans: Sequence[Span],
    task_events: Iterable[Any] = (),
    tracer_epoch: Optional[float] = None,
    esm_functions: Iterable[str] = ("esm_simulation",),
    analytics_functions: Optional[Iterable[str]] = None,
    what_if_top_k: int = 5,
    straggler_factor: float = 3.0,
) -> WorkflowProfile:
    """Profile one finished run from its span tree and task schedule.

    *task_events* are tracer ``TaskEvent``-shaped records; with
    *tracer_epoch* given they are shifted from tracer-relative onto the
    spans' monotonic clock (exactly how the Perfetto exporter aligns
    them), otherwise they are assumed to share the spans' clock already.
    *analytics_functions* defaults to every task function that is not an
    ESM function.
    """
    spans = list(spans)
    if not spans:
        raise ProfileError("no spans to profile")
    root = _pick_root(spans)
    t0 = root.start

    # -- critical path ------------------------------------------------------
    children: Dict[str, List[Span]] = {}
    for s in spans:
        if s.parent_id is not None and s is not root:
            children.setdefault(s.parent_id, []).append(s)
    raw_segments: List[Tuple[Span, float, float]] = []
    _walk_critical(root, root.start, root.end, children, raw_segments)
    raw_segments.sort(key=lambda seg: seg[1])

    segments: List[Dict[str, Any]] = []
    categories: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
    pooled: Dict[str, Dict[str, Any]] = {}
    for span_, lo, hi in raw_segments:
        category = categorize_span(span_)
        duration = hi - lo
        segments.append({
            "name": span_.name,
            "layer": span_.layer,
            "category": category,
            "status": span_.status,
            "start_s": lo - t0,
            "duration_s": duration,
        })
        categories[category] += duration
        key = _name_key(span_.name)
        entry = pooled.setdefault(
            key, {"name": key, "category": category, "seconds": 0.0, "segments": 0}
        )
        entry["seconds"] += duration
        entry["segments"] += 1
    critical_path_s = sum(s["duration_s"] for s in segments)
    makespan_s = root.duration
    by_name = sorted(pooled.values(), key=lambda e: -e["seconds"])

    what_if: List[Dict[str, Any]] = []
    for entry in by_name[:what_if_top_k]:
        predicted = max(0.0, makespan_s - entry["seconds"])
        what_if.append({
            "name": entry["name"],
            "category": entry["category"],
            "critical_s": entry["seconds"],
            "share": (entry["seconds"] / makespan_s) if makespan_s > 0 else 0.0,
            "predicted_makespan_s": predicted,
            "predicted_speedup": (makespan_s / predicted) if predicted > 0
            else float("inf"),
        })

    # -- task schedule: timelines, stragglers, overlap ----------------------
    events: List[ProfileTaskEvent] = []
    for e in task_events:
        shift = tracer_epoch if tracer_epoch is not None else 0.0
        events.append(ProfileTaskEvent(
            task_id=int(e.task_id), func_name=str(e.func_name),
            worker_id=int(e.worker_id),
            start=shift + float(e.start), end=shift + float(e.end),
            state=str(e.state),
        ))
    executed = [e for e in events if e.duration > 0.0]

    workers: Dict[str, Dict[str, Any]] = {}
    stragglers: List[Dict[str, Any]] = []
    overlap: Dict[str, float] = {
        "esm_busy_s": 0.0, "analytics_busy_s": 0.0,
        "overlap_s": 0.0, "fraction": 0.0,
    }
    task_window_s = 0.0
    if executed:
        w0 = min(e.start for e in executed)
        w1 = max(e.end for e in executed)
        task_window_s = w1 - w0
        # Ready work waiting anywhere in the scheduler: an idle worker
        # during these intervals was *blocked* (starved by placement or
        # constraints), not genuinely idle.
        waiting = _merge(
            (s.start, s.end) for s in spans
            if s.layer == "scheduler" or s.name.startswith("queue:")
        )
        by_worker: Dict[int, List[ProfileTaskEvent]] = {}
        for e in executed:
            by_worker.setdefault(e.worker_id, []).append(e)
        for wid in sorted(by_worker):
            evts = by_worker[wid]
            busy = _merge((e.start, e.end) for e in evts)
            busy_s = _length(busy)
            idle_intervals = _complement(busy, w0, w1)
            blocked_s = _overlap(idle_intervals, waiting)
            idle_s = max(0.0, task_window_s - busy_s)
            workers[f"worker-{wid}"] = {
                "busy_s": busy_s,
                "idle_s": idle_s,
                "blocked_s": blocked_s,
                "utilisation": (busy_s / task_window_s)
                if task_window_s > 0 else 0.0,
                "n_tasks": len(evts),
                "first_start_s": min(e.start for e in evts) - t0,
                "last_end_s": max(e.end for e in evts) - t0,
            }

        by_func: Dict[str, List[float]] = {}
        for e in executed:
            by_func.setdefault(e.func_name, []).append(e.duration)
        medians = {
            fn: sorted(ds)[len(ds) // 2] for fn, ds in by_func.items()
        }
        for e in executed:
            median = medians[e.func_name]
            if (e.duration > straggler_factor * median
                    and e.duration > _STRAGGLER_FLOOR_S):
                stragglers.append({
                    "task": f"{e.func_name}#{e.task_id}",
                    "worker": e.worker_id,
                    "duration_s": e.duration,
                    "median_s": median,
                    "factor": e.duration / median if median > 0 else float("inf"),
                })
        stragglers.sort(key=lambda s: -s["duration_s"])

        esm = frozenset(esm_functions)
        if analytics_functions is None:
            analytics = {e.func_name for e in executed} - esm
        else:
            analytics = set(analytics_functions)
        esm_iv = _merge((e.start, e.end) for e in executed if e.func_name in esm)
        ana_iv = _merge(
            (e.start, e.end) for e in executed if e.func_name in analytics
        )
        esm_busy = _length(esm_iv)
        overlap_s = _overlap(esm_iv, ana_iv)
        overlap = {
            "esm_busy_s": esm_busy,
            "analytics_busy_s": _length(ana_iv),
            "overlap_s": overlap_s,
            "fraction": (overlap_s / esm_busy) if esm_busy > 0 else 0.0,
        }

    return WorkflowProfile(
        trace_id=root.trace_id,
        root_name=root.name,
        makespan_s=makespan_s,
        critical_path=segments,
        critical_path_s=critical_path_s,
        categories={k: v for k, v in categories.items() if v > 0.0},
        by_name=by_name,
        what_if=what_if,
        workers=workers,
        stragglers=stragglers,
        overlap=overlap,
        task_window_s=task_window_s,
        n_spans=len(spans),
        n_task_events=len(events),
    )


# ---------------------------------------------------------------------------
# Perfetto round-trip: profile an exported trace.json
# ---------------------------------------------------------------------------

def spans_from_perfetto(payload: Mapping[str, Any]) -> List[Span]:
    """Rebuild :class:`Span` records from an exported Perfetto trace.

    Inverse of :func:`~repro.observability.export.build_perfetto_trace`
    for the pid-1 ("spans") process: timestamps come back in seconds on
    the trace's shifted clock, span/parent ids and attributes from the
    event args.
    """
    spans: List[Span] = []
    for ev in payload.get("traceEvents", ()):
        if ev.get("ph") != "X" or ev.get("pid") != 1:
            continue
        args = dict(ev.get("args") or {})
        span_id = args.get("span_id")
        if not span_id:
            continue
        start = float(ev["ts"]) / 1e6
        end = start + float(ev.get("dur", 0.0)) / 1e6
        attrs = {k: v for k, v in args.items() if k not in _PERFETTO_META_KEYS}
        spans.append(Span(
            name=str(ev.get("name", "")),
            trace_id=str(args.get("trace_id", "")),
            span_id=str(span_id),
            parent_id=args.get("parent_id"),
            layer=str(args.get("layer") or ev.get("cat") or "app"),
            start=start,
            end=end,
            status=str(args.get("status", "OK")),
            attrs=attrs,
            thread_id=int(ev.get("tid", 0)),
        ))
    return spans


def task_events_from_perfetto(payload: Mapping[str, Any]) -> List[ProfileTaskEvent]:
    """Rebuild the COMPSs schedule (pid-2) from an exported trace.

    The exporter already placed these on the spans' (shifted) clock, so
    the events feed :func:`profile_spans` with ``tracer_epoch=None``.
    """
    events: List[ProfileTaskEvent] = []
    for ev in payload.get("traceEvents", ()):
        if ev.get("ph") != "X" or ev.get("pid") != 2:
            continue
        args = dict(ev.get("args") or {})
        name = str(ev.get("name", ""))
        func = _TASK_SUFFIX.sub("", name)
        start = float(ev["ts"]) / 1e6
        events.append(ProfileTaskEvent(
            task_id=int(args.get("task_id", 0)),
            func_name=func,
            worker_id=int(ev.get("tid", 0)),
            start=start,
            end=start + float(ev.get("dur", 0.0)) / 1e6,
            state=str(args.get("state", ev.get("cat", ""))),
        ))
    return events


def profile_from_perfetto(payload: Mapping[str, Any], **kwargs: Any) -> WorkflowProfile:
    """Profile an exported ``trace.json`` (Perfetto trace-event JSON).

    Keyword arguments are passed through to :func:`profile_spans`.
    """
    spans = spans_from_perfetto(payload)
    if not spans:
        raise ProfileError("trace.json contains no span events (pid 1)")
    return profile_spans(
        spans, task_events_from_perfetto(payload), tracer_epoch=None, **kwargs
    )


# ---------------------------------------------------------------------------
# Rendering (shared by `repro analyze` and the in-process path)
# ---------------------------------------------------------------------------

def render_profile(profile: "WorkflowProfile | Mapping[str, Any]",
                   top: int = 10) -> str:
    """Plain-text report of a profile (object or its ``to_json`` form)."""
    data = profile.to_json() if isinstance(profile, WorkflowProfile) else profile
    makespan = data["makespan_s"]
    lines = [
        f"workflow profile — {data['root_name']} (trace {data['trace_id']})",
        f"  makespan          {makespan:9.3f}s",
        f"  critical path     {data['critical_path_s']:9.3f}s over "
        f"{data['n_critical_segments']} segments",
    ]
    if data.get("task_window_s"):
        lines.append(f"  task window       {data['task_window_s']:9.3f}s "
                     f"({data['n_task_events']} task events)")

    lines.append("")
    lines.append("critical seconds by category")
    for cat, secs in sorted(data["categories"].items(), key=lambda kv: -kv[1]):
        share = secs / makespan if makespan > 0 else 0.0
        lines.append(f"  {cat:<13} {secs:9.3f}s  {share:6.1%}")

    if data["by_name"]:
        lines.append("")
        lines.append(f"top critical contributors (of {len(data['by_name'])})")
        for entry in data["by_name"][:top]:
            lines.append(
                f"  {entry['name']:<36} {entry['seconds']:9.3f}s  "
                f"[{entry['category']}]  x{entry['segments']}"
            )

    if data["what_if"]:
        lines.append("")
        lines.append("what-if: makespan with a contributor made free")
        for entry in data["what_if"]:
            lines.append(
                f"  - {entry['name']:<34} {entry['predicted_makespan_s']:9.3f}s "
                f"(x{entry['predicted_speedup']:.2f})"
            )

    if data["workers"]:
        lines.append("")
        lines.append("workers (busy / idle / blocked over the task window)")
        for name in sorted(data["workers"]):
            w = data["workers"][name]
            lines.append(
                f"  {name:<10} busy {w['busy_s']:8.3f}s  idle {w['idle_s']:8.3f}s"
                f"  blocked {w['blocked_s']:8.3f}s  util {w['utilisation']:6.1%}"
                f"  tasks {w['n_tasks']}"
            )

    if data["stragglers"]:
        lines.append("")
        lines.append("stragglers (>3x their function's median)")
        for s in data["stragglers"][:top]:
            lines.append(
                f"  {s['task']:<36} {s['duration_s']:8.3f}s on worker "
                f"{s['worker']} (median {s['median_s']:.3f}s, x{s['factor']:.1f})"
            )

    ovl = data.get("overlap") or {}
    if ovl:
        lines.append("")
        lines.append(
            f"ESM/analytics overlap: {ovl.get('overlap_s', 0.0):.3f}s "
            f"({ovl.get('fraction', 0.0):.1%} of {ovl.get('esm_busy_s', 0.0):.3f}s "
            f"ESM busy time)"
        )
    return "\n".join(lines) + "\n"
