"""Human-readable run reports from workflow summaries.

The workflow's final products in the paper are "plots/maps" plus the
indices themselves; operational services also publish textual bulletins.
This module renders the ``run_summary.json`` a workflow writes into a
Markdown report: per-year extreme-event tables, cross-year trends, TC
activity and the scheduling/provenance appendix.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np


def _fmt(value: Any, digits: int = 2) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.{digits}f}"
    return str(value)


def _table(header: Sequence[str], rows: Sequence[Sequence[Any]]) -> List[str]:
    lines = ["| " + " | ".join(str(h) for h in header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return lines


def _trend_per_year(years: List[int], values: List[float]) -> float:
    if len(years) < 2:
        return 0.0
    return float(np.polyfit(years, values, 1)[0])


def generate_report(summary: Dict[str, Any], title: str = "Climate extremes run report") -> str:
    """Render a workflow ``summary`` dict as Markdown.

    Tolerates partial summaries (e.g. runs without ML): sections are
    emitted only for the data present.
    """
    years_section = summary.get("years") or {}
    if not years_section:
        raise ValueError("summary has no per-year results")
    # JSON round-trips turn int keys into strings; accept both.
    years = sorted(years_section, key=lambda y: int(y))

    lines: List[str] = [f"# {title}", ""]
    params = summary.get("params", {})
    if params:
        lines.append(
            f"Simulated years: {params.get('years')} — "
            f"{params.get('n_days')} day(s) each."
        )
        lines.append("")

    # --- per-year extremes ------------------------------------------------
    lines.append("## Heat and cold waves")
    lines.append("")
    rows = []
    hw_fracs, cw_fracs, year_nums = [], [], []
    for year in years:
        data = years_section[year]
        hw = data.get("heat_waves", {})
        cw = data.get("cold_waves", {})
        rows.append([
            year,
            f"{hw.get('cells_with_waves', 0.0) * 100:.1f}%",
            int(hw.get("max_duration_days", 0)),
            f"{cw.get('cells_with_waves', 0.0) * 100:.1f}%",
            int(cw.get("max_duration_days", 0)),
        ])
        year_nums.append(int(year))
        hw_fracs.append(float(hw.get("cells_with_waves", 0.0)))
        cw_fracs.append(float(cw.get("cells_with_waves", 0.0)))
    lines.extend(_table(
        ["year", "HW cells", "HW longest (d)", "CW cells", "CW longest (d)"],
        rows,
    ))
    lines.append("")
    if len(years) > 1:
        lines.append(
            f"Trend: heat-wave coverage {_fmt(_trend_per_year(year_nums, hw_fracs) * 100, 3)} "
            f"pp/year, cold-wave coverage "
            f"{_fmt(_trend_per_year(year_nums, cw_fracs) * 100, 3)} pp/year."
        )
        lines.append("")

    # --- tropical cyclones -------------------------------------------------
    any_tc = any("tc_deterministic" in years_section[y] for y in years)
    if any_tc:
        lines.append("## Tropical cyclones")
        lines.append("")
        rows = []
        for year in years:
            data = years_section[year]
            det = data.get("tc_deterministic", {})
            skill = det.get("skill", {})
            ml = data.get("tc_ml", {})
            rows.append([
                year,
                det.get("n_tracks", 0),
                _fmt(skill.get("pod", float("nan"))),
                _fmt(skill.get("far", float("nan"))),
                ml.get("n_detections", "-"),
            ])
        lines.extend(_table(
            ["year", "tracks", "POD", "FAR", "CNN detections"], rows
        ))
        lines.append("")

    # --- execution appendix ------------------------------------------------
    graph = summary.get("task_graph")
    schedule = summary.get("schedule")
    if graph or schedule:
        lines.append("## Execution")
        lines.append("")
        if graph:
            lines.append(
                f"Task graph: {graph.get('n_tasks')} tasks, "
                f"{graph.get('n_edges')} dependencies."
            )
        if schedule:
            lines.append(
                f"Makespan {_fmt(schedule.get('makespan_s'))} s; "
                f"simulation/analytics overlap "
                f"{_fmt(schedule.get('esm_analytics_overlap_s'))} s."
            )
        federation = summary.get("federation")
        if federation:
            lines.append(
                f"Federated over {federation.get('sites')} "
                f"({federation.get('transfers')} DLS transfer(s), "
                f"{federation.get('bytes_moved', 0) / 1e6:.1f} MB)."
            )
        lines.append("")
    return "\n".join(lines)
