"""Loss functions and their gradients.

The TC localizer optimises a composite objective: binary cross-entropy
on patch-level presence (computed on logits for numerical stability)
plus mean-squared error on the in-patch centre coordinates, the latter
masked to positive patches only — a patch without a storm has no centre
to regress.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))


def bce_with_logits(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean binary cross-entropy, stable for large |logits|."""
    z = np.asarray(logits, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64)
    loss = np.maximum(z, 0) - z * y + np.log1p(np.exp(-np.abs(z)))
    return float(loss.mean())


def bce_with_logits_grad(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """d(mean BCE)/d logits = (sigmoid(z) - y) / N."""
    z = np.asarray(logits, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64)
    return (_sigmoid(z) - y) / z.size


def mse(pred: np.ndarray, target: np.ndarray) -> float:
    diff = np.asarray(pred, dtype=np.float64) - np.asarray(target, dtype=np.float64)
    return float((diff**2).mean())


def mse_grad(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    diff = np.asarray(pred, dtype=np.float64) - np.asarray(target, dtype=np.float64)
    return 2.0 * diff / diff.size


def localization_loss(
    outputs: np.ndarray,
    presence: np.ndarray,
    centers: np.ndarray,
    center_weight: float = 1.0,
) -> Tuple[float, np.ndarray, Dict[str, float]]:
    """Composite TC loss.

    Parameters
    ----------
    outputs:
        Network output ``(N, 3)``: presence logit, centre row, centre col
        (centres in normalised [0, 1] patch coordinates).
    presence:
        ``(N,)`` binary labels.
    centers:
        ``(N, 2)`` normalised target centres (ignored where
        ``presence == 0``).

    Returns ``(loss, grad wrt outputs, components)``.
    """
    outputs = np.asarray(outputs, dtype=np.float64)
    presence = np.asarray(presence, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    if outputs.ndim != 2 or outputs.shape[1] != 3:
        raise ValueError(f"expected (N, 3) outputs, got {outputs.shape}")

    logits = outputs[:, 0]
    pred_centers = outputs[:, 1:]

    p_loss = bce_with_logits(logits, presence)
    grad = np.zeros_like(outputs)
    grad[:, 0] = bce_with_logits_grad(logits, presence)

    mask = presence > 0.5
    n_pos = int(mask.sum())
    if n_pos:
        diff = pred_centers[mask] - centers[mask]
        c_loss = float((diff**2).mean())
        grad_centers = np.zeros_like(pred_centers)
        grad_centers[mask] = 2.0 * diff / diff.size
        grad[:, 1:] = center_weight * grad_centers
    else:
        c_loss = 0.0

    total = p_loss + center_weight * c_loss
    return total, grad, {"presence": p_loss, "center": c_loss}
