"""End-to-end TC localizer tests: training, skill, snapshot pipeline."""

import numpy as np
import pytest

from repro.ml import TCLocalizer, localize_in_snapshot, make_patch_dataset
from repro.ml.tc_localizer import CHANNELS, _background, _vortex


@pytest.fixture(scope="module")
def trained():
    """One shared, quickly-trained model for the expensive tests."""
    model = TCLocalizer(patch=16, seed=0)
    data = make_patch_dataset(n_samples=900, patch=16, seed=1)
    history = model.fit(data, epochs=6, batch_size=64, lr=2e-3, seed=2)
    model.fit(data, epochs=6, batch_size=64, lr=1e-3, seed=3)  # fine-tune
    return model, data, history


class TestDataset:
    def test_dataset_shapes_and_balance(self):
        data = make_patch_dataset(n_samples=200, patch=16, seed=0)
        assert data.patches.shape == (200, 4, 16, 16)
        assert 0.3 < data.presence.mean() < 0.7
        assert np.all((data.centers >= 0) & (data.centers <= 1))

    def test_deterministic(self):
        a = make_patch_dataset(n_samples=50, seed=3)
        b = make_patch_dataset(n_samples=50, seed=3)
        np.testing.assert_array_equal(a.patches, b.patches)

    def test_positive_patches_have_signature(self):
        rng = np.random.default_rng(0)
        bg = _background(rng, 16)
        vortex = _vortex(rng, 16, (8.0, 8.0))
        with_tc = bg + vortex
        assert with_tc[1].min() < bg[1].min() - 10  # pressure deficit
        assert with_tc[2].max() > bg[2].max() + 5   # wind

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            make_patch_dataset(10, positive_fraction=0.0)


class TestModel:
    def test_patch_divisibility(self):
        with pytest.raises(ValueError):
            TCLocalizer(patch=10)

    def test_untrained_predict_rejected(self):
        model = TCLocalizer(patch=16)
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 4, 16, 16)))

    def test_training_converges(self, trained):
        _, _, history = trained
        assert history.loss[-1] < history.loss[0] * 0.5

    def test_detection_skill(self, trained):
        model, _, _ = trained
        test_data = make_patch_dataset(n_samples=300, patch=16, seed=99)
        metrics = model.evaluate(test_data)
        assert metrics["accuracy"] >= 0.85
        assert metrics["center_error_cells"] <= 3.0

    def test_save_load_preserves_predictions(self, trained, tmp_path):
        model, data, _ = trained
        path = str(tmp_path / "tc.pkl")
        model.save(path)
        loaded = TCLocalizer.load(path)
        p1, c1 = model.predict(data.patches[:10])
        p2, c2 = loaded.predict(data.patches[:10])
        np.testing.assert_allclose(p1, p2)
        np.testing.assert_allclose(c1, c2)


class TestSnapshotPipeline:
    def test_localizes_vortex_in_global_snapshot(self, trained):
        model, _, _ = trained
        n_lat, n_lon = 48, 96
        lat = np.linspace(-87, 87, n_lat)
        lon = np.arange(0, 360, 360 / n_lon)
        rng = np.random.default_rng(5)

        # Build a quiet global background, then composite one vortex.
        fields = {}
        base = _background(rng, 16)  # reuse channel scales
        fields["T850"] = np.full((n_lat, n_lon), 270.0) + rng.normal(0, 1.5, (n_lat, n_lon))
        fields["PSL"] = np.full((n_lat, n_lon), 1013.0) + rng.normal(0, 1.0, (n_lat, n_lon))
        fields["WSPDSRFAV"] = np.abs(rng.normal(6.0, 1.5, (n_lat, n_lon)))
        fields["VORT850"] = rng.normal(0, 4e-6, (n_lat, n_lon))

        ci, cj = 30, 40  # inside one patch
        vortex = _vortex(np.random.default_rng(1), 16, (ci % 16, cj % 16))
        i0, j0 = (ci // 16) * 16, (cj // 16) * 16
        for ch_idx, name in enumerate(CHANNELS):
            fields[name][i0:i0 + 16, j0:j0 + 16] += vortex[ch_idx]

        found = localize_in_snapshot(model, fields, lat, lon, threshold=0.5)
        assert found, "no TC localized"
        best = max(found, key=lambda f: f[2])
        true_lat, true_lon = lat[ci], lon[cj]
        assert abs(best[0] - true_lat) < 15.0
        assert abs((best[1] - true_lon + 180) % 360 - 180) < 15.0

    def test_missing_channel_rejected(self, trained):
        model, _, _ = trained
        with pytest.raises(KeyError):
            localize_in_snapshot(model, {"PSL": np.zeros((16, 16))},
                                 np.zeros(16), np.zeros(16))

    def test_quiet_snapshot_mostly_empty(self, trained):
        model, _, _ = trained
        rng = np.random.default_rng(6)
        n_lat, n_lon = 32, 64
        fields = {
            "T850": np.full((n_lat, n_lon), 270.0) + rng.normal(0, 1.0, (n_lat, n_lon)),
            "PSL": np.full((n_lat, n_lon), 1013.0) + rng.normal(0, 0.8, (n_lat, n_lon)),
            "WSPDSRFAV": np.abs(rng.normal(6.0, 1.0, (n_lat, n_lon))),
            "VORT850": rng.normal(0, 3e-6, (n_lat, n_lon)),
        }
        found = localize_in_snapshot(
            model, fields, np.linspace(-80, 80, n_lat),
            np.arange(0, 360, 360 / n_lon), threshold=0.5,
        )
        assert len(found) <= 2  # at most a couple of false alarms


class TestVectorizedDataset:
    def test_matches_loop_reference_exactly(self):
        """The batched generator must reproduce the original per-sample
        loop bit-for-bit (same RNG stream, same field math)."""
        from repro.ml.tc_localizer import _make_patch_dataset_reference

        fast = make_patch_dataset(n_samples=120, patch=16, seed=11,
                                  positive_fraction=0.4)
        slow = _make_patch_dataset_reference(n_samples=120, patch=16, seed=11,
                                             positive_fraction=0.4)
        np.testing.assert_array_equal(fast.patches, slow.patches)
        np.testing.assert_array_equal(fast.presence, slow.presence)
        np.testing.assert_array_equal(fast.centers, slow.centers)

    def test_batched_background_matches_per_sample_filter(self):
        from scipy import ndimage

        from repro.ml.tc_localizer import _BACKGROUND_SCALES, _background_batch

        rng = np.random.default_rng(5)
        whites = rng.standard_normal((7, len(CHANNELS), 16, 16))
        batched = _background_batch(whites)
        for k in range(7):
            fields = [
                ndimage.gaussian_filter(whites[k, c], sigma=s, mode="wrap")
                for c, s in enumerate(_BACKGROUND_SCALES)
            ]
            expected = np.stack([
                270.0 + 6.0 * fields[0],
                1013.0 + 4.0 * fields[1],
                np.abs(6.0 + 3.0 * fields[2]),
                1.2e-5 * fields[3],
            ])
            np.testing.assert_array_equal(batched[k], expected)

    def test_batched_vortex_matches_per_sample(self):
        from repro.ml.tc_localizer import _vortex_batch

        rng = np.random.default_rng(9)
        centers = rng.uniform(2.0, 13.0, size=(5, 2))
        radius = rng.uniform(1.5, 3.5, size=5)
        deficit = rng.uniform(25.0, 70.0, size=5)
        vmax = rng.uniform(18.0, 45.0, size=5)
        spin = np.where(rng.random(5) < 0.5, 1.0, -1.0)
        batched = _vortex_batch(16, centers, radius, deficit, vmax, spin)

        class _Fixed:
            """Replays the already-drawn parameters through _vortex."""

            def __init__(self, values):
                self._values = list(values)

            def uniform(self, lo, hi):
                return self._values.pop(0)

            def random(self):
                return self._values.pop(0)

        for k in range(5):
            fixed = _Fixed([radius[k], deficit[k], vmax[k],
                            0.25 if spin[k] > 0 else 0.75])
            expected = _vortex(fixed, 16, tuple(centers[k]))
            np.testing.assert_array_equal(batched[k], expected)
