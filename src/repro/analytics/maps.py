"""Map rendering without a plotting stack.

The workflow's final step produces "plots/maps" (Figure 4 is a Heat Wave
Number map).  Offline and matplotlib-free, we render 2-d index maps as
ASCII art (for terminals and logs) and as binary PGM images (viewable in
any image tool), which is enough to regenerate the Figure-4 artefact.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Light-to-dark ASCII intensity ramp.
_RAMP = " .:-=+*#%@"


def _normalise(
    field: np.ndarray, vmin: Optional[float], vmax: Optional[float]
) -> np.ndarray:
    field = np.asarray(field, dtype=np.float64)
    finite = np.isfinite(field)
    if not finite.any():
        return np.zeros_like(field)
    lo = float(np.min(field[finite])) if vmin is None else vmin
    hi = float(np.max(field[finite])) if vmax is None else vmax
    if hi <= lo:
        return np.zeros_like(field)
    out = (field - lo) / (hi - lo)
    out[~finite] = 0.0
    return np.clip(out, 0.0, 1.0)


def render_ascii_map(
    field: np.ndarray,
    title: str = "",
    width: int = 72,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> str:
    """Render a (lat, lon) field as an ASCII map, north at the top."""
    field = np.asarray(field)
    if field.ndim != 2:
        raise ValueError("expected a 2-d (lat, lon) field")
    n_lat, n_lon = field.shape
    width = min(width, n_lon) or n_lon
    height = max(2, round(n_lat * width / n_lon / 2))  # chars are ~2:1
    ri = np.linspace(0, n_lat - 1, height).astype(int)
    ci = np.linspace(0, n_lon - 1, width).astype(int)
    norm = _normalise(field[np.ix_(ri, ci)], vmin, vmax)
    glyphs = (norm * (len(_RAMP) - 1)).astype(int)
    lines = []
    if title:
        lines.append(title)
    lo = vmin if vmin is not None else float(np.nanmin(field))
    hi = vmax if vmax is not None else float(np.nanmax(field))
    lines.append(f"[{lo:.3g} .. {hi:.3g}]  ({_RAMP[0]!r} low, {_RAMP[-1]!r} high)")
    for row in glyphs[::-1]:  # flip: index 0 is the south pole
        lines.append("".join(_RAMP[g] for g in row))
    return "\n".join(lines)


def render_pgm(
    field: np.ndarray,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> bytes:
    """Encode a (lat, lon) field as a binary PGM (P5) image."""
    field = np.asarray(field)
    if field.ndim != 2:
        raise ValueError("expected a 2-d (lat, lon) field")
    norm = _normalise(field, vmin, vmax)[::-1]  # north at top
    pixels = (norm * 255).astype(np.uint8)
    header = f"P5\n{pixels.shape[1]} {pixels.shape[0]}\n255\n".encode("ascii")
    return header + pixels.tobytes()
