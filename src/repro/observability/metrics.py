"""A thread-safe metrics registry: counters, gauges, histograms.

Every layer of the stack (COMPSs runtime, LSF scheduler, shared
filesystem, Ophidia server, HPCWaaS) reports into one shared
:class:`MetricsRegistry` instead of keeping private tallies, so a single
snapshot describes a whole workflow run.  The model follows Prometheus:
metrics are named families with a fixed label set; each distinct label
combination is an independent series.

Snapshots are first-class (:meth:`MetricsRegistry.snapshot`): benchmarks
bracket a run with two snapshots and report the delta, which isolates a
run's traffic from everything else the process has done.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "snapshot_value",
    "snapshot_histogram_quantile",
]

#: Default histogram buckets (seconds): tuned for task/IO durations that
#: range from sub-millisecond NumPy kernels to minute-scale simulations.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_LabelKey = Tuple[str, ...]


def _label_key(label_names: Sequence[str], labels: Mapping[str, Any]) -> _LabelKey:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _format_labels(label_names: Sequence[str], key: _LabelKey) -> str:
    if not label_names:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(label_names, key)
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    # HELP lines escape only backslash and newline (not double quotes).
    return value.replace("\\", "\\\\").replace("\n", "\\n")


class _Metric:
    """Common machinery: name, help text, label schema, series storage."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._lock = threading.Lock()
        self._series: Dict[_LabelKey, Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> _LabelKey:
        return _label_key(self.label_names, labels)

    def series(self) -> Dict[_LabelKey, Any]:
        """Copy of the raw series map (label tuple -> value)."""
        with self._lock:
            return dict(self._series)


class Counter(_Metric):
    """Monotonically increasing count (events, bytes, operations)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """Sum of all series matching the (possibly partial) label set."""
        return _match_sum(self.label_names, self.series(), labels)


class Gauge(_Metric):
    """A value that can go up and down (queue depth, utilisation)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return _match_sum(self.label_names, self.series(), labels)


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for +Inf
        self.count = 0
        self.sum = 0.0

    def as_dict(self, bounds: Sequence[float]) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                ("+Inf" if i == len(bounds) else repr(bounds[i])): c
                for i, c in enumerate(self.bucket_counts)
            },
        }


class Histogram(_Metric):
    """Bucketed distribution with quantile estimation.

    Buckets are upper bounds (exclusive of +Inf, which is implicit); the
    stored counts are per-bucket (non-cumulative) and cumulated on
    export, matching the Prometheus text format.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets: Tuple[float, ...] = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.bucket_counts[idx] += 1
            series.count += 1
            series.sum += value

    def quantile(self, q: float, **labels: Any) -> float:
        """Estimate the q-quantile (q in [0, 1]) by linear interpolation
        inside the bucket that holds it.  Partial labels aggregate the
        matching series first.  Returns ``nan`` with no observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        merged = [0] * (len(self.buckets) + 1)
        total = 0
        for key, series in self.series().items():
            if not _labels_match(self.label_names, key, labels):
                continue
            for i, c in enumerate(series.bucket_counts):
                merged[i] += c
            total += series.count
        if total == 0:
            return float("nan")
        target = q * total
        cumulative = 0
        for i, c in enumerate(merged):
            prev = cumulative
            cumulative += c
            if cumulative >= target and c > 0:
                lo = 0.0 if i == 0 else self.buckets[i - 1]
                hi = self.buckets[i] if i < len(self.buckets) else self.buckets[-1]
                frac = (target - prev) / c
                return lo + (hi - lo) * min(1.0, max(0.0, frac))
        return self.buckets[-1]

    def merge_bucket_counts(
        self,
        labels: Mapping[str, Any],
        buckets: Mapping[str, float],
        count: float,
        total: float,
    ) -> None:
        """Fold exported bucket counts (snapshot-JSON shape) into a series.

        *buckets* maps bound strings (``repr(bound)`` or ``"+Inf"``) to
        non-cumulative per-bucket counts, exactly the shape
        :meth:`_HistogramSeries.as_dict` emits.  Bounds absent from this
        histogram's schema fold into the nearest bucket that would have
        caught the same observations (via ``bisect``), so merging across
        slightly different bucket layouts degrades gracefully instead of
        raising.
        """
        key = self._key(labels)
        n = len(self.buckets)
        increments = [0] * (n + 1)
        for bound_str, bucket_count in buckets.items():
            if not bucket_count:
                continue
            if bound_str == "+Inf":
                idx = n
            else:
                idx = min(bisect.bisect_left(self.buckets, float(bound_str)), n)
            increments[idx] += int(bucket_count)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(n)
            for i, c in enumerate(increments):
                series.bucket_counts[i] += c
            series.count += int(count)
            series.sum += total

    def stats(self, **labels: Any) -> Dict[str, float]:
        """Aggregated ``count``/``sum``/``mean`` over matching series."""
        count = 0
        total = 0.0
        for key, series in self.series().items():
            if _labels_match(self.label_names, key, labels):
                count += series.count
                total += series.sum
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else float("nan"),
        }


def _labels_match(
    label_names: Sequence[str], key: _LabelKey, wanted: Mapping[str, Any]
) -> bool:
    for name, value in wanted.items():
        if name not in label_names:
            return False
        if key[list(label_names).index(name)] != str(value):
            return False
    return True


def _match_sum(
    label_names: Sequence[str], series: Mapping[_LabelKey, float],
    wanted: Mapping[str, Any],
) -> float:
    return sum(
        v for k, v in series.items() if _labels_match(label_names, k, wanted)
    )


class MetricsRegistry:
    """Thread-safe collection of named metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated calls
    with the same name return the same object, and a name registered as
    one kind cannot be re-registered as another (or with a different
    label schema).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- registration -------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if tuple(labels) != existing.label_names:
                    raise ValueError(
                        f"metric {name!r} registered with labels "
                        f"{existing.label_names}, requested {tuple(labels)}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # -- access -------------------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def counter_value(self, name: str, **labels: Any) -> float:
        metric = self.get(name)
        if metric is None:
            return 0.0
        return _match_sum(metric.label_names, metric.series(), labels)

    # -- cross-process merge ------------------------------------------------

    def merge_delta(self, delta_json: Mapping[str, Any]) -> None:
        """Fold a snapshot-delta (JSON shape) from another process in.

        Counters add their deltas (non-positive deltas are skipped —
        a counter can only increase), gauges take the shipped value as
        the latest level, histograms merge per-bucket counts.  Families
        are get-or-create using the delta's help text and label schema,
        so a metric first touched inside a worker still materialises
        here.  A malformed family never raises: it is skipped and
        counted in ``telemetry_merge_errors_total``.
        """
        errors = 0
        for name, family in delta_json.items():
            try:
                self._merge_family(name, family)
            except Exception:
                errors += 1
        if errors:
            try:
                self.counter(
                    "telemetry_merge_errors_total",
                    "Metric families dropped while merging a shipped delta",
                ).inc(errors)
            except Exception:
                pass

    def _merge_family(self, name: str, family: Mapping[str, Any]) -> None:
        kind = family.get("kind", "untyped")
        help_ = family.get("help", "")
        label_names = tuple(family.get("labels", ()))
        series = family.get("series", [])
        if kind == "counter":
            counter = self.counter(name, help_, label_names)
            for entry in series:
                amount = entry.get("value", 0)
                if amount > 0:
                    counter.inc(amount, **entry["labels"])
        elif kind == "gauge":
            gauge = self.gauge(name, help_, label_names)
            for entry in series:
                gauge.set(entry.get("value", 0), **entry["labels"])
        elif kind == "histogram":
            bounds = _family_bounds(series)
            hist = self.histogram(
                name, help_, label_names,
                buckets=bounds if bounds else DEFAULT_BUCKETS,
            )
            for entry in series:
                hist.merge_bucket_counts(
                    entry["labels"], entry.get("buckets", {}),
                    entry.get("count", 0), entry.get("sum", 0.0),
                )
        else:
            raise ValueError(f"unknown metric kind {kind!r}")

    # -- export -------------------------------------------------------------

    def snapshot(self) -> "MetricsSnapshot":
        """Point-in-time copy of every series, as plain data."""
        data: Dict[str, Dict[str, Any]] = {}
        for metric in self.metrics():
            series_out = []
            for key, value in sorted(metric.series().items()):
                labels = dict(zip(metric.label_names, key))
                if isinstance(metric, Histogram):
                    series_out.append(
                        {"labels": labels, **value.as_dict(metric.buckets)}
                    )
                else:
                    series_out.append({"labels": labels, "value": value})
            data[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "labels": list(metric.label_names),
                "series": series_out,
            }
        return MetricsSnapshot(data)

    def to_prometheus(self) -> str:
        return self.snapshot().to_prometheus()

    def to_json(self) -> Dict[str, Any]:
        return self.snapshot().to_json()


class MetricsSnapshot:
    """An immutable registry snapshot: renderable, diffable, JSON-able."""

    def __init__(self, data: Dict[str, Dict[str, Any]]) -> None:
        self._data = data

    # -- queries ------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return json.loads(json.dumps(self._data))  # deep copy, JSON-clean

    def names(self) -> List[str]:
        return sorted(self._data)

    def value(self, name: str, **labels: Any) -> float:
        """Sum of matching counter/gauge series (0 when absent)."""
        return snapshot_value(self._data, name, **labels)

    def quantile(self, name: str, q: float, **labels: Any) -> float:
        """Histogram quantile over matching series (``nan`` when absent)."""
        return snapshot_histogram_quantile(self._data, name, q, **labels)

    def __bool__(self) -> bool:
        return any(family["series"] for family in self._data.values())

    # -- delta --------------------------------------------------------------

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Traffic accumulated since *earlier*.

        Counters and histograms subtract; gauges keep this snapshot's
        value (a gauge is a level, not a flow).  Series absent from
        *earlier* pass through whole.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name, family in self._data.items():
            prev_family = earlier._data.get(name)
            prev_series = {}
            if prev_family is not None:
                prev_series = {
                    _series_key(s["labels"]): s for s in prev_family["series"]
                }
            new_series = []
            for entry in family["series"]:
                prev = prev_series.get(_series_key(entry["labels"]))
                new_series.append(_series_delta(family["kind"], entry, prev))
            kept = [s for s in new_series if s is not None]
            # A family whose every series is unchanged is not traffic;
            # dropping it keeps shipped worker deltas minimal.
            if kept:
                out[name] = {**family, "series": kept}
        return MetricsSnapshot(out)

    # -- rendering ----------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (v0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._data):
            family = self._data[name]
            if family["help"]:
                lines.append(f"# HELP {name} {_escape_help(family['help'])}")
            lines.append(f"# TYPE {name} {family['kind']}")
            label_names = family["labels"]
            for entry in family["series"]:
                key = tuple(str(entry["labels"][n]) for n in label_names)
                label_txt = _format_labels(label_names, key)
                if family["kind"] == "histogram":
                    cumulative = 0
                    for bound, count in entry["buckets"].items():
                        cumulative += count
                        le = _merge_label(label_names, key, "le", bound)
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    lines.append(f"{name}_sum{label_txt} {_fmt(entry['sum'])}")
                    lines.append(f"{name}_count{label_txt} {entry['count']}")
                else:
                    lines.append(f"{name}{label_txt} {_fmt(entry['value'])}")
        return "\n".join(lines) + ("\n" if lines else "")


def _series_key(labels: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _family_bounds(series: Iterable[Mapping[str, Any]]) -> Tuple[float, ...]:
    """Recover finite bucket bounds from exported histogram series."""
    for entry in series:
        bounds = tuple(
            float(b) for b in entry.get("buckets", {}) if b != "+Inf"
        )
        if bounds:
            return tuple(sorted(bounds))
    return ()


def _series_delta(kind: str, entry: Dict[str, Any], prev: Optional[Dict[str, Any]]):
    if prev is None or kind == "gauge":
        return dict(entry)
    if kind == "histogram":
        buckets = {
            bound: count - prev["buckets"].get(bound, 0)
            for bound, count in entry["buckets"].items()
        }
        count = entry["count"] - prev["count"]
        if count == 0:
            return None
        return {
            "labels": dict(entry["labels"]),
            "count": count,
            "sum": entry["sum"] - prev["sum"],
            "buckets": buckets,
        }
    value = entry["value"] - prev["value"]
    if value == 0:
        return None
    return {"labels": dict(entry["labels"]), "value": value}


def _merge_label(label_names, key, extra_name, extra_value) -> str:
    names = list(label_names) + [extra_name]
    values = tuple(key) + (str(extra_value),)
    return _format_labels(names, values)


def _fmt(value: float) -> str:
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(value)


def snapshot_value(snapshot_json: Mapping[str, Any], name: str, **labels: Any) -> float:
    """Sum matching series of a JSON-ified snapshot (benchmark helper).

    For counters and gauges, sums ``value``; for histograms, sums
    ``sum`` (total observed time), since that is the headline quantity
    benchmarks report.
    """
    family = snapshot_json.get(name)
    if family is None:
        return 0.0
    total = 0.0
    for entry in family["series"]:
        entry_labels = entry["labels"]
        if all(str(entry_labels.get(k)) == str(v) for k, v in labels.items()):
            total += entry.get("value", entry.get("sum", 0.0))
    return total


def snapshot_histogram_quantile(
    snapshot_json: Mapping[str, Any], name: str, q: float, **labels: Any
) -> float:
    """Estimate a histogram quantile from a JSON-ified snapshot.

    Same linear-interpolation estimator as :meth:`Histogram.quantile`,
    but operating on exported bucket counts (so ``metrics.json`` files
    from past runs yield p50/p95/p99 too).  Matching series merge first;
    returns ``nan`` when the metric is absent, not a histogram, or has
    no observations.  The open-ended ``+Inf`` bucket clamps to the last
    finite bound, mirroring the live estimator.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    family = snapshot_json.get(name)
    if family is None or family.get("kind") != "histogram":
        return float("nan")
    merged: Dict[float, int] = {}
    total = 0
    for entry in family["series"]:
        entry_labels = entry["labels"]
        if not all(str(entry_labels.get(k)) == str(v) for k, v in labels.items()):
            continue
        for bound, count in entry["buckets"].items():
            b = float("inf") if bound == "+Inf" else float(bound)
            merged[b] = merged.get(b, 0) + count
        total += entry["count"]
    if total == 0:
        return float("nan")
    bounds = sorted(merged)
    finite = [b for b in bounds if b != float("inf")]
    if not finite:
        return float("nan")
    target = q * total
    cumulative = 0
    for i, bound in enumerate(bounds):
        count = merged[bound]
        prev = cumulative
        cumulative += count
        if cumulative >= target and count > 0:
            lo = 0.0 if i == 0 else bounds[i - 1]
            hi = bound if bound != float("inf") else finite[-1]
            if lo == float("inf"):
                lo = hi
            frac = (target - prev) / count
            return lo + (hi - lo) * min(1.0, max(0.0, frac))
    return finite[-1]


# ---------------------------------------------------------------------------
# Process-wide default registry
# ---------------------------------------------------------------------------

_default_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry all instrumented layers report into."""
    return _default_registry


def set_registry(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the new one.

    Passing ``None`` installs a fresh empty registry.
    """
    global _default_registry
    with _registry_lock:
        _default_registry = registry if registry is not None else MetricsRegistry()
        return _default_registry
