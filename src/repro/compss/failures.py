"""Task-level fault tolerance policies (Ejarque et al. 2020).

PyCOMPSs lets the programmer state, per task, how the runtime reacts to a
task raising: re-run it, ignore the failure and continue with ``None``
outputs, cancel the task's successors but keep the rest of the workflow
alive, or fail the workflow.
"""

from __future__ import annotations

import enum


class OnFailure(enum.Enum):
    """Reaction to a task raising an exception."""

    #: Fail the task and, transitively, everything that depends on it;
    #: ``compss_wait_on`` re-raises.  This is the default.
    FAIL = "FAIL"
    #: Re-execute the task up to ``max_retries`` times, then behave as FAIL.
    RETRY = "RETRY"
    #: Swallow the exception; the task completes with ``None`` results.
    IGNORE = "IGNORE"
    #: Fail the task, cancel its transitive successors, but let the rest
    #: of the workflow finish.
    CANCEL_SUCCESSORS = "CANCEL_SUCCESSORS"

    @classmethod
    def coerce(cls, value) -> "OnFailure":
        """Accept an OnFailure or its (case-insensitive) string name."""
        if isinstance(value, cls):
            return value
        try:
            return cls[str(value).upper()]
        except KeyError:
            raise ValueError(
                f"unknown on_failure policy {value!r}; "
                f"expected one of {[m.name for m in cls]}"
            ) from None


class TaskFailedError(RuntimeError):
    """Synchronising on a datum whose producer failed."""

    def __init__(self, task_id: int, func_name: str, cause: BaseException) -> None:
        super().__init__(f"task {task_id} ({func_name}) failed: {cause!r}")
        self.task_id = task_id
        self.func_name = func_name
        self.__cause__ = cause


class TaskCancelledError(RuntimeError):
    """Synchronising on a datum whose producer was cancelled.

    Chains the failure that triggered the cancellation (when known) as
    ``__cause__``, so callers can trace a cancelled branch back to the
    original fault — chaos harnesses rely on this to tell injected
    faults from genuine bugs.
    """

    def __init__(
        self,
        task_id: int,
        func_name: str,
        cause: "BaseException | None" = None,
    ) -> None:
        super().__init__(f"task {task_id} ({func_name}) was cancelled")
        self.task_id = task_id
        self.func_name = func_name
        if cause is not None:
            self.__cause__ = cause
