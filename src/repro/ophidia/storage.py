"""Fragment storage: in-memory I/O servers with access accounting.

Ophidia partitions each datacube into fragments spread over a set of
I/O server processes that keep data in memory between operators.  Here
an :class:`IOServer` is an instrumented in-memory fragment table and a
:class:`StoragePool` distributes fragments round-robin, mirroring
Ophidia's hierarchical data organisation (host partition → I/O server →
fragment).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.observability.metrics import get_registry


@dataclass
class StorageStats:
    """Cumulative fragment-level access counters."""

    fragment_reads: int = 0
    fragment_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    fragment_deletes: int = 0

    def snapshot(self) -> "StorageStats":
        return StorageStats(
            self.fragment_reads, self.fragment_writes,
            self.bytes_read, self.bytes_written, self.fragment_deletes,
        )

    def delta(self, earlier: "StorageStats") -> "StorageStats":
        return StorageStats(
            self.fragment_reads - earlier.fragment_reads,
            self.fragment_writes - earlier.fragment_writes,
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
            self.fragment_deletes - earlier.fragment_deletes,
        )


class IOServer:
    """One in-memory fragment store.

    Fragment payloads are NumPy arrays keyed by a pool-unique id.  All
    accesses are counted; reads return the stored array itself (callers
    treat fragments as immutable — operators always write new fragments).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._fragments: Dict[int, np.ndarray] = {}
        self._lock = threading.Lock()
        self.stats = StorageStats()

    def put(self, fragment_id: int, data: np.ndarray) -> None:
        data = np.asarray(data)
        with self._lock:
            self._fragments[fragment_id] = data
            self.stats.fragment_writes += 1
            self.stats.bytes_written += data.nbytes

    def get(self, fragment_id: int) -> np.ndarray:
        with self._lock:
            try:
                data = self._fragments[fragment_id]
            except KeyError:
                raise KeyError(
                    f"fragment {fragment_id} not on I/O server {self.name!r}"
                ) from None
            self.stats.fragment_reads += 1
            self.stats.bytes_read += data.nbytes
            return data

    def delete(self, fragment_id: int) -> None:
        with self._lock:
            if fragment_id in self._fragments:
                del self._fragments[fragment_id]
                self.stats.fragment_deletes += 1

    def __contains__(self, fragment_id: int) -> bool:
        with self._lock:
            return fragment_id in self._fragments

    def fragment_nbytes(self, fragment_id: int) -> int:
        """Size of one fragment, *without* counting a read.

        Accounting peek used by :attr:`Cube.nbytes`: size queries must
        not inflate the fragment-read statistics the experiments
        compare.  Unknown fragments report 0.
        """
        with self._lock:
            data = self._fragments.get(fragment_id)
            return 0 if data is None else int(data.nbytes)

    @property
    def n_fragments(self) -> int:
        with self._lock:
            return len(self._fragments)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(a.nbytes for a in self._fragments.values())


class StoragePool:
    """A set of I/O servers with round-robin fragment placement."""

    def __init__(self, n_servers: int = 2) -> None:
        if n_servers < 1:
            raise ValueError("need at least one I/O server")
        self.servers: List[IOServer] = [
            IOServer(f"io{idx}") for idx in range(n_servers)
        ]
        self._fragment_ids = itertools.count(1)
        self._placement: Dict[int, IOServer] = {}
        self._rr = itertools.cycle(range(n_servers))
        self._lock = threading.Lock()

    def add_servers(self, n: int) -> None:
        """Dynamically scale the pool up by *n* I/O servers.

        Existing fragments stay where they are; new fragments round-robin
        over the enlarged set — Ophidia's "scaled up, also dynamically"
        behaviour (§4.2.2).
        """
        if n < 1:
            raise ValueError("must add at least one server")
        with self._lock:
            start = len(self.servers)
            self.servers.extend(IOServer(f"io{start + i}") for i in range(n))
            self._rr = itertools.cycle(range(len(self.servers)))

    def store(self, data: np.ndarray) -> int:
        """Place a new fragment; returns its pool-unique id."""
        with self._lock:
            fragment_id = next(self._fragment_ids)
            server = self.servers[next(self._rr)]
            self._placement[fragment_id] = server
        server.put(fragment_id, data)
        registry = get_registry()
        registry.counter(
            "ophidia_fragment_writes_total",
            "Fragments written into the I/O server pool",
        ).inc()
        registry.counter(
            "ophidia_fragment_bytes_written_total",
            "Bytes written into the I/O server pool",
        ).inc(int(data.nbytes))
        return fragment_id

    def load(self, fragment_id: int) -> np.ndarray:
        with self._lock:
            server = self._placement.get(fragment_id)
        if server is None:
            raise KeyError(f"unknown fragment id {fragment_id}")
        data = server.get(fragment_id)
        registry = get_registry()
        registry.counter(
            "ophidia_fragment_reads_total",
            "Fragments read back from the I/O server pool",
        ).inc()
        registry.counter(
            "ophidia_fragment_bytes_read_total",
            "Bytes read back from the I/O server pool",
        ).inc(int(data.nbytes))
        return data

    def delete(self, fragment_id: int) -> None:
        with self._lock:
            server = self._placement.pop(fragment_id, None)
        if server is not None:
            server.delete(fragment_id)
            get_registry().counter(
                "ophidia_fragment_deletes_total",
                "Fragments freed from the I/O server pool",
            ).inc()

    def fragment_nbytes(self, fragment_id: int) -> int:
        """Non-counting size peek; 0 for unknown/deleted fragments."""
        with self._lock:
            server = self._placement.get(fragment_id)
        return 0 if server is None else server.fragment_nbytes(fragment_id)

    def delete_many(self, fragment_ids: Sequence[int]) -> None:
        for fid in fragment_ids:
            self.delete(fid)

    def total_stats(self) -> StorageStats:
        """Aggregate counters across all servers."""
        agg = StorageStats()
        for s in self.servers:
            agg.fragment_reads += s.stats.fragment_reads
            agg.fragment_writes += s.stats.fragment_writes
            agg.bytes_read += s.stats.bytes_read
            agg.bytes_written += s.stats.bytes_written
            agg.fragment_deletes += s.stats.fragment_deletes
        return agg

    @property
    def resident_bytes(self) -> int:
        return sum(s.resident_bytes for s in self.servers)

    @property
    def n_fragments(self) -> int:
        return sum(s.n_fragments for s in self.servers)
