"""Metrics registry unit tests: kinds, labels, snapshots, exposition."""

import json
import math
import threading

import pytest

from repro.observability import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    snapshot_histogram_quantile,
    snapshot_value,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("ops_total", "ops", labels=("op",))
        c.inc(op="read")
        c.inc(3, op="read")
        c.inc(op="write")
        assert c.value(op="read") == 4
        assert c.value() == 5  # partial labels sum all series

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("bad_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_wrong_label_schema_rejected(self, registry):
        c = registry.counter("ops_total", labels=("op",))
        with pytest.raises(ValueError):
            c.inc(kind="read")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value() == 4


class TestHistogram:
    def test_observe_and_stats(self, registry):
        h = registry.histogram("lat_seconds")
        for v in (0.002, 0.002, 0.2):
            h.observe(v)
        stats = h.stats()
        assert stats["count"] == 3
        assert stats["sum"] == pytest.approx(0.204)
        assert stats["mean"] == pytest.approx(0.068)

    def test_quantile_interpolates(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        q50 = h.quantile(0.5)
        assert 1.0 <= q50 <= 2.0
        assert math.isnan(registry.histogram("empty_seconds").quantile(0.5))

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_label_schema_conflict_rejected(self, registry):
        registry.counter("x_total", labels=("a",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("x_total", labels=("b",))

    def test_counter_value_missing_metric_is_zero(self, registry):
        assert registry.counter_value("nope_total") == 0.0

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()

    def test_concurrent_increments(self, registry):
        c = registry.counter("n_total")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000


class TestSnapshot:
    def test_snapshot_is_frozen_copy(self, registry):
        c = registry.counter("n_total")
        c.inc()
        snap = registry.snapshot()
        c.inc(10)
        assert snap.value("n_total") == 1
        assert registry.snapshot().value("n_total") == 11

    def test_delta_subtracts_counters_keeps_gauges(self, registry):
        c = registry.counter("n_total")
        g = registry.gauge("level")
        c.inc(3)
        g.set(7)
        before = registry.snapshot()
        c.inc(2)
        g.set(9)
        delta = registry.snapshot().delta(before)
        assert delta.value("n_total") == 2
        assert delta.value("level") == 9  # a gauge is a level, not a flow

    def test_delta_drops_idle_series(self, registry):
        c = registry.counter("n_total", labels=("k",))
        c.inc(k="busy")
        c.inc(k="idle")
        before = registry.snapshot()
        c.inc(k="busy")
        delta = registry.snapshot().delta(before)
        assert delta.value("n_total", k="busy") == 1
        assert delta.value("n_total", k="idle") == 0

    def test_delta_histogram_subtracts(self, registry):
        h = registry.histogram("lat_seconds")
        h.observe(0.01)
        before = registry.snapshot()
        h.observe(0.02)
        h.observe(0.03)
        entry = registry.snapshot().delta(before).to_json()["lat_seconds"]
        assert entry["series"][0]["count"] == 2

    def test_json_roundtrip(self, registry):
        registry.counter("n_total", "help text", labels=("k",)).inc(k="a")
        payload = json.loads(json.dumps(registry.snapshot().to_json()))
        assert snapshot_value(payload, "n_total", k="a") == 1
        assert MetricsSnapshot(payload).value("n_total") == 1


class TestPrometheusText:
    def test_counter_exposition(self, registry):
        registry.counter("ops_total", "Operations", labels=("op",)).inc(op="read")
        text = registry.snapshot().to_prometheus()
        assert "# HELP ops_total Operations" in text
        assert "# TYPE ops_total counter" in text
        assert 'ops_total{op="read"} 1' in text

    def test_histogram_buckets_cumulative(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(5.0)
        text = registry.snapshot().to_prometheus()
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="2.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text

    def test_label_values_escaped(self, registry):
        registry.counter("n_total", labels=("path",)).inc(path='a"b\nc')
        text = registry.snapshot().to_prometheus()
        assert 'path="a\\"b\\nc"' in text


class TestSnapshotHistogramQuantile:
    """Edge cases of the exported-snapshot quantile estimator."""

    def _snap(self, registry):
        return registry.snapshot().to_json()

    def test_empty_histogram_is_nan(self, registry):
        registry.histogram("lat_seconds", buckets=(1.0, 2.0))
        snap = self._snap(registry)
        for q in (0.0, 0.5, 1.0):
            assert math.isnan(snapshot_histogram_quantile(
                snap, "lat_seconds", q))

    def test_absent_metric_is_nan(self, registry):
        assert math.isnan(snapshot_histogram_quantile(
            self._snap(registry), "never_observed", 0.5))

    def test_non_histogram_metric_is_nan(self, registry):
        registry.counter("ops_total").inc()
        assert math.isnan(snapshot_histogram_quantile(
            self._snap(registry), "ops_total", 0.5))

    def test_single_bucket_histogram(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0,))
        h.observe(0.25)
        h.observe(0.75)
        snap = self._snap(registry)
        p50 = snapshot_histogram_quantile(snap, "lat_seconds", 0.5)
        assert 0.0 <= p50 <= 1.0
        # Everything beyond the only finite bound clamps to it.
        assert snapshot_histogram_quantile(snap, "lat_seconds", 1.0) == 1.0

    def test_p0_and_p100_bounds(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        snap = self._snap(registry)
        p0 = snapshot_histogram_quantile(snap, "lat_seconds", 0.0)
        p100 = snapshot_histogram_quantile(snap, "lat_seconds", 1.0)
        assert p0 == 0.0
        assert p100 == 4.0  # last finite bound containing an observation
        assert p0 <= snapshot_histogram_quantile(snap, "lat_seconds", 0.5) \
            <= p100

    def test_single_observation_all_quantiles_in_its_bucket(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0, 2.0, 4.0))
        h.observe(1.5)  # lands in the (1.0, 2.0] bucket
        snap = self._snap(registry)
        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            estimate = snapshot_histogram_quantile(snap, "lat_seconds", q)
            assert 1.0 <= estimate <= 2.0, q

    def test_overflow_only_observation_clamps_to_last_finite(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
        h.observe(100.0)  # +Inf bucket only
        snap = self._snap(registry)
        assert snapshot_histogram_quantile(snap, "lat_seconds", 0.5) == 2.0

    def test_quantile_outside_unit_interval_rejected(self, registry):
        registry.histogram("lat_seconds").observe(0.1)
        snap = self._snap(registry)
        with pytest.raises(ValueError):
            snapshot_histogram_quantile(snap, "lat_seconds", 1.5)
        with pytest.raises(ValueError):
            snapshot_histogram_quantile(snap, "lat_seconds", -0.1)

    def test_label_filtered_series_merge(self, registry):
        h = registry.histogram("lat_seconds", labels=("op",), buckets=(1.0, 2.0))
        h.observe(0.5, op="read")
        h.observe(1.5, op="write")
        snap = self._snap(registry)
        read_p100 = snapshot_histogram_quantile(
            snap, "lat_seconds", 1.0, op="read")
        assert read_p100 == 1.0
        merged_p100 = snapshot_histogram_quantile(snap, "lat_seconds", 1.0)
        assert merged_p100 == 2.0
        assert math.isnan(snapshot_histogram_quantile(
            snap, "lat_seconds", 0.5, op="delete"))
