"""C11 — multi-tenant service throughput on one fixed-size cluster.

Four tenants share the 8-core simulated cluster through the workflow
service: each submits one 2-core ESM ensemble member plus two 1-core
heat-wave analytics jobs (the paper's big-simulation / small-analytics
mix).  The fair-share launcher must *pack* the four ESM members
side by side — the acceptance bar is at least four concurrent runs from
four distinct tenants — then drain the analytics wave, with nobody
starved: every tenant finishes its full submission.

Headline metrics (gated against ``benchmarks/baselines/``):

* ``runs_per_hour`` — completed service jobs per hour of wall clock at
  this fixed cluster size (higher is better);
* ``peak_concurrent_runs`` / ``peak_concurrent_tenants`` — maximum
  simultaneously-running jobs and distinct tenants owning them,
  reconstructed from the persisted ``started_at``/``finished_at`` rows;
* ``jobs_completed`` — must be the full 12-job submission.

Per-tenant isolation is asserted inline: a tenant touching another
tenant's job raises ``PermissionError``.
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.cluster import laptop_like
from repro.observability.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.service import (
    ANALYTICS_WORKFLOW,
    ESM_WORKFLOW,
    JobState,
    ServiceDB,
    WorkflowService,
    build_demo_services,
)

TENANTS = ("atmos", "ocean", "land", "ice")
ESM_CORES = 2          # 4 tenants x 2 cores packs the 8-core cluster
ANALYTICS_PER_TENANT = 2
JOBS_PER_TENANT = 1 + ANALYTICS_PER_TENANT


def peak_concurrency(rows):
    """Max overlapping runs (and distinct owners) from persisted rows."""
    events = []
    for row in rows:
        if row.started_at is None or row.finished_at is None:
            continue
        events.append((row.started_at, 1, row.tenant))
        events.append((row.finished_at, -1, row.tenant))
    events.sort(key=lambda e: (e[0], e[1]))
    live, peak_runs, peak_tenants = {}, 0, 0
    for _, delta, tenant in events:
        live[tenant] = live.get(tenant, 0) + delta
        if live[tenant] == 0:
            del live[tenant]
        n_runs = sum(live.values())
        if n_runs > peak_runs:
            peak_runs, peak_tenants = n_runs, len(live)
    return peak_runs, peak_tenants


def run_session(tmp_path):
    """One full multi-tenant session; returns the headline numbers."""
    db = ServiceDB(str(tmp_path / "runs.db"))
    for tenant in TENANTS:
        db.add_tenant(tenant)  # equal shares: fairness = equal service
    with laptop_like(scratch_root=str(tmp_path / "scratch")) as cluster:
        _a4c, api = build_demo_services(cluster)
        service = WorkflowService(db, api, cluster, site="bench")
        t0 = time.monotonic()
        with service:
            jobs = []
            # The ESM wave first so the launcher packs all four members
            # side by side, then the analytics fill in behind them.
            for seed, tenant in enumerate(TENANTS):
                jobs.append(service.submit(
                    tenant, ESM_WORKFLOW, cores=ESM_CORES,
                    n_days=25, n_lat=24, n_lon=36, seed=seed,
                ))
            for i in range(ANALYTICS_PER_TENANT):
                for seed, tenant in enumerate(TENANTS):
                    jobs.append(service.submit(
                        tenant, ANALYTICS_WORKFLOW,
                        n_days=12, seed=100 * i + seed,
                    ))
            # Isolation holds while the cluster is busy.
            for verb in (service.status, service.cancel):
                with pytest.raises(PermissionError):
                    verb("ocean", jobs[0].job_id)  # jobs[0] is atmos's
            service.drain(timeout=300)
        makespan_s = time.monotonic() - t0
        report = service.report()

    rows = db.jobs()
    completed = [r for r in rows if r.state is JobState.COMPLETED]
    peak_runs, peak_tenants = peak_concurrency(rows)
    return {
        "jobs": jobs,
        "rows": rows,
        "completed": completed,
        "report": report,
        "makespan_s": makespan_s,
        "runs_per_hour": len(completed) / makespan_s * 3600.0,
        "peak_concurrent_runs": peak_runs,
        "peak_concurrent_tenants": peak_tenants,
    }


def test_c11_service_throughput(benchmark, record_bench, tmp_path):
    previous = get_registry()
    set_registry(MetricsRegistry())
    try:
        session = benchmark.pedantic(
            lambda: run_session(tmp_path), rounds=1, iterations=1,
        )
    finally:
        set_registry(previous)

    n_jobs = len(TENANTS) * JOBS_PER_TENANT
    assert len(session["completed"]) == n_jobs, [
        r.to_json() for r in session["rows"] if r.state is not JobState.COMPLETED
    ]
    # The acceptance bar: >= 4 concurrent runs from 4 distinct tenants
    # packed onto the one cluster.
    assert session["peak_concurrent_runs"] >= len(TENANTS)
    assert session["peak_concurrent_tenants"] >= len(TENANTS)
    # Fair share honored — equal-share tenants all got their full
    # submission through; nobody starved.
    for tenant in TENANTS:
        tenant_report = session["report"]["tenants"][tenant]
        assert tenant_report["by_state"] == {"COMPLETED": JOBS_PER_TENANT}
        assert tenant_report["usage_core_s"] > 0

    record_bench(
        "c11_service_throughput",
        runs_per_hour=session["runs_per_hour"],
        peak_concurrent_runs=session["peak_concurrent_runs"],
        peak_concurrent_tenants=session["peak_concurrent_tenants"],
        jobs_completed=len(session["completed"]),
        makespan_s=session["makespan_s"],
    )

    rows = []
    for tenant in TENANTS:
        tenant_report = session["report"]["tenants"][tenant]
        rows.append([
            tenant, tenant_report["jobs"],
            f"{tenant_report['mean_turnaround_s']:.2f}",
            f"{tenant_report['usage_core_s']:.2f}",
        ])
    print_table(
        "C11: multi-tenant service throughput (4 tenants, 8 cores)",
        ["tenant", "jobs", "mean turnaround s", "usage core-s"],
        rows,
    )
    print(
        f"{len(session['completed'])} jobs in {session['makespan_s']:.2f}s "
        f"= {session['runs_per_hour']:.0f} runs/hour; peak "
        f"{session['peak_concurrent_runs']} concurrent runs from "
        f"{session['peak_concurrent_tenants']} tenants"
    )
