"""Initial-condition ensembles (the paper's §3).

"The time scale for execution of such simulations may vary ... according
to ... the number of simulation runs in the ensemble (group of runs of
the same ESM with different initial conditions)."  An ensemble here is
a set of model instances sharing configuration but differing in the
seed that controls weather noise and ocean initial phase — the injected
forced events (which represent the externally-forced signal) stay
identical across members, so ensemble statistics separate forced signal
from internal variability exactly as large-ensemble studies do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.filesystem import SharedFilesystem
from repro.esm.model import CMCCCM3, ModelConfig
from repro.netcdf.cf import DAYS_PER_YEAR


def member_name(index: int) -> str:
    """Canonical member directory name (CMIP 'r<N>i1p1f1' flavour)."""
    return f"r{index + 1}i1p1f1"


@dataclass(frozen=True)
class EnsembleConfig:
    """An ensemble: one base model configuration + member count."""

    base: ModelConfig
    n_members: int = 3

    def __post_init__(self) -> None:
        if self.n_members < 1:
            raise ValueError("ensemble needs at least one member")

    def member_config(self, index: int) -> ModelConfig:
        """Member *index*'s configuration: same physics, distinct seed.

        The event seed is kept at the base value so every member sees
        the same forced extremes; only internal variability differs.
        """
        if not 0 <= index < self.n_members:
            raise ValueError(f"member {index} outside [0, {self.n_members})")
        return replace(self.base, seed=self.base.seed + 1000 * (index + 1))


def build_member(config: EnsembleConfig, index: int) -> CMCCCM3:
    """Instantiate member *index* with shared forced events."""
    model = CMCCCM3(config.member_config(index))
    # Same forced events across members: variability lives in the noise.
    model.events.seed = config.base.seed
    return model


def run_ensemble(
    config: EnsembleConfig,
    years: Sequence[int],
    filesystem: SharedFilesystem,
    output_root: str = "ensemble",
    n_days: int = DAYS_PER_YEAR,
) -> Dict[str, Dict[int, dict]]:
    """Run every member; files land under ``<output_root>/<member>/``.

    Returns ground truth per member (identical by construction, which
    the tests assert).
    """
    truth: Dict[str, Dict[int, dict]] = {}
    for index in range(config.n_members):
        model = build_member(config, index)
        member = member_name(index)
        truth[member] = model.run(
            list(years), filesystem, output_dir=f"{output_root}/{member}",
            n_days=n_days,
        )
    return truth


def ensemble_statistics(
    member_fields: Sequence[np.ndarray],
) -> Dict[str, np.ndarray]:
    """Pointwise ensemble mean, spread and sign agreement.

    *member_fields* are same-shaped per-member arrays (e.g. each
    member's heat-wave-number map).  ``agreement`` is the fraction of
    members sharing the ensemble-mean sign — the robustness measure
    ensemble studies report.
    """
    if not member_fields:
        raise ValueError("need at least one member field")
    stack = np.stack([np.asarray(f, dtype=np.float64) for f in member_fields])
    mean = stack.mean(axis=0)
    spread = stack.std(axis=0)
    sign = np.sign(mean)
    agreement = np.mean(np.sign(stack) == sign, axis=0)
    return {"mean": mean, "spread": spread, "agreement": agreement,
            "n_members": stack.shape[0]}
