"""The ``oph_*`` primitive expression mini-language.

Ophidia's ``OPH_APPLY`` operator transforms each fragment through SQL-like
primitive expressions — the paper's Listing 1 uses::

    oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')

This module implements a tokenizer, a recursive-descent parser and an
evaluator for the subset of primitives the climate workflow needs:

``oph_predicate``
    Elementwise conditional: where the condition on ``x`` holds, emit the
    *then* expression, otherwise the *else* expression (each either a
    number, ``'x'`` for the input value, or ``'NAN'``).
``oph_sum_scalar`` / ``oph_sub_scalar`` / ``oph_mul_scalar`` / ``oph_div_scalar``
    Elementwise arithmetic with a constant.
``oph_math``
    Elementwise transcendental functions (``OPH_MATH_ABS``, ``_SQRT``,
    ``_LOG``, ``_EXP``, ``_SIN``, ``_COS``).
``oph_cast``
    Type conversion.

All primitives take the Ophidia input/output measure-type strings
(``'OPH_FLOAT'`` etc.) as their leading arguments and honour the output
type; nesting is allowed anywhere a measure expression is expected
(``oph_predicate(..., oph_mul_scalar(...), ...)``).
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Tuple

import numpy as np


class PrimitiveError(ValueError):
    """Malformed primitive expression."""


#: Ophidia measure-type → NumPy dtype.
OPH_TYPES: Dict[str, np.dtype] = {
    "OPH_BYTE": np.dtype(np.int8),
    "OPH_SHORT": np.dtype(np.int16),
    "OPH_INT": np.dtype(np.int32),
    "OPH_LONG": np.dtype(np.int64),
    "OPH_FLOAT": np.dtype(np.float32),
    "OPH_DOUBLE": np.dtype(np.float64),
}


def _dtype(name: Any) -> np.dtype:
    key = str(name).upper()
    if key not in OPH_TYPES:
        raise PrimitiveError(
            f"unknown Ophidia measure type {name!r}; expected one of {sorted(OPH_TYPES)}"
        )
    return OPH_TYPES[key]


# ---------------------------------------------------------------------------
# Tokenizer / parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<number>-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)"
    r"|(?P<string>'[^']*')"
    r"|(?P<punct>[(),]))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise PrimitiveError(f"unexpected character at {text[pos:pos + 10]!r}")
        pos = match.end()
        kind = match.lastgroup
        tokens.append((kind, match.group(kind)))
    return tokens


class _Parser:
    """Recursive-descent parser producing a small AST of tuples.

    AST nodes: ``("call", name, [args])``, ``("num", float)``,
    ``("str", text)``, ``("measure",)``.
    """

    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else (None, None)

    def take(self, kind=None, value=None):
        tok_kind, tok_value = self.peek()
        if tok_kind is None:
            raise PrimitiveError("unexpected end of expression")
        if kind is not None and tok_kind != kind:
            raise PrimitiveError(f"expected {kind}, got {tok_value!r}")
        if value is not None and tok_value != value:
            raise PrimitiveError(f"expected {value!r}, got {tok_value!r}")
        self.pos += 1
        return tok_value

    def parse(self):
        node = self.expr()
        if self.pos != len(self.tokens):
            raise PrimitiveError(
                f"trailing tokens after expression: {self.tokens[self.pos:]}"
            )
        return node

    def expr(self):
        kind, value = self.peek()
        if kind == "name":
            self.take()
            nxt_kind, nxt_value = self.peek()
            if nxt_kind == "punct" and nxt_value == "(":
                return self.call(value)
            if value == "measure":
                return ("measure",)
            raise PrimitiveError(f"unknown identifier {value!r}")
        if kind == "number":
            self.take()
            return ("num", float(value))
        if kind == "string":
            self.take()
            return ("str", value[1:-1])
        raise PrimitiveError(f"unexpected token {value!r}")

    def call(self, name: str):
        self.take("punct", "(")
        args = []
        if self.peek() != ("punct", ")"):
            args.append(self.expr())
            while self.peek() == ("punct", ","):
                self.take()
                args.append(self.expr())
        self.take("punct", ")")
        return ("call", name.lower(), args)


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

_CONDITION_RE = re.compile(
    r"^\s*(?:x\s*)?(?P<op>>=|<=|!=|==|=|>|<)\s*(?P<value>-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)\s*$"
)

_COMPARATORS: Dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    ">": np.greater,
    "<": np.less,
    ">=": np.greater_equal,
    "<=": np.less_equal,
    "==": np.equal,
    "=": np.equal,
    "!=": np.not_equal,
}

_MATH_FUNCS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "OPH_MATH_ABS": np.abs,
    "OPH_MATH_SQRT": np.sqrt,
    "OPH_MATH_LOG": np.log,
    "OPH_MATH_EXP": np.exp,
    "OPH_MATH_SIN": np.sin,
    "OPH_MATH_COS": np.cos,
}


def parse_condition(text: str) -> Tuple[str, float]:
    """Split a predicate condition into ``(comparator symbol, threshold)``.

    Shared by the evaluator and the chunk-pruning planner (which needs
    the symbolic comparator to reason about chunk min/max statistics).
    """
    match = _CONDITION_RE.match(text)
    if match is None:
        raise PrimitiveError(
            f"unsupported predicate condition {text!r}; expected e.g. '>0', 'x>=5'"
        )
    return match.group("op"), float(match.group("value"))


def _parse_condition(text: str) -> Tuple[Callable, float]:
    op, value = parse_condition(text)
    return _COMPARATORS[op], value


def _branch_value(text: str, measure: np.ndarray) -> Any:
    """A predicate branch: 'x' (the input), 'NAN', or a numeric literal."""
    stripped = text.strip()
    if stripped == "x":
        return measure
    if stripped.upper() == "NAN":
        return np.nan
    try:
        return float(stripped)
    except ValueError:
        raise PrimitiveError(
            f"unsupported predicate branch {text!r}; expected 'x', 'NAN' or a number"
        ) from None


def _eval(node, measure: np.ndarray) -> Any:
    kind = node[0]
    if kind == "measure":
        return measure
    if kind == "num":
        return node[1]
    if kind == "str":
        return node[1]
    if kind == "call":
        return _eval_call(node[1], node[2], measure)
    raise PrimitiveError(f"bad AST node {node!r}")  # pragma: no cover


def _eval_measure_arg(node, measure: np.ndarray) -> np.ndarray:
    value = _eval(node, measure)
    if not isinstance(value, np.ndarray):
        raise PrimitiveError(
            "expected a measure expression (the 'measure' keyword or a nested "
            f"primitive call), got {value!r}"
        )
    return value


def _eval_call(name: str, args: List, measure: np.ndarray) -> np.ndarray:
    if name == "oph_predicate":
        if len(args) != 7:
            raise PrimitiveError("oph_predicate takes 7 arguments")
        _dtype(_eval(args[0], measure))
        out_type = _dtype(_eval(args[1], measure))
        data = _eval_measure_arg(args[2], measure)
        var = str(_eval(args[3], measure)).strip()
        if var != "x":
            raise PrimitiveError(f"predicate variable must be 'x', got {var!r}")
        comparator, threshold = _parse_condition(str(_eval(args[4], measure)))
        then_value = _branch_value(str(_eval(args[5], measure)), data)
        else_value = _branch_value(str(_eval(args[6], measure)), data)
        result = np.where(comparator(data, threshold), then_value, else_value)
        return np.asarray(result, dtype=out_type)

    if name in ("oph_sum_scalar", "oph_sub_scalar", "oph_mul_scalar", "oph_div_scalar"):
        if len(args) != 4:
            raise PrimitiveError(f"{name} takes 4 arguments")
        _dtype(_eval(args[0], measure))
        out_type = _dtype(_eval(args[1], measure))
        data = _eval_measure_arg(args[2], measure)
        scalar = _eval(args[3], measure)
        if isinstance(scalar, str):
            scalar = float(scalar)
        ops = {
            "oph_sum_scalar": np.add,
            "oph_sub_scalar": np.subtract,
            "oph_mul_scalar": np.multiply,
            "oph_div_scalar": np.divide,
        }
        if name == "oph_div_scalar" and scalar == 0:
            raise PrimitiveError("oph_div_scalar by zero")
        return np.asarray(ops[name](data, scalar), dtype=out_type)

    if name == "oph_math":
        if len(args) != 4:
            raise PrimitiveError("oph_math takes 4 arguments")
        _dtype(_eval(args[0], measure))
        out_type = _dtype(_eval(args[1], measure))
        data = _eval_measure_arg(args[2], measure)
        func_name = str(_eval(args[3], measure)).upper()
        func = _MATH_FUNCS.get(func_name)
        if func is None:
            raise PrimitiveError(
                f"unknown math function {func_name!r}; "
                f"expected one of {sorted(_MATH_FUNCS)}"
            )
        return np.asarray(func(data.astype(np.float64)), dtype=out_type)

    if name == "oph_cast":
        if len(args) != 3:
            raise PrimitiveError("oph_cast takes 3 arguments")
        _dtype(_eval(args[0], measure))
        out_type = _dtype(_eval(args[1], measure))
        data = _eval_measure_arg(args[2], measure)
        return np.asarray(data, dtype=out_type)

    raise PrimitiveError(f"unknown primitive {name!r}")


# ---------------------------------------------------------------------------
# Compile-once AST cache
# ---------------------------------------------------------------------------

class _ASTCache:
    """Thread-safe LRU of parsed primitive ASTs, keyed on the query string.

    Fragment-parallel operators evaluate the same query once per
    fragment; with the cache the tokenizer/parser run once per distinct
    query string for the whole process instead.  ASTs are immutable
    tuples, so sharing one across threads is safe.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, tuple]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, query: str) -> tuple:
        with self._lock:
            ast = self._entries.get(query)
            if ast is not None:
                self.hits += 1
                self._entries.move_to_end(query)
                return ast
            self.misses += 1
        # Parse outside the lock: parsing is pure and collisions are
        # harmless (both threads produce the same AST).
        ast = _parse_uncached(query)
        with self._lock:
            self._entries[query] = ast
            self._entries.move_to_end(query)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return ast

    def info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits, "misses": self.misses,
                "size": len(self._entries), "maxsize": self.maxsize,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


def _parse_uncached(query: str) -> tuple:
    ast = _Parser(_tokenize(query)).parse()
    if ast[0] != "call":
        raise PrimitiveError("a primitive expression must be a function call")
    return ast


_ast_cache = _ASTCache()


def parse_primitive(query: str) -> tuple:
    """Parse *query* into its AST, memoized in a thread-safe LRU.

    Raises :class:`PrimitiveError` for malformed queries (errors are not
    cached, so a corrected query re-parses normally).
    """
    return _ast_cache.get(query)


def primitive_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the shared AST cache."""
    return _ast_cache.info()


def clear_primitive_cache() -> None:
    """Drop all cached ASTs and reset the counters (tests)."""
    _ast_cache.clear()


def evaluate_ast(ast: tuple, measure: np.ndarray) -> np.ndarray:
    """Evaluate a pre-parsed primitive AST against the *measure* array."""
    measure = np.asarray(measure)
    result = _eval(ast, measure)
    if result.shape != measure.shape:
        raise PrimitiveError(
            f"primitive changed the measure shape {measure.shape} "
            f"-> {result.shape}"
        )  # pragma: no cover - all current primitives are elementwise
    return result


# ---------------------------------------------------------------------------
# Planner introspection
# ---------------------------------------------------------------------------

_BRANCH_PASSTHROUGH = object()


def _literal_branch(node: tuple):
    """Resolve a predicate branch AST node without evaluating a measure.

    Returns the passthrough sentinel for ``'x'``, a float (possibly NaN)
    for literals, or raises :class:`PrimitiveError` for anything the
    planner cannot reason about (e.g. a nested primitive call).
    """
    if node[0] == "num":
        return float(node[1])
    if node[0] == "str":
        stripped = node[1].strip()
        if stripped == "x":
            return _BRANCH_PASSTHROUGH
        if stripped.upper() == "NAN":
            return float("nan")
        try:
            return float(stripped)
        except ValueError:
            raise PrimitiveError(f"non-literal branch {node[1]!r}") from None
    raise PrimitiveError(f"non-literal branch {node!r}")


class PredicateInfo:
    """Statically-known shape of a prunable ``oph_predicate`` expression.

    ``then_const``/``else_const`` are floats (possibly NaN) when the
    branch is a constant and None when it passes the measure through
    (``'x'``).  ``ast`` retains the full original expression so a
    must-read chunk is still evaluated through the exact evaluator
    semantics, never a re-synthesised expression.
    """

    __slots__ = ("op", "threshold", "then_const", "else_const", "out_dtype", "ast")

    def __init__(self, op, threshold, then_const, else_const, out_dtype, ast):
        self.op = op
        self.threshold = threshold
        self.then_const = then_const
        self.else_const = else_const
        self.out_dtype = out_dtype
        self.ast = ast


def describe_predicate(ast: tuple):
    """Introspect *ast* for the pruning planner.

    Returns a :class:`PredicateInfo` when *ast* is a single top-level
    ``oph_predicate`` applied directly to the measure with a literal
    condition and literal-or-passthrough branches — the shape whose
    outcome chunk min/max statistics can decide.  Any other expression
    returns None and the planner falls back to reading the chunk.
    """
    if not (isinstance(ast, tuple) and ast[0] == "call" and ast[1] == "oph_predicate"):
        return None
    args = ast[2]
    if len(args) != 7 or args[2] != ("measure",):
        return None
    try:
        _dtype(_eval(args[0], np.empty(0)))
        out_dtype = _dtype(_eval(args[1], np.empty(0)))
        if args[3][0] not in ("str", "num") or str(args[3][1]).strip() != "x":
            return None
        if args[4][0] != "str":
            return None
        op, threshold = parse_condition(args[4][1])
        then_value = _literal_branch(args[5])
        else_value = _literal_branch(args[6])
    except PrimitiveError:
        return None
    return PredicateInfo(
        op,
        threshold,
        None if then_value is _BRANCH_PASSTHROUGH else then_value,
        None if else_value is _BRANCH_PASSTHROUGH else else_value,
        out_dtype,
        ast,
    )


def evaluate_primitive(query: str, measure: np.ndarray) -> np.ndarray:
    """Evaluate an ``oph_*`` *query* against the *measure* array.

    The result always has the query's declared output type and the same
    shape as the input measure.  The parsed AST is memoized, so repeated
    evaluation of one query (the per-fragment pattern) tokenizes once.
    """
    return evaluate_ast(parse_primitive(query), measure)
