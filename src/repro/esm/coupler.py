"""The atmosphere-ocean coupler.

The paper describes CMCC-CM3's coupling: "Every few minutes the heat,
momentum and mass fluxes are sent from the atmosphere to the ocean and
the sea surface temperature ... sent from the ocean to the atmosphere."
At the daily cadence of this reproduction the coupler exchanges once per
day: it derives a normalised heat flux from the air-sea temperature
difference (damped by wind-driven mixing) and hands each component the
other's state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.esm.grid import Grid


@dataclass
class Coupler:
    """Computes exchange fields between the two components."""

    grid: Grid
    flux_scale_k: float = 3.0      # temperature difference normalisation
    wind_mixing_ms: float = 8.0    # wind speed that doubles the exchange

    def atmosphere_to_ocean(
        self, t2m: np.ndarray, wind_speed: np.ndarray, sst: np.ndarray
    ) -> np.ndarray:
        """Normalised heat flux into the ocean (positive warms the ocean).

        Proportional to the air-sea temperature difference, enhanced by
        surface wind (bulk-formula flavour), zero over land.
        """
        mixing = 1.0 + np.clip(wind_speed, 0.0, 30.0) / self.wind_mixing_ms
        flux = (t2m - sst) / self.flux_scale_k * mixing
        return np.where(self.grid.ocean_mask, np.clip(flux, -3.0, 3.0), 0.0)

    def ocean_to_atmosphere(self, sst: np.ndarray) -> Dict[str, np.ndarray]:
        """State handed to the atmosphere: SST and derived ice fraction."""
        icefrac = np.clip((273.15 - 1.8 - sst) / 4.0, 0.0, 1.0)
        return {
            "sst": sst,
            "icefrac": np.where(self.grid.ocean_mask, icefrac, 0.0),
        }
