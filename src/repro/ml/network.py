"""The Sequential network container."""

from __future__ import annotations

import pickle
from typing import List, Sequence

import numpy as np

from repro.ml.layers import Layer


class Sequential:
    """A simple feed-forward stack of layers."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers: List[Layer] = list(layers)

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    __call__ = forward

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate loss gradient back through all layers."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    @property
    def params(self) -> List[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> List[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    @property
    def n_parameters(self) -> int:
        return sum(p.size for p in self.params)

    # -- persistence --------------------------------------------------------

    def state_bytes(self) -> bytes:
        """Serialise all weights (architecture is code, not data)."""
        return pickle.dumps([p.copy() for p in self.params])

    def load_state_bytes(self, payload: bytes) -> None:
        """Restore weights produced by :meth:`state_bytes`.

        Raises ``ValueError`` on arity or shape mismatch so loading a
        checkpoint into the wrong architecture fails loudly.
        """
        weights = pickle.loads(payload)
        params = self.params
        if len(weights) != len(params):
            raise ValueError(
                f"checkpoint has {len(weights)} arrays, model expects {len(params)}"
            )
        for target, source in zip(params, weights):
            if target.shape != source.shape:
                raise ValueError(
                    f"shape mismatch: checkpoint {source.shape} vs model {target.shape}"
                )
            target[...] = source

    def save(self, path: str) -> None:
        with open(path, "wb") as fh:
            fh.write(self.state_bytes())

    def load(self, path: str) -> None:
        with open(path, "rb") as fh:
            self.load_state_bytes(fh.read())
