"""Persistent run history: a SQLite-backed registry of workflow runs.

Telemetry so far evaporated with the process: spans, metrics and
profiles all described *one* run and were gone when it ended.  This
module gives the system cross-run memory — every ``repro run`` /
``run-distributed`` / ``chaos`` / benchmark invocation persists a row
into ``runs.db`` (run id, kind, status, wall clock, git revision,
params digest, the full per-run metrics snapshot and the critical-path
profile summary), queryable long after the process exited::

    $ repro history list
    $ repro history show 4f9a
    $ repro history compare 4f9a 81c2      # headline + critical-path diff

The store is deliberately boring and robust:

* **schema-versioned** via ``PRAGMA user_version`` with in-place
  migration hooks, so old databases keep working across PRs;
* **concurrent-writer safe** — WAL journal mode, ``BEGIN IMMEDIATE``
  transactions and a busy timeout, so parallel benchmark processes can
  all record into one database (the same discipline
  :func:`locked_json_update` applies to ``BENCH_summary.json``);
* one connection per operation — no long-lived handles to leak across
  forks or threads.

``compare`` diffs two runs' headline metrics using the same
per-metric-name tolerance specs as the perf gate
(:func:`repro.observability.baseline.default_metric_spec`), plus the
critical-path category attribution from each run's profile, and flags
drifts beyond tolerance — the cross-run analogue of ``repro perf-gate``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "RunHistory",
    "RunRecord",
    "atomic_write_json",
    "compare_runs",
    "default_history_path",
    "git_revision",
    "interprocess_lock",
    "locked_json_update",
    "new_run_id",
    "params_digest",
    "render_comparison",
    "render_run",
    "render_run_table",
]

#: Bumped on every schema change; ``_MIGRATIONS[v]`` upgrades v -> v+1.
SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id        TEXT PRIMARY KEY,
    kind          TEXT NOT NULL,
    status        TEXT NOT NULL,
    started_at    REAL NOT NULL,
    wall_clock_s  REAL,
    git_rev       TEXT NOT NULL DEFAULT '',
    params_digest TEXT NOT NULL DEFAULT '',
    trace_id      TEXT NOT NULL DEFAULT '',
    error         TEXT NOT NULL DEFAULT '',
    params_json   TEXT NOT NULL DEFAULT '{}',
    metrics_json  TEXT NOT NULL DEFAULT '{}',
    profile_json  TEXT NOT NULL DEFAULT '{}',
    extra_json    TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_runs_started ON runs (started_at DESC);
CREATE INDEX IF NOT EXISTS idx_runs_kind ON runs (kind);
"""

#: v2 — the multi-tenant workflow-service control plane
#: (:mod:`repro.service`): tenants with fair-share weights and quotas,
#: the sites jobs land on, and one row per submitted workflow job with
#: its full lifecycle (SUBMITTED → LAUNCHED → COMPLETED/FAILED/
#: CANCELLED).  Lives in the same ``runs.db`` so a service job's
#: ``run_id`` column joins straight onto the ``runs`` table.
_SCHEMA_V2 = """
CREATE TABLE IF NOT EXISTS tenants (
    name         TEXT PRIMARY KEY,
    share        REAL NOT NULL DEFAULT 1.0,
    max_running  INTEGER NOT NULL DEFAULT 4,
    max_cores    INTEGER NOT NULL DEFAULT 0,
    created_at   REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS sites (
    name            TEXT PRIMARY KEY,
    cluster         TEXT NOT NULL DEFAULT '',
    total_cores     INTEGER NOT NULL DEFAULT 0,
    total_memory_gb REAL NOT NULL DEFAULT 0,
    created_at      REAL NOT NULL,
    last_seen_at    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS service_jobs (
    job_id       TEXT PRIMARY KEY,
    tenant       TEXT NOT NULL,
    workflow     TEXT NOT NULL,
    site         TEXT NOT NULL DEFAULT '',
    state        TEXT NOT NULL,
    cores        INTEGER NOT NULL DEFAULT 1,
    memory_gb    REAL NOT NULL DEFAULT 0,
    params_json  TEXT NOT NULL DEFAULT '{}',
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    error        TEXT NOT NULL DEFAULT '',
    run_id       TEXT NOT NULL DEFAULT '',
    backfilled   INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_service_jobs_tenant
    ON service_jobs (tenant, submitted_at);
CREATE INDEX IF NOT EXISTS idx_service_jobs_state ON service_jobs (state);
"""


def _migrate_v1_to_v2(conn: sqlite3.Connection) -> None:
    """v1 databases predate the service control plane: add its tables."""
    conn.executescript(_SCHEMA_V2)


#: ``_MIGRATIONS[v]`` upgrades an existing database from v to v+1.
_MIGRATIONS = {1: _migrate_v1_to_v2}


def new_run_id() -> str:
    return uuid.uuid4().hex[:12]


def default_history_path() -> Optional[str]:
    """The ambient ``runs.db`` path, or None when history is disabled.

    Drivers called as a library persist nothing unless ``$REPRO_RUNS_DB``
    points somewhere (unit tests stay side-effect free); the CLI and the
    benchmark harness set an explicit path.
    """
    return os.environ.get("REPRO_RUNS_DB") or None


def git_revision() -> str:
    """Best-effort current git revision (never raises, '' if unknown).

    ``$REPRO_GIT_REV`` overrides; otherwise ``.git/HEAD`` is resolved by
    hand so recording a run costs no subprocess.
    """
    override = os.environ.get("REPRO_GIT_REV")
    if override:
        return override
    try:
        # Walk up from the installed package, not the cwd: runs launched
        # from a scratch directory still resolve the checkout's HEAD.
        root = os.path.dirname(os.path.abspath(__file__))
        while True:
            head_path = os.path.join(root, ".git", "HEAD")
            if os.path.exists(head_path):
                break
            parent = os.path.dirname(root)
            if parent == root:
                return ""
            root = parent
        with open(head_path, "r", encoding="utf-8") as fh:
            head = fh.read().strip()
        if head.startswith("ref:"):
            ref = head.split(None, 1)[1]
            ref_path = os.path.join(root, ".git", *ref.split("/"))
            if os.path.exists(ref_path):
                with open(ref_path, "r", encoding="utf-8") as fh:
                    return fh.read().strip()[:12]
            packed = os.path.join(root, ".git", "packed-refs")
            if os.path.exists(packed):
                with open(packed, "r", encoding="utf-8") as fh:
                    for line in fh:
                        if line.strip().endswith(ref):
                            return line.split()[0][:12]
            return ""
        return head[:12]
    except OSError:  # pragma: no cover - unreadable .git
        return ""


def params_digest(params: Mapping[str, Any]) -> str:
    """Stable short digest of a run's parameters (order-insensitive)."""
    import hashlib

    canonical = json.dumps(params, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


# ---------------------------------------------------------------------------
# Interprocess file locking + atomic JSON (shared with the bench summary)
# ---------------------------------------------------------------------------

@contextmanager
def interprocess_lock(path: str, timeout: float = 30.0) -> Iterator[None]:
    """Exclusive advisory lock on ``<path>.lock`` across processes.

    Uses ``fcntl.flock`` where available (every platform this repo's CI
    runs on); elsewhere falls back to an ``O_EXCL`` spin lock.  Always
    blocks rather than failing: callers hold it for milliseconds.
    """
    lock_path = path + ".lock"
    parent = os.path.dirname(os.path.abspath(lock_path))
    os.makedirs(parent, exist_ok=True)
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX fallback
        deadline = time.monotonic() + timeout
        while True:
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                break
            except FileExistsError:
                if time.monotonic() > deadline:
                    raise TimeoutError(f"could not lock {lock_path}")
                time.sleep(0.01)
        try:
            yield
        finally:
            os.close(fd)
            try:
                os.unlink(lock_path)
            except OSError:
                pass
        return
    fd = os.open(lock_path, os.O_CREAT | os.O_WRONLY, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


def atomic_write_json(path: str, doc: Any) -> None:
    """Write *doc* as JSON via a same-directory temp file + rename.

    Readers never observe a torn file: the rename is atomic on POSIX.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = os.path.join(
        parent, f".{os.path.basename(path)}.{os.getpid()}.{uuid.uuid4().hex[:6]}.tmp"
    )
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def locked_json_update(path: str, update: Any, timeout: float = 30.0) -> Any:
    """Read-modify-write *path* under the interprocess lock.

    *update* receives the current document (or None when the file is
    absent/corrupt) and returns the document to persist, which is
    written atomically.  This is the WAL-adjacent discipline for the
    JSON artefacts that sit next to ``runs.db`` (``BENCH_summary.json``):
    two concurrent benchmark processes merge instead of clobbering.
    """
    with interprocess_lock(path, timeout=timeout):
        current = None
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    current = json.load(fh)
            except (ValueError, OSError):
                current = None
        doc = update(current)
        atomic_write_json(path, doc)
        return doc


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RunRecord:
    """One persisted run, JSON columns decoded."""

    run_id: str
    kind: str
    status: str
    started_at: float
    wall_clock_s: Optional[float]
    git_rev: str
    params_digest: str
    trace_id: str
    error: str
    params: Dict[str, Any]
    metrics: Dict[str, Any]
    profile: Dict[str, Any]
    extra: Dict[str, Any]

    def to_json(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id, "kind": self.kind, "status": self.status,
            "started_at": self.started_at, "wall_clock_s": self.wall_clock_s,
            "git_rev": self.git_rev, "params_digest": self.params_digest,
            "trace_id": self.trace_id, "error": self.error,
            "params": self.params, "metrics": self.metrics,
            "profile": self.profile, "extra": self.extra,
        }

    @property
    def headline_metrics(self) -> Dict[str, float]:
        from repro.observability.baseline import extract_headline_metrics

        return extract_headline_metrics(self.metrics) if self.metrics else {}


class RunHistory:
    """The ``runs.db`` store.  Safe for concurrent writers (WAL)."""

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        self.path = os.path.abspath(path)
        self.timeout = timeout
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with self._connect() as conn:
            self._migrate(conn)

    # -- connections --------------------------------------------------------

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        conn = sqlite3.connect(self.path, timeout=self.timeout)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={int(self.timeout * 1000)}")
            conn.row_factory = sqlite3.Row
            yield conn
        finally:
            conn.close()

    def _migrate(self, conn: sqlite3.Connection) -> None:
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise RuntimeError(
                f"{self.path}: schema version {version} is newer than this "
                f"build supports ({SCHEMA_VERSION}); upgrade the code, not "
                "the database"
            )
        # Idempotent DDL (IF NOT EXISTS throughout), so two processes
        # racing through first-open both succeed; executescript commits
        # implicitly.  A fresh database gets the full current schema;
        # an old one chains through _MIGRATIONS one version at a time.
        if version == 0:
            conn.executescript(_SCHEMA)
            conn.executescript(_SCHEMA_V2)
        else:
            while version < SCHEMA_VERSION:
                _MIGRATIONS[version](conn)
                version += 1
        conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
        conn.commit()

    def schema_version(self) -> int:
        """The database's ``PRAGMA user_version`` (after migration)."""
        with self._connect() as conn:
            return conn.execute("PRAGMA user_version").fetchone()[0]

    # -- writes -------------------------------------------------------------

    def record_start(
        self,
        run_id: str,
        kind: str,
        params: Optional[Mapping[str, Any]] = None,
        trace_id: str = "",
    ) -> str:
        """Insert a ``running`` row at workflow start; returns *run_id*."""
        params = dict(params or {})
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "INSERT OR REPLACE INTO runs (run_id, kind, status, "
                "started_at, git_rev, params_digest, trace_id, params_json) "
                "VALUES (?, ?, 'running', ?, ?, ?, ?, ?)",
                (run_id, kind, time.time(), git_revision(),
                 params_digest(params), trace_id,
                 json.dumps(params, sort_keys=True, default=str)),
            )
            conn.commit()
        return run_id

    def record_end(
        self,
        run_id: str,
        status: str,
        wall_clock_s: Optional[float] = None,
        metrics: Optional[Mapping[str, Any]] = None,
        profile: Optional[Mapping[str, Any]] = None,
        trace_id: Optional[str] = None,
        error: str = "",
        extra: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Close a run's row with its outcome and telemetry snapshots."""
        sets = ["status = ?", "wall_clock_s = ?", "error = ?"]
        values: List[Any] = [status, wall_clock_s, error[:2000]]
        if metrics is not None:
            sets.append("metrics_json = ?")
            values.append(json.dumps(metrics, default=str))
        if profile is not None:
            sets.append("profile_json = ?")
            values.append(json.dumps(_profile_summary(profile), default=str))
        if trace_id is not None:
            sets.append("trace_id = ?")
            values.append(trace_id)
        if extra is not None:
            sets.append("extra_json = ?")
            values.append(json.dumps(dict(extra), default=str))
        values.append(run_id)
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            cur = conn.execute(
                f"UPDATE runs SET {', '.join(sets)} WHERE run_id = ?", values
            )
            if cur.rowcount == 0:
                raise KeyError(f"unknown run_id {run_id!r} in {self.path}")
            conn.commit()

    def record_run(
        self,
        kind: str,
        status: str,
        params: Optional[Mapping[str, Any]] = None,
        wall_clock_s: Optional[float] = None,
        metrics: Optional[Mapping[str, Any]] = None,
        profile: Optional[Mapping[str, Any]] = None,
        trace_id: str = "",
        error: str = "",
        extra: Optional[Mapping[str, Any]] = None,
        run_id: Optional[str] = None,
    ) -> str:
        """One-shot insert of a finished run (benchmark harness path)."""
        rid = run_id or new_run_id()
        self.record_start(rid, kind, params, trace_id=trace_id)
        self.record_end(
            rid, status, wall_clock_s=wall_clock_s, metrics=metrics,
            profile=profile, error=error, extra=extra,
        )
        return rid

    # -- reads --------------------------------------------------------------

    def list_runs(
        self, limit: int = 20, kind: Optional[str] = None
    ) -> List[RunRecord]:
        """Most recent runs first."""
        query = "SELECT * FROM runs"
        values: List[Any] = []
        if kind is not None:
            query += " WHERE kind = ?"
            values.append(kind)
        query += " ORDER BY started_at DESC, run_id LIMIT ?"
        values.append(limit)
        with self._connect() as conn:
            rows = conn.execute(query, values).fetchall()
        return [_record(row) for row in rows]

    def get(self, run_id: str) -> RunRecord:
        """Fetch by exact id or unique prefix (git-style)."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
            if row is not None:
                return _record(row)
            rows = conn.execute(
                "SELECT * FROM runs WHERE run_id LIKE ? ORDER BY started_at",
                (run_id + "%",),
            ).fetchall()
        if not rows:
            raise KeyError(f"no run matching {run_id!r} in {self.path}")
        if len(rows) > 1:
            ids = ", ".join(r["run_id"] for r in rows[:5])
            raise KeyError(f"run id prefix {run_id!r} is ambiguous: {ids}")
        return _record(rows[0])

    def __len__(self) -> int:
        with self._connect() as conn:
            return conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    # -- comparison ---------------------------------------------------------

    def compare(self, run_a: str, run_b: str) -> Dict[str, Any]:
        """Diff two runs (by id/prefix); see :func:`compare_runs`."""
        return compare_runs(self.get(run_a), self.get(run_b))


def _record(row: sqlite3.Row) -> RunRecord:
    def loads(column: str) -> Dict[str, Any]:
        try:
            doc = json.loads(row[column] or "{}")
        except ValueError:
            return {}
        return doc if isinstance(doc, dict) else {}

    return RunRecord(
        run_id=row["run_id"], kind=row["kind"], status=row["status"],
        started_at=row["started_at"], wall_clock_s=row["wall_clock_s"],
        git_rev=row["git_rev"], params_digest=row["params_digest"],
        trace_id=row["trace_id"], error=row["error"],
        params=loads("params_json"), metrics=loads("metrics_json"),
        profile=loads("profile_json"), extra=loads("extra_json"),
    )


#: Profile fields worth persisting per run (the full segment list is
#: huge and lives in ``results/profile.json``; the store keeps the
#: attribution summary ``compare`` needs).
_PROFILE_KEEP = (
    "trace_id", "root_name", "makespan_s", "critical_path_s", "categories",
    "overlap", "task_window_s", "n_spans", "n_task_events", "by_name",
)


def _profile_summary(profile: Mapping[str, Any]) -> Dict[str, Any]:
    summary = {k: profile[k] for k in _PROFILE_KEEP if k in profile}
    by_name = summary.get("by_name")
    if isinstance(by_name, list):
        summary["by_name"] = by_name[:15]
    return summary


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

def compare_runs(a: RunRecord, b: RunRecord) -> Dict[str, Any]:
    """Diff run *b* against baseline run *a*.

    Headline metrics are gated with the perf-gate tolerance specs
    (:func:`default_metric_spec` keyed on run *a*'s value): a metric
    drifting outside its tolerance in the bad direction is flagged as a
    regression.  The critical-path category attribution (compute / io /
    transfer / queue / orchestration seconds) is diffed alongside so a
    slowdown comes with its attribution shift.
    """
    from repro.observability.baseline import compare_to_baseline

    headline_a = a.headline_metrics
    headline_b = b.headline_metrics
    baseline_doc = {
        "benchmark": a.run_id,
        "metrics": {
            name: _spec_for(name, value) for name, value in headline_a.items()
        },
    }
    checks = compare_to_baseline(
        f"{a.run_id}..{b.run_id}", headline_b, baseline_doc
    )
    categories_a = dict(a.profile.get("categories") or {})
    categories_b = dict(b.profile.get("categories") or {})
    category_delta = {
        name: {
            "a_s": round(float(categories_a.get(name, 0.0)), 6),
            "b_s": round(float(categories_b.get(name, 0.0)), 6),
            "delta_s": round(
                float(categories_b.get(name, 0.0))
                - float(categories_a.get(name, 0.0)), 6
            ),
        }
        for name in sorted(set(categories_a) | set(categories_b))
    }
    return {
        "a": {"run_id": a.run_id, "kind": a.kind, "status": a.status,
              "git_rev": a.git_rev, "params_digest": a.params_digest,
              "wall_clock_s": a.wall_clock_s},
        "b": {"run_id": b.run_id, "kind": b.kind, "status": b.status,
              "git_rev": b.git_rev, "params_digest": b.params_digest,
              "wall_clock_s": b.wall_clock_s},
        "params_match": a.params_digest == b.params_digest,
        "checks": [
            {"metric": c.metric, "status": c.status, "a": c.baseline,
             "b": c.current, "threshold": c.threshold,
             "direction": c.direction, "delta_pct": c.delta_pct}
            for c in checks
        ],
        "regressions": [c.metric for c in checks if c.regressed],
        "drifted": any(c.regressed for c in checks),
        "critical_path": {
            "a_s": a.profile.get("critical_path_s"),
            "b_s": b.profile.get("critical_path_s"),
            "categories": category_delta,
        },
    }


def _spec_for(name: str, value: float) -> Dict[str, Any]:
    from repro.observability.baseline import default_metric_spec

    return default_metric_spec(name, value)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_run_table(records: List[RunRecord]) -> str:
    header = ("RUN", "KIND", "STATUS", "WHEN", "WALL", "GIT", "PARAMS")
    rows = [header]
    for r in records:
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(r.started_at))
        wall = "-" if r.wall_clock_s is None else f"{r.wall_clock_s:.2f}s"
        rows.append((r.run_id, r.kind, r.status, when, wall,
                     r.git_rev[:8] or "-", r.params_digest[:8] or "-"))
    widths = [max(len(str(row[i])) for row in rows) for i in range(len(header))]
    lines = [
        "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)).rstrip()
        for row in rows
    ]
    return "\n".join(lines) + "\n"


def render_run(record: RunRecord) -> str:
    lines = [
        f"run       {record.run_id}  ({record.kind}, {record.status})",
        f"started   {time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(record.started_at))}",
        f"wall      {'-' if record.wall_clock_s is None else f'{record.wall_clock_s:.3f}s'}",
        f"git       {record.git_rev or '-'}",
        f"params    {record.params_digest or '-'}",
        f"trace     {record.trace_id or '-'}",
    ]
    if record.error:
        lines.append(f"error     {record.error}")
    headline = record.headline_metrics
    if headline:
        lines.append("headline metrics:")
        for name in sorted(headline):
            lines.append(f"  {name:28s} {headline[name]:.6g}")
    categories = record.profile.get("categories")
    if categories:
        lines.append("critical-path attribution:")
        for name in sorted(categories):
            lines.append(f"  {name:28s} {float(categories[name]):.6g}s")
    return "\n".join(lines) + "\n"


def render_comparison(report: Mapping[str, Any]) -> str:
    a, b = report["a"], report["b"]
    lines = [
        f"compare {a['run_id']} ({a['kind']}) -> {b['run_id']} ({b['kind']})"
        + ("" if report["params_match"] else "  [params differ]"),
    ]
    marks = {"ok": "ok  ", "new": "new ", "regression": "FAIL",
             "missing": "MISS"}
    for check in report["checks"]:
        base = "n/a" if check["a"] is None else f"{check['a']:.4g}"
        cur = "n/a" if check["b"] is None else f"{check['b']:.4g}"
        delta = ("" if check["delta_pct"] is None
                 else f"  ({check['delta_pct']:+.1f}%)")
        lines.append(
            f"  [{marks.get(check['status'], check['status'])}] "
            f"{check['metric']}: {cur} vs {base} "
            f"({check['direction']} is better){delta}"
        )
    cp = report["critical_path"]
    if cp["categories"]:
        lines.append("  critical-path attribution (a -> b):")
        for name, entry in cp["categories"].items():
            lines.append(
                f"    {name:14s} {entry['a_s']:.4g}s -> {entry['b_s']:.4g}s "
                f"({entry['delta_s']:+.4g}s)"
            )
    verdict = "DRIFT" if report["drifted"] else "OK"
    lines.append(
        f"history compare: {verdict} — {len(report['checks'])} checks, "
        f"{len(report['regressions'])} beyond tolerance"
    )
    return "\n".join(lines) + "\n"
