"""Round-trip and robustness tests for RNC binary I/O."""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.netcdf import Dataset, read_dataset, read_header, read_variable, write_dataset
from repro.netcdf.io import MAGIC, RNCFormatError


def make_daily_dataset() -> Dataset:
    """A miniature CMCC-CM3-like daily file: several variables, shared dims."""
    rng = np.random.default_rng(42)
    ds = Dataset({"model": "CMCC-CM3-sim", "frequency": "6hr"})
    ds.create_dimension("time", 4)
    ds.create_dimension("lat", 6)
    ds.create_dimension("lon", 8)
    for name in ("TREFHTMX", "TREFHTMN", "PSL", "U10", "VORT850"):
        ds.create_variable(
            name,
            rng.normal(size=(4, 6, 8)).astype(np.float32),
            ("time", "lat", "lon"),
            {"units": "arbitrary"},
        )
    ds.create_variable("time", np.arange(4) / 4.0, ("time",), {"units": "days since 2015-01-01"})
    return ds


class TestRoundTrip:
    def test_full_roundtrip(self, tmp_path):
        ds = make_daily_dataset()
        path = tmp_path / "day.rnc"
        nbytes = write_dataset(ds, path)
        assert nbytes == os.path.getsize(path)
        back = read_dataset(path)
        assert back.dimensions == ds.dimensions
        assert back.attrs == ds.attrs
        assert set(back.variables) == set(ds.variables)
        for name in ds.variables:
            np.testing.assert_array_equal(back[name].data, ds[name].data)
            assert back[name].dims == ds[name].dims
            assert back[name].attrs == ds[name].attrs
            assert back[name].dtype == ds[name].dtype

    def test_subset_read(self, tmp_path):
        ds = make_daily_dataset()
        path = tmp_path / "day.rnc"
        write_dataset(ds, path)
        back = read_dataset(path, variables=["PSL", "U10"])
        assert set(back.variables) == {"PSL", "U10"}
        np.testing.assert_array_equal(back["PSL"].data, ds["PSL"].data)

    def test_lazy_single_variable(self, tmp_path):
        ds = make_daily_dataset()
        path = tmp_path / "day.rnc"
        write_dataset(ds, path)
        var = read_variable(path, "VORT850")
        np.testing.assert_array_equal(var.data, ds["VORT850"].data)
        assert var.dims == ("time", "lat", "lon")

    def test_read_header_only(self, tmp_path):
        ds = make_daily_dataset()
        path = tmp_path / "day.rnc"
        write_dataset(ds, path)
        header = read_header(path)
        assert header["dimensions"]["lat"] == 6
        assert "PSL" in header["variables"]

    def test_returned_arrays_are_writable(self, tmp_path):
        ds = make_daily_dataset()
        path = tmp_path / "day.rnc"
        write_dataset(ds, path)
        back = read_dataset(path)
        back["PSL"].data[0, 0, 0] = 1.0  # must not raise

    def test_big_endian_input_normalised(self, tmp_path):
        ds = Dataset()
        ds.create_variable("x", np.arange(5, dtype=">f8"), ("n",))
        path = tmp_path / "be.rnc"
        write_dataset(ds, path)
        back = read_dataset(path)
        np.testing.assert_array_equal(back["x"].data, np.arange(5.0))

    def test_empty_dataset(self, tmp_path):
        ds = Dataset({"note": "empty"})
        path = tmp_path / "empty.rnc"
        write_dataset(ds, path)
        back = read_dataset(path)
        assert len(back) == 0
        assert back.attrs["note"] == "empty"

    def test_zero_length_dimension(self, tmp_path):
        ds = Dataset()
        ds.create_variable("x", np.zeros((0, 3)), ("t", "y"))
        path = tmp_path / "zero.rnc"
        write_dataset(ds, path)
        back = read_dataset(path)
        assert back["x"].shape == (0, 3)


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rnc"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(RNCFormatError):
            read_dataset(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "trunc.rnc"
        path.write_bytes(MAGIC + (1000).to_bytes(8, "little") + b"{}")
        with pytest.raises(RNCFormatError):
            read_dataset(path)

    def test_corrupt_json(self, tmp_path):
        payload = b"not json"
        path = tmp_path / "corrupt.rnc"
        path.write_bytes(MAGIC + len(payload).to_bytes(8, "little") + payload)
        with pytest.raises(RNCFormatError):
            read_header(path)

    def test_truncated_payload(self, tmp_path):
        ds = Dataset()
        ds.create_variable("x", np.arange(100.0), ("n",))
        path = tmp_path / "t.rnc"
        write_dataset(ds, path)
        data = path.read_bytes()
        path.write_bytes(data[:-50])
        with pytest.raises(RNCFormatError):
            read_dataset(path)

    def test_missing_variable(self, tmp_path):
        ds = make_daily_dataset()
        path = tmp_path / "day.rnc"
        write_dataset(ds, path)
        with pytest.raises(KeyError):
            read_variable(path, "nope")
        with pytest.raises(KeyError):
            read_dataset(path, variables=["nope"])

    def test_huge_header_length_rejected(self, tmp_path):
        """A corrupt length field must not drive a giant allocation."""
        path = tmp_path / "huge.rnc"
        path.write_bytes(MAGIC + (2**62).to_bytes(8, "little") + b"{}")
        with pytest.raises(RNCFormatError, match="exceeds file contents"):
            read_dataset(path)

    def test_payload_offsets_outside_file_rejected(self, tmp_path):
        """Header metadata pointing past the payload must fail loudly."""
        header = json.dumps({
            "dimensions": {"n": 4},
            "attrs": {},
            "variables": {
                "x": {"dims": ["n"], "dtype": "<f8", "shape": [4],
                      "attrs": {}, "offset": 10**9, "nbytes": 32},
            },
        }).encode()
        path = tmp_path / "oob.rnc"
        path.write_bytes(MAGIC + len(header).to_bytes(8, "little") + header)
        with pytest.raises(RNCFormatError, match="outside file"):
            read_dataset(path)
        with pytest.raises(RNCFormatError):
            read_variable(path, "x")

    def test_bogus_dtype_rejected(self, tmp_path):
        header = json.dumps({
            "dimensions": {}, "attrs": {},
            "variables": {
                "x": {"dims": ["n"], "dtype": "not-a-dtype", "shape": [1],
                      "attrs": {}, "offset": 0, "nbytes": 8},
            },
        }).encode()
        path = tmp_path / "dtype.rnc"
        path.write_bytes(
            MAGIC + len(header).to_bytes(8, "little") + header + b"\x00" * 8
        )
        with pytest.raises(RNCFormatError, match="corrupt dtype"):
            read_dataset(path)

    def test_non_mapping_sections_rejected(self, tmp_path):
        header = json.dumps({"variables": [1, 2]}).encode()
        path = tmp_path / "sections.rnc"
        path.write_bytes(MAGIC + len(header).to_bytes(8, "little") + header)
        with pytest.raises(RNCFormatError, match="not a mapping"):
            read_dataset(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        ds = make_daily_dataset()
        write_dataset(ds, tmp_path / "day.rnc")
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp." in p]
        assert leftovers == []


@st.composite
def rnc_datasets(draw):
    """Random datasets with consistent shared dimensions."""
    dim_sizes = draw(
        st.dictionaries(
            st.sampled_from(["time", "lat", "lon", "lev"]),
            st.integers(min_value=0, max_value=5),
            min_size=1,
            max_size=4,
        )
    )
    ds = Dataset({"seed": draw(st.integers(0, 10**6))})
    for dim, size in dim_sizes.items():
        ds.create_dimension(dim, size)
    n_vars = draw(st.integers(min_value=0, max_value=4))
    dims_list = list(dim_sizes)
    for i in range(n_vars):
        ndim = draw(st.integers(min_value=0, max_value=len(dims_list)))
        dims = tuple(draw(st.permutations(dims_list))[:ndim])
        shape = tuple(dim_sizes[d] for d in dims)
        dtype = draw(st.sampled_from([np.float32, np.float64, np.int32, np.int64]))
        data = draw(
            hnp.arrays(
                dtype=dtype,
                shape=shape,
                elements=st.floats(-1e6, 1e6, width=32).map(float)
                if np.issubdtype(dtype, np.floating)
                else st.integers(-1000, 1000),
            )
        )
        ds.create_variable(f"v{i}", data, dims)
    return ds


class TestPropertyRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(rnc_datasets())
    def test_roundtrip_preserves_everything(self, tmp_path_factory, ds):
        path = tmp_path_factory.mktemp("rnc") / "p.rnc"
        write_dataset(ds, path)
        back = read_dataset(path)
        assert back.dimensions == ds.dimensions
        assert set(back.variables) == set(ds.variables)
        for name in ds.variables:
            np.testing.assert_array_equal(back[name].data, ds[name].data)
            assert back[name].dims == ds[name].dims
