"""`repro top`: the fleet view assembled from runs.db + events.jsonl."""

import json

import pytest

from repro.cli import main
from repro.observability.events import EventLog
from repro.observability.metrics import MetricsRegistry
from repro.service import JobState, ServiceDB, gather_top_state, render_top
from repro.service.top import _fmt_bytes


def _run_metrics(worker_cpu=2.5, driver_cpu=1.0, worker_rss=64 * 2**20):
    registry = MetricsRegistry()
    cpu = registry.counter("process_cpu_seconds_total", "cpu", ("role", "pid"))
    cpu.inc(driver_cpu, role="driver", pid="100")
    cpu.inc(worker_cpu / 2, role="worker", pid="101")
    cpu.inc(worker_cpu / 2, role="worker", pid="102")
    rss = registry.gauge("process_rss_bytes", "rss", ("role", "pid"))
    rss.set(worker_rss, role="worker", pid="101")
    return registry.snapshot().to_json()


@pytest.fixture
def populated(tmp_path):
    db = ServiceDB(str(tmp_path / "runs.db"))
    db.add_tenant("alice", share=1.0)
    db.add_tenant("bob", share=2.0)
    db.register_site("laptop", cluster="laptop-sim", total_cores=8)
    running = db.submit_job("alice", "esm-ensemble-member", cores=4)
    db.update_job(running.job_id, state=JobState.RUNNING, started_at=1.0)
    db.submit_job("bob", "heatwave-analytics", cores=1)  # stays queued
    done = db.submit_job("bob", "heatwave-analytics", cores=1)
    db.record_run(
        kind="service:heatwave-analytics", status="completed",
        wall_clock_s=0.4, metrics=_run_metrics(), trace_id="t" * 16,
        run_id="run000000001",
    )
    db.update_job(done.job_id, state=JobState.COMPLETED, started_at=1.0,
                  finished_at=2.0, run_id="run000000001")

    events = tmp_path / "events.jsonl"
    log = EventLog()
    log.attach_file(str(events))
    log.emit("WARNING", "observability", "trace_spans_dropped",
             "collector full")
    log.detach_file()
    return db, str(events)


class TestGatherTopState:
    def test_tenant_occupancy_and_queue(self, populated):
        db, events = populated
        state = gather_top_state(db, events_path=events)
        assert state["total_cores"] == 8
        assert state["queue_depth"] == 1
        assert state["running_jobs"] == 1
        by_name = {t["name"]: t for t in state["tenants"]}
        assert by_name["alice"]["cores"] == 4
        assert by_name["alice"]["utilisation"] == pytest.approx(0.5)
        assert by_name["alice"]["running"] == 1
        assert by_name["bob"]["cores"] == 0
        assert by_name["bob"]["queued"] == 1
        assert by_name["bob"]["completed"] == 1

    def test_runs_expose_shipped_resource_samples(self, populated):
        db, _ = populated
        state = gather_top_state(db)
        run = state["runs"][0]
        assert run["run_id"] == "run000000001"
        assert run["worker_cpu_s"] == pytest.approx(2.5)
        assert run["driver_cpu_s"] == pytest.approx(1.0)
        assert run["worker_rss_bytes"] == pytest.approx(64 * 2**20)

    def test_jobs_link_to_runs_and_events_tail_in(self, populated):
        db, events = populated
        state = gather_top_state(db, events_path=events)
        linked = [j for j in state["jobs"] if j["run_id"]]
        assert linked and linked[0]["run_id"] == "run000000001"
        assert any("trace_spans_dropped" in line for line in state["events"])

    def test_missing_event_log_tolerated(self, populated, tmp_path):
        db, _ = populated
        state = gather_top_state(db, events_path=str(tmp_path / "nope.jsonl"))
        assert state["events"] == []

    def test_empty_database(self, tmp_path):
        db = ServiceDB(str(tmp_path / "empty.db"))
        state = gather_top_state(db)
        assert state["tenants"] == []
        assert state["queue_depth"] == 0
        text = render_top(state)
        assert "(no tenants)" in text
        assert "(no recorded runs)" in text


class TestRenderTop:
    def test_renders_all_sections(self, populated):
        db, events = populated
        text = render_top(gather_top_state(db, events_path=events))
        assert "ready queue: 1" in text
        assert "alice" in text and "bob" in text
        assert "RUNNING" in text and "COMPLETED" in text
        assert "run000000001" in text
        assert "1.0/2.5s" in text
        assert "64.0MiB" in text
        assert "recent events" in text

    def test_fmt_bytes(self):
        assert _fmt_bytes(0) == "0B"
        assert _fmt_bytes(2048) == "2.0KiB"
        assert _fmt_bytes(3 * 2**30) == "3.0GiB"


class TestTopCLI:
    def test_once_text(self, populated, capsys):
        db, events = populated
        assert main(["top", "--db", db.path, "--events", events,
                     "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "alice" in out

    def test_once_json(self, populated, capsys):
        db, _ = populated
        assert main(["top", "--db", db.path, "--once",
                     "--format", "json"]) == 0
        state = json.loads(capsys.readouterr().out)
        assert state["total_cores"] == 8
        assert {t["name"] for t in state["tenants"]} == {"alice", "bob"}

    def test_no_database_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_RUNS_DB", raising=False)
        assert main(["top", "--once"]) == 2
