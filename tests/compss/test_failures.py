"""Fault-tolerance policies: FAIL, RETRY, IGNORE, CANCEL_SUCCESSORS."""

import threading

import pytest

from repro.compss import (
    COMPSs,
    OnFailure,
    TaskCancelledError,
    TaskFailedError,
    compss_barrier,
    compss_wait_on,
    task,
)


class TestFailPolicy:
    def test_wait_on_raises_task_failed(self):
        @task(returns=1)
        def boom():
            raise ValueError("bad")

        with pytest.raises(TaskFailedError) as err:
            with COMPSs(n_workers=2):
                compss_wait_on(boom())
        assert isinstance(err.value.__cause__, ValueError)

    def test_exit_barrier_raises(self):
        @task(returns=1)
        def boom():
            raise RuntimeError("x")

        with pytest.raises(TaskFailedError):
            with COMPSs(n_workers=2):
                boom()
                # context-exit barrier must surface the failure

    def test_descendants_cancelled(self):
        @task(returns=1)
        def boom():
            raise RuntimeError("x")

        @task(returns=1)
        def follow(x):
            return x

        # The exit barrier re-raises the workflow failure (FAIL policy).
        with pytest.raises(TaskFailedError):
            with COMPSs(n_workers=2) as rt:
                f = follow(boom())
                rt.barrier(raise_on_error=False)
                with pytest.raises(TaskCancelledError):
                    compss_wait_on(f)
                states = rt.graph.counts_by_state()
                assert states["FAILED"] == 1
                assert states["CANCELLED"] == 1

    def test_independent_tasks_still_finish(self):
        @task(returns=1)
        def boom():
            raise RuntimeError("x")

        @task(returns=1)
        def ok():
            return 7

        with pytest.raises(TaskFailedError):
            with COMPSs(n_workers=2) as rt:
                boom()
                good = ok()
                rt.barrier(raise_on_error=False)
                assert compss_wait_on(good) == 7
                assert rt.failed


class TestRetryPolicy:
    def test_retry_until_success(self):
        attempts = []
        lock = threading.Lock()

        @task(returns=1, on_failure=OnFailure.RETRY, max_retries=3)
        def flaky():
            with lock:
                attempts.append(1)
                if len(attempts) < 3:
                    raise IOError("transient")
            return "ok"

        with COMPSs(n_workers=2):
            assert compss_wait_on(flaky()) == "ok"
        assert len(attempts) == 3

    def test_retry_exhaustion_fails(self):
        @task(returns=1, on_failure="RETRY", max_retries=2)
        def always_bad():
            raise IOError("permanent")

        with pytest.raises(TaskFailedError):
            with COMPSs(n_workers=2):
                compss_wait_on(always_bad())

    def test_retry_policy_string_coercion(self):
        assert OnFailure.coerce("retry") is OnFailure.RETRY
        assert OnFailure.coerce(OnFailure.IGNORE) is OnFailure.IGNORE
        with pytest.raises(ValueError):
            OnFailure.coerce("nope")


class TestIgnorePolicy:
    def test_ignored_failure_yields_none(self):
        @task(returns=1, on_failure=OnFailure.IGNORE)
        def boom():
            raise RuntimeError("meh")

        @task(returns=1)
        def after(x):
            return "ran" if x is None else "unexpected"

        with COMPSs(n_workers=2) as rt:
            out = after(boom())
            assert compss_wait_on(out) == "ran"
            assert not rt.failed


class TestCancelSuccessorsPolicy:
    def test_successors_cancelled_workflow_survives(self):
        @task(returns=1, on_failure=OnFailure.CANCEL_SUCCESSORS)
        def boom():
            raise RuntimeError("branch dead")

        @task(returns=1)
        def follow(x):
            return x

        @task(returns=1)
        def ok():
            return 1

        with COMPSs(n_workers=2) as rt:
            dead = follow(boom())
            alive = ok()
            rt.barrier(raise_on_error=False)
            assert compss_wait_on(alive) == 1
            with pytest.raises(TaskCancelledError):
                compss_wait_on(dead)
            assert not rt.failed  # workflow-level error not set

    def test_transitive_cancellation(self):
        @task(returns=1, on_failure="CANCEL_SUCCESSORS")
        def boom():
            raise RuntimeError("x")

        @task(returns=1)
        def chain(x):
            return x

        with COMPSs(n_workers=2) as rt:
            c = chain(chain(chain(boom())))
            rt.barrier(raise_on_error=False)
            assert rt.graph.counts_by_state()["CANCELLED"] == 3
            with pytest.raises(TaskCancelledError):
                compss_wait_on(c)
