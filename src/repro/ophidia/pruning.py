"""Chunk-level pruning of fused lazy plans using write-time statistics.

The lazy planner (:mod:`repro.ophidia.datacube`) fuses elementwise
operator chains into single fragment sweeps.  This module extends that
planner downward into the chunked storage layer: when the *prefix* of a
fused chain has a shape whose per-chunk outcome the stored
min/max/null-count statistics can decide, the sweep reads only the
chunks it must (zone-map pruning, the zarr/Parquet idiom) and
synthesises the rest.

Two prefix shapes compile (:func:`compile_prune_plan`):

* ``intercube(add|sub)* → apply(oph_predicate ...)`` — anomaly-style
  chains ending in a literal predicate (Listing 1's exceedance mask).
  Chunk ``[min,max]`` intervals propagate through the binop chain via
  interval arithmetic; chunks whose interval proves the condition
  always (or never) holds synthesise the constant branch without being
  read.  The condition's outcome on NaN inputs is honoured (False for
  every comparator except ``!=``), so null-bearing chunks prune only
  when the decision is NaN-safe.
* a leading ``subset`` along the chunk axis — only overlapping chunks
  are read, and each is sliced locally.

Everything else falls back to the dense path, and must-read chunks are
evaluated through the *original* predicate AST, so pruned execution is
byte-identical to dense execution by construction.  Interval bounds are
widened by one ulp in the computation dtype after every binop, keeping
float rounding from ever flipping a decision (a too-wide interval only
costs a read, never correctness).  Integer chains with binops do not
prune (interval arithmetic could overflow); statistics-only decisions
on a bare predicate work for any dtype.

Pruning is observable through ``ophidia_chunks_pruned_total`` (chunks
skipped), ``ophidia_chunks_read_total`` (chunks individually read, in
:mod:`repro.ophidia.storage`) and ``ophidia_fragments_pruned_total``
(whole fragments skipped by ``subset`` along the fragment dimension, in
the datacube layer).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.observability.metrics import get_registry
from repro.ophidia import kernels as K
from repro.ophidia.primitives import PredicateInfo, describe_predicate, evaluate_ast
from repro.ophidia.storage import ChunkMeta, ChunkStats

__all__ = ["PredicatePrunePlan", "SubsetPrunePlan", "compile_prune_plan"]


def _count_pruned(n: int) -> None:
    if n:
        get_registry().counter(
            "ophidia_chunks_pruned_total",
            "Chunks skipped by statistics-based plan pruning",
        ).inc(n)


def _widen(lo: float, hi: float, dtype: np.dtype) -> Tuple[float, float]:
    """Expand an interval by one ulp each side in *dtype*.

    Interval-arithmetic bounds computed in float can round toward the
    interior; one ulp in the dtype the chain actually computes in makes
    them outer bounds again.
    """
    lo = float(np.nextafter(np.asarray(lo, dtype=dtype), -np.inf))
    hi = float(np.nextafter(np.asarray(hi, dtype=dtype), np.inf))
    return lo, hi


def _decide(
    op: str, t: float, lo: float, hi: float,
    has_null: bool, all_null: bool, count: int,
) -> Optional[bool]:
    """Can chunk statistics decide ``x <op> t`` for every element?

    True = condition holds everywhere, False = nowhere, None = must
    read.  NaN semantics follow NumPy: every comparator is False on NaN
    except ``!=`` which is True, so nulls invalidate an all-True verdict
    (all-False for ``!=``) but never the opposite one.
    """
    if count == 0:
        return None
    finite = math.isfinite(lo) and math.isfinite(hi)
    if op == "!=":
        if all_null:
            return True
        if not finite:
            return None
        if t < lo or t > hi:
            return True
        if lo == hi == t and not has_null:
            return False
        return None
    if all_null:
        return False
    if not finite:
        return None
    if op == ">":
        if hi <= t:
            return False
        if lo > t and not has_null:
            return True
    elif op == ">=":
        if hi < t:
            return False
        if lo >= t and not has_null:
            return True
    elif op == "<":
        if lo >= t:
            return False
        if hi < t and not has_null:
            return True
    elif op == "<=":
        if lo > t:
            return False
        if hi <= t and not has_null:
            return True
    elif op in ("==", "="):
        if t < lo or t > hi:
            return False
        if lo == hi == t and not has_null:
            return True
    return None


class _BinopLink:
    """One consumed intercube step: operand fragments + result dtypes."""

    __slots__ = ("op_name", "pool", "fragment_ids", "metas", "result_dtypes")

    def __init__(self, op_name, pool, fragment_ids, metas, result_dtypes):
        self.op_name = op_name
        self.pool = pool
        self.fragment_ids = fragment_ids
        self.metas = metas
        self.result_dtypes = result_dtypes


def _layouts_match(a: ChunkMeta, b: ChunkMeta) -> bool:
    return (
        a.axis == b.axis
        and a.shape == b.shape
        and len(a.chunks) == len(b.chunks)
        and all(
            ca.start == cb.start and ca.stop == cb.stop
            for ca, cb in zip(a.chunks, b.chunks)
        )
    )


class PredicatePrunePlan:
    """Pruned execution of ``intercube* → predicate`` over one base cube.

    :meth:`load` replaces the plain fragment read in a fused sweep: it
    produces the prefix's output for fragment *i* chunk by chunk —
    synthesised where statistics decide the predicate, computed through
    the original operator chain and AST where they cannot — plus the
    avoided-materialisation bytes the consumed steps account for, so
    fusion metering is identical to the dense path.
    """

    def __init__(
        self,
        pool,
        metas: Sequence[ChunkMeta],
        links: Sequence[_BinopLink],
        pred: PredicateInfo,
    ) -> None:
        self.pool = pool
        self.metas = list(metas)
        self.links = list(links)
        self.pred = pred
        #: Plan steps this prefix replaces (binops + the predicate).
        self.consumed = len(links) + 1
        # Per fragment, per consumed step: the step's output nbytes —
        # what the dense path would meter as avoided materialisation.
        self._step_nbytes: List[List[int]] = []
        for i, meta in enumerate(self.metas):
            elems = int(np.prod(meta.shape, dtype=np.int64)) if meta.shape else 1
            sizes = [
                elems * link.result_dtypes[i].itemsize for link in self.links
            ]
            sizes.append(elems * pred.out_dtype.itemsize)
            self._step_nbytes.append(sizes)

    def _fold_stats(self, i: int, ci: int):
        """Propagate chunk *ci*'s statistics through the binop chain."""
        st: ChunkStats = self.metas[i].chunks[ci].stats
        lo, hi = st.min, st.max
        has_null = st.null_count > 0
        all_null = st.count > 0 and st.null_count == st.count
        for link in self.links:
            ost: ChunkStats = link.metas[i].chunks[ci].stats
            o_all = ost.count > 0 and ost.null_count == ost.count
            has_null = has_null or ost.null_count > 0
            all_null = all_null or o_all
            if all_null:
                lo, hi = math.nan, math.nan
                continue
            if link.op_name == "add":
                lo, hi = lo + ost.min, hi + ost.max
            else:  # sub
                lo, hi = lo - ost.max, hi - ost.min
            lo, hi = _widen(lo, hi, link.result_dtypes[i])
        return lo, hi, has_null, all_null, st.count

    def _chunk_shape(self, meta: ChunkMeta, ci: int) -> Tuple[int, ...]:
        chunk = meta.chunks[ci]
        if not meta.shape:
            return ()
        shape = list(meta.shape)
        shape[meta.axis] = chunk.stop - chunk.start
        return tuple(shape)

    def _synthesize(self, shape, dtype, verdict: bool) -> np.ndarray:
        """Build the decided chunk exactly as the evaluator would.

        Mirrors ``oph_predicate``'s ``np.where`` + cast, with a zeros
        placeholder of the chain dtype standing in for a passthrough
        branch that is never selected (it still participates in NumPy's
        dtype promotion, which is what byte-identity requires).
        """
        pred = self.pred
        then_v = pred.then_const
        if then_v is None:
            then_v = np.zeros(shape, dtype=dtype)
        else_v = pred.else_const
        if else_v is None:
            else_v = np.zeros(shape, dtype=dtype)
        cond = np.ones(shape, dtype=bool) if verdict else np.zeros(shape, dtype=bool)
        return np.asarray(np.where(cond, then_v, else_v), dtype=pred.out_dtype)

    def _compute(self, fragment_id: int, i: int, ci: int) -> np.ndarray:
        """Must-read path: the exact dense computation, one chunk wide."""
        data = self.pool.load_chunk(fragment_id, ci)
        for link in self.links:
            operand = link.pool.load_chunk(link.fragment_ids[i], ci)
            data = K.INTERCUBE_OPS[link.op_name](data, operand)
        return np.asarray(evaluate_ast(self.pred.ast, np.asarray(data)))

    def load(self, ref, i: int, metered_steps: int) -> Tuple[np.ndarray, int]:
        """The prefix's output for fragment *i* plus metered avoided bytes."""
        meta = self.metas[i]
        chain_dtype = (
            self.links[-1].result_dtypes[i] if self.links else meta.dtype
        )
        pred = self.pred
        parts: List[np.ndarray] = []
        pruned = 0
        for ci in range(len(meta.chunks)):
            lo, hi, has_null, all_null, count = self._fold_stats(i, ci)
            verdict = _decide(
                pred.op, pred.threshold, lo, hi, has_null, all_null, count
            )
            if verdict is True and pred.then_const is None:
                verdict = None  # passthrough branch: the data is needed
            if verdict is False and pred.else_const is None:
                verdict = None
            if verdict is None:
                parts.append(self._compute(ref.fragment_id, i, ci))
            else:
                pruned += 1
                parts.append(
                    self._synthesize(
                        self._chunk_shape(meta, ci), chain_dtype, verdict
                    )
                )
        _count_pruned(pruned)
        if len(parts) == 1:
            out = parts[0]
        else:
            out = np.concatenate(parts, axis=meta.axis)
        avoided = sum(self._step_nbytes[i][:metered_steps])
        return out, avoided


class SubsetPrunePlan:
    """Pruned execution of a leading ``subset`` along the chunk axis.

    Chunks outside the requested range are never read; overlapping
    chunks are read individually and sliced locally, reproducing
    ``stage_subset`` byte for byte.
    """

    consumed = 1

    def __init__(self, pool, metas: Sequence[ChunkMeta], axis: int,
                 start: int, stop: int) -> None:
        self.pool = pool
        self.metas = list(metas)
        self.axis = axis
        self.start = start
        self.stop = stop

    def load(self, ref, i: int, metered_steps: int) -> Tuple[np.ndarray, int]:
        meta = self.metas[i]
        parts: List[np.ndarray] = []
        pruned = 0
        for ci, chunk in enumerate(meta.chunks):
            if chunk.stop <= self.start or chunk.start >= self.stop:
                pruned += 1
                continue
            data = self.pool.load_chunk(ref.fragment_id, ci)
            lo = max(self.start, chunk.start) - chunk.start
            hi = min(self.stop, chunk.stop) - chunk.start
            if lo > 0 or hi < chunk.stop - chunk.start:
                indexer = [slice(None)] * data.ndim
                indexer[self.axis] = slice(lo, hi)
                data = data[tuple(indexer)]
            parts.append(data)
        _count_pruned(pruned)
        if len(parts) == 1:
            out = np.ascontiguousarray(parts[0])
        else:
            out = np.ascontiguousarray(
                np.concatenate(parts, axis=self.axis)
            )
        avoided = out.nbytes if metered_steps >= 1 else 0
        return out, avoided


def compile_prune_plan(base, steps, bounds):
    """Compile a pruned prefix of *steps*, or None when ineligible.

    *base* is the concrete cube the chain roots at, *steps* the
    ``(cube, _PlanStep)`` pairs base→tail, *bounds* the chain's
    fragment bounds.  Compilation only touches chunk *metadata*; no
    payload is read and no counters move.
    """
    if not steps or base._fragments is None:
        return None
    pool = base._server.pool
    try:
        metas = [pool.chunk_meta(r.fragment_id) for r in base._fragments]
    except (KeyError, AttributeError):
        return None

    first = steps[0][1]
    if first.kind == "subset":
        axis, start, stop = first.params
        if all(m.axis == axis for m in metas):
            return SubsetPrunePlan(pool, metas, axis, start, stop)
        return None

    links: List[_BinopLink] = []
    dtypes = [m.dtype for m in metas]
    for _, step in steps:
        if step.kind == "intercube":
            other, op_name = step.params
            if op_name not in ("add", "sub"):
                return None
            if other._fragments is None or other._deleted:
                return None
            if (
                other.fragment_dim != base.fragment_dim
                or other._bounds != bounds
            ):
                return None
            # Interval arithmetic is only sound where rounding is the
            # worst case; integer chains could overflow silently.
            if any(d.kind != "f" for d in dtypes):
                return None
            opool = other._server.pool
            orefs = other._fragments
            try:
                ometas = [opool.chunk_meta(r.fragment_id) for r in orefs]
            except (KeyError, AttributeError):
                return None
            if any(o.dtype.kind != "f" for o in ometas):
                return None
            if not all(
                _layouts_match(m, o) for m, o in zip(metas, ometas)
            ):
                return None
            result_dtypes = [
                np.result_type(d, o.dtype) for d, o in zip(dtypes, ometas)
            ]
            links.append(
                _BinopLink(
                    op_name, opool, [r.fragment_id for r in orefs],
                    ometas, result_dtypes,
                )
            )
            dtypes = result_dtypes
            continue
        if step.kind == "apply":
            pred = describe_predicate(step.params[1])
            if pred is None:
                return None
            return PredicatePrunePlan(pool, metas, links, pred)
        return None
    return None
