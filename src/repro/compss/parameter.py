"""Parameter directionality declarations.

PyCOMPSs tasks declare, per parameter, how the task uses the data:

* ``IN`` — read-only (the default for every undeclared parameter);
* ``OUT`` — created by the task;
* ``INOUT`` — read and mutated in place;
* ``FILE_IN`` / ``FILE_OUT`` / ``FILE_INOUT`` — the parameter is a *path*
  and the dependency is carried by the file behind it, not the string.

Directions drive the runtime's dependency analysis: a task reading a
datum depends on its last writer; a task writing a datum becomes its new
last writer.
"""

from __future__ import annotations

import enum


class Direction(enum.Enum):
    """How a task parameter is accessed."""

    IN = "IN"
    OUT = "OUT"
    INOUT = "INOUT"
    FILE_IN = "FILE_IN"
    FILE_OUT = "FILE_OUT"
    FILE_INOUT = "FILE_INOUT"

    @property
    def is_file(self) -> bool:
        return self in (Direction.FILE_IN, Direction.FILE_OUT, Direction.FILE_INOUT)

    @property
    def reads(self) -> bool:
        return self in (
            Direction.IN, Direction.INOUT, Direction.FILE_IN, Direction.FILE_INOUT
        )

    @property
    def writes(self) -> bool:
        return self in (
            Direction.OUT, Direction.INOUT, Direction.FILE_OUT, Direction.FILE_INOUT
        )


#: Module-level aliases matching the PyCOMPSs API surface.
IN = Direction.IN
OUT = Direction.OUT
INOUT = Direction.INOUT
FILE_IN = Direction.FILE_IN
FILE_OUT = Direction.FILE_OUT
FILE_INOUT = Direction.FILE_INOUT
