"""Runtime monitoring snapshot and tracer hotspot tests."""

import threading
import time

import pytest

from repro.compss import COMPSs, compss_barrier, compss_wait_on, task
from repro.compss.tracing import TaskEvent, Tracer


class TestRuntimeStatus:
    def test_status_during_execution(self):
        gate = threading.Event()

        @task()
        def blocked():
            gate.wait(5)

        @task(returns=1)
        def quick():
            return 1

        with COMPSs(n_workers=1) as rt:
            blocked()
            time.sleep(0.1)
            quick()
            status = rt.status()
            assert status["submitted"] == 2
            assert status["active"] == 2
            assert status["running"] == ["blocked#1"]
            assert status["ready"] == 1
            assert status["failed"] is False
            gate.set()
            compss_barrier()
            final = rt.status()
            assert final["active"] == 0
            assert final["by_state"]["COMPLETED"] == 2
            assert final["running"] == []

    def test_status_reflects_failure(self):
        @task(returns=1)
        def boom():
            raise RuntimeError("x")

        from repro.compss import TaskFailedError

        with pytest.raises(TaskFailedError):
            with COMPSs(n_workers=1) as rt:
                boom()
                rt.barrier(raise_on_error=False)
                assert rt.status()["failed"] is True
                assert rt.status()["by_state"]["FAILED"] == 1

    def test_free_units_accounting(self):
        with COMPSs(n_workers=3) as rt:
            assert rt.status()["free_computing_units"] == 3


class TestHotspots:
    def test_ranked_by_total_time(self):
        tr = Tracer()
        tr.record(TaskEvent(1, "slow", 0, 0.0, 3.0, "COMPLETED"))
        tr.record(TaskEvent(2, "fast", 0, 3.0, 3.5, "COMPLETED"))
        tr.record(TaskEvent(3, "fast", 1, 3.0, 3.4, "COMPLETED"))
        hot = tr.hotspots()
        assert hot[0] == ("slow", pytest.approx(3.0), 1)
        assert hot[1][0] == "fast"
        assert hot[1][2] == 2

    def test_top_limits_output(self):
        tr = Tracer()
        for i in range(8):
            tr.record(TaskEvent(i, f"f{i}", 0, 0.0, float(i + 1), "COMPLETED"))
        assert len(tr.hotspots(top=3)) == 3
        assert tr.hotspots(top=3)[0][0] == "f7"

    def test_empty_tracer(self):
        assert Tracer().hotspots() == []

    def test_real_run_hotspots(self):
        @task(returns=1)
        def lazy():
            time.sleep(0.05)
            return 1

        @task(returns=1)
        def eager():
            return 1

        with COMPSs(n_workers=2) as rt:
            compss_wait_on([lazy(), eager(), eager()])
            hot = rt.tracer.hotspots()
        assert hot[0][0] == "lazy"
