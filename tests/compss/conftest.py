"""Shared fixtures: guarantee no runtime leaks between tests."""

import pytest

from repro.compss import compss_stop
from repro.compss.api import get_runtime


@pytest.fixture(autouse=True)
def _clean_runtime():
    if get_runtime() is not None:
        compss_stop(wait=False)
    yield
    if get_runtime() is not None:
        compss_stop(wait=False)
