"""Acceptance tests: a real run persists history + events, and the
``repro history compare`` / ``repro slo check`` round-trip works on the
artifacts it leaves behind (including exit codes)."""

import json

import pytest

from repro.cli import main
from repro.observability.events import read_events
from repro.observability.history import RunHistory
from repro.workflow import (
    WorkflowParams,
    run_extreme_events_workflow,
)
from repro.cluster import laptop_like
from repro.workflow.tasks import ensure_tc_model

TIGHT_SLO = """
slos:
  - name: makespan
    metric: workflow_makespan_seconds
    max: 0.000001
    severity: critical
"""

LOOSE_SLO = """
slos:
  - name: makespan
    metric: workflow_makespan_seconds
    max: 100000
    severity: critical
"""


@pytest.fixture(scope="module")
def tc_model_path(tmp_path_factory):
    return ensure_tc_model(None, 16, str(tmp_path_factory.mktemp("tc")))


@pytest.fixture(scope="module")
def instrumented_runs(tmp_path_factory, tc_model_path):
    """Two instrumented runs sharing one runs.db: a fast one and a paced
    (artificially slower) one, for compare/slo round-trips."""
    root = tmp_path_factory.mktemp("hist")
    db = str(root / "runs.db")
    slo = root / "slo.yaml"
    slo.write_text(TIGHT_SLO)
    summaries = []
    for name, pace in (("fast", 0.0), ("slow", 0.05)):
        events = str(root / f"events_{name}.jsonl")
        params = WorkflowParams(
            years=[2030], n_days=8, n_lat=8, n_lon=12,
            n_workers=4, min_length_days=4,
            tc_model_path=tc_model_path, tc_target_grid=(16, 32),
            seed=5, pace_seconds=pace,
            runs_db=db, slo_rules_path=str(slo), events_path=events,
        )
        with laptop_like(scratch_root=str(root / f"scratch_{name}")) as c:
            summaries.append(run_extreme_events_workflow(c, params))
    return {"db": db, "root": root, "summaries": summaries}


class TestRunPersistence:
    def test_summary_carries_run_id_and_slo(self, instrumented_runs):
        for summary in instrumented_runs["summaries"]:
            assert summary["run_id"]
            assert summary["slo"]["breach_counts"] == {"makespan": 1}
            assert summary["slo"]["breached"] == ["makespan"]

    def test_history_row_is_queryable(self, instrumented_runs):
        history = RunHistory(instrumented_runs["db"])
        assert len(history) == 2
        for summary in instrumented_runs["summaries"]:
            record = history.get(summary["run_id"])
            assert record.kind == "run"
            assert record.status == "completed"
            assert record.trace_id == summary["trace_id"]
            assert record.wall_clock_s > 0
            assert record.params["years"] == [2030]
            assert record.headline_metrics["makespan_s"] > 0
            assert record.profile["critical_path_s"] > 0
            # The SLO breach counter made it into the recorded metrics.
            assert "slo_breaches_total" in record.metrics

    def test_events_correlated_with_run(self, instrumented_runs):
        summary = instrumented_runs["summaries"][0]
        events = read_events(
            str(instrumented_runs["root"] / "events_fast.jsonl"))
        assert events, "events.jsonl is empty"
        names = [e.name for e in events]
        assert names[0] == "run_started"
        assert "run_completed" in names
        assert "year_dispatched" in names
        # Satellite: ophidia's operator provenance rides the same log...
        assert "operator_executed" in names
        assert "slo_breach" in names
        # Every event belongs to this run; spanned ones share its trace.
        assert {e.run_id for e in events} == {summary["run_id"]}
        traced = {e.trace_id for e in events if e.trace_id}
        assert traced == {summary["trace_id"]}


class TestCliRoundTrip:
    def test_history_list_and_show(self, instrumented_runs, capsys):
        db = instrumented_runs["db"]
        assert main(["history", "list", "--db", db]) == 0
        out = capsys.readouterr().out
        for summary in instrumented_runs["summaries"]:
            assert summary["run_id"][:8] in out
        rid = instrumented_runs["summaries"][0]["run_id"]
        assert main(["history", "show", rid, "--db", db,
                     "--format", "json"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == rid

    def test_compare_flags_paced_run_and_sets_exit_code(
            self, instrumented_runs, capsys, tmp_path):
        db = instrumented_runs["db"]
        fast, slow = [s["run_id"] for s in instrumented_runs["summaries"]]
        report_out = str(tmp_path / "compare.json")
        code = main(["history", "compare", fast, slow, "--db", db,
                     "--fail-on-drift", "--report-out", report_out])
        assert code == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out
        report = json.loads(open(report_out).read())
        assert report["drifted"] is True
        assert "makespan_s" in report["regressions"]
        # Same params either way: the paced run only differs in pacing.
        assert main(["history", "compare", fast, fast, "--db", db,
                     "--fail-on-drift"]) == 0

    def test_slo_check_exit_codes(self, instrumented_runs, capsys, tmp_path):
        db = instrumented_runs["db"]
        rid = instrumented_runs["summaries"][0]["run_id"]
        tight = tmp_path / "tight.yaml"
        tight.write_text(TIGHT_SLO)
        loose = tmp_path / "loose.yaml"
        loose.write_text(LOOSE_SLO)
        assert main(["slo", "check", "--rules", str(tight),
                     "--run", rid, "--db", db]) == 1
        assert "FAIL" in capsys.readouterr().out
        assert main(["slo", "check", "--rules", str(loose),
                     "--run", rid, "--db", db]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_slo_check_from_run_summary_file(self, instrumented_runs, capsys,
                                             tmp_path):
        summary = instrumented_runs["summaries"][0]
        path = tmp_path / "run_summary.json"
        path.write_text(json.dumps(summary))
        tight = tmp_path / "tight.yaml"
        tight.write_text(TIGHT_SLO)
        assert main(["slo", "check", "--rules", str(tight),
                     "--from", str(path)]) == 1

    def test_tail_renders_the_run_events(self, instrumented_runs, capsys):
        path = str(instrumented_runs["root"] / "events_fast.jsonl")
        assert main(["tail", path, "--component", "slo"]) == 0
        out = capsys.readouterr().out
        assert "slo_breach" in out

    def test_missing_artifacts_exit_2(self, tmp_path, capsys):
        assert main(["history", "show", "nope",
                     "--db", str(tmp_path / "empty.db")]) == 2
        assert main(["tail", str(tmp_path / "missing.jsonl")]) == 2
