"""Saffir-Simpson classification and cube exploration tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytics import saffir_simpson_category
from repro.analytics.tc_tracking import Detection, Track


class TestSaffirSimpson:
    def test_category_boundaries(self):
        assert saffir_simpson_category(20.0) == 0   # tropical storm
        assert saffir_simpson_category(33.0) == 1
        assert saffir_simpson_category(42.9) == 1
        assert saffir_simpson_category(43.0) == 2
        assert saffir_simpson_category(50.0) == 3
        assert saffir_simpson_category(58.0) == 4
        assert saffir_simpson_category(70.0) == 5
        assert saffir_simpson_category(95.0) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            saffir_simpson_category(-1.0)

    @given(st.floats(0.0, 120.0))
    def test_monotone(self, wind):
        assert saffir_simpson_category(wind + 1.0) >= saffir_simpson_category(wind)

    def test_track_category_uses_peak_wind(self):
        dets = [
            Detection(0, 12.0, 180.0, 990.0, 25.0, 1e-4),
            Detection(1, 12.5, 179.0, 955.0, 52.0, 2e-4),
            Detection(2, 13.0, 178.0, 970.0, 40.0, 1e-4),
        ]
        assert Track(dets).category == 3  # peak 52 m/s


class TestCubeExplore:
    def test_explore_renders(self):
        from repro.ophidia import Client, Cube, OphidiaServer

        with OphidiaServer(2, 2) as server:
            client = Client(server)
            cube = Cube.from_array(
                np.arange(24.0).reshape(4, 6), ["time", "lat"],
                client=client, fragment_dim="lat", nfrag=2,
                measure="tas", description="demo",
            )
            text = cube.explore(limit=5)
        assert "measure='tas'" in text
        assert "time[4], lat[6]" in text
        assert "fragments: 2" in text
        assert "min=0" in text
        assert "..." in text

    def test_explore_deleted_cube_rejected(self):
        from repro.ophidia import Client, Cube, OphidiaServer

        with OphidiaServer(1, 1) as server:
            client = Client(server)
            cube = Cube.from_array(np.zeros(3), ["x"], client=client)
            cube.delete()
            with pytest.raises(RuntimeError):
                cube.explore()
