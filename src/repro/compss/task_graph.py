"""The run-time task graph.

The COMPSs runtime builds this DAG as the main program invokes tasks; it
is both the scheduling structure (dependency counts gate readiness) and
the provenance artefact the paper shows in Figure 3.  Nodes are task
invocations, edges are data dependencies; every node carries the Python
function name, which is what the paper colour-codes.
"""

from __future__ import annotations

import enum
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx


class TaskState(enum.Enum):
    PENDING = "PENDING"       # submitted, dependencies outstanding
    READY = "READY"           # dependency-free, waiting for a worker
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    RECOVERED = "RECOVERED"   # satisfied from a checkpoint, never executed

    @property
    def terminal(self) -> bool:
        return self in (
            TaskState.COMPLETED, TaskState.FAILED,
            TaskState.CANCELLED, TaskState.RECOVERED,
        )


@dataclass
class TaskNode:
    """One task invocation."""

    task_id: int
    func_name: str
    fn: Any
    args: tuple
    kwargs: dict
    n_returns: int
    futures: tuple            # the Future objects this task resolves
    on_failure: Any           # failures.OnFailure
    max_retries: int
    computing_units: int = 1
    priority: bool = False
    label: Optional[str] = None

    state: TaskState = TaskState.PENDING
    #: Executions *started* (incremented at dispatch): after N failed
    #: runs and a success, ``attempts == N + 1``.
    attempts: int = 0
    #: Failures attributed to infrastructure (``exc.transient``), which
    #: the runtime retries outside the task's own RETRY budget.
    transient_failures: int = 0
    #: Workers this task failed on; the scheduler prefers other workers
    #: on retry (wiped when every worker is on it, and overridable after
    #: a grace period so pinned workers cannot starve the task).
    blacklisted_workers: Set[int] = field(default_factory=set)
    #: Monotonic time before which a retrying task must not dispatch
    #: (exponential backoff).
    not_before: float = 0.0
    exception: Optional[BaseException] = None
    worker_id: Optional[int] = None
    submit_order: int = 0
    #: ``(("pos", i) | ("kw", name), Future)`` slots this task rewrites (INOUT).
    inout_futures: List[Tuple[Tuple[str, Any], Any]] = field(default_factory=list)
    #: Checkpoint signature drawn at submit (None when checkpointing is off).
    ckpt_signature: Optional[str] = None
    #: Estimated size of this task's outputs, filled at completion; used
    #: for inter-worker transfer accounting.
    result_nbytes: int = 0

    #: Telemetry: the submitting span context (so the executing worker
    #: joins the submitter's trace) and the monotonic time the task last
    #: entered the ready queue (for queue-wait accounting).
    trace_ctx: Any = None
    ready_at: Optional[float] = None

    #: Completion signal: set when the task reaches a terminal state.
    done_event: threading.Event = field(default_factory=threading.Event)

    @property
    def display_name(self) -> str:
        return self.label or self.func_name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Task {self.task_id} {self.display_name} {self.state.value}>"


#: A fixed palette assigned to function names round-robin, mirroring the
#: per-function colours of the paper's Figure 3.
_PALETTE = (
    "dodgerblue", "firebrick", "forestgreen", "gold", "darkorchid",
    "darkorange", "deeppink", "teal", "saddlebrown", "slategray",
    "crimson", "olivedrab", "navy", "coral", "indigo", "seagreen",
)


class TaskGraph:
    """Thread-safe DAG of task invocations.

    Wraps a :class:`networkx.DiGraph` whose node keys are task ids and
    whose nodes carry :class:`TaskNode` objects.
    """

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        self._lock = threading.Lock()
        self._colors: Dict[str, str] = {}

    # -- construction --------------------------------------------------------

    def add_task(self, node: TaskNode, depends_on: Iterable[int]) -> List[int]:
        """Insert *node* with edges from each producer in *depends_on*.

        Returns the dependency ids that are still outstanding (producer
        not yet terminal), which seeds the runtime's pending-dep counter.
        """
        outstanding: List[int] = []
        with self._lock:
            self._g.add_node(node.task_id, task=node)
            self._colors.setdefault(
                node.func_name, _PALETTE[len(self._colors) % len(_PALETTE)]
            )
            for dep_id in set(depends_on):
                if dep_id == node.task_id or dep_id not in self._g:
                    continue
                self._g.add_edge(dep_id, node.task_id)
                dep_task: TaskNode = self._g.nodes[dep_id]["task"]
                if not dep_task.state.terminal:
                    outstanding.append(dep_id)
        return outstanding

    # -- queries -------------------------------------------------------------

    def task(self, task_id: int) -> TaskNode:
        with self._lock:
            return self._g.nodes[task_id]["task"]

    def tasks(self) -> List[TaskNode]:
        with self._lock:
            return [self._g.nodes[t]["task"] for t in sorted(self._g.nodes)]

    def successors(self, task_id: int) -> List[int]:
        with self._lock:
            return list(self._g.successors(task_id))

    def predecessors(self, task_id: int) -> List[int]:
        with self._lock:
            return list(self._g.predecessors(task_id))

    def descendants(self, task_id: int) -> Set[int]:
        with self._lock:
            return set(nx.descendants(self._g, task_id))

    def edges(self) -> List[Tuple[int, int]]:
        with self._lock:
            return list(self._g.edges)

    def __len__(self) -> int:
        with self._lock:
            return self._g.number_of_nodes()

    def counts_by_function(self) -> Counter:
        """Task multiset keyed by function name (Fig-3 style summary)."""
        return Counter(t.func_name for t in self.tasks())

    def counts_by_state(self) -> Counter:
        return Counter(t.state.value for t in self.tasks())

    def is_dag(self) -> bool:
        with self._lock:
            return nx.is_directed_acyclic_graph(self._g)

    def critical_path_length(self) -> int:
        """Longest chain of tasks (nodes), 0 for an empty graph."""
        with self._lock:
            if self._g.number_of_nodes() == 0:
                return 0
            return nx.dag_longest_path_length(self._g) + 1

    def max_width(self) -> int:
        """Size of the largest antichain level (upper bound on parallelism)."""
        with self._lock:
            if self._g.number_of_nodes() == 0:
                return 0
            levels = Counter()
            for node in nx.topological_sort(self._g):
                depth = max(
                    (self._g.nodes[p]["level"] for p in self._g.predecessors(node)),
                    default=-1,
                ) + 1
                self._g.nodes[node]["level"] = depth
                levels[depth] += 1
            return max(levels.values())

    # -- export ---------------------------------------------------------------

    def color_of(self, func_name: str) -> str:
        return self._colors.get(func_name, "black")

    def to_dot(self, title: str = "compss_task_graph") -> str:
        """Render the graph as Graphviz DOT, one colour per function name.

        This is the same artefact the COMPSs runtime emits and the paper
        reproduces as Figure 3.
        """
        lines = [f"digraph {title} {{", "  rankdir=TB;", '  node [style=filled, fontcolor=white];']
        for t in self.tasks():
            color = self.color_of(t.func_name)
            lines.append(
                f'  t{t.task_id} [label="{t.task_id}", fillcolor="{color}", '
                f'tooltip="{t.display_name}"];'
            )
        for src, dst in self.edges():
            lines.append(f"  t{src} -> t{dst};")
        legend = sorted(self._colors.items())
        for i, (fname, color) in enumerate(legend):
            lines.append(
                f'  legend{i} [shape=box, label="{fname}", fillcolor="{color}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def summary(self) -> str:
        """Human-readable per-function/per-state tally."""
        by_fn = self.counts_by_function()
        by_state = self.counts_by_state()
        lines = [f"tasks: {len(self)}  edges: {len(self.edges())}"]
        lines.append("by function:")
        for name, n in sorted(by_fn.items()):
            lines.append(f"  {name:30s} {n}")
        lines.append("by state:")
        for name, n in sorted(by_state.items()):
            lines.append(f"  {name:30s} {n}")
        return "\n".join(lines)
