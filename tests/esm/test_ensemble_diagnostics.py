"""Tests for ensembles, online diagnostics, cube concat and trace export."""

import json

import numpy as np
import pytest

from repro.cluster import SharedFilesystem
from repro.esm import (
    CMCCCM3,
    DiagnosticsError,
    DiagnosticsRecorder,
    EnsembleConfig,
    ModelConfig,
    build_member,
    ensemble_statistics,
    member_name,
    run_ensemble,
)


def base_config(**kw):
    defaults = dict(n_lat=16, n_lon=24, seed=7)
    defaults.update(kw)
    return ModelConfig(**defaults)


class TestEnsemble:
    def test_member_names(self):
        assert member_name(0) == "r1i1p1f1"
        assert member_name(2) == "r3i1p1f1"

    def test_member_configs_differ_only_in_seed(self):
        cfg = EnsembleConfig(base_config(), n_members=3)
        c0, c1 = cfg.member_config(0), cfg.member_config(1)
        assert c0.seed != c1.seed
        assert (c0.n_lat, c0.n_lon, c0.scenario) == (c1.n_lat, c1.n_lon, c1.scenario)
        with pytest.raises(ValueError):
            cfg.member_config(5)
        with pytest.raises(ValueError):
            EnsembleConfig(base_config(), n_members=0)

    def test_members_share_forced_events(self):
        cfg = EnsembleConfig(base_config(), n_members=2)
        m0, m1 = build_member(cfg, 0), build_member(cfg, 1)
        assert m0.events.events_for_year(2030) == m1.events.events_for_year(2030)

    def test_members_have_different_weather(self):
        cfg = EnsembleConfig(base_config(), n_members=2)
        m0, m1 = build_member(cfg, 0), build_member(cfg, 1)
        _, d0 = next(m0.iter_year(2030, n_days=1))
        _, d1 = next(m1.iter_year(2030, n_days=1))
        assert not np.array_equal(d0["TREFHT"].data, d1["TREFHT"].data)

    def test_run_ensemble_layout_and_truth(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        cfg = EnsembleConfig(base_config(), n_members=2)
        truth = run_ensemble(cfg, [2030], fs, n_days=2)
        assert set(truth) == {"r1i1p1f1", "r2i1p1f1"}
        for member in truth:
            files = fs.glob(f"ensemble/{member}", "cmcc_cm3_*.rnc")
            assert len(files) == 2
        # Forced events identical across members.
        assert truth["r1i1p1f1"][2030] == truth["r2i1p1f1"][2030]

    def test_ensemble_statistics(self):
        fields = [np.full((2, 2), v) for v in (1.0, 2.0, 3.0)]
        stats = ensemble_statistics(fields)
        np.testing.assert_allclose(stats["mean"], 2.0)
        np.testing.assert_allclose(stats["spread"], np.std([1, 2, 3]))
        np.testing.assert_allclose(stats["agreement"], 1.0)
        assert stats["n_members"] == 3

    def test_ensemble_statistics_disagreement(self):
        stats = ensemble_statistics([np.array([[1.0]]), np.array([[-0.5]])])
        assert stats["agreement"][0, 0] == 0.5

    def test_ensemble_statistics_empty(self):
        with pytest.raises(ValueError):
            ensemble_statistics([])


class TestDiagnostics:
    def _run(self, n_days=3, validate=True):
        model = CMCCCM3(base_config())
        rec = DiagnosticsRecorder(model.grid, validate=validate)
        for doy, ds in model.iter_year(2030, n_days=n_days):
            rec.record_day(doy, ds)
        return rec

    def test_records_per_day(self):
        rec = self._run(n_days=4)
        assert rec.days == [1, 2, 3, 4]
        assert len(rec.global_mean_t) == 4
        assert all(250 < t < 310 for t in rec.global_mean_t)
        assert all(900 < p < 1050 for p in rec.min_psl)

    def test_summary(self):
        rec = self._run(n_days=3)
        s = rec.summary()
        assert s["n_days"] == 3
        assert 250 < s["mean_global_t_k"] < 310
        assert s["deepest_low_hpa"] < 1050

    def test_summary_empty_raises(self):
        model = CMCCCM3(base_config())
        rec = DiagnosticsRecorder(model.grid)
        with pytest.raises(DiagnosticsError):
            rec.summary()

    def test_json_roundtrip(self):
        rec = self._run(n_days=2)
        payload = json.loads(rec.to_json())
        assert payload["days"] == [1, 2]
        assert "summary" in payload

    def test_validation_catches_nan(self):
        model = CMCCCM3(base_config())
        rec = DiagnosticsRecorder(model.grid)
        _, ds = next(model.iter_year(2030, n_days=1))
        ds["TREFHT"].data[0, 0, 0] = np.nan
        with pytest.raises(DiagnosticsError):
            rec.record_day(1, ds)

    def test_validation_catches_tmax_below_tmin(self):
        model = CMCCCM3(base_config())
        rec = DiagnosticsRecorder(model.grid)
        _, ds = next(model.iter_year(2030, n_days=1))
        ds["TREFHTMX"].data[...] = ds["TREFHTMN"].data - 1.0
        with pytest.raises(DiagnosticsError):
            rec.record_day(1, ds)

    def test_run_year_persists_diagnostics(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        model = CMCCCM3(base_config())
        rec = DiagnosticsRecorder(model.grid)
        model.run_year(2030, fs, n_days=2, diagnostics=rec)
        payload = json.loads(fs.read_bytes("esm_output/diagnostics_2030.json"))
        assert payload["summary"]["n_days"] == 2


class TestCubeConcat:
    def test_concat_two_years(self):
        from repro.ophidia import Client, Cube, OphidiaServer

        a = np.random.default_rng(0).normal(size=(5, 4, 6))
        b = np.random.default_rng(1).normal(size=(3, 4, 6))
        with OphidiaServer(2, 2) as server:
            client = Client(server)
            ca = Cube.from_array(a, ["time", "lat", "lon"], client=client,
                                 fragment_dim="lat", nfrag=2)
            cb = Cube.from_array(b, ["time", "lat", "lon"], client=client,
                                 fragment_dim="lat", nfrag=2)
            cc = ca.concat(cb, dim="time")
            assert cc.shape == (8, 4, 6)
            np.testing.assert_array_equal(cc.to_array(),
                                          np.concatenate([a, b], axis=0))

    def test_concat_misaligned_fragments(self):
        from repro.ophidia import Client, Cube, OphidiaServer

        a = np.zeros((2, 4))
        b = np.ones((3, 4))
        with OphidiaServer(2, 2) as server:
            client = Client(server)
            ca = Cube.from_array(a, ["time", "y"], client=client,
                                 fragment_dim="y", nfrag=2)
            cb = Cube.from_array(b, ["time", "y"], client=client,
                                 fragment_dim="y", nfrag=4)
            cc = ca.concat(cb, dim="time")
            np.testing.assert_array_equal(
                cc.to_array(), np.concatenate([a, b], axis=0)
            )

    def test_concat_validation(self):
        from repro.ophidia import Client, Cube, OphidiaServer

        with OphidiaServer(1, 1) as server:
            client = Client(server)
            a = Cube.from_array(np.zeros((2, 4)), ["time", "y"], client=client,
                                fragment_dim="y")
            bad_dims = Cube.from_array(np.zeros((2, 4)), ["time", "x"],
                                       client=client, fragment_dim="x")
            bad_size = Cube.from_array(np.zeros((2, 5)), ["time", "y"],
                                       client=client, fragment_dim="y")
            with pytest.raises(ValueError):
                a.concat(bad_dims, dim="time")
            with pytest.raises(ValueError):
                a.concat(bad_size, dim="time")
            with pytest.raises(ValueError):
                a.concat(a, dim="y")  # fragment dim


class TestChromeTrace:
    def test_export_structure(self):
        from repro.compss.tracing import TaskEvent, Tracer

        tr = Tracer()
        tr.record(TaskEvent(1, "sim", 0, 0.0, 1.5, "COMPLETED"))
        tr.record(TaskEvent(2, "ana", 1, 1.0, 2.0, "FAILED"))
        doc = json.loads(tr.to_chrome_trace())
        events = doc["traceEvents"]
        assert len(events) == 2
        assert events[0]["name"] == "sim#1"
        assert events[0]["ph"] == "X"
        assert events[0]["dur"] == pytest.approx(1.5e6)
        assert events[1]["tid"] == 1
        assert events[1]["cat"] == "FAILED"

    def test_export_from_real_run(self):
        from repro.compss import COMPSs, compss_wait_on, task

        @task(returns=1)
        def f(x):
            return x

        with COMPSs(n_workers=2) as rt:
            compss_wait_on([f(i) for i in range(3)])
            doc = json.loads(rt.tracer.to_chrome_trace())
        assert len(doc["traceEvents"]) == 3
