#!/usr/bin/env python3
"""Tropical-cyclone localization: pre-trained CNN vs deterministic tracker.

The paper's §5.4 stand-alone: simulate a TC season with the coupled
model (ground-truth storm tracks are known by construction), then

* run the deterministic tracking scheme (pressure-minimum + vorticity +
  wind criteria, nearest-neighbour stitching), and
* run the CNN localizer over regridded/tiled/scaled snapshots,

scoring both against the injected truth — the quantitative validation
the original case study could only do qualitatively.

Usage::

    python examples/tc_detection.py [--model /path/tc.pkl] [--days 20]
"""

import argparse
import os
import tempfile

import numpy as np

from repro.analytics import detect_tc_candidates, link_tracks, regrid_bilinear, track_skill
from repro.esm import CMCCCM3, ModelConfig
from repro.ml.tc_localizer import CHANNELS, TCLocalizer, localize_in_snapshot, train_esm_localizer

GRID = (48, 96)
CNN_GRID = (96, 192)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default=None,
                        help="path to a trained localizer (trained if absent)")
    parser.add_argument("--days", type=int, default=20)
    parser.add_argument("--seed", type=int, default=21)
    args = parser.parse_args()

    model_path = args.model or os.path.join(tempfile.gettempdir(), "tc_esm.pkl")
    if not os.path.exists(model_path):
        print("training the TC localizer on simulator-harvested patches "
              "(~30 s, once) ...")
        train_esm_localizer(model_path)
    tc_model = TCLocalizer.load(model_path)

    print(f"simulating a TC season on a {GRID[0]}x{GRID[1]} grid ...")
    model = CMCCCM3(ModelConfig(n_lat=GRID[0], n_lon=GRID[1], seed=args.seed))
    tcs = model.events.tropical_cyclones(2030)
    first = min(tc.start_doy for tc in tcs)
    last = min(max(tc.end_doy for tc in tcs), first + args.days - 1)
    covered = [tc for tc in tcs if tc.end_doy <= last]
    print(f"injected storms: {len(tcs)} (fully inside the window: {len(covered)})")

    rng = np.random.default_rng(0)
    noise = model.atmosphere.initial_noise(rng)
    sst = model.ocean.initialise(2030)
    dlat = 180.0 / CNN_GRID[0]
    dst_lat = np.linspace(-90 + dlat / 2, 90 - dlat / 2, CNN_GRID[0])
    dst_lon = np.arange(CNN_GRID[1]) * (360.0 / CNN_GRID[1])

    per_step, cnn_found = [], []
    step = 0
    for doy in range(first, last + 1):
        fields = model.atmosphere.daily_fields(
            2030, doy, noise, sst, tropical_cyclones=tcs, rng=rng
        )
        noise = model.atmosphere.step_noise(noise, rng)
        for s in range(4):
            per_step.append(detect_tc_candidates(
                fields["PSL"][s], fields["VORT850"][s], fields["WSPDSRFAV"][s],
                model.grid.lat, model.grid.lon, step=step,
            ))
            stack = np.stack([fields[c][s] for c in CHANNELS])
            snap = regrid_bilinear(stack, model.grid.lat, model.grid.lon,
                                   dst_lat, dst_lon)
            cnn_found.append(localize_in_snapshot(
                tc_model, {c: snap[i] for i, c in enumerate(CHANNELS)},
                dst_lat, dst_lon,
            ))
            step += 1

    tracks = link_tracks(per_step, min_track_length=4)
    print(f"\ndeterministic tracker: {len(tracks)} track(s)")
    for t in tracks:
        lat0, lon0 = t.positions()[0]
        print(f"  steps {t.start_step}-{t.end_step}: genesis "
              f"({lat0:+.1f}, {lon0:.1f}), min slp {t.min_pressure:.0f} hPa, "
              f"max wind {t.max_wind:.0f} m/s")

    if covered:
        skill = track_skill(
            tracks, [list(tc.track) for tc in covered],
            [(tc.start_doy - first) * 4 for tc in covered], max_match_km=800.0,
        )
        print(f"\nskill vs ground truth: POD={skill.pod:.2f} FAR={skill.far:.2f} "
              f"centre error {skill.mean_center_error_km:.0f} km")

    n_cnn = sum(len(f) for f in cnn_found)
    print(f"\nCNN localizer: {n_cnn} detections over {step} snapshots")
    sample = next((f for f in cnn_found if f), [])
    for lat, lon, prob in sample[:3]:
        print(f"  example: ({lat:+.1f}, {lon:.1f}) p={prob:.2f}")


if __name__ == "__main__":
    main()
