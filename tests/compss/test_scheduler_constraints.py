"""Scheduler policies, @constraint resource units, graph export, tracing."""

import threading
import time

import pytest

from repro.compss import (
    COMPSs,
    DataLocalityPolicy,
    FIFOPolicy,
    PriorityPolicy,
    compss_barrier,
    compss_wait_on,
    constraint,
    task,
)
from repro.compss.scheduler import policy_by_name
from repro.compss.task_graph import TaskGraph, TaskNode, TaskState
from repro.compss.failures import OnFailure


def _mk_node(task_id, name="f", priority=False, order=None):
    node = TaskNode(
        task_id, name, lambda: None, (), {}, 0, (), OnFailure.FAIL, 0,
        priority=priority,
    )
    node.submit_order = order if order is not None else task_id
    return node


class TestPolicies:
    def test_fifo_order(self):
        g = TaskGraph()
        ready = [_mk_node(3), _mk_node(1), _mk_node(2)]
        policy = FIFOPolicy()
        picked = [policy.select(ready, 0, g).task_id for _ in range(3)]
        assert picked == [1, 2, 3]

    def test_priority_first(self):
        g = TaskGraph()
        ready = [_mk_node(1), _mk_node(2, priority=True), _mk_node(3)]
        policy = PriorityPolicy()
        assert policy.select(ready, 0, g).task_id == 2
        assert policy.select(ready, 0, g).task_id == 1

    def test_locality_prefers_same_worker(self):
        g = TaskGraph()
        p1, p2 = _mk_node(1, "src"), _mk_node(2, "src")
        p1.worker_id, p2.worker_id = 0, 1
        g.add_task(p1, ())
        g.add_task(p2, ())
        c1, c2 = _mk_node(3, "use"), _mk_node(4, "use")
        g.add_task(c1, [1])
        g.add_task(c2, [2])
        policy = DataLocalityPolicy()
        ready = [c1, c2]
        assert policy.select(ready, 1, g).task_id == 4  # pred ran on worker 1

    def test_locality_respects_priority(self):
        """Regression: a ``priority=True`` task must beat a better-placed
        non-priority one — locality only breaks ties within a priority
        class."""
        g = TaskGraph()
        p1, p2 = _mk_node(1, "src"), _mk_node(2, "src")
        p1.worker_id, p2.worker_id = 0, 1
        g.add_task(p1, ())
        g.add_task(p2, ())
        local = _mk_node(3, "use")             # pred on worker 1: local
        urgent = _mk_node(4, "use", priority=True)  # pred on worker 0: remote
        g.add_task(local, [2])
        g.add_task(urgent, [1])
        policy = DataLocalityPolicy()
        ready = [local, urgent]
        assert policy.select(ready, 1, g).task_id == 4
        # Priority drained: now locality decides again.
        assert policy.select([local], 1, g).task_id == 3

    def test_locality_ties_break_by_submit_order(self):
        g = TaskGraph()
        a = _mk_node(1, "use", order=7)
        b = _mk_node(2, "use", order=3)
        g.add_task(a, ())
        g.add_task(b, ())
        policy = DataLocalityPolicy()
        assert policy.select([a, b], 0, g).task_id == 2

    def test_empty_ready_returns_none(self):
        g = TaskGraph()
        for policy in (FIFOPolicy(), PriorityPolicy(), DataLocalityPolicy()):
            assert policy.select([], 0, g) is None

    def test_policy_by_name(self):
        assert isinstance(policy_by_name("fifo"), FIFOPolicy)
        assert isinstance(policy_by_name("PRIORITY"), PriorityPolicy)
        assert isinstance(policy_by_name("locality"), DataLocalityPolicy)
        with pytest.raises(ValueError):
            policy_by_name("random")

    def test_priority_policy_end_to_end(self):
        ran = []
        gate = threading.Event()

        @task()
        def blocker():
            gate.wait(5)

        @task(priority=True)
        def urgent():
            ran.append("urgent")

        @task()
        def normal():
            ran.append("normal")

        with COMPSs(n_workers=1, scheduler=PriorityPolicy()):
            blocker()          # occupies the single worker
            time.sleep(0.05)   # let it start
            normal()
            normal()
            urgent()
            gate.set()
            compss_barrier()
        assert ran[0] == "urgent"


class TestConstraints:
    def test_computing_units_limit_concurrency(self):
        running = []
        peak = []
        lock = threading.Lock()

        @constraint(computing_units=2)
        @task()
        def heavy():
            with lock:
                running.append(1)
                peak.append(len(running))
            time.sleep(0.05)
            with lock:
                running.pop()

        with COMPSs(n_workers=4, computing_units=4):
            for _ in range(6):
                heavy()
            compss_barrier()
        assert max(peak) <= 2  # 4 units / 2 per task

    def test_oversized_constraint_rejected(self):
        @constraint(computing_units=8)
        @task()
        def huge():
            pass

        with COMPSs(n_workers=2, computing_units=2):
            with pytest.raises(ValueError):
                huge()

    def test_constraint_validation(self):
        with pytest.raises(ValueError):
            constraint(computing_units=0)

    def test_constraint_below_task_decorator_order(self):
        @task()
        @constraint(computing_units=2)
        def f():
            pass

        assert f._compss_computing_units == 2


class TestGraphArtifacts:
    def test_dot_export_contains_nodes_edges_and_legend(self):
        @task(returns=1)
        def alpha():
            return 1

        @task(returns=1)
        def beta(x):
            return x

        with COMPSs(n_workers=2) as rt:
            beta(alpha())
            compss_barrier()
            dot = rt.graph.to_dot()
        assert "digraph" in dot
        assert "t1 -> t2;" in dot
        assert 'label="alpha"' in dot
        assert 'label="beta"' in dot

    def test_counts_and_summary(self):
        @task(returns=1)
        def alpha():
            return 1

        with COMPSs(n_workers=2) as rt:
            for _ in range(3):
                alpha()
            compss_barrier()
            assert rt.graph.counts_by_function() == {"alpha": 3}
            assert "alpha" in rt.graph.summary()

    def test_critical_path_and_width(self):
        @task(returns=1)
        def step(x):
            return x

        with COMPSs(n_workers=2) as rt:
            chain = step(0)
            for _ in range(3):
                chain = step(chain)
            step(100)  # independent
            compss_barrier()
            assert rt.graph.critical_path_length() == 4
            assert rt.graph.max_width() == 2


class TestTracing:
    def test_tracer_records_events_and_makespan(self):
        @task(returns=1)
        def work():
            time.sleep(0.02)
            return 1

        with COMPSs(n_workers=2) as rt:
            compss_wait_on([work() for _ in range(4)])
            events = rt.tracer.events
            assert len(events) == 4
            assert all(e.state == "COMPLETED" for e in events)
            assert rt.tracer.makespan() >= 0.02
            assert rt.tracer.time_by_function()["work"] >= 0.08 * 0.5
            assert 0 < rt.tracer.worker_utilisation(2) <= 1.0

    def test_overlap_metric(self):
        from repro.compss.tracing import TaskEvent, Tracer

        tr = Tracer()
        tr.record(TaskEvent(1, "sim", 0, 0.0, 10.0, "COMPLETED"))
        tr.record(TaskEvent(2, "ana", 1, 4.0, 6.0, "COMPLETED"))
        tr.record(TaskEvent(3, "ana", 1, 9.0, 12.0, "COMPLETED"))
        assert tr.overlap_seconds("sim", "ana") == pytest.approx(3.0)
        assert tr.makespan() == pytest.approx(12.0)

    def test_gantt_renders(self):
        from repro.compss.tracing import TaskEvent, Tracer

        tr = Tracer()
        tr.record(TaskEvent(1, "sim", 0, 0.0, 1.0, "COMPLETED"))
        art = tr.gantt(width=20)
        assert "w00" in art and "s" in art
