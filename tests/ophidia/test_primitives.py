"""Tests for the oph_* primitive expression language."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ophidia import PrimitiveError, evaluate_primitive


class TestPredicate:
    def test_paper_listing1_predicate(self):
        """The exact expression from the paper's Listing 1."""
        measure = np.array([-2, 0, 3, 7], dtype=np.int32)
        out = evaluate_primitive(
            "oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')", measure
        )
        np.testing.assert_array_equal(out, [0, 0, 1, 1])
        assert out.dtype == np.int32

    def test_predicate_with_x_branches(self):
        measure = np.array([1.0, 5.0, 9.0])
        out = evaluate_primitive(
            "oph_predicate('OPH_DOUBLE','OPH_DOUBLE',measure,'x','>=5','x','0')",
            measure,
        )
        np.testing.assert_array_equal(out, [0.0, 5.0, 9.0])

    def test_predicate_nan_branch(self):
        measure = np.array([1.0, -1.0])
        out = evaluate_primitive(
            "oph_predicate('OPH_DOUBLE','OPH_DOUBLE',measure,'x','>0','x','NAN')",
            measure,
        )
        assert out[0] == 1.0
        assert np.isnan(out[1])

    def test_condition_with_explicit_x(self):
        measure = np.array([3.0, 4.0])
        out = evaluate_primitive(
            "oph_predicate('OPH_FLOAT','OPH_INT',measure,'x','x>=4','1','0')", measure
        )
        np.testing.assert_array_equal(out, [0, 1])

    def test_all_comparators(self):
        measure = np.array([1.0, 2.0, 3.0])
        cases = {
            "'>2'": [0, 0, 1],
            "'<2'": [1, 0, 0],
            "'>=2'": [0, 1, 1],
            "'<=2'": [1, 1, 0],
            "'==2'": [0, 1, 0],
            "'!=2'": [1, 0, 1],
        }
        for cond, expected in cases.items():
            out = evaluate_primitive(
                f"oph_predicate('OPH_DOUBLE','OPH_INT',measure,'x',{cond},'1','0')",
                measure,
            )
            np.testing.assert_array_equal(out, expected, err_msg=cond)

    def test_bad_condition_rejected(self):
        with pytest.raises(PrimitiveError):
            evaluate_primitive(
                "oph_predicate('OPH_INT','OPH_INT',measure,'x','~5','1','0')",
                np.zeros(2),
            )

    def test_bad_variable_rejected(self):
        with pytest.raises(PrimitiveError):
            evaluate_primitive(
                "oph_predicate('OPH_INT','OPH_INT',measure,'y','>0','1','0')",
                np.zeros(2),
            )


class TestScalarArithmetic:
    def test_sum_scalar(self):
        out = evaluate_primitive(
            "oph_sum_scalar('OPH_DOUBLE','OPH_DOUBLE',measure,5)", np.arange(3.0)
        )
        np.testing.assert_array_equal(out, [5.0, 6.0, 7.0])

    def test_sub_mul_div(self):
        m = np.array([2.0, 4.0])
        np.testing.assert_array_equal(
            evaluate_primitive("oph_sub_scalar('OPH_DOUBLE','OPH_DOUBLE',measure,1)", m),
            [1.0, 3.0],
        )
        np.testing.assert_array_equal(
            evaluate_primitive("oph_mul_scalar('OPH_DOUBLE','OPH_DOUBLE',measure,3)", m),
            [6.0, 12.0],
        )
        np.testing.assert_array_equal(
            evaluate_primitive("oph_div_scalar('OPH_DOUBLE','OPH_DOUBLE',measure,2)", m),
            [1.0, 2.0],
        )

    def test_div_by_zero_rejected(self):
        with pytest.raises(PrimitiveError):
            evaluate_primitive(
                "oph_div_scalar('OPH_DOUBLE','OPH_DOUBLE',measure,0)", np.ones(2)
            )

    def test_output_type_cast(self):
        out = evaluate_primitive(
            "oph_sum_scalar('OPH_DOUBLE','OPH_INT',measure,0.7)", np.array([1.0])
        )
        assert out.dtype == np.int32

    def test_scalar_as_string(self):
        out = evaluate_primitive(
            "oph_mul_scalar('OPH_DOUBLE','OPH_DOUBLE',measure,'2.5')", np.array([2.0])
        )
        np.testing.assert_array_equal(out, [5.0])


class TestMathAndCast:
    def test_math_functions(self):
        m = np.array([4.0])
        assert evaluate_primitive(
            "oph_math('OPH_DOUBLE','OPH_DOUBLE',measure,'OPH_MATH_SQRT')", m
        )[0] == pytest.approx(2.0)
        assert evaluate_primitive(
            "oph_math('OPH_DOUBLE','OPH_DOUBLE',measure,'OPH_MATH_ABS')", -m
        )[0] == pytest.approx(4.0)

    def test_unknown_math_rejected(self):
        with pytest.raises(PrimitiveError):
            evaluate_primitive(
                "oph_math('OPH_DOUBLE','OPH_DOUBLE',measure,'OPH_MATH_NOPE')",
                np.ones(1),
            )

    def test_cast(self):
        out = evaluate_primitive(
            "oph_cast('OPH_DOUBLE','OPH_FLOAT',measure)", np.array([1.5], np.float64)
        )
        assert out.dtype == np.float32


class TestNestingAndErrors:
    def test_nested_calls(self):
        """Scale to Celsius then threshold: a realistic composite."""
        kelvin = np.array([270.0, 280.0, 300.0])
        out = evaluate_primitive(
            "oph_predicate('OPH_DOUBLE','OPH_INT',"
            "oph_sub_scalar('OPH_DOUBLE','OPH_DOUBLE',measure,273.15),"
            "'x','>0','1','0')",
            kelvin,
        )
        np.testing.assert_array_equal(out, [0, 1, 1])

    def test_unknown_primitive(self):
        with pytest.raises(PrimitiveError):
            evaluate_primitive("oph_nope('OPH_INT','OPH_INT',measure,1)", np.ones(1))

    def test_unknown_type(self):
        with pytest.raises(PrimitiveError):
            evaluate_primitive(
                "oph_sum_scalar('OPH_TEXT','OPH_INT',measure,1)", np.ones(1)
            )

    def test_syntax_errors(self):
        for bad in (
            "oph_sum_scalar('OPH_INT','OPH_INT',measure",   # unbalanced
            "measure",                                       # not a call
            "oph_sum_scalar('OPH_INT','OPH_INT',measure,1) extra",
            "oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1')",  # arity
            "@bad@",
        ):
            with pytest.raises(PrimitiveError):
                evaluate_primitive(bad, np.ones(2))

    def test_scalar_where_measure_expected(self):
        with pytest.raises(PrimitiveError):
            evaluate_primitive("oph_sum_scalar('OPH_INT','OPH_INT',5,1)", np.ones(1))

    @given(
        hnp.arrays(
            dtype=np.float64, shape=hnp.array_shapes(max_dims=3, max_side=6),
            elements=st.floats(-1e3, 1e3),
        ),
        st.floats(-10, 10),
    )
    def test_predicate_matches_numpy_where(self, data, threshold):
        out = evaluate_primitive(
            f"oph_predicate('OPH_DOUBLE','OPH_INT',measure,'x','>{threshold}','1','0')",
            data,
        )
        np.testing.assert_array_equal(out, (data > threshold).astype(np.int32))

    @given(
        hnp.arrays(dtype=np.float64, shape=st.integers(0, 20),
                   elements=st.floats(-1e3, 1e3)),
        st.floats(-5, 5), st.floats(-5, 5),
    )
    def test_scalar_ops_compose(self, data, a, b):
        """(x + a) - a == x and (x * 1) == x style identities."""
        out = evaluate_primitive(
            "oph_sub_scalar('OPH_DOUBLE','OPH_DOUBLE',"
            f"oph_sum_scalar('OPH_DOUBLE','OPH_DOUBLE',measure,{a}),{a})",
            data,
        )
        np.testing.assert_allclose(out, data, atol=1e-9)


class TestASTCache:
    def test_repeated_queries_hit_the_cache(self):
        from repro.ophidia import (
            clear_primitive_cache,
            parse_primitive,
            primitive_cache_info,
        )

        clear_primitive_cache()
        query = "oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')"
        first = parse_primitive(query)
        info = primitive_cache_info()
        assert info["misses"] == 1 and info["hits"] == 0
        for _ in range(5):
            assert parse_primitive(query) is first
        info = primitive_cache_info()
        assert info["misses"] == 1 and info["hits"] == 5
        assert info["size"] == 1

    def test_cached_evaluation_matches_uncached(self):
        from repro.ophidia import clear_primitive_cache

        clear_primitive_cache()
        measure = np.array([1.0, -2.0, 3.0])
        query = "oph_mul_scalar('OPH_DOUBLE','OPH_DOUBLE',measure,2)"
        cold = evaluate_primitive(query, measure)
        warm = evaluate_primitive(query, measure)  # AST now cached
        np.testing.assert_array_equal(cold, warm)

    def test_cache_is_bounded_lru(self):
        from repro.ophidia import clear_primitive_cache, parse_primitive
        from repro.ophidia.primitives import _ast_cache

        clear_primitive_cache()
        for k in range(_ast_cache.maxsize + 10):
            parse_primitive(
                f"oph_sum_scalar('OPH_DOUBLE','OPH_DOUBLE',measure,{k})"
            )
        assert _ast_cache.info()["size"] == _ast_cache.maxsize

    def test_parallel_parsing_is_consistent(self):
        from concurrent.futures import ThreadPoolExecutor

        from repro.ophidia import clear_primitive_cache, parse_primitive

        clear_primitive_cache()
        query = "oph_predicate('OPH_INT','OPH_INT',measure,'x','>=6','x','0')"
        with ThreadPoolExecutor(max_workers=8) as pool:
            asts = list(pool.map(lambda _: parse_primitive(query), range(64)))
        assert all(a == asts[0] for a in asts)
