"""Control-plane database tests: schema v2, tenants, sites, jobs."""

import sqlite3
import time

import pytest

from repro.observability.history import _SCHEMA, RunHistory, SCHEMA_VERSION
from repro.service import JobState, ServiceDB


@pytest.fixture
def db(tmp_path):
    return ServiceDB(str(tmp_path / "runs.db"))


class TestSchema:
    def test_fresh_database_is_current_version(self, db):
        assert db.schema_version() == SCHEMA_VERSION == 2

    def test_v1_database_migrates_in_place(self, tmp_path):
        path = str(tmp_path / "old.db")
        # Hand-build a PR-6 era (v1) database with one recorded run.
        conn = sqlite3.connect(path)
        conn.executescript(_SCHEMA)
        conn.execute(
            "INSERT INTO runs (run_id, kind, status, started_at) "
            "VALUES ('abc123', 'run', 'ok', ?)",
            (time.time(),),
        )
        conn.execute("PRAGMA user_version=1")
        conn.commit()
        conn.close()

        db = ServiceDB(path)
        assert db.schema_version() == 2
        # The old run survived the migration...
        assert db.get("abc123").kind == "run"
        # ...and the control-plane tables exist and work.
        db.add_tenant("t")
        job = db.submit_job("t", "wf")
        assert db.get_job(job.job_id).state is JobState.SUBMITTED

    def test_plain_history_opens_service_database(self, db, tmp_path):
        db.add_tenant("t")
        history = RunHistory(db.path)
        assert history.schema_version() == 2
        assert len(history) == 0

    def test_newer_schema_refused(self, tmp_path):
        path = str(tmp_path / "future.db")
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version=99")
        conn.commit()
        conn.close()
        with pytest.raises(RuntimeError, match="newer"):
            ServiceDB(path)


class TestTenants:
    def test_add_get_list(self, db):
        db.add_tenant("alice", share=2.0, max_running=3, max_cores=8)
        db.add_tenant("bob")
        alice = db.get_tenant("alice")
        assert (alice.share, alice.max_running, alice.max_cores) == (2.0, 3, 8)
        assert [t.name for t in db.list_tenants()] == ["alice", "bob"]
        assert alice.to_json()["share"] == 2.0

    def test_duplicate_rejected(self, db):
        db.add_tenant("alice")
        with pytest.raises(ValueError, match="already exists"):
            db.add_tenant("alice")

    def test_validation(self, db):
        with pytest.raises(ValueError):
            db.add_tenant("")
        with pytest.raises(ValueError):
            db.add_tenant("x", share=0)
        with pytest.raises(ValueError):
            db.add_tenant("x", max_running=-1)

    def test_unknown_tenant(self, db):
        with pytest.raises(KeyError):
            db.get_tenant("ghost")

    def test_set_quota(self, db):
        db.add_tenant("alice")
        updated = db.set_quota("alice", share=3.0, max_running=1, max_cores=2)
        assert (updated.share, updated.max_running, updated.max_cores) == (
            3.0, 1, 2
        )
        with pytest.raises(KeyError):
            db.set_quota("ghost", share=1.0)
        with pytest.raises(ValueError):
            db.set_quota("alice", share=-1.0)


class TestSites:
    def test_register_is_upsert(self, db):
        db.register_site("zeus", cluster="zeus-sim", total_cores=8)
        first = db.get_site("zeus")
        db.register_site("zeus", cluster="zeus-sim", total_cores=16)
        second = db.get_site("zeus")
        assert second.total_cores == 16
        assert second.created_at == first.created_at
        assert second.last_seen_at >= first.last_seen_at
        assert [s.name for s in db.list_sites()] == ["zeus"]

    def test_unknown_site(self, db):
        with pytest.raises(KeyError):
            db.get_site("ghost")


class TestJobs:
    def test_submit_and_lifecycle(self, db):
        db.add_tenant("alice")
        job = db.submit_job("alice", "wf", params={"n": 3}, cores=2,
                            memory_gb=1.5)
        assert job.state is JobState.SUBMITTED
        assert job.params == {"n": 3}
        assert job.turnaround_s is None
        assert not job.state.terminal

        launched = db.update_job(job.job_id, state=JobState.LAUNCHED,
                                 site="zeus")
        assert launched.state is JobState.LAUNCHED
        done = db.update_job(
            job.job_id, state=JobState.COMPLETED,
            started_at=job.submitted_at + 1,
            finished_at=job.submitted_at + 3, backfilled=True,
        )
        assert done.state.terminal
        assert done.turnaround_s == pytest.approx(3.0)
        assert done.backfilled
        assert done.to_json()["state"] == "COMPLETED"

    def test_submit_requires_known_tenant(self, db):
        with pytest.raises(KeyError):
            db.submit_job("ghost", "wf")

    def test_submit_validation(self, db):
        db.add_tenant("alice")
        with pytest.raises(ValueError):
            db.submit_job("alice", "wf", cores=0)
        with pytest.raises(ValueError):
            db.submit_job("alice", "wf", memory_gb=-1)

    def test_filters_and_order(self, db):
        db.add_tenant("alice")
        db.add_tenant("bob")
        a1 = db.submit_job("alice", "wf-a")
        b1 = db.submit_job("bob", "wf-b")
        a2 = db.submit_job("alice", "wf-a")
        db.update_job(b1.job_id, state=JobState.COMPLETED,
                      finished_at=time.time())

        assert [j.job_id for j in db.jobs()] == [
            a1.job_id, b1.job_id, a2.job_id
        ]
        assert [j.job_id for j in db.jobs(tenant="alice")] == [
            a1.job_id, a2.job_id
        ]
        assert [j.job_id for j in db.jobs(state=JobState.COMPLETED)] == [
            b1.job_id
        ]
        assert db.job_counts() == {"SUBMITTED": 2, "COMPLETED": 1}
        assert db.job_counts(tenant="bob") == {"COMPLETED": 1}

    def test_unknown_job(self, db):
        with pytest.raises(KeyError):
            db.get_job("ghost")
        with pytest.raises(KeyError):
            db.update_job("ghost", state=JobState.FAILED)
