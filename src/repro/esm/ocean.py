"""The ocean component (a NEMO stand-in): a slab ocean with memory.

SST relaxes toward its seasonal climatology, integrates the heat flux
received from the atmosphere through the coupler, and carries a slow
ENSO-like basin oscillation.  The long thermal memory is what makes the
coupled system more than two independent noise generators: atmospheric
heat anomalies persist in the SST and feed back on later days.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.esm.forcing import GHGScenario, warming_offset
from repro.esm.grid import Grid
from repro.netcdf.cf import DAYS_PER_YEAR

KELVIN = 273.15


@dataclass
class SlabOcean:
    """Slab ocean with relaxation, coupling flux uptake and ENSO mode.

    Parameters
    ----------
    relaxation_days:
        e-folding time of the SST anomaly decay toward climatology.
    heat_uptake_k_per_flux:
        SST tendency per unit normalised atmosphere-ocean flux (K/day).
    """

    grid: Grid
    scenario: GHGScenario = GHGScenario.SSP245
    relaxation_days: float = 20.0
    heat_uptake_k_per_flux: float = 0.08
    enso_period_days: float = 4.2 * DAYS_PER_YEAR
    enso_amplitude_k: float = 1.2

    sst: Optional[np.ndarray] = field(default=None, repr=False)

    def sst_clim(self, year: int, doy: int) -> np.ndarray:
        """Seasonal SST climatology plus scenario warming (K)."""
        g = self.grid
        lat_r = np.deg2rad(g.lat2d)
        base = KELVIN + 28.0 * np.cos(lat_r) ** 2 - 1.0
        seasonal = (
            2.5 * np.sin(lat_r) * np.abs(np.sin(lat_r))
            * np.cos(2.0 * np.pi * (doy - 226.0) / DAYS_PER_YEAR)
        )
        # Ocean lags the atmosphere by ~1 month (peak doy 226 vs 196).
        warming = 0.7 * warming_offset(year, self.scenario)
        return base + seasonal + warming

    def enso_anomaly(self, year: int, doy: int) -> np.ndarray:
        """Slow tropical-Pacific-like SST mode."""
        g = self.grid
        t_days = year * DAYS_PER_YEAR + doy
        phase = 2.0 * np.pi * t_days / self.enso_period_days
        pattern = (
            np.exp(-((g.lat2d / 12.0) ** 2))
            * np.cos(np.deg2rad(g.lon2d - 210.0) * 1.5)
        )
        return self.enso_amplitude_k * np.sin(phase) * pattern

    def initialise(self, year: int, doy: int = 1) -> np.ndarray:
        """Set SST to climatology + ENSO; returns the field."""
        self.sst = self.sst_clim(year, doy) + self.enso_anomaly(year, doy)
        return self.sst

    def step(self, year: int, doy: int, flux: np.ndarray) -> np.ndarray:
        """Advance one day given the normalised atmosphere→ocean *flux*.

        ``flux`` is dimensionless (≈ (T_atm - SST)/K); positive warms.
        """
        if self.sst is None:
            self.initialise(year, doy)
        clim = self.sst_clim(year, doy) + self.enso_anomaly(year, doy)
        anomaly = self.sst - clim
        anomaly *= 1.0 - 1.0 / self.relaxation_days
        anomaly += self.heat_uptake_k_per_flux * flux
        self.sst = clim + anomaly
        # SST is only defined over ocean; land cells carry the clim value
        # so downstream consumers never see NaNs.
        return self.sst
