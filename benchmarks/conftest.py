"""Shared benchmark fixtures.

Every benchmark prints the rows/series the corresponding paper artefact
reports (see DESIGN.md's experiment index) in addition to the
pytest-benchmark timing.  Expensive shared assets (the trained TC CNN)
are session-scoped.
"""

import pytest

from repro.cluster import laptop_like
from repro.workflow.tasks import ensure_tc_model


@pytest.fixture(scope="session")
def tc_model_path(tmp_path_factory):
    """A quickly-trained TC localizer (synthetic patches) for the
    structural benchmarks where CNN skill is irrelevant."""
    return ensure_tc_model(None, 16, str(tmp_path_factory.mktemp("tc_model")))


@pytest.fixture(scope="session")
def tc_model_esm_path(tmp_path_factory):
    """The production localizer trained on simulator-harvested patches
    (the paper's 'pre-trained CNN'), used by the C6 skill benchmark."""
    from repro.ml import train_esm_localizer

    path = str(tmp_path_factory.mktemp("tc_model_esm") / "tc_esm.pkl")
    train_esm_localizer(path)
    return path


@pytest.fixture
def cluster(tmp_path):
    with laptop_like(scratch_root=str(tmp_path / "scratch")) as c:
        yield c


def print_table(title, header, rows):
    """Uniform results table used by every benchmark."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
              for i, h in enumerate(header)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
