"""The climate extreme-events case study (the paper's §5–§6).

Everything below this package is substrate; this package is the
workflow the paper actually presents: a single PyCOMPSs application
that

1. runs the (simulated) CMCC-CM3 model, producing one file per day,
2. monitors the output directory through a streaming interface and
   reacts as soon as each full year of data is available,
3. computes heat-wave and cold-wave indices through Ophidia operator
   pipelines (duration max / number / frequency — the paper's
   Listing 1 tasks),
4. localizes tropical cyclones with the pre-trained CNN and a
   deterministic tracker,
5. validates results, stores them as NetCDF-like files and renders
   maps (Figure 4),

all orchestrated as dependent tasks so analytics overlap the running
simulation.  :mod:`repro.workflow.tosca` carries the TOSCA topology
used to deploy the application through the HPCWaaS stack (Figure 2).
"""

from repro.workflow.config import WorkflowParams
from repro.workflow.extreme_events import run_extreme_events_workflow
from repro.workflow.distributed import run_distributed_extreme_events
from repro.workflow.tosca import CASE_STUDY_TOSCA, build_case_study_services

__all__ = [
    "WorkflowParams",
    "run_extreme_events_workflow",
    "run_distributed_extreme_events",
    "CASE_STUDY_TOSCA",
    "build_case_study_services",
]
