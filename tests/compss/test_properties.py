"""Property-based tests: dependency-order correctness on random DAGs.

The core guarantee of the COMPSs runtime: whatever the DAG shape and
worker count, every task executes after all tasks it depends on.  We
generate random DAGs, express them as chained futures, record actual
execution order, and verify topological consistency and result
correctness against a sequential oracle.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compss import COMPSs, compss_wait_on, task


@st.composite
def random_dags(draw):
    """A DAG as {node: sorted list of predecessor nodes < node}."""
    n = draw(st.integers(min_value=1, max_value=14))
    edges = {}
    for node in range(n):
        if node == 0:
            edges[node] = []
            continue
        k = draw(st.integers(min_value=0, max_value=min(3, node)))
        preds = draw(
            st.lists(st.integers(0, node - 1), min_size=k, max_size=k, unique=True)
        )
        edges[node] = sorted(preds)
    return edges


def oracle(edges):
    """Sequential evaluation of the same computation."""
    values = {}
    for node in sorted(edges):
        values[node] = node + sum(values[p] for p in edges[node])
    return values


class TestRandomDAGs:
    @given(random_dags(), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_execution_respects_topological_order(self, edges, n_workers):
        order = []
        lock = threading.Lock()

        @task(returns=1)
        def node_task(node, *pred_values):
            with lock:
                order.append(node)
            return node + sum(pred_values)

        with COMPSs(n_workers=n_workers) as rt:
            futures = {}
            for node in sorted(edges):
                futures[node] = node_task(
                    node, *[futures[p] for p in edges[node]]
                )
            results = {n: compss_wait_on(f) for n, f in futures.items()}
            assert rt.graph.is_dag()

        # Every node ran exactly once, after all its predecessors.
        assert sorted(order) == sorted(edges)
        position = {node: i for i, node in enumerate(order)}
        for node, preds in edges.items():
            for p in preds:
                assert position[p] < position[node], (
                    f"{p} must precede {node}: order={order}"
                )
        assert results == oracle(edges)

    @given(random_dags())
    @settings(max_examples=15, deadline=None)
    def test_graph_census_matches_dag(self, edges):
        @task(returns=1)
        def node_task(node, *pred_values):
            return node + sum(pred_values)

        with COMPSs(n_workers=3) as rt:
            futures = {}
            for node in sorted(edges):
                futures[node] = node_task(node, *[futures[p] for p in edges[node]])
            compss_wait_on(list(futures.values()))
            assert len(rt.graph) == len(edges)
            n_edges = sum(len(p) for p in edges.values())
            assert len(rt.graph.edges()) == n_edges
            assert rt.graph.counts_by_state().get("COMPLETED") == len(edges)

    @given(st.integers(1, 20), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_linear_chain_is_strictly_sequential(self, length, n_workers):
        order = []
        lock = threading.Lock()

        @task(returns=1)
        def step(i, prev):
            with lock:
                order.append(i)
            return i

        with COMPSs(n_workers=n_workers):
            prev = None
            for i in range(length):
                prev = step(i, prev)
            assert compss_wait_on(prev) == length - 1
        assert order == list(range(length))

    @given(st.integers(2, 24))
    @settings(max_examples=10, deadline=None)
    def test_wide_fanout_joins_correctly(self, width):
        @task(returns=1)
        def leaf(i):
            return i * i

        @task(returns=1)
        def join(values):
            return sum(values)

        with COMPSs(n_workers=4):
            total = join([leaf(i) for i in range(width)])
            assert compss_wait_on(total) == sum(i * i for i in range(width))
