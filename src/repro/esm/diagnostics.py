"""Online diagnostics computed during the model run (the paper's §3).

"In some cases, a part of the analysis is already performed online
during model simulations with the goal of pre-computing some relevant
statistics or simple indicators useful for validating the results
(e.g., diagnostics)."  The recorder consumes each daily dataset as the
model produces it and accumulates lightweight indicators:

* area-weighted global-mean surface temperature,
* top-of-atmosphere energy imbalance (FSNT - FLNT),
* global minimum sea-level pressure (storm activity proxy),
* total precipitation,
* sea-ice area fraction,

plus simple physical validation (finite fields, TMAX ≥ TMIN, pressure
within plausible bounds).  The record is JSON-serialisable so it can be
stored next to the run as the paper's validation artefact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.esm.grid import Grid
from repro.netcdf import Dataset


class DiagnosticsError(ValueError):
    """A daily state violated a physical sanity bound."""


@dataclass
class DiagnosticsRecorder:
    """Accumulates per-day global indicators for one run."""

    grid: Grid
    validate: bool = True

    days: List[int] = field(default_factory=list)
    global_mean_t: List[float] = field(default_factory=list)
    toa_imbalance: List[float] = field(default_factory=list)
    min_psl: List[float] = field(default_factory=list)
    total_precip: List[float] = field(default_factory=list)
    ice_fraction: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        weights = self.grid.cell_area_km2
        self._weights = weights / weights.sum()

    def _wmean(self, field2d: np.ndarray) -> float:
        return float((field2d * self._weights).sum())

    def record_day(self, doy: int, ds: Dataset) -> None:
        """Consume one daily dataset (called from the model loop)."""
        t2m = ds["TREFHT"].data.mean(axis=0)
        psl = ds["PSL"].data
        fsnt = ds["FSNT"].data.mean(axis=0)
        flnt = ds["FLNT"].data.mean(axis=0)
        prec = ds["PRECT"].data.mean(axis=0)
        ice = ds["ICEFRAC"].data.mean(axis=0)

        if self.validate:
            self._validate(doy, ds)

        self.days.append(int(doy))
        self.global_mean_t.append(self._wmean(t2m))
        self.toa_imbalance.append(self._wmean(fsnt - flnt))
        self.min_psl.append(float(psl.min()))
        self.total_precip.append(self._wmean(prec))
        self.ice_fraction.append(self._wmean(ice))

    def _validate(self, doy: int, ds: Dataset) -> None:
        for name in ("TREFHT", "PSL", "PRECT", "TREFHTMX", "TREFHTMN"):
            if not np.all(np.isfinite(ds[name].data)):
                raise DiagnosticsError(f"day {doy}: non-finite {name}")
        if np.any(ds["TREFHTMX"].data < ds["TREFHTMN"].data):
            raise DiagnosticsError(f"day {doy}: TMAX < TMIN")
        psl = ds["PSL"].data
        if psl.min() < 850.0 or psl.max() > 1100.0:
            raise DiagnosticsError(
                f"day {doy}: PSL outside [850, 1100] hPa "
                f"([{psl.min():.1f}, {psl.max():.1f}])"
            )
        t = ds["TREFHT"].data
        if t.min() < 160.0 or t.max() > 340.0:
            raise DiagnosticsError(
                f"day {doy}: TREFHT outside [160, 340] K"
            )
        prec = ds["PRECT"].data
        if prec.min() < 0.0:
            raise DiagnosticsError(f"day {doy}: negative precipitation")

    # -- summary -----------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Run-level aggregates of the daily indicators."""
        if not self.days:
            raise DiagnosticsError("no days recorded")
        return {
            "n_days": len(self.days),
            "mean_global_t_k": float(np.mean(self.global_mean_t)),
            "trend_global_t_k_per_day": float(
                np.polyfit(self.days, self.global_mean_t, 1)[0]
            ) if len(self.days) > 1 else 0.0,
            "mean_toa_imbalance_wm2": float(np.mean(self.toa_imbalance)),
            "deepest_low_hpa": float(np.min(self.min_psl)),
            "mean_precip": float(np.mean(self.total_precip)),
            "mean_ice_fraction": float(np.mean(self.ice_fraction)),
        }

    def to_json(self) -> bytes:
        payload = {
            "days": self.days,
            "global_mean_t": self.global_mean_t,
            "toa_imbalance": self.toa_imbalance,
            "min_psl": self.min_psl,
            "total_precip": self.total_precip,
            "ice_fraction": self.ice_fraction,
            "summary": self.summary(),
        }
        return json.dumps(payload, indent=1).encode("utf-8")
