"""The Alien4Cloud-like developer interface.

The paper's development path: a workflow developer describes the
application topology (extended TOSCA), sets application parameters and
the HPC endpoint, deploys through Yorc, and publishes the deployed
workflow to the Execution API.  This facade exposes exactly those
verbs, minus the GUI.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.cluster.cluster import Cluster
from repro.hpcwaas.registry import Entrypoint, WorkflowRecord, WorkflowRegistry
from repro.hpcwaas.tosca import Topology, topology_from_yaml
from repro.hpcwaas.yorc import Deployment, YorcOrchestrator


class Alien4Cloud:
    """Topology catalogue + deployment driver + publication."""

    def __init__(
        self,
        orchestrator: Optional[YorcOrchestrator] = None,
        registry: Optional[WorkflowRegistry] = None,
    ) -> None:
        self.orchestrator = orchestrator or YorcOrchestrator()
        self.registry = registry or WorkflowRegistry()
        self._topologies: Dict[str, Topology] = {}
        self._parameters: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()

    # -- development interface ------------------------------------------------

    def upload_topology(self, topology: Topology | str) -> Topology:
        """Register a topology (object or TOSCA YAML text)."""
        if isinstance(topology, str):
            topology = topology_from_yaml(topology)
        with self._lock:
            if topology.name in self._topologies:
                raise ValueError(f"topology {topology.name!r} already uploaded")
            self._topologies[topology.name] = topology
        return topology

    def get_topology(self, name: str) -> Topology:
        with self._lock:
            try:
                return self._topologies[name]
            except KeyError:
                raise KeyError(f"unknown topology {name!r}") from None

    def set_parameters(self, topology_name: str, **params: Any) -> None:
        """Set application parameters (merged into workflow defaults)."""
        self.get_topology(topology_name)  # existence check
        with self._lock:
            self._parameters.setdefault(topology_name, {}).update(params)

    def parameters(self, topology_name: str) -> Dict[str, Any]:
        with self._lock:
            return dict(self._parameters.get(topology_name, {}))

    # -- deployment -----------------------------------------------------------

    def deploy(self, topology_name: str, cluster: Cluster) -> Deployment:
        """Provision the topology's environment on *cluster* via Yorc."""
        topology = self.get_topology(topology_name)
        return self.orchestrator.deploy(topology, cluster)

    def undeploy(self, deployment: Deployment) -> None:
        self.orchestrator.undeploy(deployment)

    # -- publication -----------------------------------------------------------

    def publish_workflow(
        self,
        workflow_id: str,
        deployment: Deployment,
        entrypoint: Entrypoint,
        description: str = "",
    ) -> WorkflowRecord:
        """Expose a deployed workflow through the Execution API.

        Defaults merge the topology inputs, the deployment's PyCOMPSs
        application arguments, and any parameters set on the topology —
        later sources win.
        """
        defaults: Dict[str, Any] = {}
        for key, value in deployment.topology.inputs.items():
            defaults[key] = value.get("default") if isinstance(value, dict) else value
        app = deployment.provisioned.get(
            deployment.application.name if deployment.application else "", {}
        )
        defaults.update(app.get("defaults", {}))
        defaults.update(self.parameters(deployment.topology.name))

        record = WorkflowRecord(
            workflow_id=workflow_id,
            deployment=deployment,
            entrypoint=entrypoint,
            description=description,
            default_params=defaults,
        )
        self.registry.register(record)
        return record
