"""Batch-layer resilience: infinite-pend rejection, node death, requeue."""

import threading
import time

import pytest

from repro.cluster import JobState, LSFScheduler, Node
from repro.observability.metrics import get_registry


@pytest.fixture
def sched():
    s = LSFScheduler([Node("n1", 4, 16.0), Node("n2", 4, 16.0)])
    yield s
    s.shutdown(wait=False)


def wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestInfinitePendRegression:
    """A job no single node can host must fail at submit, not PEND forever."""

    def test_cross_dimension_unsatisfiable_rejected(self):
        # Each dimension is individually satisfiable (8 cores on one
        # node, 64 GB on the other) but no node offers both; this shape
        # used to pend forever and wedge wait_all()/shutdown(wait=True).
        sched = LSFScheduler([Node("fat-cpu", 8, 4.0), Node("fat-mem", 2, 64.0)])
        try:
            with pytest.raises(ValueError, match="pend forever"):
                sched.bsub(lambda: None, name="wedge", cores=8, memory_gb=64.0)
            assert sched.bjobs() == []  # nothing was enqueued
            # The scheduler stays usable for satisfiable work.
            job = sched.bsub(lambda: 11, name="ok", cores=2, memory_gb=4.0)
            assert job.wait(timeout=5) == 11
            sched.wait_all(timeout=5)  # returns: no ghost job wedges it
        finally:
            sched.shutdown(wait=False)

    def test_error_names_the_largest_node(self):
        sched = LSFScheduler([Node("n1", 4, 16.0)])
        try:
            with pytest.raises(ValueError, match="cores=4"):
                sched.bsub(lambda: None, cores=4, memory_gb=32.0)
        finally:
            sched.shutdown(wait=False)


class TestNodeDeathRecovery:
    def test_kill_node_requeues_job_onto_survivor(self, sched):
        executions = []
        proceed = threading.Event()

        def body():
            executions.append(1)
            proceed.wait(timeout=5)
            return "survived"

        before = get_registry().snapshot()
        job = sched.bsub(body, name="victim", cores=1)
        assert wait_for(lambda: job.state is JobState.RUN)
        dead = job.node_name
        flagged = sched.kill_node(dead)
        assert job in flagged
        proceed.set()  # let the doomed execution unwind
        assert job.wait(timeout=5) == "survived"
        assert job.state is JobState.DONE
        assert job.requeues == 1
        assert job.node_name != dead  # placed on the surviving node
        assert len(executions) == 2   # first outcome was discarded
        delta = get_registry().snapshot().delta(before)
        assert delta.value("lsf_node_crashes_total") == 1
        assert delta.value("lsf_jobs_requeued_total") == 1

    def test_restore_node_rejoins_pool(self, sched):
        sched.kill_node("n1")
        sched.restore_node("n1")
        jobs = [sched.bsub(lambda: 1, cores=4) for _ in range(2)]
        sched.wait_all(timeout=5)  # needs both nodes: each job wants 4 cores
        assert {j.state for j in jobs} == {JobState.DONE}

    def test_requeue_running_brequeue_analogue(self, sched):
        executions = []
        gate = threading.Event()

        def body():
            executions.append(1)
            if len(executions) == 1:
                gate.wait(timeout=5)
            return len(executions)

        job = sched.bsub(body, name="requeued")
        assert wait_for(lambda: job.state is JobState.RUN)
        assert sched.requeue_running(job.job_id)
        gate.set()
        assert job.wait(timeout=5) == 2
        assert job.requeues == 1

    def test_requeue_budget_exhausted_reports_exit(self, sched):
        executions = []
        started = threading.Event()
        gate = threading.Event()

        def body():
            executions.append(1)
            started.set()
            gate.wait(timeout=5)
            gate.clear()
            raise RuntimeError("died with the node")

        job = sched.bsub(body, name="doomed", max_requeues=1)
        for _ in range(2):  # initial execution + the single allowed requeue
            assert started.wait(timeout=5)
            started.clear()
            assert wait_for(lambda: job.state is JobState.RUN)
            sched.requeue_running(job.job_id)
            gate.set()
        with pytest.raises(Exception):
            job.wait(timeout=5)
        assert job.state is JobState.EXIT
        assert job.requeues == 1
        assert len(executions) == 2

    def test_kill_unknown_node_raises(self, sched):
        with pytest.raises(KeyError):
            sched.kill_node("nope")
        with pytest.raises(KeyError):
            sched.restore_node("nope")
