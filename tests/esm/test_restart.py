"""Restart-file tests: bit-identical resumption of an interrupted run."""

import numpy as np
import pytest

from repro.cluster import SharedFilesystem
from repro.esm import CMCCCM3, ModelConfig, RestartState


def config(**kw):
    defaults = dict(n_lat=16, n_lon=24, seed=13)
    defaults.update(kw)
    return ModelConfig(**defaults)


class TestRestartResume:
    def test_resume_is_bit_identical(self):
        """run(1..10) == run(1..5) + resume(6..10), field by field."""
        full = [ds for _, ds in CMCCCM3(config()).iter_year(2030, n_days=10)]

        model = CMCCCM3(config())
        state = {}
        first = [ds for _, ds in model.iter_year(2030, n_days=5,
                                                 state_out=state)]
        restart = RestartState(**state)
        assert restart.next_doy == 6

        resumed_model = CMCCCM3(config())
        resumed = [
            ds for _, ds in resumed_model.iter_year(
                2030, n_days=10, restart=restart
            )
        ]
        assert len(first) + len(resumed) == len(full)
        for ref, got in zip(full[5:], resumed):
            for name in ("TREFHT", "TREFHTMX", "PSL", "SST", "VORT850"):
                np.testing.assert_array_equal(
                    ref[name].data, got[name].data, err_msg=name
                )

    def test_resumed_days_numbering(self):
        model = CMCCCM3(config())
        state = {}
        list(model.iter_year(2030, n_days=3, state_out=state))
        days = [d for d, _ in CMCCCM3(config()).iter_year(
            2030, n_days=6, restart=RestartState(**state)
        )]
        assert days == [4, 5, 6]

    def test_wrong_year_rejected(self):
        model = CMCCCM3(config())
        state = {}
        list(model.iter_year(2030, n_days=2, state_out=state))
        restart = RestartState(**state)
        with pytest.raises(ValueError):
            list(CMCCCM3(config()).iter_year(2031, n_days=4, restart=restart))


class TestRestartFiles:
    def test_save_load_roundtrip(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        model = CMCCCM3(config())
        state = {}
        list(model.iter_year(2030, n_days=4, state_out=state))
        path = model.save_restart(fs, state)
        assert path == "restarts/restart_2030_005.rnc"

        loaded = CMCCCM3.load_restart(fs, path)
        np.testing.assert_array_equal(loaded.noise, state["noise"])
        np.testing.assert_array_equal(loaded.sst, state["sst"])
        assert loaded.next_doy == 5
        assert loaded.rng_state == state["rng_state"]

    def test_resume_from_file_matches_uninterrupted(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        full = [ds for _, ds in CMCCCM3(config()).iter_year(2030, n_days=8)]

        model = CMCCCM3(config())
        state = {}
        list(model.iter_year(2030, n_days=4, state_out=state))
        path = model.save_restart(fs, state)

        loaded = CMCCCM3.load_restart(fs, path)
        resumed = [
            ds for _, ds in CMCCCM3(config()).iter_year(
                2030, n_days=8, restart=loaded
            )
        ]
        np.testing.assert_array_equal(
            full[7]["TREFHT"].data, resumed[-1]["TREFHT"].data
        )

    def test_run_year_writes_periodic_restarts(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        model = CMCCCM3(config())
        model.run_year(2030, fs, n_days=9, restart_every=3)
        restarts = fs.glob("restarts", "restart_2030_*.rnc")
        # Saved while day K is being written, so the state resumes at K
        # (the file label is the resume day).
        assert restarts == [
            "restarts/restart_2030_003.rnc", "restarts/restart_2030_006.rnc"
        ]

    def test_run_year_resume_skips_completed_days(self, tmp_path):
        """A 'crashed' partial run resumes from the newest restart and the
        final trajectory matches an uninterrupted reference run."""
        ref_fs = SharedFilesystem(tmp_path / "ref")
        CMCCCM3(config()).run_year(2030, ref_fs, n_days=8)

        fs = SharedFilesystem(tmp_path / "crash")
        # Partial run: 5 days with a restart at day 3.
        CMCCCM3(config()).run_year(2030, fs, n_days=5, restart_every=3)
        writes_before = fs.stats.writes
        # Resume to 8 days: integration restarts at doy 4 (the restart),
        # not at doy 1.
        CMCCCM3(config()).run_year(2030, fs, n_days=8, resume=True)
        resumed_days = fs.stats.writes - writes_before
        assert resumed_days <= 8  # 5 days (4..8) + truth + slack, not 10+

        ref = ref_fs.read("esm_output/cmcc_cm3_2030_008.rnc")
        got = fs.read("esm_output/cmcc_cm3_2030_008.rnc")
        np.testing.assert_array_equal(ref["TREFHT"].data, got["TREFHT"].data)

    def test_resume_without_restarts_is_cold_start(self, tmp_path):
        fs = SharedFilesystem(tmp_path)
        model = CMCCCM3(config())
        truth = model.run_year(2030, fs, n_days=3, resume=True)
        assert len(fs.glob("esm_output", "cmcc_cm3_*.rnc")) == 3
        assert set(truth) == {"heat_waves", "cold_waves", "tropical_cyclones"}

    def test_non_restart_file_rejected(self, tmp_path):
        from repro.netcdf import Dataset

        fs = SharedFilesystem(tmp_path)
        ds = Dataset({"content": "other"})
        fs.write("x.rnc", ds)
        with pytest.raises(ValueError):
            CMCCCM3.load_restart(fs, "x.rnc")
