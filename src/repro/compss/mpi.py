"""The ``@mpi`` task decorator and an in-process mini-MPI.

§4.2.1 of the paper: PyCOMPSs tasks can "integrate with other
programming paradigms including other decorators (such as @mpi)" — a
task may itself be an MPI program spanning several processes.  Without
``mpirun`` offline, this module provides a faithful in-process stand-in:

* :class:`MiniComm` — a communicator over *threads* with the core MPI
  collective semantics (``barrier``, ``bcast``, ``scatter``, ``gather``,
  ``allgather``, ``reduce``, ``allreduce``, ``send``/``recv``
  point-to-point);
* :func:`mpi` — a decorator that launches the wrapped function once per
  rank, passing the communicator as the first argument, and returns the
  list of per-rank return values (or only the root's, matching common
  ``@mpi`` usage).

Composes with ``@task``: apply ``@task`` *above* ``@mpi`` so the whole
MPI execution becomes one workflow task::

    @task(returns=1)
    @mpi(processes=4)
    def parallel_stats(comm, data):
        chunk = comm.scatter([...], root=0)
        ...
        return comm.reduce(partial, op="sum", root=0)
"""

from __future__ import annotations

import functools
import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

_REDUCERS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
}


class MPIError(RuntimeError):
    """Collective misuse (bad rank, unknown op) or a failed rank."""


class _Shared:
    """State shared by all ranks of one execution."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: List[Any] = [None] * size
        self.lock = threading.Lock()
        # Point-to-point mailboxes: (src, dst, tag) -> queue.
        self.mailboxes: Dict[tuple, queue.Queue] = {}

    def mailbox(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self.lock:
            box = self.mailboxes.get(key)
            if box is None:
                box = self.mailboxes[key] = queue.Queue()
            return box


class MiniComm:
    """One rank's view of the communicator."""

    def __init__(self, rank: int, shared: _Shared) -> None:
        self._rank = rank
        self._shared = shared

    # -- introspection (MPI-style names) ---------------------------------

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._shared.size

    rank = property(Get_rank)
    size = property(Get_size)

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self._shared.size:
            raise MPIError(f"root {root} outside communicator of size {self._shared.size}")

    # -- collectives -----------------------------------------------------

    def barrier(self, timeout: float = 30.0) -> None:
        try:
            self._shared.barrier.wait(timeout)
        except threading.BrokenBarrierError as exc:
            raise MPIError("barrier broken (a rank failed or timed out)") from exc

    def bcast(self, value: Any = None, root: int = 0) -> Any:
        """Root's value is returned on every rank."""
        self._check_root(root)
        if self._rank == root:
            self._shared.slots[root] = value
        self.barrier()
        out = self._shared.slots[root]
        self.barrier()  # nobody reuses slots before all have read
        return out

    def scatter(self, values: Optional[Sequence[Any]] = None, root: int = 0) -> Any:
        """Rank i receives ``values[i]`` from the root."""
        self._check_root(root)
        if self._rank == root:
            if values is None or len(values) != self._shared.size:
                self._shared.slots[root] = MPIError(
                    f"scatter needs exactly {self._shared.size} values"
                )
            else:
                self._shared.slots[root] = list(values)
        self.barrier()
        payload = self._shared.slots[root]
        self.barrier()
        if isinstance(payload, MPIError):
            raise payload
        return payload[self._rank]

    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        """Root receives ``[rank0, rank1, ...]``; others get ``None``."""
        self._check_root(root)
        self._shared.slots[self._rank] = value
        self.barrier()
        out = list(self._shared.slots) if self._rank == root else None
        self.barrier()
        return out

    def allgather(self, value: Any) -> List[Any]:
        self._shared.slots[self._rank] = value
        self.barrier()
        out = list(self._shared.slots)
        self.barrier()
        return out

    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Optional[Any]:
        gathered = self.gather(value, root=root)
        if gathered is None:
            return None
        return self._fold(gathered, op)

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        return self._fold(self.allgather(value), op)

    @staticmethod
    def _fold(values: List[Any], op: str) -> Any:
        reducer = _REDUCERS.get(op)
        if reducer is None:
            raise MPIError(f"unknown reduce op {op!r}; expected {sorted(_REDUCERS)}")
        acc = values[0]
        for value in values[1:]:
            acc = reducer(acc, value)
        return acc

    # -- point-to-point ----------------------------------------------------

    def send(self, value: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self._shared.size:
            raise MPIError(f"dest {dest} outside communicator")
        self._shared.mailbox(self._rank, dest, tag).put(value)

    def recv(self, source: int, tag: int = 0, timeout: float = 30.0) -> Any:
        if not 0 <= source < self._shared.size:
            raise MPIError(f"source {source} outside communicator")
        try:
            return self._shared.mailbox(source, self._rank, tag).get(timeout=timeout)
        except queue.Empty as exc:
            raise MPIError(
                f"recv from rank {source} (tag {tag}) timed out"
            ) from exc


def mpi(processes: int = 2, root_only: bool = False):
    """Run the decorated function once per rank on an in-process comm.

    The function receives the :class:`MiniComm` as its first argument.
    Returns the list of per-rank results, or only rank 0's when
    *root_only* (common when the root gathers the answer).

    Any rank raising breaks all pending barriers and re-raises the first
    failure, so a crashed rank cannot deadlock the execution.
    """
    if processes < 1:
        raise ValueError("processes must be >= 1")

    def decorator(fn):
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            shared = _Shared(processes)
            results: List[Any] = [None] * processes
            errors: List[BaseException] = []
            error_lock = threading.Lock()

            def body(rank: int) -> None:
                comm = MiniComm(rank, shared)
                try:
                    results[rank] = fn(comm, *args, **kwargs)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    with error_lock:
                        errors.append(exc)
                    shared.barrier.abort()  # unblock peers

            threads = [
                threading.Thread(target=body, args=(rank,),
                                 name=f"mpi-rank-{rank}", daemon=True)
                for rank in range(processes)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if errors:
                first = errors[0]
                if isinstance(first, MPIError):
                    raise first
                raise MPIError(f"rank failed: {first!r}") from first
            return results[0] if root_only else list(results)

        wrapper._compss_mpi_processes = processes
        return wrapper

    return decorator
