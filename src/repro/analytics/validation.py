"""Result validation: step 5 of the case-study workflow.

"As the processing ... progresses, the output of the analysis is then
validated and stored on disk."  Validation here means structural and
physical sanity checks on the index maps before they are persisted —
catching NaNs, negative counts, and impossible magnitudes at the point
of production instead of in downstream plots.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analytics.heatwaves import WaveIndices


class ValidationError(ValueError):
    """An index map failed its sanity checks."""


def validate_indices(
    indices: WaveIndices,
    n_days: int = 365,
    min_length_days: int = 6,
) -> Dict[str, float]:
    """Validate one year's wave-index maps; returns summary statistics.

    Checks
    ------
    * all maps share a shape and are finite;
    * ``0 <= duration_max <= n_days``; nonzero durations reach the
      qualifying minimum;
    * ``0 <= number <= n_days / min_length_days`` (can't fit more
      disjoint waves than that);
    * ``0 <= frequency <= 1`` and consistency: a cell with a wave has
      positive frequency and vice versa.
    """
    dm = np.asarray(indices.duration_max)
    num = np.asarray(indices.number)
    freq = np.asarray(indices.frequency)

    if not (dm.shape == num.shape == freq.shape):
        raise ValidationError(
            f"shape mismatch: {dm.shape} / {num.shape} / {freq.shape}"
        )
    for name, arr in (("duration_max", dm), ("number", num), ("frequency", freq)):
        if not np.all(np.isfinite(arr)):
            raise ValidationError(f"{name} contains non-finite values")

    if dm.min() < 0 or dm.max() > n_days:
        raise ValidationError(
            f"duration_max outside [0, {n_days}]: [{dm.min()}, {dm.max()}]"
        )
    nonzero = dm[dm > 0]
    if nonzero.size and nonzero.min() < min_length_days:
        raise ValidationError(
            f"found a qualifying wave shorter ({nonzero.min()}) than the "
            f"{min_length_days}-day minimum"
        )
    max_waves = n_days // min_length_days
    if num.min() < 0 or num.max() > max_waves:
        raise ValidationError(
            f"number outside [0, {max_waves}]: [{num.min()}, {num.max()}]"
        )
    if freq.min() < 0 or freq.max() > 1.0 + 1e-12:
        raise ValidationError(
            f"frequency outside [0, 1]: [{freq.min()}, {freq.max()}]"
        )
    if np.any((num > 0) != (freq > 0)):
        raise ValidationError("number/frequency inconsistency")
    if np.any((num > 0) != (dm > 0)):
        raise ValidationError("number/duration inconsistency")

    return {
        "cells_with_waves": float((num > 0).mean()),
        "max_duration_days": float(dm.max()),
        "max_number": float(num.max()),
        "mean_frequency": float(freq.mean()),
    }
