"""Simulated HPC infrastructure.

The paper's testbed is the Zeus supercomputer at CMCC: 348 nodes, 12,528
cores, IBM Spectrum LSF batch scheduling and a GPFS parallel filesystem.
This package provides a functional stand-in that exercises the same
control paths the eFlows4HPC stack depends on:

* :class:`Node` — a compute node with cores and memory, tracking
  allocations;
* :class:`SharedFilesystem` — a GPFS-like shared store backed by a real
  directory, with per-operation and per-byte counters (the measurement
  device behind the paper's data-movement claims);
* :class:`LSFScheduler` — an LSF-flavoured batch scheduler (``bsub`` /
  ``bjobs`` / ``bkill`` semantics) running jobs as Python callables on a
  worker pool constrained by node resources;
* :class:`Cluster` — the assembled machine, plus a ``zeus_like`` factory.
"""

from repro.cluster.node import Node, Allocation
from repro.cluster.filesystem import SharedFilesystem, FilesystemStats
from repro.cluster.lsf import (
    LSFScheduler,
    Job,
    JobState,
    Queue,
    ResourceRequest,
    DEFAULT_QUEUES,
)
from repro.cluster.cluster import Cluster, zeus_like, laptop_like

__all__ = [
    "Node",
    "Allocation",
    "SharedFilesystem",
    "FilesystemStats",
    "LSFScheduler",
    "Job",
    "JobState",
    "Queue",
    "ResourceRequest",
    "DEFAULT_QUEUES",
    "Cluster",
    "zeus_like",
    "laptop_like",
]
