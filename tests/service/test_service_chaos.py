"""Multi-tenant chaos: a node dies while packed runs are in flight.

The LSF simulator requeues the dead node's jobs onto survivors (the
in-flight execution's outcome is discarded, like a lost host under real
LSF); the service's waiter threads must ride through that transparently
so every tenant's job still reaches COMPLETED and nobody is starved.
"""

import threading
import time

import pytest

from repro.cluster import laptop_like
from repro.observability.metrics import (
    MetricsRegistry, get_registry, set_registry,
)
from repro.service import JobState, ServiceDB, WorkflowService

from tests.service.test_service import publish, wait_until


@pytest.fixture(autouse=True)
def _fresh_registry():
    old = get_registry()
    set_registry(MetricsRegistry())
    yield
    set_registry(old)


@pytest.fixture
def cluster(tmp_path):
    with laptop_like(scratch_root=str(tmp_path / "scratch")) as c:
        yield c


@pytest.fixture
def db(tmp_path):
    return ServiceDB(str(tmp_path / "runs.db"))


class TestNodeDeathDuringPackedRuns:
    def test_all_tenants_complete_after_node_death(self, cluster, db):
        db.add_tenant("alice")
        db.add_tenant("bob")
        release = threading.Event()
        attempts = []
        lock = threading.Lock()

        def entrypoint(c, p):
            with lock:
                attempts.append(p["tag"])
            release.wait(15)
            return p["tag"]

        api = publish(cluster, {"wf": entrypoint})
        with WorkflowService(db, api, cluster) as svc:
            jobs = [
                svc.submit(tenant, "wf", cores=2, tag=f"{tenant}-{i}")
                for tenant in ("alice", "bob")
                for i in range(2)
            ]
            # All four 2-core jobs pack onto the 8-core cluster at once.
            assert wait_until(lambda: len(attempts) == 4)
            assert cluster.scheduler.free_cores() == 0

            victims = cluster.scheduler.kill_node("local1")
            assert victims, "the dead node was hosting packed runs"
            release.set()
            # The victims' bodies unwind, get requeued onto local2, run
            # again (release is already set) and complete.
            svc.drain(timeout=30)

        for job in jobs:
            row = db.get_job(job.job_id)
            assert row.state is JobState.COMPLETED, row.to_json()
        # The dead node's jobs really did execute twice.
        assert len(attempts) == 4 + len(victims)
        snap = get_registry().snapshot()
        assert snap.value("lsf_node_crashes_total", node="local1") == 1
        assert snap.value("lsf_jobs_requeued_total") >= len(victims)
        # Every tenant got both results — nobody starved by the crash.
        report = WorkflowService(db, api, cluster).report()
        for tenant in ("alice", "bob"):
            assert report["tenants"][tenant]["by_state"] == {"COMPLETED": 2}

    def test_queue_keeps_draining_on_survivor(self, cluster, db):
        """Jobs queued behind the crash land on the surviving node."""
        db.add_tenant("alice")
        release = threading.Event()
        started = []
        lock = threading.Lock()

        def entrypoint(c, p):
            with lock:
                started.append(p["idx"])
            release.wait(15)
            return p["idx"]

        api = publish(cluster, {"wf": entrypoint})
        with WorkflowService(db, api, cluster) as svc:
            first = [svc.submit("alice", "wf", cores=4, idx=i) for i in (0, 1)]
            assert wait_until(lambda: len(started) == 2)
            queued = svc.submit("alice", "wf", cores=4, idx=2)
            cluster.scheduler.kill_node("local2")
            release.set()
            svc.drain(timeout=30)

        for job in first + [queued]:
            assert db.get_job(job.job_id).state is JobState.COMPLETED
        # Everything after the crash ran on the one remaining node.
        assert cluster.scheduler.total_up_cores() == 4

    def test_restored_node_takes_load_again(self, cluster, db):
        db.add_tenant("alice")
        api = publish(cluster, {"wf": lambda c, p: p["idx"]})
        cluster.scheduler.kill_node("local1")
        cluster.scheduler.restore_node("local1")
        with WorkflowService(db, api, cluster) as svc:
            jobs = [svc.submit("alice", "wf", cores=4, idx=i) for i in (0, 1)]
            svc.drain(timeout=30)
            for job in jobs:
                assert svc.status("alice", job.job_id) is JobState.COMPLETED
