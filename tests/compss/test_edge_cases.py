"""Edge-case tests for the runtime and its surroundings."""

import threading
import time

import pytest

from repro.compss import (
    COMPSs,
    Future,
    TaskFailedError,
    compss_stop,
    compss_wait_on,
    task,
)
from repro.compss.api import get_runtime


class TestContextManagerEdges:
    def test_exception_in_block_stops_runtime_without_drain_raise(self):
        @task(returns=1)
        def ok():
            return 1

        with pytest.raises(KeyboardInterrupt):
            with COMPSs(n_workers=1):
                ok()
                raise KeyboardInterrupt()
        assert get_runtime() is None  # cleaned up despite the exception

    def test_nested_context_rejected(self):
        with COMPSs(n_workers=1):
            with pytest.raises(RuntimeError):
                with COMPSs(n_workers=1):
                    pass
        assert get_runtime() is None

    def test_runtime_usable_after_failed_workflow(self):
        @task(returns=1)
        def boom():
            raise ValueError("x")

        @task(returns=1)
        def ok():
            return 7

        with pytest.raises(TaskFailedError):
            with COMPSs(n_workers=1):
                boom()
        # A fresh runtime starts cleanly afterwards.
        with COMPSs(n_workers=1):
            assert compss_wait_on(ok()) == 7


class TestFutureEdges:
    def test_wait_on_timeout(self):
        gate = threading.Event()

        @task(returns=1)
        def blocked():
            gate.wait(5)
            return 1

        with COMPSs(n_workers=1):
            fut = blocked()
            with pytest.raises(TimeoutError):
                compss_wait_on(fut, timeout=0.05)
            gate.set()
            assert compss_wait_on(fut) == 1

    def test_peek_unresolved_raises(self):
        fut = Future(producer_task_id=None)
        with pytest.raises(RuntimeError):
            fut.peek()

    def test_result_timeout(self):
        fut = Future(producer_task_id=None)
        with pytest.raises(TimeoutError):
            fut.result(timeout=0.01)

    def test_repeated_wait_on_same_future(self):
        @task(returns=1)
        def once():
            return 42

        with COMPSs(n_workers=1):
            fut = once()
            assert compss_wait_on(fut) == 42
            assert compss_wait_on(fut) == 42  # idempotent

    def test_barrier_timeout(self):
        gate = threading.Event()

        @task()
        def blocked():
            gate.wait(5)

        with COMPSs(n_workers=1) as rt:
            blocked()
            with pytest.raises(TimeoutError):
                rt.barrier(timeout=0.05)
            gate.set()


class TestArgumentEdges:
    def test_kwarg_futures_create_dependencies(self):
        order = []

        @task(returns=1)
        def produce():
            time.sleep(0.03)
            order.append("p")
            return 5

        @task(returns=1)
        def consume(*, value):
            order.append("c")
            return value + 1

        with COMPSs(n_workers=4):
            assert compss_wait_on(consume(value=produce())) == 6
        assert order == ["p", "c"]

    def test_same_future_passed_twice(self):
        @task(returns=1)
        def produce():
            return 3

        @task(returns=1)
        def add(a, b):
            return a + b

        with COMPSs(n_workers=2):
            fut = produce()
            assert compss_wait_on(add(fut, fut)) == 6

    def test_future_in_tuple_argument(self):
        @task(returns=1)
        def produce():
            return 2

        @task(returns=1)
        def total(pair):
            return pair[0] + pair[1]

        with COMPSs(n_workers=2):
            assert compss_wait_on(total((produce(), 10))) == 12

    def test_none_and_empty_arguments(self):
        @task(returns=1)
        def idly(a, b=None, c=()):
            return (a, b, tuple(c))

        with COMPSs(n_workers=1):
            assert compss_wait_on(idly(None)) == (None, None, ())
