"""An Ophidia-style High Performance Data Analytics framework.

Re-implements the datacube abstraction the paper's analytics run on
(Fiore et al. 2014; Elia et al. 2021): multi-dimensional scientific
arrays are partitioned into *fragments* distributed across in-memory
I/O servers, and operators (subset, reduce, apply, intercube, ...)
execute fragment-parallel on the server side.  The Python client mirrors
PyOphidia's ``cube.Cube`` API, including the ``oph_predicate``-style
primitive expressions used in the paper's Listing 1.

Datacubes stay resident in the I/O servers between operators — the
mechanism behind the paper's claim that baseline climatologies are
"loaded only once and used throughout the workflows ... reducing the
number of read operations from storage".  Storage read/write counters
make that claim measurable (experiment C2).
"""

from repro.ophidia.storage import IOServer, StoragePool, StorageStats
from repro.ophidia.primitives import (
    PrimitiveError,
    clear_primitive_cache,
    evaluate_primitive,
    parse_primitive,
    primitive_cache_info,
)
from repro.ophidia.server import OphidiaServer
from repro.ophidia.client import Client
from repro.ophidia.datacube import Cube, DimensionInfo

__all__ = [
    "IOServer",
    "StoragePool",
    "StorageStats",
    "evaluate_primitive",
    "parse_primitive",
    "primitive_cache_info",
    "clear_primitive_cache",
    "PrimitiveError",
    "OphidiaServer",
    "Client",
    "Cube",
    "DimensionInfo",
]
