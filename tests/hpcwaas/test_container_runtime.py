"""Tests for the simulated containerised execution runtime."""

import time

import pytest

from repro.hpcwaas import ContainerImageCreationService, ContainerRuntime


@pytest.fixture
def image():
    return ContainerImageCreationService().build("rt", ["numpy"])


class TestContainerRuntime:
    def test_cold_then_warm_per_node(self, image):
        rt = ContainerRuntime(image, cold_start_seconds=0.0, warm_start_seconds=0.0)
        assert rt.run(lambda x: x + 1, 1, node="a") == 2
        assert rt.run(lambda x: x + 1, 2, node="a") == 3
        assert rt.run(lambda x: x + 1, 3, node="b") == 4
        assert rt.cold_starts == 2   # nodes a and b
        assert rt.warm_starts == 1

    def test_cold_start_latency_paid_once(self, image):
        rt = ContainerRuntime(image, cold_start_seconds=0.1, warm_start_seconds=0.0)
        t0 = time.monotonic()
        rt.run(lambda: None, node="n")
        cold = time.monotonic() - t0
        t0 = time.monotonic()
        rt.run(lambda: None, node="n")
        warm = time.monotonic() - t0
        assert cold >= 0.09
        assert warm < 0.05

    def test_kwargs_passthrough(self, image):
        rt = ContainerRuntime(image, 0.0, 0.0)
        assert rt.run(lambda a, b=0: a + b, 1, b=4) == 5

    def test_exceptions_propagate(self, image):
        rt = ContainerRuntime(image, 0.0, 0.0)

        def boom():
            raise ValueError("inside the container")

        with pytest.raises(ValueError):
            rt.run(boom)
        # A failed run still warms the node (the image was pulled).
        assert rt.cold_starts == 1

    def test_negative_latency_rejected(self, image):
        with pytest.raises(ValueError):
            ContainerRuntime(image, cold_start_seconds=-1.0)
