"""The Container Image Creation service (Ejarque & Badia 2023).

"Automates the creation of the container images for workflows,
including the code as well as all the required software compiled for
the target HPC platform."  The simulation builds a content-addressed
image record from a build spec (base image, packages, target
architecture) and caches identical specs, reproducing the service's
observable behaviour: repeated deployments reuse images; different
target platforms produce different images.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ContainerImage:
    """A built image: name, digest, and the spec that produced it."""

    name: str
    digest: str
    base: str
    packages: Tuple[str, ...]
    target_platform: str
    build_seconds: float

    @property
    def reference(self) -> str:
        return f"{self.name}@sha256:{self.digest}"


class ContainerRuntime:
    """Simulated containerised execution (Singularity-style).

    The paper's §6/§7: "containers (e.g., Singularity) with the software
    required by the workflow ... can be exploited", with "the assessment
    of their impact on the climate simulation and processing
    performance" left as future work.  This runtime makes that impact
    measurable: the first execution on a node pays the image cold-start
    (pull + unpack), subsequent executions pay only the warm start.

    Parameters
    ----------
    image:
        The image to run.
    cold_start_seconds / warm_start_seconds:
        Emulated launch latencies (typical Singularity numbers are
        O(1 s) cold, O(10 ms) warm on a parallel filesystem).
    """

    def __init__(
        self,
        image: ContainerImage,
        cold_start_seconds: float = 0.3,
        warm_start_seconds: float = 0.01,
    ) -> None:
        if cold_start_seconds < 0 or warm_start_seconds < 0:
            raise ValueError("start latencies must be non-negative")
        self.image = image
        self.cold_start_seconds = cold_start_seconds
        self.warm_start_seconds = warm_start_seconds
        self._warm_nodes: set = set()
        self._lock = threading.Lock()
        self.cold_starts = 0
        self.warm_starts = 0

    def run(self, fn, *args, node: str = "node0", **kwargs):
        """Execute ``fn(*args, **kwargs)`` inside the container on *node*."""
        with self._lock:
            if node in self._warm_nodes:
                self.warm_starts += 1
                delay = self.warm_start_seconds
            else:
                self._warm_nodes.add(node)
                self.cold_starts += 1
                delay = self.cold_start_seconds
        if delay:
            time.sleep(delay)
        return fn(*args, **kwargs)


class ContainerImageCreationService:
    """Builds and caches container images for workflow deployments."""

    def __init__(self, simulate_build_seconds: float = 0.0) -> None:
        self.simulate_build_seconds = simulate_build_seconds
        self._images: Dict[str, ContainerImage] = {}
        self._builds = 0
        self._cache_hits = 0
        self._lock = threading.Lock()

    @staticmethod
    def _spec_digest(base: str, packages: Sequence[str], target_platform: str) -> str:
        spec = json.dumps(
            {"base": base, "packages": sorted(packages), "target": target_platform},
            sort_keys=True,
        )
        return hashlib.sha256(spec.encode()).hexdigest()[:24]

    def build(
        self,
        name: str,
        packages: Sequence[str],
        base: str = "python:3.11-slim",
        target_platform: str = "x86_64",
    ) -> ContainerImage:
        """Build (or reuse) the image for this spec."""
        if not name:
            raise ValueError("image name must be non-empty")
        digest = self._spec_digest(base, packages, target_platform)
        with self._lock:
            cached = self._images.get(digest)
            if cached is not None:
                self._cache_hits += 1
                return cached
        start = time.monotonic()
        if self.simulate_build_seconds:
            time.sleep(self.simulate_build_seconds)
        image = ContainerImage(
            name=name,
            digest=digest,
            base=base,
            packages=tuple(sorted(packages)),
            target_platform=target_platform,
            build_seconds=time.monotonic() - start,
        )
        with self._lock:
            self._images[digest] = image
            self._builds += 1
        return image

    def get(self, digest: str) -> Optional[ContainerImage]:
        with self._lock:
            return self._images.get(digest)

    @property
    def images(self) -> List[ContainerImage]:
        with self._lock:
            return list(self._images.values())

    @property
    def builds(self) -> int:
        with self._lock:
            return self._builds

    @property
    def cache_hits(self) -> int:
        with self._lock:
            return self._cache_hits
