"""A GPFS-like shared filesystem with I/O accounting.

Backed by a real directory so that the RNC files the simulated ESM writes
are genuine files the downstream analytics read back.  All access goes
through this object, which counts operations and bytes; experiment C2
("in-memory baseline reuse reduces storage reads") is measured with these
counters.
"""

from __future__ import annotations

import fnmatch
import itertools
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.netcdf import Dataset, read_dataset, write_dataset
from repro.netcdf.io import read_header
from repro.observability.metrics import get_registry
from repro.observability.spans import maybe_span

#: Distinguishes the series of multiple filesystem instances (compute
#: scratch vs analytics store) inside the one shared registry.
_fs_ids = itertools.count(0)


@dataclass
class FilesystemStats:
    """Cumulative operation counters for a shared filesystem.

    ``reads``/``bytes_read`` count *disk* traffic only; reads served
    from the block cache appear as ``cache_hits`` instead, so the C2
    "reuse reduces storage reads" comparison stays meaningful.
    ``metadata_ops`` tallies ``exists``/``size`` probes.
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    lists: int = 0
    deletes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    metadata_ops: int = 0

    def snapshot(self) -> "FilesystemStats":
        return FilesystemStats(
            self.reads, self.writes, self.bytes_read,
            self.bytes_written, self.lists, self.deletes,
            self.cache_hits, self.cache_misses, self.cache_evictions,
            self.metadata_ops,
        )

    def delta(self, earlier: "FilesystemStats") -> "FilesystemStats":
        """Counters accumulated since *earlier* (an older snapshot)."""
        return FilesystemStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
            self.lists - earlier.lists,
            self.deletes - earlier.deletes,
            self.cache_hits - earlier.cache_hits,
            self.cache_misses - earlier.cache_misses,
            self.cache_evictions - earlier.cache_evictions,
            self.metadata_ops - earlier.metadata_ops,
        )


class BlockCache:
    """Byte-budgeted LRU cache of shared-filesystem blocks.

    Two block granularities coexist: whole raw payloads (``read_bytes``)
    and individual dataset variables (``read``), so two dataset reads
    that share only *some* variables still reuse the overlap.  Stored
    values are pristine copies and hits hand out fresh arrays, so
    callers may mutate results freely.  A per-path metadata side table
    (dimensions, global attrs, and — once a full read has seen it — the
    complete variable order) lets a cached dataset be reassembled
    without touching disk.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 1:
            raise ValueError("budget_bytes must be >= 1 (0 means: no cache)")
        self.budget_bytes = int(budget_bytes)
        self._lock = threading.Lock()
        #: key → (value, nbytes); keys are ("var", path, name) or
        #: ("bytes", path), LRU-ordered oldest first.
        self._entries: "OrderedDict[Tuple, Tuple[Any, int]]" = OrderedDict()
        self._by_path: Dict[str, Set[Tuple]] = {}
        self._meta: Dict[str, Dict[str, Any]] = {}
        self._resident = 0

    def lookup(self, key: Tuple) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return entry[0]

    def store(self, key: Tuple, value: Any, nbytes: int) -> int:
        """Insert (or refresh) an entry; returns LRU evictions performed.

        A block larger than the whole budget is not cached — admitting
        it would flush every other entry for a single oversized one.
        """
        nbytes = int(nbytes)
        if nbytes > self.budget_bytes:
            return 0
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._resident -= old[1]
            self._entries[key] = (value, nbytes)
            self._by_path.setdefault(key[1], set()).add(key)
            self._resident += nbytes
            while self._resident > self.budget_bytes and self._entries:
                victim, (_, freed) = self._entries.popitem(last=False)
                self._resident -= freed
                keys = self._by_path.get(victim[1])
                if keys is not None:
                    keys.discard(victim)
                    if not keys:
                        self._by_path.pop(victim[1], None)
                        self._meta.pop(victim[1], None)
                evicted += 1
        return evicted

    def meta(self, path: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._meta.get(path)

    def set_meta(
        self,
        path: str,
        dimensions: Dict[str, int],
        attrs: Dict[str, Any],
        var_order: Optional[List[str]],
    ) -> None:
        """Record a path's header; a known ``var_order`` is never forgotten."""
        with self._lock:
            existing = self._meta.get(path)
            if var_order is None and existing is not None:
                var_order = existing.get("var_order")
            self._meta[path] = {
                "dimensions": dict(dimensions),
                "attrs": dict(attrs),
                "var_order": list(var_order) if var_order is not None else None,
            }

    def invalidate(self, path: str) -> None:
        """Drop every block and the metadata of *path* (write/delete)."""
        with self._lock:
            for key in self._by_path.pop(path, ()):
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self._resident -= entry[1]
            self._meta.pop(path, None)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class SharedFilesystem:
    """Shared parallel-filesystem facade over a root directory.

    Paths given to the API are *relative* to the filesystem root and use
    ``/`` separators, mirroring how workflow code addresses a scratch
    space (``output/year_2015/day_001.rnc``).
    """

    def __init__(self, root: str | os.PathLike, cache_bytes: int = 0) -> None:
        self.root = os.path.abspath(os.fspath(root))
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()
        #: Label value distinguishing this instance's registry series.
        self.fs_label = f"{os.path.basename(self.root) or 'fs'}-{next(_fs_ids)}"
        #: Optional chaos hook (``repro.faults``): an object whose
        #: ``before_op(op, path, fs=...)`` is consulted ahead of every
        #: data operation and may raise to simulate flaky storage.
        self.fault_injector = None
        #: Optional in-memory block cache in front of ``read``/
        #: ``read_bytes`` (the node-local page-cache analogue the reuse
        #: layer measures); ``cache_bytes=0`` disables it.
        self._cache: Optional[BlockCache] = None
        #: ``callback(rel_path)`` hooks fired after every successful
        #: write; file streams subscribe so consumers wake on the write
        #: event instead of rescanning the directory on a timer.
        self._write_listeners: List[Any] = []
        self._listeners_lock = threading.Lock()
        self.configure_cache(cache_bytes)

    def configure_cache(self, cache_bytes: int) -> None:
        """(Re)size the read block cache; ``0`` disables and drops it.

        Resizing always starts from an empty cache — simpler than
        partial eviction and exactly what workflow start-up (the only
        caller) needs.
        """
        if cache_bytes < 0:
            raise ValueError("cache_bytes must be >= 0")
        self._cache = BlockCache(cache_bytes) if cache_bytes else None

    @property
    def cache(self) -> Optional[BlockCache]:
        """The live block cache, or ``None`` when caching is off."""
        return self._cache

    # -- write events --------------------------------------------------------

    def add_write_listener(self, callback) -> None:
        """Register ``callback(rel_path)`` to fire after successful writes.

        Callbacks run on the writing thread, outside filesystem locks;
        they must be short and non-raising (exceptions are swallowed so
        a misbehaving subscriber cannot fail a write that already
        succeeded).
        """
        with self._listeners_lock:
            self._write_listeners.append(callback)

    def remove_write_listener(self, callback) -> None:
        """Unsubscribe a previously registered write listener (idempotent)."""
        with self._listeners_lock:
            try:
                self._write_listeners.remove(callback)
            except ValueError:
                pass

    def _notify_write(self, rel_path: str) -> None:
        with self._listeners_lock:
            listeners = list(self._write_listeners)
        for callback in listeners:
            try:
                callback(rel_path)
            except Exception:  # noqa: BLE001 - the write already succeeded
                pass

    # -- fault injection -----------------------------------------------------

    def _maybe_fault(self, op: str, rel_path: str) -> None:
        injector = self.fault_injector
        if injector is not None:
            injector.before_op(op, rel_path, fs=self.fs_label)

    # -- telemetry -----------------------------------------------------------

    def _count(
        self, op: str, nbytes_read: int = 0, nbytes_written: int = 0,
        seconds: Optional[float] = None,
    ) -> None:
        registry = get_registry()
        registry.counter(
            "fs_operations_total", "Shared-filesystem operations",
            labels=("fs", "op"),
        ).inc(fs=self.fs_label, op=op)
        if seconds is not None:
            registry.histogram(
                "fs_op_duration_seconds",
                "Latency of shared-filesystem data operations",
                labels=("fs", "op"),
            ).observe(seconds, fs=self.fs_label, op=op)
        if nbytes_read:
            registry.counter(
                "fs_bytes_read_total", "Bytes read from shared filesystems",
                labels=("fs",),
            ).inc(nbytes_read, fs=self.fs_label)
        if nbytes_written:
            registry.counter(
                "fs_bytes_written_total", "Bytes written to shared filesystems",
                labels=("fs",),
            ).inc(nbytes_written, fs=self.fs_label)

    def _record_cache(self, hit: bool, nbytes_served: int = 0,
                      evictions: int = 0) -> None:
        registry = get_registry()
        name = "fs_cache_hits_total" if hit else "fs_cache_misses_total"
        help_ = (
            "Reads fully served by the filesystem block cache" if hit
            else "Reads that had to touch disk despite the block cache"
        )
        registry.counter(name, help_, labels=("fs",)).inc(fs=self.fs_label)
        if nbytes_served:
            registry.counter(
                "fs_cache_bytes_served_total",
                "Bytes served from the filesystem block cache",
                labels=("fs",),
            ).inc(nbytes_served, fs=self.fs_label)
        if evictions:
            registry.counter(
                "fs_cache_evictions_total",
                "Block-cache entries evicted under the byte budget",
                labels=("fs",),
            ).inc(evictions, fs=self.fs_label)

    @property
    def stats(self) -> FilesystemStats:
        """This instance's counters, as a view over the shared registry.

        Historically the filesystem kept a private tally; the registry is
        now the single source of truth and this property derives the same
        dataclass from it, so ``fs.stats.snapshot()`` / ``.delta()``
        call sites keep working unchanged.
        """
        registry = get_registry()
        ops = registry.counter(
            "fs_operations_total", "Shared-filesystem operations",
            labels=("fs", "op"),
        )
        reads = sum(
            ops.value(fs=self.fs_label, op=op)
            for op in ("read", "read_header", "read_bytes")
        )
        writes = sum(
            ops.value(fs=self.fs_label, op=op) for op in ("write", "write_bytes")
        )
        metadata_ops = sum(
            ops.value(fs=self.fs_label, op=op) for op in ("exists", "size")
        )
        return FilesystemStats(
            reads=int(reads),
            writes=int(writes),
            bytes_read=int(registry.counter_value(
                "fs_bytes_read_total", fs=self.fs_label)),
            bytes_written=int(registry.counter_value(
                "fs_bytes_written_total", fs=self.fs_label)),
            lists=int(ops.value(fs=self.fs_label, op="list")),
            deletes=int(ops.value(fs=self.fs_label, op="delete")),
            cache_hits=int(registry.counter_value(
                "fs_cache_hits_total", fs=self.fs_label)),
            cache_misses=int(registry.counter_value(
                "fs_cache_misses_total", fs=self.fs_label)),
            cache_evictions=int(registry.counter_value(
                "fs_cache_evictions_total", fs=self.fs_label)),
            metadata_ops=int(metadata_ops),
        )

    # -- path handling -----------------------------------------------------

    def _resolve(self, rel_path: str) -> str:
        full = os.path.abspath(os.path.join(self.root, rel_path))
        if not full.startswith(self.root + os.sep) and full != self.root:
            raise ValueError(f"path {rel_path!r} escapes the filesystem root")
        return full

    def path(self, rel_path: str) -> str:
        """Absolute host path of *rel_path* (for passing to external code)."""
        return self._resolve(rel_path)

    # -- dataset I/O ---------------------------------------------------------

    def write(self, rel_path: str, dataset: Dataset) -> int:
        """Write an RNC dataset; returns bytes written."""
        full = self._resolve(rel_path)
        self._maybe_fault("write", rel_path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        t0 = time.monotonic()
        with maybe_span(f"fs.write:{rel_path}", layer="filesystem",
                        attrs={"fs": self.fs_label, "path": rel_path}) as h:
            nbytes = write_dataset(dataset, full)
            h.set_attr("nbytes", nbytes)
        if self._cache is not None:
            self._cache.invalidate(rel_path)
        self._count("write", nbytes_written=nbytes,
                    seconds=time.monotonic() - t0)
        self._notify_write(rel_path)
        return nbytes

    def read(self, rel_path: str, variables=None) -> Dataset:
        """Read an RNC dataset (optionally a variable subset).

        With the block cache enabled, variables already resident are
        served from memory and only the remainder touches disk; the
        fault hook still fires on every call (a cache on a crashed node
        is just as dead as its disks), and only actual disk traffic
        counts towards ``reads``/``bytes_read``.
        """
        full = self._resolve(rel_path)
        self._maybe_fault("read", rel_path)
        cache = self._cache
        t0 = time.monotonic()
        with maybe_span(f"fs.read:{rel_path}", layer="filesystem",
                        attrs={"fs": self.fs_label, "path": rel_path}) as h:
            if cache is None:
                ds = read_dataset(full, variables=variables)
                h.set_attr("nbytes", ds.nbytes)
                self._count("read", nbytes_read=ds.nbytes,
                            seconds=time.monotonic() - t0)
                return ds
            ds, disk_nbytes, served_nbytes, touched_disk, evictions = (
                self._read_through_cache(cache, full, rel_path, variables)
            )
            h.set_attr("nbytes", ds.nbytes)
            h.set_attr("cache", "miss" if touched_disk else "hit")
        elapsed = time.monotonic() - t0
        if touched_disk:
            self._count("read", nbytes_read=disk_nbytes, seconds=elapsed)
        else:
            self._count("read_cached", seconds=elapsed)
        self._record_cache(hit=not touched_disk, nbytes_served=served_nbytes,
                           evictions=evictions)
        return ds

    def _read_through_cache(
        self, cache: BlockCache, full: str, rel_path: str, variables
    ) -> "tuple[Dataset, int, int, bool, int]":
        """Assemble a dataset from cached variables plus a disk remainder.

        Returns ``(dataset, disk_nbytes, served_nbytes, touched_disk,
        evictions)``.
        """
        meta = cache.meta(rel_path)
        if variables is None:
            wanted = None if meta is None else meta.get("var_order")
        else:
            wanted = list(variables)
        if meta is None or wanted is None:
            # Unknown header (or unknown full variable order): one real
            # read primes the cache for everything that follows.
            ds = read_dataset(full, variables=variables)
            cache.set_meta(
                rel_path, dict(ds.dimensions), dict(ds.attrs),
                list(ds.variables) if variables is None else None,
            )
            evicted = 0
            for name, var in ds.variables.items():
                evicted += cache.store(("var", rel_path, name),
                                       var.copy(), var.nbytes)
            return ds, ds.nbytes, 0, True, evicted
        cached_vars: Dict[str, Any] = {}
        missing: List[str] = []
        for name in wanted:
            var = cache.lookup(("var", rel_path, name))
            if var is None:
                missing.append(name)
            else:
                cached_vars[name] = var
        disk = None
        evicted = 0
        if missing:
            disk = read_dataset(full, variables=missing)
            for name in missing:
                var = disk[name]
                evicted += cache.store(("var", rel_path, name),
                                       var.copy(), var.nbytes)
        out = Dataset(dict(meta["attrs"]))
        for dim, size in meta["dimensions"].items():
            out.create_dimension(dim, size)
        served = 0
        for name in wanted:
            if name in cached_vars:
                fresh = cached_vars[name].copy()
                served += fresh.nbytes
            else:
                fresh = disk[name]
            out.create_variable(name, fresh.data, fresh.dims, fresh.attrs)
        return (out, (disk.nbytes if disk is not None else 0), served,
                bool(missing), evicted)

    def read_header(self, rel_path: str) -> dict:
        """Read only the metadata header; counts as a (cheap) read."""
        full = self._resolve(rel_path)
        self._maybe_fault("read_header", rel_path)
        header = read_header(full)
        self._count("read_header")
        return header

    # -- raw bytes (checkpoints, logs, images) --------------------------------

    def write_bytes(self, rel_path: str, payload: bytes) -> int:
        full = self._resolve(rel_path)
        self._maybe_fault("write_bytes", rel_path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        t0 = time.monotonic()
        with maybe_span(f"fs.write:{rel_path}", layer="filesystem",
                        attrs={"fs": self.fs_label, "path": rel_path,
                               "nbytes": len(payload)}):
            with open(full, "wb") as fh:
                n = fh.write(payload)
        if self._cache is not None:
            self._cache.invalidate(rel_path)
        self._count("write_bytes", nbytes_written=n,
                    seconds=time.monotonic() - t0)
        self._notify_write(rel_path)
        return n

    def read_bytes(self, rel_path: str) -> bytes:
        full = self._resolve(rel_path)
        self._maybe_fault("read_bytes", rel_path)
        cache = self._cache
        if cache is not None:
            payload = cache.lookup(("bytes", rel_path))
            if payload is not None:
                with maybe_span(f"fs.read:{rel_path}", layer="filesystem",
                                attrs={"fs": self.fs_label, "path": rel_path,
                                       "nbytes": len(payload),
                                       "cache": "hit"}):
                    pass
                self._count("read_cached")
                self._record_cache(hit=True, nbytes_served=len(payload))
                return payload
        t0 = time.monotonic()
        with maybe_span(f"fs.read:{rel_path}", layer="filesystem",
                        attrs={"fs": self.fs_label, "path": rel_path}) as h:
            with open(full, "rb") as fh:
                payload = fh.read()
            h.set_attr("nbytes", len(payload))
        self._count("read_bytes", nbytes_read=len(payload),
                    seconds=time.monotonic() - t0)
        if cache is not None:
            evicted = cache.store(("bytes", rel_path), payload, len(payload))
            self._record_cache(hit=False, evictions=evicted)
        return payload

    # -- namespace ops ---------------------------------------------------------

    def exists(self, rel_path: str) -> bool:
        full = self._resolve(rel_path)
        self._maybe_fault("exists", rel_path)
        self._count("exists")
        return os.path.exists(full)

    def makedirs(self, rel_path: str) -> None:
        os.makedirs(self._resolve(rel_path), exist_ok=True)

    def listdir(self, rel_path: str = ".") -> List[str]:
        """Sorted directory listing; empty if the directory doesn't exist."""
        full = self._resolve(rel_path)
        self._count("list")
        if not os.path.isdir(full):
            return []
        return sorted(os.listdir(full))

    def glob(self, rel_dir: str, pattern: str) -> List[str]:
        """Sorted relative paths under *rel_dir* matching *pattern*."""
        entries = self.listdir(rel_dir)
        matched = fnmatch.filter(entries, pattern)
        prefix = "" if rel_dir in (".", "") else rel_dir.rstrip("/") + "/"
        return [prefix + name for name in matched]

    def delete(self, rel_path: str) -> None:
        full = self._resolve(rel_path)
        self._maybe_fault("delete", rel_path)
        os.remove(full)
        if self._cache is not None:
            self._cache.invalidate(rel_path)
        self._count("delete")

    def size(self, rel_path: str) -> int:
        full = self._resolve(rel_path)
        self._maybe_fault("size", rel_path)
        self._count("size")
        return os.path.getsize(full)
