"""C1 — streaming overlap: concurrent ESM + analytics beats sequential.

The paper's central scheduling claim (§5.1/§6): "tasks related to
climate indices computation and TC localization can start as soon as
enough data are available from the model and run concurrently with the
ESM simulation", reducing end-to-end time.

Both modes run the identical workload (4 years, paced simulation); the
sequential mode submits analytics only after the full simulation
finishes.  Shape: overlapped makespan < sequential makespan, and the
tracer shows nonzero ESM/analytics co-execution only in overlapped mode.
"""

from benchmarks.conftest import print_table
from repro.cluster import laptop_like
from repro.observability import snapshot_value
from repro.workflow import WorkflowParams, run_extreme_events_workflow


def run_mode(tmp_path, tc_model_path, sequential: bool):
    with laptop_like(scratch_root=str(tmp_path / f"seq{sequential}")) as cluster:
        params = WorkflowParams(
            years=[2030, 2031, 2032, 2033], n_days=15, n_lat=32, n_lon=48,
            n_workers=4, min_length_days=4, with_ml=True,
            tc_model_path=tc_model_path, tc_target_grid=(32, 48), seed=5,
            sequential=sequential,
            pace_seconds=0.03,     # ≈0.45 s of simulated production per year
        )
        return run_extreme_events_workflow(cluster, params)


def test_c1_overlap_beats_sequential(benchmark, tmp_path, tc_model_path,
                                     record_bench):
    sequential = run_mode(tmp_path, tc_model_path, sequential=True)
    overlapped = benchmark.pedantic(
        lambda: run_mode(tmp_path, tc_model_path, sequential=False),
        rounds=1, iterations=1,
    )

    # Headline numbers come from each run's exported metrics snapshot
    # (the telemetry registry delta), not ad-hoc summary fields.
    seq_span = snapshot_value(sequential["metrics"], "workflow_makespan_seconds")
    ovl_span = snapshot_value(overlapped["metrics"], "workflow_makespan_seconds")
    seq_overlap = snapshot_value(
        sequential["metrics"], "workflow_esm_analytics_overlap_seconds")
    ovl_overlap = snapshot_value(
        overlapped["metrics"], "workflow_esm_analytics_overlap_seconds")

    # The registry view must agree with the tracer-derived schedule.
    assert seq_span == sequential["schedule"]["makespan_s"]
    assert ovl_overlap == overlapped["schedule"]["esm_analytics_overlap_s"]

    # Shape: who wins — overlapped; by what mechanism — co-execution.
    assert ovl_span < seq_span
    assert ovl_overlap > 0.2
    assert seq_overlap < 0.05
    # Identical science either way.
    assert overlapped["years"][2030]["heat_waves"] == sequential["years"][2030]["heat_waves"]

    record_bench(
        "c1_overlap_makespan",
        makespan_s=ovl_span,
        overlap_s=ovl_overlap,
        speedup=seq_span / ovl_span,
        critical_path_s=overlapped.get("profile", {}).get(
            "critical_path_s", 0.0),
    )

    print_table(
        "C1: concurrent vs sequential execution (4 years, paced ESM)",
        ["mode", "makespan (s)", "ESM/analytics overlap (s)", "utilisation"],
        [
            ["sequential", f"{seq_span:.2f}", f"{seq_overlap:.2f}",
             f"{snapshot_value(sequential['metrics'], 'workflow_worker_utilisation'):.2f}"],
            ["overlapped", f"{ovl_span:.2f}", f"{ovl_overlap:.2f}",
             f"{snapshot_value(overlapped['metrics'], 'workflow_worker_utilisation'):.2f}"],
            ["speedup", f"{seq_span / ovl_span:.2f}x", "", ""],
        ],
    )
