"""Tests for the Markdown run-report generator."""

import json

import pytest

from repro.analytics import generate_report


def sample_summary(n_years=2, with_ml=True, with_federation=False):
    years = {}
    for i in range(n_years):
        year = 2030 + i
        data = {
            "heat_waves": {"cells_with_waves": 0.02 + 0.01 * i,
                           "max_duration_days": 10.0 + i,
                           "max_number": 1.0, "mean_frequency": 0.001},
            "cold_waves": {"cells_with_waves": 0.01,
                           "max_duration_days": 7.0,
                           "max_number": 1.0, "mean_frequency": 0.0005},
            "tc_deterministic": {
                "n_tracks": 3 + i,
                "skill": {"pod": 0.75, "far": 0.25, "n_truth": 4,
                          "mean_center_error_km": 250.0},
            },
        }
        if with_ml:
            data["tc_ml"] = {"n_detections": 40 + i}
        years[year] = data
    summary = {
        "params": {"years": list(years), "n_days": 60},
        "years": years,
        "task_graph": {"n_tasks": 33, "n_edges": 41},
        "schedule": {"makespan_s": 1.25, "esm_analytics_overlap_s": 0.4},
    }
    if with_federation:
        summary["federation"] = {
            "sites": ["cloud-sim", "hpc-sim"], "transfers": 2,
            "bytes_moved": 3_200_000,
        }
    return summary


class TestGenerateReport:
    def test_contains_all_sections(self):
        report = generate_report(sample_summary())
        assert report.startswith("# Climate extremes run report")
        assert "## Heat and cold waves" in report
        assert "## Tropical cyclones" in report
        assert "## Execution" in report
        assert "| 2030 |" in report and "| 2031 |" in report
        assert "Trend:" in report

    def test_single_year_no_trend(self):
        report = generate_report(sample_summary(n_years=1))
        assert "Trend:" not in report

    def test_without_ml_column_dash(self):
        report = generate_report(sample_summary(with_ml=False))
        assert "CNN detections" in report
        assert "| - |" in report

    def test_federation_section(self):
        report = generate_report(sample_summary(with_federation=True))
        assert "Federated over" in report
        assert "3.2 MB" in report

    def test_custom_title(self):
        report = generate_report(sample_summary(), title="Zeus run 42")
        assert report.startswith("# Zeus run 42")

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            generate_report({"years": {}})

    def test_json_roundtripped_keys(self):
        """JSON turns int year keys into strings; the report must cope."""
        summary = json.loads(json.dumps(sample_summary()))
        report = generate_report(summary)
        assert "| 2030 |" in report

    def test_real_workflow_summary(self, tmp_path):
        from repro.cluster import laptop_like
        from repro.workflow import WorkflowParams, run_extreme_events_workflow

        with laptop_like(scratch_root=str(tmp_path)) as cluster:
            summary = run_extreme_events_workflow(cluster, WorkflowParams(
                years=[2030], n_days=8, n_lat=16, n_lon=24,
                min_length_days=4, with_ml=False, seed=5,
            ))
        report = generate_report(summary)
        assert "## Heat and cold waves" in report
        assert "Makespan" in report


class TestReportCLI:
    def test_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "summary.json"
        path.write_text(json.dumps(sample_summary()))
        assert main(["report", str(path), "--title", "CLI report"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# CLI report")
        assert "## Tropical cyclones" in out
