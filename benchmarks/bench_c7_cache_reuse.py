"""C7 — the data-reuse layer cuts bytes moved, science unchanged.

§5.3: the runtime keeps task results "in memory and moved to other
nodes as the workflow progresses"; repeated consumption of a
predecessor's output on the same worker must not re-transfer it, and
repeated daily-file reads (TC preprocessing and tracking both scan the
same files) must not re-hit the shared filesystem.

Two runs of the identical multi-year ML workflow: caches on (workflow
defaults) vs caches off.  Shape: strictly fewer runtime transfer bytes
and strictly fewer shared-filesystem disk bytes with the caches on, a
non-zero bytes-saved counter, and byte-identical science artifacts.
"""

from benchmarks.conftest import print_table
from repro.cluster import laptop_like
from repro.observability import snapshot_value
from repro.workflow import WorkflowParams, run_extreme_events_workflow
from repro.workflow.provenance import science_digests

YEARS = [2030, 2031, 2032]


def run_mode(tmp_path, tc_model_path, cached: bool):
    label = "cache_on" if cached else "cache_off"
    overrides = {} if cached else {"worker_cache_bytes": 0, "fs_cache_bytes": 0}
    # Hold the Ophidia execution mode fixed (eager) in both runs: lazy
    # fusion speeds up analytics tasks enough to shift COMPSs placement
    # races, and this benchmark isolates the *reuse* layer.  The lazy
    # path has its own benchmark (C8).
    overrides["ophidia_lazy"] = False
    with laptop_like(scratch_root=str(tmp_path / label)) as cluster:
        params = WorkflowParams(
            years=YEARS, n_days=12, n_lat=16, n_lon=24, n_workers=4,
            min_length_days=4, seed=5, tc_model_path=tc_model_path,
            tc_target_grid=(16, 32), **overrides,
        )
        summary = run_extreme_events_workflow(cluster, params)
        return summary, science_digests(cluster.filesystem)


def test_c7_cache_reuse(benchmark, tmp_path, tc_model_path, record_bench):
    off, off_digests = run_mode(tmp_path, tc_model_path, cached=False)
    on, on_digests = benchmark.pedantic(
        lambda: run_mode(tmp_path, tc_model_path, cached=True),
        rounds=1, iterations=1,
    )

    moved_on = snapshot_value(on["metrics"], "compss_transfer_bytes_total")
    moved_off = snapshot_value(off["metrics"], "compss_transfer_bytes_total")
    saved = snapshot_value(on["metrics"], "compss_transfer_bytes_saved_total")
    disk_on = snapshot_value(on["metrics"], "fs_bytes_read_total")
    disk_off = snapshot_value(off["metrics"], "fs_bytes_read_total")
    fs_hits = snapshot_value(on["metrics"], "fs_cache_hits_total")

    # Runtime layer: task placement races differ between runs, so the
    # controlled comparison holds placement fixed — within the cache-on
    # run, ``moved + saved`` is exactly what the same schedule would
    # have transferred without reuse.  ``saved > 0`` is therefore the
    # strict "bytes moved" reduction, immune to scheduling noise.
    assert saved > 0
    assert moved_on < moved_on + saved
    # Filesystem layer: the set of read calls is fixed by the task graph
    # (not by placement), so the cross-run comparison is deterministic.
    assert fs_hits > 0
    assert disk_on < disk_off
    # Byte-transparent: identical artifacts either way.
    assert on_digests and on_digests == off_digests

    hit_rate = fs_hits / max(
        1.0, fs_hits + snapshot_value(on["metrics"], "fs_cache_misses_total")
    )
    record_bench(
        "c7_cache_reuse",
        makespan_s=on["schedule"]["makespan_s"],
        transfer_bytes=moved_on,
        transfer_bytes_saved=saved,
        fs_bytes_read=disk_on,
        fs_cache_hit_rate=hit_rate,
    )

    print_table(
        f"C7: reuse layer over {len(YEARS)} years (with ML)",
        ["mode", "runtime MB moved", "MB saved", "fs MB from disk",
         "fs cache hits", "makespan (s)"],
        [
            ["caches on", f"{moved_on / 1e6:.2f}", f"{saved / 1e6:.2f}",
             f"{disk_on / 1e6:.2f}", int(fs_hits),
             f"{on['schedule']['makespan_s']:.2f}"],
            ["caches off", f"{moved_off / 1e6:.2f}", "0.00",
             f"{disk_off / 1e6:.2f}", 0,
             f"{off['schedule']['makespan_s']:.2f}"],
        ],
    )
    print(f"same-schedule counterfactual: reuse cut runtime traffic "
          f"{(moved_on + saved) / 1e6:.2f} -> {moved_on / 1e6:.2f} MB; "
          f"disk reads {disk_off / 1e6:.2f} -> {disk_on / 1e6:.2f} MB")
