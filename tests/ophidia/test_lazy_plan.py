"""Lazy query planning and operator fusion: equivalence and accounting.

The contract under test: on a lazy server, chains of elementwise
operators fuse into one pooled fragment sweep whose results are
byte-identical to eager execution, with strictly fewer fragment writes;
errors surface at the forced-evaluation point without corrupting
fragment state; shared intermediates materialise exactly once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import InjectedTaskError
from repro.observability import get_collector
from repro.observability.metrics import get_registry
from repro.observability.spans import current_context, span
from repro.ophidia import Client, Cube, OphidiaServer

MUL = "oph_mul_scalar('OPH_DOUBLE','OPH_DOUBLE',measure,{k})"
PRED = "oph_predicate('OPH_DOUBLE','OPH_DOUBLE',measure,'x','>0','x','0')"


@pytest.fixture
def lazy_client():
    with OphidiaServer(n_io_servers=2, n_cores=2, lazy=True) as server:
        client = Client(server)
        Cube.client = client
        yield client
        Cube.client = None


def _sin(a):
    return np.sin(a)


def base_cube(client, data, nfrag=3):
    return Cube.from_array(
        np.asarray(data), ["time", "lat", "lon"], client=client,
        fragment_dim="lat", nfrag=nfrag,
    )


def apply_spec(cube, spec, client):
    """Replay one operator spec drawn by hypothesis onto *cube*."""
    kind = spec[0]
    if kind == "apply":
        return cube.apply(MUL.format(k=spec[1]))
    if kind == "transform":
        return cube.transform(_sin)
    if kind == "subset":
        tsize = cube.shape[0]
        start = int(spec[1] * (tsize - 1))
        stop = min(tsize, start + max(1, int(spec[2] * tsize)))
        return cube.subset("time", start, stop)
    if kind == "intercube":
        _, op, seed, nfrag_other = spec
        other_data = np.random.default_rng(seed).normal(size=cube.shape)
        other = Cube.from_array(
            other_data, list(cube.dim_names), client=client,
            fragment_dim="lat", nfrag=nfrag_other,
        )
        return cube.intercube(other, op)
    raise AssertionError(spec)


elementwise_steps = st.lists(
    st.one_of(
        st.tuples(st.just("apply"), st.integers(1, 4)),
        st.tuples(st.just("transform")),
        st.tuples(st.just("subset"), st.floats(0, 0.5), st.floats(0.4, 1.0)),
        st.tuples(
            st.just("intercube"),
            st.sampled_from(["add", "sub", "mul"]),
            st.integers(0, 5),
            st.integers(1, 4),
        ),
    ),
    min_size=1, max_size=5,
)


class TestLazyEagerEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        data_seed=st.integers(0, 100),
        nfrag=st.integers(1, 4),
        steps=elementwise_steps,
        reduce_spec=st.one_of(
            st.none(),
            st.tuples(
                st.sampled_from(["max", "sum", "mean"]),
                st.sampled_from(["time", "lat"]),
            ),
        ),
    )
    def test_random_chains_byte_identical(self, data_seed, nfrag, steps,
                                          reduce_spec):
        data = np.random.default_rng(data_seed).normal(size=(6, 5, 4))
        results = []
        for lazy in (False, True):
            with OphidiaServer(n_io_servers=2, n_cores=2, lazy=lazy) as server:
                client = Client(server)
                cube = base_cube(client, data, nfrag=nfrag)
                for spec in steps:
                    cube = apply_spec(cube, spec, client)
                if reduce_spec is not None:
                    cube = cube.reduce(reduce_spec[0], dim=reduce_spec[1])
                results.append(cube.to_array().copy())
        eager, lazy = results
        assert eager.dtype == lazy.dtype
        np.testing.assert_array_equal(eager, lazy)

    @settings(max_examples=15, deadline=None)
    @given(
        data_seed=st.integers(0, 100),
        nfrag=st.integers(1, 4),
        steps=elementwise_steps.filter(lambda s: len(s) >= 2),
    )
    def test_fused_chain_writes_strictly_fewer_fragments(self, data_seed,
                                                         nfrag, steps):
        data = np.random.default_rng(data_seed).normal(size=(6, 5, 4))
        writes = []
        for lazy in (False, True):
            with OphidiaServer(n_io_servers=2, n_cores=2, lazy=lazy) as server:
                client = Client(server)
                cube = base_cube(client, data, nfrag=nfrag)
                before = server.storage_stats().fragment_writes
                for spec in steps:
                    cube = apply_spec(cube, spec, client)
                cube.to_array()
                writes.append(server.storage_stats().fragment_writes - before)
        eager_writes, lazy_writes = writes
        assert lazy_writes < eager_writes


class TestPlanLifecycle:
    def test_elementwise_ops_defer_and_materialize_forces(self, lazy_client):
        data = np.random.default_rng(0).normal(size=(4, 6, 3))
        base = base_cube(lazy_client, data)
        server = lazy_client.server
        before = server.storage_stats().fragment_writes
        chained = base.apply(MUL.format(k=2)).transform(_sin)
        assert chained.is_lazy
        assert server.storage_stats().fragment_writes == before
        chained.materialize()
        assert not chained.is_lazy
        # materialize writes only the final cube, once.
        assert server.storage_stats().fragment_writes == before + chained.nfrag
        np.testing.assert_array_equal(chained.to_array(), np.sin(data * 2))
        chained.materialize()  # idempotent no-op
        assert server.storage_stats().fragment_writes == before + chained.nfrag

    def test_lazy_cube_estimates_nbytes(self, lazy_client):
        base = base_cube(lazy_client, np.zeros((4, 6, 3)))
        lazy = base.apply(MUL.format(k=2))
        assert lazy.is_lazy
        assert lazy.nbytes == 4 * 6 * 3 * 8

    def test_eager_flag_restores_immediate_execution(self):
        data = np.arange(24.0).reshape(2, 4, 3)
        with OphidiaServer(n_io_servers=2, n_cores=2, lazy=False) as server:
            client = Client(server)
            base = base_cube(client, data, nfrag=2)
            before = server.storage_stats().fragment_writes
            out = base.apply(MUL.format(k=3))
            assert not out.is_lazy
            assert server.storage_stats().fragment_writes == before + out.nfrag

    def test_shared_intermediate_materializes_once_on_reuse(self, lazy_client):
        data = np.random.default_rng(1).normal(size=(5, 4, 3))
        base = base_cube(lazy_client, data)
        counter = get_registry().counter(
            "ophidia_cubes_materialized_total", labels=("reason",)
        )
        reuse_before = counter.value(reason="reuse")
        shared = base.apply(MUL.format(k=2))
        first = shared.reduce("max", dim="time")
        assert shared.is_lazy  # first consumer streamed the chain
        second = shared.apply(PRED).reduce("sum", dim="time")
        assert not shared.is_lazy  # second consumer triggered materialisation
        assert counter.value(reason="reuse") == reuse_before + 1
        third = shared.reduce("sum", dim="time")
        assert counter.value(reason="reuse") == reuse_before + 1
        ref = data * 2
        np.testing.assert_array_equal(first.to_array(), ref.max(axis=0))
        np.testing.assert_array_equal(
            second.to_array(), np.where(ref > 0, ref, 0.0).sum(axis=0)
        )
        np.testing.assert_array_equal(third.to_array(), ref.sum(axis=0))

    def test_delete_unmaterialized_keeps_downstream_alive(self, lazy_client):
        data = np.random.default_rng(2).normal(size=(4, 4, 2))
        base = base_cube(lazy_client, data)
        inter = base.apply(MUL.format(k=2))
        out = inter.transform(_sin)
        inter.delete()
        with pytest.raises(RuntimeError):
            inter.to_array()  # direct use of a deleted cube still fails
        np.testing.assert_array_equal(out.to_array(), np.sin(data * 2))

    def test_deleting_base_surfaces_error_at_force(self, lazy_client):
        base = base_cube(lazy_client, np.ones((3, 4, 2)))
        pending = base.apply(MUL.format(k=2))
        base.delete()
        with pytest.raises(RuntimeError, match="deleted"):
            pending.to_array()

    def test_injected_fault_surfaces_at_force_without_corruption(self,
                                                                 lazy_client):
        data = np.random.default_rng(3).normal(size=(4, 6, 3))
        base = base_cube(lazy_client, data)
        server = lazy_client.server

        def boom(a):
            raise InjectedTaskError("lazy_chain", 0)

        pending = base.apply(MUL.format(k=2)).transform(boom).transform(_sin)
        n_before = server.pool.n_fragments
        writes_before = server.storage_stats().fragment_writes
        with pytest.raises(InjectedTaskError):
            pending.to_array()
        with pytest.raises(InjectedTaskError):
            pending.materialize()
        # A failing sweep writes nothing and frees nothing.
        assert server.pool.n_fragments == n_before
        assert server.storage_stats().fragment_writes == writes_before
        assert pending.is_lazy
        np.testing.assert_array_equal(base.to_array(), data)


class TestFusionAccounting:
    def test_fused_sweep_counts_passes_and_logs_plan(self, lazy_client):
        server = lazy_client.server
        registry = get_registry()
        runs = registry.counter("ophidia_fragment_passes_run_total")
        avoided = registry.counter("ophidia_fragment_passes_avoided_total")
        saved = registry.counter("ophidia_materialize_bytes_avoided_total")
        runs0, avoided0, saved0 = runs.value(), avoided.value(), saved.value()

        base = base_cube(lazy_client, np.random.default_rng(4).normal(size=(4, 6, 3)))
        chain = base.apply(MUL.format(k=2)).transform(_sin).apply(PRED)
        chain.to_array()
        assert runs.value() == runs0 + 1
        assert avoided.value() == avoided0 + 2
        assert saved.value() > saved0
        entry = [e for e in server.operator_log
                 if e["operator"] == "oph_executeplan"][-1]
        assert entry["fused"] == ["oph_apply", "oph_transform", "oph_apply"]

    def test_fusion_length_histogram_observes_chain(self, lazy_client):
        histogram = get_registry().histogram(
            "ophidia_plan_fusion_length",
            buckets=OphidiaServer.FUSION_BUCKETS,
        )
        before = histogram.stats()
        base = base_cube(lazy_client, np.ones((3, 4, 2)))
        base.apply(MUL.format(k=2)).apply(MUL.format(k=3)).reduce("sum", dim="time")
        after = histogram.stats()
        assert after["count"] == before["count"] + 1
        # Two fused applies plus the reduce terminal in one sweep.
        assert after["sum"] == before["sum"] + 3

    def test_fused_plan_emits_span_with_fused_ops(self, lazy_client):
        base = base_cube(lazy_client, np.ones((3, 4, 2)))
        with span("test.root", layer="test"):
            trace_id = current_context().trace_id
            base.apply(MUL.format(k=2)).transform(_sin).to_array()
        spans = get_collector().for_trace(trace_id)
        fused = [s for s in spans if s.name == "ophidia:oph_executeplan"]
        assert fused, [s.name for s in spans]
        assert fused[0].attrs["fused_ops"] == "oph_apply,oph_transform"
        assert fused[0].attrs["fusion_length"] == 2
        # Lazy operator builds still record per-operator spans.
        names = {s.name for s in spans}
        assert "ophidia:oph_apply" in names
        assert "ophidia:oph_transform" in names
