"""The case study's TOSCA topology and HPCWaaS wiring (Figure 2).

:data:`CASE_STUDY_TOSCA` is the application-architecture description a
workflow developer uploads to Alien4Cloud; :func:`build_case_study_services`
assembles the full service stack (Yorc + container service + DLS +
registry + Execution API) with the climate workflow's data pipelines
registered, ready to deploy onto a cluster.
"""

from __future__ import annotations

from typing import Tuple

from repro.hpcwaas import (
    Alien4Cloud,
    DataMovement,
    HPCWaaSAPI,
    YorcOrchestrator,
)

#: The extended-TOSCA description of the extreme-events application.
CASE_STUDY_TOSCA = """
tosca_definitions_version: tosca_simple_yaml_1_3
metadata:
  template_name: climate-extreme-events
topology_template:
  inputs:
    years:
      default: [2030]
    n_days:
      default: 30
  node_templates:
    zeus:
      type: eflows.nodes.ComputeAccess
      properties:
        queue: p_medium
    climate_image:
      type: eflows.nodes.ContainerRuntime
      properties:
        packages: [pycompss, pyophidia, tensorflow, keras, numpy, scipy]
        target_platform: x86_64
      artifacts:
        container:
          name: climate-extremes-runtime
          base: 'python:3.11-slim'
      requirements:
        - host: zeus
    compss_env:
      type: eflows.nodes.PythonEnvironment
      properties:
        packages: [pycompss, repro]
        python: '3.11'
      requirements:
        - host: zeus
    tc_model_data:
      type: eflows.nodes.DataPipeline
      properties:
        pipeline: stage_tc_model
        when: deployment
      requirements:
        - host: zeus
    extremes_app:
      type: eflows.nodes.PyCOMPSsApplication
      properties:
        entrypoint: repro.workflow.run_extreme_events_workflow
        arguments:
          n_workers: 4
      requirements:
        - dependency: climate_image
        - dependency: compss_env
        - dependency: tc_model_data
"""


def build_case_study_services(
    tc_model_bytes: bytes = b"",
) -> Tuple[Alien4Cloud, HPCWaaSAPI]:
    """Assemble the eFlows4HPC stack with the case-study pipelines.

    ``tc_model_bytes`` is the serialised pre-trained CNN the Data
    Logistics Service stages onto the cluster at deployment time (an
    empty placeholder marks "train on first use").
    """
    yorc = YorcOrchestrator()
    yorc.dls.register_pipeline(
        "stage_tc_model",
        [DataMovement(
            destination="models/tc_localizer_staged.pkl",
            producer=lambda: tc_model_bytes or b"",
        )],
    )
    a4c = Alien4Cloud(orchestrator=yorc)
    a4c.upload_topology(CASE_STUDY_TOSCA)
    api = HPCWaaSAPI(a4c.registry, orchestrator=yorc)
    return a4c, api
